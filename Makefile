# Development entry points. `make verify` is what CI runs and what a
# PR must keep green: build, go vet, the project's own phvet analyzers
# (walltime / detrand / lockguard / errdrop), and the full test suite
# under the race detector with the goroutine-leak checker armed.

GO ?= go

.PHONY: verify build vet phvet test race bench

verify: build vet phvet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

phvet:
	$(GO) run ./cmd/phvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
