# Development entry points. `make verify` is what CI runs and what a
# PR must keep green: build, go vet, the project's own phvet analyzers
# (walltime / detrand / lockguard / errdrop / mapiter / taintclock /
# goloss), and the full test suite under the race detector with the
# goroutine-leak checker armed.

GO ?= go

# PHVET_MAXTIME is the committed ceiling on a full phvet run. The
# loader parses and type-checks packages in parallel waves; if a change
# serializes it again the run blows this budget and phvet itself fails,
# the same way benchjson pins the perf floors. Generous vs. the ~3 s
# local run so a loaded CI box doesn't flake.
PHVET_MAXTIME ?= 30s

# The substrate benchmarks and the invariants the committed
# BENCH_netsim.json baseline pins: the named benchmarks must exist, the
# grid index must beat brute-force neighbor scans by >= 5x at 1000
# devices, and the fault-injection hooks must cost the fault-free path
# at most ~5% (plain:zerofault floors of 0.95 — a zero-rate plan is
# byte-identical in behavior, so any real slowdown is pure hook
# overhead).
BENCH_PATTERN = ^(BenchmarkNeighbors|BenchmarkBroadcastFanout|BenchmarkScaleDiscovery)$$
BENCH_REQUIRE = BenchmarkNeighbors/grid/devices=1000,BenchmarkNeighbors/brute/devices=1000,BenchmarkNeighbors/zerofault/devices=1000,BenchmarkBroadcastFanout/devices=1000,BenchmarkBroadcastFanout/zerofault/devices=1000,BenchmarkScaleDiscovery/peers=1000,BenchmarkScaleDiscovery/peers=2000
BENCH_RATIO   = BenchmarkNeighbors/brute/devices=1000:BenchmarkNeighbors/grid/devices=1000:5,BenchmarkNeighbors/grid/devices=1000:BenchmarkNeighbors/zerofault/devices=1000:0.95,BenchmarkBroadcastFanout/devices=1000:BenchmarkBroadcastFanout/zerofault/devices=1000:0.95

# The delta-synchronization benchmarks and the floors the committed
# BENCH_community.json baseline pins: at 500 peers a steady-state group
# round (primed cache, NOT_MODIFIED answers, fingerprint-skipped
# rebuild) must cost >= 3x less wall time and move >= 5x fewer wire
# bytes than a cold round (fresh client, full interest lists, full
# rebuild). The admission pair pins the overload defense: answering
# BUSY on the shed fast path must stay >= 5x cheaper than serving a
# bulk profile transfer, or shedding stops protecting the server.
COMBENCH_PATTERN = ^(BenchmarkGroupRound|BenchmarkWireCodecSized|BenchmarkServerAdmission)$$
COMBENCH_REQUIRE = BenchmarkGroupRound/cold/peers=10,BenchmarkGroupRound/steady/peers=10,BenchmarkGroupRound/cold/peers=100,BenchmarkGroupRound/steady/peers=100,BenchmarkGroupRound/cold/peers=500,BenchmarkGroupRound/steady/peers=500,BenchmarkWireCodecSized/marshal/fields=500,BenchmarkWireCodecSized/append/fields=500,BenchmarkWireCodecSized/unmarshal/fields=500,BenchmarkServerAdmission/serve,BenchmarkServerAdmission/shed
COMBENCH_RATIO   = BenchmarkGroupRound/cold/peers=500:BenchmarkGroupRound/steady/peers=500:3,BenchmarkGroupRound/cold/peers=500:BenchmarkGroupRound/steady/peers=500:5:wire-bytes/op,BenchmarkServerAdmission/serve:BenchmarkServerAdmission/shed:5

# The discrete-event engine benchmarks and the floors the committed
# BENCH_des.json baseline pins: at 1000 devices the same discovery
# sweep must cost >= 1.15x more per device-round on the goroutine
# engine than on the event engine, and growing the event engine's world
# 10x (1000 -> 10000 devices) may cost at most 2x per device-round
# (expressed as the 1k row keeping >= 0.5x of the 10k row) — wall-clock
# scales with executed events, not with device count. The sweep now
# reaches 100k devices, and the 50k workers=1 / workers=max pair pins
# the multi-core shard-execution speedup: on multi-core hardware the
# 1-worker run must cost >= 2x the GOMAXPROCS run per device-round.
# That ratio is only appended when nproc > 1 — on a single-core box
# both legs run the same sequential barrier and the floor would be
# vacuous noise. One iteration is one whole sweep, so the suite runs at
# -benchtime 1x; the smoke run passes -short, which skips every 50k+
# sweep (hence the smaller require list).
DESBENCH_PATTERN = ^BenchmarkDESScaleDiscovery$$
DESBENCH_REQUIRE_SMOKE = BenchmarkDESScaleDiscovery/engine=goroutine/devices=1000,BenchmarkDESScaleDiscovery/engine=des/devices=1000,BenchmarkDESScaleDiscovery/engine=des/devices=10000
DESBENCH_REQUIRE = $(DESBENCH_REQUIRE_SMOKE),BenchmarkDESScaleDiscovery/engine=des/devices=50000,BenchmarkDESScaleDiscovery/engine=des/devices=100000,BenchmarkDESScaleDiscovery/engine=des/devices=50000/workers=1,BenchmarkDESScaleDiscovery/engine=des/devices=50000/workers=max
DESBENCH_RATIO   = BenchmarkDESScaleDiscovery/engine=goroutine/devices=1000:BenchmarkDESScaleDiscovery/engine=des/devices=1000:1.15:ns/dev-round,BenchmarkDESScaleDiscovery/engine=des/devices=1000:BenchmarkDESScaleDiscovery/engine=des/devices=10000:0.5:ns/dev-round
DESBENCH_RATIO_MULTICORE = BenchmarkDESScaleDiscovery/engine=des/devices=50000/workers=1:BenchmarkDESScaleDiscovery/engine=des/devices=50000/workers=max:2:ns/dev-round
NPROC := $(shell nproc 2>/dev/null || echo 1)
ifneq ($(NPROC),1)
DESBENCH_RATIO := $(DESBENCH_RATIO),$(DESBENCH_RATIO_MULTICORE)
endif

# The epidemic-dissemination benchmarks and the floor the committed
# BENCH_gossip.json baseline pins: at 1000 devices the fan-out
# baseline's steady wire bytes per round must stay >= 3x the gossip
# engine's — once converged, dead rumors, bloom-skipped pushes and
# amortized anti-entropy digests must keep the epidemic an integer
# factor cheaper on the wire, or the dissemination claim regressed
# (measured headroom is ~14x; 3x absorbs knob and seed drift). The
# 10k/50k rows track the epidemic's flat per-device steady cost on the
# event engine; the 50k row is skipped by the -short smoke run.
GOSSIPBENCH_PATTERN = ^BenchmarkGossipConvergence$$
GOSSIPBENCH_REQUIRE_SMOKE = BenchmarkGossipConvergence/mode=fanout/devices=1000,BenchmarkGossipConvergence/mode=gossip/devices=1000,BenchmarkGossipConvergence/mode=gossip/engine=des/devices=10000
GOSSIPBENCH_REQUIRE = $(GOSSIPBENCH_REQUIRE_SMOKE),BenchmarkGossipConvergence/mode=gossip/engine=des/devices=50000
GOSSIPBENCH_RATIO   = BenchmarkGossipConvergence/mode=fanout/devices=1000:BenchmarkGossipConvergence/mode=gossip/devices=1000:3:wire-bytes/round

# The store-carry-forward benchmarks and the floors the committed
# BENCH_dtn.json baseline pins: on the sparse bus-line world — where
# delivery depends entirely on couriers carrying custody between
# partitioned stops — epidemic spray must cost at least 2x the social
# strategy's copies per delivered message (measured headroom ~4.8x;
# 2x absorbs seed and knob drift). The campus world is denser, so
# epidemic wastes less there; its pin is a milder 1.3x. The DES row
# re-runs the bus/social case on the event engine and is skipped by
# the -short smoke run.
DTNBENCH_PATTERN = ^BenchmarkDTNDelivery$$
DTNBENCH_REQUIRE_SMOKE = BenchmarkDTNDelivery/world=bus/strategy=epidemic/devices=200,BenchmarkDTNDelivery/world=bus/strategy=social/devices=200,BenchmarkDTNDelivery/world=campus/strategy=epidemic/devices=200,BenchmarkDTNDelivery/world=campus/strategy=social/devices=200
DTNBENCH_REQUIRE = $(DTNBENCH_REQUIRE_SMOKE),BenchmarkDTNDelivery/world=bus/strategy=social/engine=des/devices=200
DTNBENCH_RATIO   = BenchmarkDTNDelivery/world=bus/strategy=epidemic/devices=200:BenchmarkDTNDelivery/world=bus/strategy=social/devices=200:2:copies/delivered,BenchmarkDTNDelivery/world=campus/strategy=epidemic/devices=200:BenchmarkDTNDelivery/world=campus/strategy=social/devices=200:1.3:copies/delivered

.PHONY: verify build vet phvet vet-baseline test race chaos fuzz bench bench-json bench-smoke

verify: build vet phvet race chaos fuzz bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

phvet:
	$(GO) run ./cmd/phvet -baseline PHVET_BASELINE.json -maxtime $(PHVET_MAXTIME) ./...

# vet-baseline regenerates the committed suppression baseline from the
# current findings. The baseline only ever shrinks: fixing a
# grandfathered finding makes its entry stale, and a stale entry fails
# phvet until this target prunes it. Adding NEW entries is a review
# decision, not a reflex — prefer fixing the finding or a
# //phvet:ignore with a justification at the site.
vet-baseline:
	$(GO) run ./cmd/phvet -write-baseline PHVET_BASELINE.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# chaos runs the seeded fault-injection suites — the link-fault
# matrix, the endpoint (stall/crash/overload) matrix, and the
# store-carry-forward DTN matrix, each on both transport engines (the
# TestChaos*DES variants re-run the matrices on the discrete-event
# engine) — twice under the race detector: -count=2 re-runs every
# scenario from the same seeds, so a pass also demonstrates replay
# determinism end to end. The explicit -timeout has headroom over go
# test's 10m default: three matrices × two engines × two counts under
# the race detector brush 10m on a single-core box.
chaos:
	$(GO) test -race -count=2 -timeout 40m -run 'TestChaos|TestZeroScenario|TestZeroGossipScenario|TestZeroDTNScenario' ./internal/simtest/

# fuzz replays the committed never-panic corpora (valid frames plus
# faults.Mangle damage and truncations) through the community, gossip
# and DTN wire decoders as ordinary deterministic tests — the seed
# corpus of each fuzzer, not an open-ended fuzzing session.
fuzz:
	$(GO) test -run 'TestCorruptionCorpus|TestCodecRejectsMangledFrames|Fuzz' ./internal/community/ ./internal/gossip/ ./internal/dtn/

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json regenerates the committed baselines and enforces the
# speedup/overhead floors. Run it on a quiet machine. -count=5 repeats
# every benchmark; benchjson folds the repeats by median, which keeps
# one warmup or scheduler hiccup from deciding a ratio check. The
# community suite runs fewer iterations per repeat because one cold
# 500-peer round is itself a 500-connection experiment.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 500x -count=5 . > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_netsim.json -require '$(BENCH_REQUIRE)' -ratio '$(BENCH_RATIO)' < bench.out
	$(GO) test -run '^$$' -bench '$(COMBENCH_PATTERN)' -benchmem -benchtime 20x -count=5 . > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_community.json -require '$(COMBENCH_REQUIRE)' -ratio '$(COMBENCH_RATIO)' < bench.out
	$(GO) test -run '^$$' -bench '$(DESBENCH_PATTERN)' -benchtime 1x -count=5 . > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_des.json -require '$(DESBENCH_REQUIRE)' -ratio '$(DESBENCH_RATIO)' < bench.out
	$(GO) test -run '^$$' -bench '$(GOSSIPBENCH_PATTERN)' -benchtime 1x -count=5 . > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_gossip.json -require '$(GOSSIPBENCH_REQUIRE)' -ratio '$(GOSSIPBENCH_RATIO)' < bench.out
	$(GO) test -run '^$$' -bench '$(DTNBENCH_PATTERN)' -benchtime 1x -count=5 . > bench.out
	$(GO) run ./cmd/benchjson -o BENCH_dtn.json -require '$(DTNBENCH_REQUIRE)' -ratio '$(DTNBENCH_RATIO)' < bench.out
	rm -f bench.out

# bench-smoke is the CI guard: every benchmark still compiles and runs
# (one iteration), and none of the required names has disappeared. No
# timing assertions — 1x iterations on a loaded CI box mean nothing.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime 1x . > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null -require '$(BENCH_REQUIRE)' < bench-smoke.out
	$(GO) test -run '^$$' -bench '$(COMBENCH_PATTERN)' -benchmem -benchtime 1x . > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null -require '$(COMBENCH_REQUIRE)' < bench-smoke.out
	$(GO) test -run '^$$' -short -bench '$(DESBENCH_PATTERN)' -benchtime 1x . > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null -require '$(DESBENCH_REQUIRE_SMOKE)' < bench-smoke.out
	$(GO) test -run '^$$' -short -bench '$(GOSSIPBENCH_PATTERN)' -benchtime 1x . > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null -require '$(GOSSIPBENCH_REQUIRE_SMOKE)' < bench-smoke.out
	$(GO) test -run '^$$' -short -bench '$(DTNBENCH_PATTERN)' -benchtime 1x . > bench-smoke.out
	$(GO) run ./cmd/benchjson -o /dev/null -require '$(DTNBENCH_REQUIRE_SMOKE)' < bench-smoke.out
	rm -f bench-smoke.out
