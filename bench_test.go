package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/harness"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/msc"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/snsbase"
	"repro/internal/vtime"
)

// reportModeled attaches the modeled duration (the paper's scale) to a
// benchmark result.
func reportModeled(b *testing.B, total time.Duration, n int) {
	b.Helper()
	b.ReportMetric(total.Seconds()/float64(n), "modeled-s/op")
}

// --- Table 8: the headline experiment -------------------------------

func benchSNSColumn(b *testing.B, site snsbase.SiteProfile, handset snsbase.HandsetProfile) {
	b.Helper()
	var modeled time.Duration
	for i := 0; i < b.N; i++ {
		row, err := harness.RunSNSColumn(harness.Table8Options{}, site, handset)
		if err != nil {
			b.Fatal(err)
		}
		modeled += row.Total()
	}
	reportModeled(b, modeled, b.N)
}

// BenchmarkTable8_FacebookN810 reruns the Facebook-on-N810 column
// (paper: 94 s total).
func BenchmarkTable8_FacebookN810(b *testing.B) {
	benchSNSColumn(b, snsbase.Facebook(), snsbase.NokiaN810())
}

// BenchmarkTable8_FacebookN95 reruns the Facebook-on-N95 column
// (paper: 157 s total).
func BenchmarkTable8_FacebookN95(b *testing.B) {
	benchSNSColumn(b, snsbase.Facebook(), snsbase.NokiaN95())
}

// BenchmarkTable8_Hi5N810 reruns the Hi5-on-N810 column (paper: 120 s
// total).
func BenchmarkTable8_Hi5N810(b *testing.B) {
	benchSNSColumn(b, snsbase.Hi5(), snsbase.NokiaN810())
}

// BenchmarkTable8_Hi5N95 reruns the Hi5-on-N95 column (paper: 181 s
// total).
func BenchmarkTable8_Hi5N95(b *testing.B) {
	benchSNSColumn(b, snsbase.Hi5(), snsbase.NokiaN95())
}

// BenchmarkTable8_PeerHoodCommunity reruns the PeerHood Community
// column (paper: 45 s total, join 0 s).
func BenchmarkTable8_PeerHoodCommunity(b *testing.B) {
	var modeled time.Duration
	for i := 0; i < b.N; i++ {
		row, err := harness.RunPHCColumn(harness.Table8Options{})
		if err != nil {
			b.Fatal(err)
		}
		if row.Join != 0 && row.Join > time.Second {
			b.Fatalf("join = %v, expected ~0", row.Join)
		}
		modeled += row.Total()
	}
	reportModeled(b, modeled, b.N)
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationWarmCache compares the PeerHood search cost cold
// (discovery runs while the user waits — the paper's 11 s) vs warm
// (the daemon's background rounds already populated the cache).
func BenchmarkAblationWarmCache(b *testing.B) {
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				row, err := harness.RunPHCColumn(harness.Table8Options{WarmCache: warm})
				if err != nil {
					b.Fatal(err)
				}
				modeled += row.Search
			}
			reportModeled(b, modeled, b.N)
		})
	}
}

// BenchmarkAblationLatencyScale shows the modeled Table 8 result is
// (approximately) invariant under the latency scale — the measurement
// methodology, not the scale, produces the numbers.
func BenchmarkAblationLatencyScale(b *testing.B) {
	for _, factor := range []float64{1e-2, 2e-2} {
		b.Run(fmt.Sprintf("scale-%g", factor), func(b *testing.B) {
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				row, err := harness.RunPHCColumn(harness.Table8Options{Scale: vtime.NewScale(factor)})
				if err != nil {
					b.Fatal(err)
				}
				modeled += row.Total()
			}
			reportModeled(b, modeled, b.N)
		})
	}
}

// BenchmarkAblationSemantics measures dynamic group discovery over a
// synonym-rich population with and without the taught-semantics layer
// (the thesis's future work): the semantics layer pays a lookup cost
// but collapses fragmented groups.
func BenchmarkAblationSemantics(b *testing.B) {
	synonyms := [][2]string{
		{"biking", "cycling"}, {"football", "soccer"}, {"movies", "cinema"},
	}
	nearby := make([]core.Member, 0, 60)
	for i := 0; i < 60; i++ {
		pair := synonyms[i%len(synonyms)]
		term := pair[i/len(synonyms)%2]
		nearby = append(nearby, core.Member{
			Device:    ids.DeviceIDf("d%02d", i),
			ID:        ids.MemberID(fmt.Sprintf("m%02d", i)),
			Interests: []string{term},
		})
	}
	active := core.Member{Device: "self", ID: "self", Interests: []string{"biking", "football", "movies"}}

	b.Run("baseline", func(b *testing.B) {
		var groups, members int
		for i := 0; i < b.N; i++ {
			gs := core.DiscoverGroups(active, nearby, nil)
			groups = len(gs)
			members = 0
			for _, g := range gs {
				members += len(g.Members)
			}
		}
		b.ReportMetric(float64(groups), "groups")
		b.ReportMetric(float64(members), "members")
	})
	b.Run("semantics", func(b *testing.B) {
		sem := interest.NewSemantics()
		for _, pair := range synonyms {
			sem.Teach(pair[0], pair[1])
		}
		var groups, members int
		for i := 0; i < b.N; i++ {
			gs := core.DiscoverGroups(active, nearby, sem)
			groups = len(gs)
			members = 0
			for _, g := range gs {
				members += len(g.Members)
			}
		}
		b.ReportMetric(float64(groups), "groups")
		b.ReportMetric(float64(members), "members")
	})
}

// --- Figure 6: the dynamic group discovery algorithm -----------------

// BenchmarkFigure6Discovery measures the pure algorithm's cost as the
// neighborhood grows (the "performance testing during the dynamic
// group discovery" the conclusion names as future work).
func BenchmarkFigure6Discovery(b *testing.B) {
	pool := []string{"football", "music", "movies", "chess", "cooking", "photography", "hiking", "poker"}
	for _, n := range []int{5, 50, 500} {
		b.Run(fmt.Sprintf("neighbors-%d", n), func(b *testing.B) {
			nearby := make([]core.Member, n)
			for i := range nearby {
				nearby[i] = core.Member{
					Device:    ids.DeviceIDf("d%04d", i),
					ID:        ids.MemberID(fmt.Sprintf("m%04d", i)),
					Interests: []string{pool[i%len(pool)], pool[(i+3)%len(pool)]},
				}
			}
			active := core.Member{Device: "self", ID: "self", Interests: pool[:4]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if gs := core.DiscoverGroups(active, nearby, nil); len(gs) == 0 {
					b.Fatal("no groups formed")
				}
			}
		})
	}
}

// --- Table 3: PeerHood functionality ---------------------------------

// benchWorld builds a small Bluetooth neighborhood for protocol
// benchmarks.
type benchWorld struct {
	env    *radio.Environment
	net    *netsim.Network
	peers  []*benchPeer
	active *benchPeer
	client *community.Client
	ctx    context.Context
}

type benchPeer struct {
	daemon *peerhood.Daemon
	server *community.Server
	store  *profile.Store
}

func newBenchWorld(b *testing.B, peerCount int) *benchWorld {
	b.Helper()
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	b.Cleanup(net.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	b.Cleanup(cancel)
	w := &benchWorld{env: env, net: net, ctx: ctx}

	mk := func(dev ids.DeviceID, member ids.MemberID, at geo.Point) *benchPeer {
		if err := env.Add(dev, mobility.Static{At: at}, radio.Bluetooth); err != nil {
			b.Fatal(err)
		}
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(daemon.Stop)
		store := profile.NewStore(nil)
		if err := store.CreateAccount(member, "pw"); err != nil {
			b.Fatal(err)
		}
		if err := store.Login(member, "pw"); err != nil {
			b.Fatal(err)
		}
		if err := store.AddInterest(member, "football"); err != nil {
			b.Fatal(err)
		}
		server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Start(); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(server.Stop)
		return &benchPeer{daemon: daemon, server: server, store: store}
	}
	for i := 0; i < peerCount; i++ {
		w.peers = append(w.peers, mk(
			ids.DeviceIDf("peer-%02d", i),
			ids.MemberID(fmt.Sprintf("member-%02d", i)),
			geo.Pt(float64(i%3+1), float64(i/3)),
		))
	}
	w.active = mk("active", "active", geo.Pt(0, 0))
	if err := w.active.daemon.RefreshNow(ctx); err != nil {
		b.Fatal(err)
	}
	client, err := community.NewClient(peerhood.NewLibrary(w.active.daemon), w.active.store, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(client.Close)
	w.client = client
	return w
}

// BenchmarkTable3DiscoveryRound measures one full PeerHood discovery
// round (inquiry + SDP for every neighbor) — rows 1 and 2 of Table 3.
func BenchmarkTable3DiscoveryRound(b *testing.B) {
	w := newBenchWorld(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.active.daemon.RefreshNow(w.ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Connect measures connection establishment to a
// registered service — rows 3 and 4 of Table 3.
func BenchmarkTable3Connect(b *testing.B) {
	w := newBenchWorld(b, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := w.active.daemon.Connect(w.ctx, "peer-00", community.ServiceName)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

// --- Table 6: per-operation costs ------------------------------------

// BenchmarkTable6Dispatch measures the server's request dispatch for
// every Table 6 operation, without the network.
func BenchmarkTable6Dispatch(b *testing.B) {
	w := newBenchWorld(b, 1)
	server := w.peers[0].server
	member := string(ids.MemberID("member-00"))
	reqs := []community.Request{
		{Op: community.OpGetOnlineMemberList},
		{Op: community.OpGetInterestList},
		{Op: community.OpGetInterestedMemberList, Args: []string{"football"}},
		{Op: community.OpGetProfile, Args: []string{member, "active"}},
		{Op: community.OpCheckMemberID, Args: []string{member}},
		{Op: community.OpGetTrustedFriend, Args: []string{member}},
		{Op: community.OpCheckTrusted, Args: []string{member, "active"}},
	}
	for _, req := range reqs {
		b.Run(req.Op, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if resp := server.Handle(req); resp.Status == community.StatusBadRequest {
					b.Fatalf("bad request: %+v", resp)
				}
			}
		})
	}
}

// BenchmarkTable6RoundTrip measures a full request/response over the
// simulated Bluetooth link (PS_GETONLINEMEMBERLIST end to end).
func BenchmarkTable6RoundTrip(b *testing.B) {
	w := newBenchWorld(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		members, err := w.client.OnlineMembers(w.ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(members) == 0 {
			b.Fatal("no members")
		}
	}
}

// --- Figures 11–17: the MSC operations -------------------------------

// BenchmarkMSCOperations measures each client operation the figures
// document, end to end over the simulated network.
func BenchmarkMSCOperations(b *testing.B) {
	ops := []struct {
		name string
		run  func(w *benchWorld) error
	}{
		{"Figure11_GetMemberList", func(w *benchWorld) error {
			_, err := w.client.OnlineMembers(w.ctx)
			return err
		}},
		{"Figure12_GetInterestsList", func(w *benchWorld) error {
			_, err := w.client.InterestsList(w.ctx)
			return err
		}},
		{"Figure13_ViewMemberProfile", func(w *benchWorld) error {
			_, err := w.client.ViewProfile(w.ctx, "member-00")
			return err
		}},
		{"Figure14_PutProfileComment", func(w *benchWorld) error {
			return w.client.CommentProfile(w.ctx, "member-00", "bench comment")
		}},
		{"Figure15_ViewTrustedFriends", func(w *benchWorld) error {
			_, err := w.client.TrustedFriendsOf(w.ctx, "member-00")
			return err
		}},
		{"Figure17_SendMessage", func(w *benchWorld) error {
			return w.client.SendMessage(w.ctx, "member-00", "bench", "body")
		}},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			w := newBenchWorld(b, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op.run(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Figure16_ViewSharedContent", func(b *testing.B) {
		w := newBenchWorld(b, 3)
		if err := w.peers[0].store.AddTrusted("member-00", "active"); err != nil {
			b.Fatal(err)
		}
		if err := w.peers[0].server.ShareContent("member-00", "file.bin", []byte("data")); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.client.SharedContentOf(w.ctx, "member-00"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Micro-benchmarks on the substrate -------------------------------

// BenchmarkWireCodec measures the community frame codec.
func BenchmarkWireCodec(b *testing.B) {
	req := community.Request{
		Op:   community.OpMsg,
		Args: []string{"receiver", "sender", "subject line", "a message body with some length to it"},
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := community.MarshalRequest(req); len(out) == 0 {
				b.Fatal("empty frame")
			}
		}
	})
	frame := community.MarshalRequest(req)
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := community.UnmarshalRequest(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireCodecSized measures the codec across response sizes —
// the shapes a group round actually moves: a 10-field reply is one
// member summary, 100–500 fields are interest-list fan-in aggregates.
// The append variants reuse one buffer, the pooled hot path the client
// and server run on.
func BenchmarkWireCodecSized(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		fields := make([]string, n)
		for i := range fields {
			fields[i] = benchDeltaVocab[i%len(benchDeltaVocab)]
		}
		resp := community.Response{Status: community.StatusOK, Fields: fields}
		b.Run(fmt.Sprintf("marshal/fields=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := community.MarshalResponse(resp); len(out) == 0 {
					b.Fatal("empty frame")
				}
			}
		})
		b.Run(fmt.Sprintf("append/fields=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]byte, 0, 1<<14)
			for i := 0; i < b.N; i++ {
				buf = community.AppendResponse(buf[:0], resp)
				if len(buf) == 0 {
					b.Fatal("empty frame")
				}
			}
		})
		frame := community.MarshalResponse(resp)
		b.Run(fmt.Sprintf("unmarshal/fields=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := community.UnmarshalResponse(frame); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMSCRender measures chart rendering (Figures 11–17 output).
func BenchmarkMSCRender(b *testing.B) {
	rec := msc.NewRecorder("bench")
	for i := 0; i < 20; i++ {
		rec.Record("client", fmt.Sprintf("server%d", i%3), "PS_GETPROFILE")
		rec.Record(fmt.Sprintf("server%d", i%3), "client", "OK")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := rec.String(); len(out) == 0 {
			b.Fatal("empty chart")
		}
	}
}

// BenchmarkSemanticsCanon measures the union-find lookup under a large
// taught vocabulary.
func BenchmarkSemanticsCanon(b *testing.B) {
	sem := interest.NewSemantics()
	for i := 0; i < 1000; i++ {
		sem.Teach(fmt.Sprintf("term-%d", i), fmt.Sprintf("term-%d", (i+1)%1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sem.Canon(fmt.Sprintf("term-%d", i%1000)) == "" {
			b.Fatal("empty canon")
		}
	}
}

// BenchmarkAblationTechnology runs the PeerHood Community column over
// each access technology: Bluetooth (the thesis's configuration), WLAN
// (faster scan, longer range) and GPRS bridged through the operator
// proxy (unlimited range, highest latency).
func BenchmarkAblationTechnology(b *testing.B) {
	for _, tech := range radio.AllTechnologies() {
		b.Run(tech.String(), func(b *testing.B) {
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				row, err := harness.RunPHCColumn(harness.Table8Options{Technology: tech})
				if err != nil {
					b.Fatal(err)
				}
				modeled += row.Total()
			}
			reportModeled(b, modeled, b.N)
		})
	}
}

// BenchmarkFutureWorkDiscoveryScale measures the full-stack dynamic
// group discovery cycle as the neighborhood grows — the experiment the
// thesis's conclusion proposes as future work.
func BenchmarkFutureWorkDiscoveryScale(b *testing.B) {
	for _, peers := range []int{2, 8} {
		b.Run(fmt.Sprintf("peers-%d", peers), func(b *testing.B) {
			var modeled time.Duration
			for i := 0; i < b.N; i++ {
				points, err := harness.RunDiscoveryScale(vtime.Scale{}, []int{peers})
				if err != nil {
					b.Fatal(err)
				}
				modeled += points[0].Search
			}
			reportModeled(b, modeled, b.N)
		})
	}
}

// --- Substrate scaling: thousands of devices -------------------------

// placeBenchDevices fills the environment with n seeded static devices
// at constant density (~50 m² per device), the regime where neighbor
// queries decide whether discovery scales.
func placeBenchDevices(b *testing.B, env *radio.Environment, n int, tech radio.Technology) []ids.DeviceID {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	side := math.Sqrt(float64(n) * 50)
	devs := make([]ids.DeviceID, n)
	for i := range devs {
		devs[i] = ids.DeviceIDf("bench-%04d", i)
		at := geo.Pt(rng.Float64()*side, rng.Float64()*side)
		if err := env.Add(devs[i], mobility.Static{At: at}, tech); err != nil {
			b.Fatal(err)
		}
	}
	return devs
}

// BenchmarkNeighbors compares one neighborhood query on the spatial
// grid index against the brute-force per-pair oracle across world
// sizes. The clock is frozen, so the grid path amortizes one world
// snapshot across all iterations — the discovery-round access pattern.
// BENCH_netsim.json pins grid ≥ 5x brute at 1000 devices, and the
// zerofault mode (grid path with a zero-rate fault plan installed) pins
// the fault hooks' overhead on the fault-free fast path.
func BenchmarkNeighbors(b *testing.B) {
	for _, mode := range []string{"grid", "brute", "zerofault"} {
		for _, n := range []int{100, 500, 1000, 2000} {
			b.Run(fmt.Sprintf("%s/devices=%d", mode, n), func(b *testing.B) {
				clk := vtime.NewManual(time.Unix(0, 0))
				env := radio.NewEnvironment(radio.WithClock(clk))
				devs := placeBenchDevices(b, env, n, radio.Bluetooth)
				if mode == "zerofault" {
					env.SetInquiryFaults(faults.New(int64(n)))
				}
				env.Neighbors(devs[0], radio.Bluetooth) // build the epoch snapshot
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "brute" {
						env.NeighborsBrute(devs[i%n], radio.Bluetooth)
					} else {
						env.Neighbors(devs[i%n], radio.Bluetooth)
					}
				}
			})
		}
	}
}

// BenchmarkBroadcastFanout measures a discovery probe into a fully
// subscribed world: one SendBroadcast resolving its whole target set
// with a single grid query. The zerofault mode installs a zero-rate
// fault plan so BENCH_netsim.json can pin the per-target fault check's
// overhead on the fault-free path.
func BenchmarkBroadcastFanout(b *testing.B) {
	run := func(b *testing.B, n int, plan *faults.Plan) {
		env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-6)))
		net := netsim.New(env, int64(n))
		b.Cleanup(net.Close)
		net.SetFaults(plan)
		devs := placeBenchDevices(b, env, n, radio.WLAN)
		for _, id := range devs {
			sub, err := net.SubscribeBroadcast(id, "disc")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(sub.Close)
		}
		payload := []byte("probe")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.SendBroadcast(devs[i%n], radio.WLAN, "disc", payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			run(b, n, nil)
		})
		b.Run(fmt.Sprintf("zerofault/devices=%d", n), func(b *testing.B) {
			run(b, n, faults.New(int64(n)))
		})
	}
}

// BenchmarkScaleDiscovery runs one full discovery round at thousand-
// peer scale: every device refreshes its neighborhood at a fresh query
// epoch (so each iteration pays one snapshot build) and the active peer
// forms groups from its own neighbors.
func BenchmarkScaleDiscovery(b *testing.B) {
	pool := []string{"football", "music", "movies", "chess", "cooking", "photography", "hiking", "poker"}
	for _, n := range []int{100, 500, 1000, 2000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			clk := vtime.NewManual(time.Unix(0, 0))
			env := radio.NewEnvironment(radio.WithClock(clk))
			devs := placeBenchDevices(b, env, n, radio.Bluetooth)
			members := make(map[ids.DeviceID]core.Member, n)
			for i, id := range devs {
				members[id] = core.Member{
					Device:    id,
					ID:        ids.MemberID(fmt.Sprintf("m%04d", i)),
					Interests: []string{pool[i%len(pool)], pool[(i+3)%len(pool)]},
				}
			}
			active := core.Member{Device: devs[0], ID: "active", Interests: pool[:4]}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clk.Advance(time.Second) // new epoch: the round rebuilds the snapshot
				for _, id := range devs {
					env.Neighbors(id, radio.Bluetooth)
				}
				nearby := make([]core.Member, 0, 16)
				for _, nb := range env.Neighbors(devs[0], radio.Bluetooth) {
					nearby = append(nearby, members[nb])
				}
				core.DiscoverGroups(active, nearby, nil)
			}
		})
	}
}

// BenchmarkDESScaleDiscovery runs the engine-scaling discovery sweep
// (internal/harness/enginescale.go): every device runs an inquiry
// window, queries its neighborhood and exchanges interest
// advertisements with a capped fan-out, on the goroutine transport
// engine and on the discrete-event engine — where the drivers are
// event cascades, so one sweep is one synchronous Run over the worker
// pool. One iteration is one whole sweep (two rounds per device), so
// run it with -benchtime 1x. ns/op includes world construction; the
// reported ns/dev-round metric is the sweep-only cost per
// device-round, and its flatness across 1k → 10k → 50k → 100k devices
// is the event engine's scaling claim (the goroutine engine's
// reference row grows with device count — BENCH_des.json pins both
// floors). The workers=1 and workers=max legs at 50k isolate the
// multi-core speedup of parallel shard-batch execution; on multi-core
// hardware the Makefile enforces their ns/dev-round ratio. Sweeps of
// 50k+ are half-minute-plus experiments and skip under -short so
// bench-smoke stays fast.
func BenchmarkDESScaleDiscovery(b *testing.B) {
	run := func(b *testing.B, n int, cfg harness.EngineScaleConfig) {
		var last harness.EngineScalePoint
		for i := 0; i < b.N; i++ {
			ps, err := harness.RunEngineScale(cfg, []int{n})
			if err != nil {
				b.Fatal(err)
			}
			last = ps[0]
		}
		b.ReportMetric(last.NsPerDeviceRound, "ns/dev-round")
		if cfg.DES {
			b.ReportMetric(last.EventsPerSec, "events/sec")
		}
		if last.Groups == 0 || last.Delivered == 0 {
			b.Fatalf("sweep exchanged nothing: %+v", last)
		}
	}
	b.Run("engine=goroutine/devices=1000", func(b *testing.B) {
		run(b, 1000, harness.EngineScaleConfig{Seed: 7})
	})
	for _, n := range []int{1000, 10000, 50000, 100000} {
		b.Run(fmt.Sprintf("engine=des/devices=%d", n), func(b *testing.B) {
			if n >= 50000 && testing.Short() {
				b.Skip("50k+ sweep skipped under -short")
			}
			run(b, n, harness.EngineScaleConfig{Seed: 7, DES: true})
		})
	}
	// Worker-count legs: same 50k sweep pinned to one executor vs the
	// GOMAXPROCS default. Stable names (workers=max, not the number) so
	// the committed baseline compares across machines.
	for _, leg := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=max", 0}} {
		b.Run("engine=des/devices=50000/"+leg.name, func(b *testing.B) {
			if testing.Short() {
				b.Skip("50k+ sweep skipped under -short")
			}
			run(b, 50000, harness.EngineScaleConfig{Seed: 7, DES: true, Workers: leg.workers})
		})
	}
}

// --- Delta synchronization: cold vs steady group rounds --------------

// benchDeltaVocab models realistic member profiles; every peer carries
// 20 distinct terms from it (stride 5 is coprime with 24), so a cold
// round ships a full interest list per neighbor while a steady round
// ships only the fixed-size NOT_MODIFIED frame.
var benchDeltaVocab = []string{
	"football", "ice-hockey", "progressive-rock", "classical-music",
	"mobile-photography", "trail-running", "board-games", "astronomy",
	"street-food", "travel-stories", "retro-computing", "gardening",
	"language-exchange", "film-festivals", "chess", "orienteering",
	"vintage-cameras", "stand-up-comedy", "urban-sketching", "sailing",
	"science-fiction", "craft-coffee", "karaoke-nights", "birdwatching",
}

func benchDeltaInterests(i int) []string {
	seen := make(map[string]bool, 20)
	out := make([]string, 0, 20)
	for k := 0; k < 20; k++ {
		t := benchDeltaVocab[(i+k*5)%len(benchDeltaVocab)]
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// newGroupRoundWorld builds one active peer plus n neighbors on a tight
// Bluetooth grid with rich overlapping profiles, neighborhood already
// discovered, latency scaled to noise so the benchmark measures
// protocol and rebuild cost.
func newGroupRoundWorld(b *testing.B, peers int) (*scenario.Deployment, *scenario.Peer, context.Context) {
	b.Helper()
	builder := scenario.NewBuilder().WithScale(vtime.NewScale(1e-6)).WithSeed(int64(peers))
	side := 1 + peers/4
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%04d", i)),
			Position:  geo.Pt(float64(i%side)*0.01, float64(i/side)*0.01),
			Interests: benchDeltaInterests(i),
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(0.005, 0.005),
		Interests: benchDeltaInterests(0),
	})
	d, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	active := d.MustPeer("active")
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		b.Fatal(err)
	}
	return d, active, ctx
}

// BenchmarkGroupRound is the delta-synchronization headline: one full
// group-discovery round against n peers. The cold mode pays the whole
// classic cost every iteration — a fresh client (no cache, no
// connections), full interest lists on the wire, a full group rebuild.
// The steady mode reuses one primed client: per-peer conditional reads
// answered NOT_MODIFIED and a fingerprint-skipped rebuild. Each mode
// reports wire-bytes/op from the transport's byte counters;
// BENCH_community.json pins cold/steady floors at 500 peers.
func BenchmarkGroupRound(b *testing.B) {
	for _, n := range []int{10, 100, 500} {
		b.Run(fmt.Sprintf("cold/peers=%d", n), func(b *testing.B) {
			d, active, ctx := newGroupRoundWorld(b, n)
			before := d.Net.Counters().BytesDelivered
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				client, err := community.NewClient(peerhood.NewLibrary(active.Daemon), active.Store, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := client.RefreshGroups(ctx); err != nil {
					b.Fatal(err)
				}
				if len(client.Groups()) == 0 {
					b.Fatal("cold round formed no groups")
				}
				client.Close()
			}
			b.StopTimer()
			moved := d.Net.Counters().BytesDelivered - before
			b.ReportMetric(float64(moved)/float64(b.N), "wire-bytes/op")
		})
		b.Run(fmt.Sprintf("steady/peers=%d", n), func(b *testing.B) {
			d, active, ctx := newGroupRoundWorld(b, n)
			// Prime: the first round fills the per-peer cache and the
			// group manager's snapshot fingerprint.
			if _, err := active.Client.RefreshGroups(ctx); err != nil {
				b.Fatal(err)
			}
			if len(active.Client.Groups()) == 0 {
				b.Fatal("priming round formed no groups")
			}
			before := d.Net.Counters().BytesDelivered
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := active.Client.RefreshGroups(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			moved := d.Net.Counters().BytesDelivered - before
			b.ReportMetric(float64(moved)/float64(b.N), "wire-bytes/op")
			st := active.Client.Stats()
			if st.NotModified == 0 || st.CacheHits == 0 {
				b.Fatalf("steady rounds never hit the cache: %+v", st)
			}
		})
	}
}

// BenchmarkChurn measures group-membership churn per modeled minute at
// pedestrian speed — the "instantaneous social network" property.
func BenchmarkChurn(b *testing.B) {
	for _, speed := range []float64{0.5, 1.5} {
		b.Run(fmt.Sprintf("speed-%.1fmps", speed), func(b *testing.B) {
			var perMin float64
			for i := 0; i < b.N; i++ {
				points, err := harness.RunChurn(harness.ChurnConfig{Window: time.Minute}, []float64{speed})
				if err != nil {
					b.Fatal(err)
				}
				perMin += points[0].EventsPerMinute
			}
			b.ReportMetric(perMin/float64(b.N), "events/modeled-min")
		})
	}
}

// BenchmarkServerAdmission prices the two HandleFrom fast paths the
// overload machinery depends on: serve (rate limiter disabled, the
// request reaches its Table 6 handler) vs shed (per-peer budget
// exhausted, BUSY returned before any handler work). The committed
// BENCH_community.json pins serve >= 5x the cost of shed — the
// property that makes admission control a defense under overload
// rather than a second source of load.
func BenchmarkServerAdmission(b *testing.B) {
	w := newBenchWorld(b, 1)
	peer := w.peers[0]
	// GetProfile is the weight-4 bulk transfer the rate limiter exists
	// to shed: trust gate, profile read, field marshalling. Give the
	// profile the paper's kind of lived-in state (interests, comments,
	// visits) so the serve path prices a realistic transfer; the shed
	// path answers BUSY in constant time no matter how expensive the
	// request would have been.
	if err := peer.store.SetInfo("member-00", "Member Zero", "Lappeenranta", "benchmark profile"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if err := peer.store.AddInterest("member-00", fmt.Sprintf("interest-%02d", i)); err != nil {
			b.Fatal(err)
		}
		if err := peer.store.AddComment("member-00", "member-00", fmt.Sprintf("comment %d from the neighborhood", i)); err != nil {
			b.Fatal(err)
		}
	}
	req := community.Request{Op: community.OpGetProfile, Args: []string{"member-00", "member-00"}}
	from := ids.DeviceID("load-gen")

	b.Run("serve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if resp := peer.server.HandleFrom(from, req); resp.Status != community.StatusOK {
				b.Fatalf("serve path answered %+v", resp)
			}
		}
	})
	b.Run("shed", func(b *testing.B) {
		shedding, err := community.NewServerWith(peerhood.NewLibrary(peer.daemon), peer.store,
			community.ServerOptions{RatePerPeer: 1e-9, Burst: 1})
		if err != nil {
			b.Fatal(err)
		}
		// Burst 1 is below the request's weight of 4, so every call
		// takes the shed path; at 1e-9 tokens per modeled second the
		// bucket cannot refill to weight 4 within any benchmark run.
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if resp := shedding.HandleFrom(from, req); resp.Status != community.StatusBusy {
				b.Fatalf("shed path answered %+v", resp)
			}
		}
	})
}

// --- Epidemic dissemination: gossip vs fan-out wire cost -------------

// BenchmarkGossipConvergence is the epidemic-dissemination headline:
// a field of Bluetooth-scale proximity clusters where every device
// must come to hold each radio neighbor's current interest record.
// The fanout mode re-pulls every neighbor's full record each round;
// the gossip mode runs internal/gossip (greedy rumors with death by
// redundancy feedback, bloom have-digests, periodic anti-entropy).
// Each case reports rounds-to-converge and the steady wire bytes per
// round once converged; BENCH_gossip.json pins the 1000-device
// fanout:gossip steady-byte ratio as a floor — the epidemic must stay
// an order cheaper per round, or the claim regressed. The 10k and 50k
// cases run the epidemic on the discrete-event engine, where the
// steady per-device cost must stay flat (the 50k case is skipped
// under -short).
func BenchmarkGossipConvergence(b *testing.B) {
	run := func(b *testing.B, n int, mode string, des bool) {
		var last harness.GossipScalePoint
		for i := 0; i < b.N; i++ {
			p, err := harness.RunGossipScaleMode(harness.GossipScaleConfig{Seed: 7, DES: des}, n, mode)
			if err != nil {
				b.Fatal(err)
			}
			last = p
		}
		b.ReportMetric(last.SteadyBytesPerRound, "wire-bytes/round")
		b.ReportMetric(float64(last.ConvergedRound), "rounds-to-converge")
		if last.Messages == 0 {
			b.Fatalf("run moved no messages: %+v", last)
		}
		if mode == "gossip" && (last.Stats.RumorsDied == 0 || last.Stats.AERuns == 0) {
			b.Fatalf("epidemic never exercised death or anti-entropy: %+v", last.Stats)
		}
	}
	b.Run("mode=fanout/devices=1000", func(b *testing.B) { run(b, 1000, "fanout", false) })
	b.Run("mode=gossip/devices=1000", func(b *testing.B) { run(b, 1000, "gossip", false) })
	b.Run("mode=gossip/engine=des/devices=10000", func(b *testing.B) { run(b, 10000, "gossip", true) })
	b.Run("mode=gossip/engine=des/devices=50000", func(b *testing.B) {
		if testing.Short() {
			b.Skip("50k sweep skipped under -short")
		}
		run(b, 50000, "gossip", true)
	})
}

// --- Store-carry-forward delivery: epidemic vs social relay cost -----

// BenchmarkDTNDelivery is the DTN headline: sparse bus-line and campus
// worlds where most source/destination pairs never meet, so delivery
// rides on couriers carrying custody across partitions. Each case
// reports the delivery ratio, the mean delivery latency in contact
// rounds, and the headline copies-per-delivered-message — the wire
// cost of getting one message through. BENCH_dtn.json pins the
// epidemic:social copies-per-delivered ratio as a floor in both
// worlds: the GROUPS-NET-style social strategy must stay at least 2x
// cheaper than epidemic spray on the bus line (its sparsest, most
// courier-dependent world), or the claim regressed. The DES case runs
// the identical harness on the discrete-event engine.
func BenchmarkDTNDelivery(b *testing.B) {
	run := func(b *testing.B, n int, world, strat string, des bool) {
		var last harness.DTNScalePoint
		for i := 0; i < b.N; i++ {
			p, err := harness.RunDTNScaleMode(harness.DTNScaleConfig{Seed: 7, DES: des}, n, world, strat)
			if err != nil {
				b.Fatal(err)
			}
			last = p
		}
		b.ReportMetric(last.CopiesPerDelivered, "copies/delivered")
		b.ReportMetric(last.DeliveryRatio, "delivery-ratio")
		b.ReportMetric(last.MeanLatency, "latency-rounds")
		if last.Sent == 0 || last.Delivered == 0 {
			b.Fatalf("run delivered nothing: %+v", last)
		}
		if strat == "social" && last.DeliveryRatio < 0.9 {
			b.Fatalf("social delivery ratio %.2f below 0.9: %+v", last.DeliveryRatio, last)
		}
	}
	b.Run("world=bus/strategy=epidemic/devices=200", func(b *testing.B) { run(b, 200, "bus", "epidemic", false) })
	b.Run("world=bus/strategy=social/devices=200", func(b *testing.B) { run(b, 200, "bus", "social", false) })
	b.Run("world=campus/strategy=epidemic/devices=200", func(b *testing.B) { run(b, 200, "campus", "epidemic", false) })
	b.Run("world=campus/strategy=social/devices=200", func(b *testing.B) { run(b, 200, "campus", "social", false) })
	b.Run("world=bus/strategy=social/engine=des/devices=200", func(b *testing.B) {
		if testing.Short() {
			b.Skip("DES DTN sweep skipped under -short")
		}
		run(b, 200, "bus", "social", true)
	})
}
