// Command benchjson turns `go test -bench` output into a stable JSON
// baseline and enforces the benchmark-suite invariants CI cares about:
// that named benchmarks still exist (a refactor silently dropping a
// benchmark is a regression of the measurement, not just the code) and
// that committed speedup ratios still hold.
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson -o BENCH_netsim.json \
//	    -require Name1,Name2 -ratio Slow1:Fast1:min1,Slow2:Fast2:min2
//
// -require takes comma-separated benchmark-name prefixes; benchjson
// fails if any prefix matches no parsed benchmark. -ratio takes
// comma-separated SLOW:FAST:MIN[:METRIC] constraints and fails unless
// every one holds: metric(SLOW) / metric(FAST) >= MIN. METRIC defaults
// to ns/op; any custom b.ReportMetric unit (e.g. wire-bytes/op) may be
// named instead. A MIN below 1 bounds overhead instead of requiring
// speedup — e.g. PLAIN:INSTRUMENTED:0.95 allows the instrumented path
// at most ~5% slack over the plain one.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed figures. Allocation figures are only
// present when the run used -benchmem.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric figures by unit (e.g.
	// "wire-bytes/op"); absent when a benchmark reports none, so
	// baselines without custom metrics keep their exact shape.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// gomaxprocsSuffix is the "-8" style suffix go test appends to
// benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` output and returns name → Result.
// Repeated names — a `-count=N` run — are aggregated per field by
// median, which shrugs off the first-run warmup outlier that a mean
// (or last-wins) would let poison a ratio check; their iteration
// counts are summed.
func parseBench(r io.Reader) (map[string]Result, error) {
	samples := make(map[string][]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a log line that merely starts with "Benchmark"
		}
		res := Result{Iterations: iters}
		// The rest is value/unit pairs: 123 ns/op, 45 B/op, 6 allocs/op,
		// plus any custom b.ReportMetric units, captured by unit name.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		if res.NsPerOp == 0 {
			return nil, fmt.Errorf("benchjson: %q: no ns/op figure in %q", name, line)
		}
		samples[name] = append(samples[name], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines in input")
	}
	out := make(map[string]Result, len(samples))
	for name, runs := range samples {
		out[name] = aggregate(runs)
	}
	return out, nil
}

// aggregate folds one benchmark's repeated runs into a single Result.
func aggregate(runs []Result) Result {
	if len(runs) == 1 {
		return runs[0]
	}
	pick := func(get func(Result) float64) float64 {
		vs := make([]float64, len(runs))
		for i, r := range runs {
			vs[i] = get(r)
		}
		sort.Float64s(vs)
		mid := len(vs) / 2
		if len(vs)%2 == 1 {
			return vs[mid]
		}
		return (vs[mid-1] + vs[mid]) / 2
	}
	var iters int64
	for _, r := range runs {
		iters += r.Iterations
	}
	out := Result{
		Iterations:  iters,
		NsPerOp:     pick(func(r Result) float64 { return r.NsPerOp }),
		BytesPerOp:  pick(func(r Result) float64 { return r.BytesPerOp }),
		AllocsPerOp: pick(func(r Result) float64 { return r.AllocsPerOp }),
	}
	// Custom metrics fold by median too; a unit missing from one run
	// counts as zero there, matching how the stock fields behave.
	units := make(map[string]bool)
	for _, r := range runs {
		for unit := range r.Metrics {
			units[unit] = true
		}
	}
	for unit := range units {
		if out.Metrics == nil {
			out.Metrics = make(map[string]float64, len(units))
		}
		out.Metrics[unit] = pick(func(r Result) float64 { return r.Metrics[unit] })
	}
	return out
}

// checkRequire fails if any required name prefix matches nothing.
func checkRequire(results map[string]Result, required []string) error {
	for _, want := range required {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		found := false
		for name := range results {
			if strings.HasPrefix(name, want) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("benchjson: required benchmark %q missing from the run", want)
		}
	}
	return nil
}

// ratioSpec is one -ratio constraint: metric(slow)/metric(fast) must be
// >= min. An empty metric means ns/op.
type ratioSpec struct {
	slow, fast string
	min        float64
	metric     string
}

func parseRatio(s string) (ratioSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return ratioSpec{}, fmt.Errorf("benchjson: -ratio wants SLOW:FAST:MIN[:METRIC], got %q", s)
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || min <= 0 {
		return ratioSpec{}, fmt.Errorf("benchjson: -ratio minimum %q is not a positive number", parts[2])
	}
	spec := ratioSpec{slow: parts[0], fast: parts[1], min: min}
	if len(parts) == 4 {
		if parts[3] == "" {
			return ratioSpec{}, fmt.Errorf("benchjson: -ratio metric in %q is empty", s)
		}
		spec.metric = parts[3]
	}
	return spec, nil
}

// parseRatios splits a comma-separated -ratio value into its specs.
func parseRatios(s string) ([]ratioSpec, error) {
	var specs []ratioSpec
	for _, one := range strings.Split(s, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		spec, err := parseRatio(one)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("benchjson: -ratio value %q holds no constraints", s)
	}
	return specs, nil
}

// metricValue extracts one spec's metric from a result; ok=false means
// the benchmark never reported that unit.
func metricValue(r Result, metric string) (float64, bool) {
	switch metric {
	case "", "ns/op":
		return r.NsPerOp, true
	case "B/op":
		return r.BytesPerOp, true
	case "allocs/op":
		return r.AllocsPerOp, true
	default:
		v, ok := r.Metrics[metric]
		return v, ok
	}
}

func checkRatio(results map[string]Result, spec ratioSpec) error {
	slow, ok := results[spec.slow]
	if !ok {
		return fmt.Errorf("benchjson: ratio benchmark %q missing", spec.slow)
	}
	fast, ok := results[spec.fast]
	if !ok {
		return fmt.Errorf("benchjson: ratio benchmark %q missing", spec.fast)
	}
	unit := spec.metric
	if unit == "" {
		unit = "ns/op"
	}
	sv, ok := metricValue(slow, spec.metric)
	if !ok {
		return fmt.Errorf("benchjson: %q reports no %s metric", spec.slow, unit)
	}
	fv, ok := metricValue(fast, spec.metric)
	if !ok || fv == 0 {
		return fmt.Errorf("benchjson: %q reports no usable %s metric", spec.fast, unit)
	}
	got := sv / fv
	if got < spec.min {
		return fmt.Errorf("benchjson: %s ratio %s/%s = %.2fx, below the required %.2fx",
			unit, spec.slow, spec.fast, got, spec.min)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s ratio %s/%s = %.1fx (>= %.1fx required)\n",
		unit, spec.slow, spec.fast, got, spec.min)
	return nil
}

// marshal renders the results with sorted names so the committed
// baseline diffs cleanly.
func marshal(results map[string]Result) ([]byte, error) {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		row, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", name, row)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

func main() {
	out := flag.String("o", "BENCH_netsim.json", "output path for the JSON baseline")
	require := flag.String("require", "", "comma-separated benchmark-name prefixes that must be present")
	ratio := flag.String("ratio", "", "comma-separated SLOW:FAST:MIN[:METRIC] constraints — fail unless every metric(SLOW)/metric(FAST) >= MIN (METRIC defaults to ns/op)")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *require != "" {
		if err := checkRequire(results, strings.Split(*require, ",")); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *ratio != "" {
		specs, err := parseRatios(*ratio)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, spec := range specs {
			if err := checkRatio(results, spec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	data, err := marshal(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
