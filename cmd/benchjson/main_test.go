package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkNeighbors/grid/devices=1000-8         	  500000	      2100 ns/op	     168 B/op	       5 allocs/op
BenchmarkNeighbors/brute/devices=1000-8        	   20000	     76111 ns/op	   16936 B/op	       8 allocs/op
BenchmarkScaleDiscovery/peers=1000-8           	     600	   1945809 ns/op	  568984 B/op	    6856 allocs/op
BenchmarkTable8_FacebookN810-8                 	       1	1031525175 ns/op	        94.21 modeled-s/op
PASS
ok  	repro	12.345s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(results), results)
	}
	grid, ok := results["BenchmarkNeighbors/grid/devices=1000"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", results)
	}
	if grid.NsPerOp != 2100 || grid.Iterations != 500000 || grid.AllocsPerOp != 5 || grid.BytesPerOp != 168 {
		t.Fatalf("wrong figures: %+v", grid)
	}
	// Custom b.ReportMetric units land in Metrics, ns/op still captured.
	fb := results["BenchmarkTable8_FacebookN810"]
	if fb.NsPerOp != 1031525175 {
		t.Fatalf("custom-metric row misparsed: %+v", fb)
	}
	if fb.Metrics["modeled-s/op"] != 94.21 {
		t.Fatalf("custom metric not captured: %+v", fb.Metrics)
	}
	// Rows without custom units keep a nil map so baselines that never
	// report one are byte-identical to the pre-Metrics format.
	if grid.Metrics != nil {
		t.Fatalf("stock row grew a metrics map: %+v", grid.Metrics)
	}
}

func TestParseBenchFoldsCustomMetricsByMedian(t *testing.T) {
	repeated := `BenchmarkRound/steady-8	10	5000 ns/op	700 wire-bytes/op
BenchmarkRound/steady-8	10	5100 ns/op	900 wire-bytes/op
BenchmarkRound/steady-8	10	5200 ns/op	800 wire-bytes/op
`
	results, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	got := results["BenchmarkRound/steady"]
	if got.Metrics["wire-bytes/op"] != 800 {
		t.Fatalf("median fold of custom metric: %+v", got.Metrics)
	}
}

func TestParseRatioWithMetric(t *testing.T) {
	spec, err := parseRatio("BenchmarkRound/cold:BenchmarkRound/steady:5.0:wire-bytes/op")
	if err != nil {
		t.Fatal(err)
	}
	if spec.metric != "wire-bytes/op" || spec.min != 5.0 {
		t.Fatalf("spec = %+v", spec)
	}
	if _, err := parseRatio("A:B:2.0:"); err == nil {
		t.Fatal("empty metric accepted")
	}
}

func TestCheckRatioOnCustomMetric(t *testing.T) {
	results := map[string]Result{
		"cold":   {NsPerOp: 100, Metrics: map[string]float64{"wire-bytes/op": 6000}},
		"steady": {NsPerOp: 90, Metrics: map[string]float64{"wire-bytes/op": 1000}},
	}
	ok := ratioSpec{slow: "cold", fast: "steady", min: 5, metric: "wire-bytes/op"}
	if err := checkRatio(results, ok); err != nil {
		t.Fatalf("6x wire-byte ratio rejected: %v", err)
	}
	tooHigh := ratioSpec{slow: "cold", fast: "steady", min: 7, metric: "wire-bytes/op"}
	if err := checkRatio(results, tooHigh); err == nil {
		t.Fatal("6x ratio passed a 7x floor")
	}
	// The same pair fails on ns/op (default metric): 100/90 < 5.
	nsFloor := ratioSpec{slow: "cold", fast: "steady", min: 5}
	if err := checkRatio(results, nsFloor); err == nil {
		t.Fatal("ns/op floor ignored when metric is defaulted")
	}
	missing := ratioSpec{slow: "cold", fast: "steady", min: 1, metric: "no-such/op"}
	if err := checkRatio(results, missing); err == nil {
		t.Fatal("missing metric accepted")
	}
}

func TestMarshalWithMetricsRoundTrips(t *testing.T) {
	data, err := marshal(map[string]Result{
		"BenchmarkRound/cold": {Iterations: 10, NsPerOp: 100,
			Metrics: map[string]float64{"wire-bytes/op": 6000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["BenchmarkRound/cold"].Metrics["wire-bytes/op"] != 6000 {
		t.Fatalf("metrics lost in marshal: %s", data)
	}
}

// A -count=N run repeats every name; the parser must fold the repeats
// by median so one warmup outlier can't skew a ratio check.
func TestParseBenchAggregatesRepeatsByMedian(t *testing.T) {
	repeated := `BenchmarkX-8	100	9000 ns/op	100 B/op	2 allocs/op
BenchmarkX-8	100	1000 ns/op	100 B/op	2 allocs/op
BenchmarkX-8	100	1100 ns/op	120 B/op	2 allocs/op
BenchmarkX-8	100	1050 ns/op	110 B/op	2 allocs/op
BenchmarkX-8	100	1075 ns/op	100 B/op	2 allocs/op
`
	results, err := parseBench(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	x := results["BenchmarkX"]
	if x.NsPerOp != 1075 {
		t.Fatalf("median ns/op = %v, want 1075 (the 9000 warmup outlier must not dominate)", x.NsPerOp)
	}
	if x.Iterations != 500 {
		t.Fatalf("iterations = %d, want the 500 total", x.Iterations)
	}
	if x.BytesPerOp != 100 || x.AllocsPerOp != 2 {
		t.Fatalf("allocation medians misfolded: %+v", x)
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Fatal("want error for input with no benchmark lines")
	}
}

func TestCheckRequire(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRequire(results, []string{"BenchmarkNeighbors/grid", "BenchmarkScaleDiscovery/peers=1000"}); err != nil {
		t.Fatalf("present prefixes rejected: %v", err)
	}
	if err := checkRequire(results, []string{"BenchmarkBroadcastFanout"}); err == nil {
		t.Fatal("missing benchmark not flagged")
	}
}

func TestCheckRatio(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := parseRatio("BenchmarkNeighbors/brute/devices=1000:BenchmarkNeighbors/grid/devices=1000:5")
	if err != nil {
		t.Fatal(err)
	}
	if err := checkRatio(results, spec); err != nil {
		t.Fatalf("36x speedup failed a 5x floor: %v", err)
	}
	spec.min = 100
	if err := checkRatio(results, spec); err == nil {
		t.Fatal("36x speedup passed a 100x floor")
	}
	spec.slow = "BenchmarkGone"
	if err := checkRatio(results, spec); err == nil {
		t.Fatal("missing ratio benchmark not flagged")
	}
}

func TestParseRatioRejectsMalformed(t *testing.T) {
	for _, bad := range []string{"a:b", "a:b:zero", "a:b:-1", "a:b:c:d"} {
		if _, err := parseRatio(bad); err == nil {
			t.Fatalf("parseRatio(%q) accepted", bad)
		}
	}
}

func TestParseRatiosCommaSeparated(t *testing.T) {
	specs, err := parseRatios("a:b:5, c:d:0.95 ,e:f:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3: %+v", len(specs), specs)
	}
	if specs[1].slow != "c" || specs[1].fast != "d" || specs[1].min != 0.95 {
		t.Fatalf("second spec misparsed: %+v", specs[1])
	}
	if _, err := parseRatios("a:b:5,bad"); err == nil {
		t.Fatal("malformed trailing spec accepted")
	}
	if _, err := parseRatios(" , "); err == nil {
		t.Fatal("empty spec list accepted")
	}
}

// A sub-1 minimum bounds instrumentation overhead: the "slow" name is
// the plain path and the constraint caps how much slower the
// instrumented one may be.
func TestCheckRatioOverheadBound(t *testing.T) {
	results := map[string]Result{
		"BenchPlain":     {Iterations: 100, NsPerOp: 1000},
		"BenchZeroFault": {Iterations: 100, NsPerOp: 1030},
	}
	spec := ratioSpec{slow: "BenchPlain", fast: "BenchZeroFault", min: 0.95}
	if err := checkRatio(results, spec); err != nil {
		t.Fatalf("3%% overhead failed a 0.95 floor: %v", err)
	}
	results["BenchZeroFault"] = Result{Iterations: 100, NsPerOp: 1200}
	if err := checkRatio(results, spec); err == nil {
		t.Fatal("20% overhead passed a 0.95 floor")
	}
}

func TestMarshalIsSortedValidJSON(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	data, err := marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]Result
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	if len(decoded) != len(results) {
		t.Fatalf("round trip lost rows: %d != %d", len(decoded), len(results))
	}
	brute := strings.Index(string(data), "brute")
	grid := strings.Index(string(data), "grid")
	if brute == -1 || grid == -1 || brute > grid {
		t.Fatalf("names not sorted:\n%s", data)
	}
}
