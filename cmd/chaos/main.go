// Command chaos runs a slice of the seeded fault-injection matrix and
// prints the per-scenario degradation/recovery table — the same
// scenarios the simtest chaos suite asserts on, rendered for humans.
// Every row is a pure function of its seed: re-running with the same
// -n and -seed reproduces the table byte for byte.
//
// Usage:
//
//	chaos [-n SCENARIOS] [-seed BASE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/community"
	"repro/internal/harness"
)

func main() {
	n := flag.Int("n", 12, "number of seeded scenarios to run")
	seed := flag.Int64("seed", 1, "base seed of the scenario matrix")
	flag.Parse()

	results, err := harness.RunChaos(harness.ChaosConfig{Scenarios: *n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Seeded chaos matrix: %d scenarios, base seed %d.\n", *n, *seed)
	fmt.Println("Faults lift mid-run; Reconverged reports the round in which")
	fmt.Println("every node's group view matched the fault-free oracle.")
	fmt.Println("NotMod/Cache hits/Invalidated sum the delta-synchronization")
	fmt.Println("cache counters across every client in the deployment.")
	fmt.Println()
	fmt.Print(harness.FormatChaos(results))

	var totals community.ClientStats
	for _, r := range results {
		totals.Add(r.Client)
	}
	fmt.Println()
	fmt.Printf("Delta-sync totals: %d NOT_MODIFIED rounds, %d cache hits, %d invalidations, %d singleflight joins.\n",
		totals.NotModified, totals.CacheHits, totals.CacheInvalidations, totals.SingleflightHits)
}
