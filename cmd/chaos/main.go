// Command chaos runs a slice of the seeded fault-injection matrix and
// prints the per-scenario degradation/recovery table — the same
// scenarios the simtest chaos suite asserts on, rendered for humans.
// Every row is a pure function of its seed: re-running with the same
// -n and -seed reproduces the table byte for byte.
//
// Usage:
//
//	chaos [-n SCENARIOS] [-seed BASE] [-endpoint]
//
// With -endpoint it runs the endpoint-fault matrix instead: stalled
// and crashing peers (gray failures) with admission control, circuit
// breakers, and hedged fan-outs enabled, so the Shed/Breaker/Hedges
// columns show the degradation machinery at work.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/community"
	"repro/internal/harness"
)

func main() {
	n := flag.Int("n", 12, "number of seeded scenarios to run")
	seed := flag.Int64("seed", 1, "base seed of the scenario matrix")
	endpoint := flag.Bool("endpoint", false, "run the endpoint-fault (stall/crash/resilience) matrix instead of the link-fault matrix")
	flag.Parse()

	results, err := harness.RunChaos(harness.ChaosConfig{Scenarios: *n, Seed: *seed, Endpoint: *endpoint})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(1)
	}
	matrix := "link-fault"
	if *endpoint {
		matrix = "endpoint-fault"
	}
	fmt.Printf("Seeded %s chaos matrix: %d scenarios, base seed %d.\n", matrix, *n, *seed)
	fmt.Println("Faults lift mid-run; Reconverged reports the round in which")
	fmt.Println("every node's group view matched the fault-free oracle.")
	fmt.Println("Shed/Breaker/Hedges sum the admission, circuit-breaker, and")
	fmt.Println("hedged-request counters across every node in the deployment.")
	fmt.Println()
	fmt.Print(harness.FormatChaos(results))

	var totals community.ClientStats
	for _, r := range results {
		totals.Add(r.Client)
	}
	fmt.Println()
	fmt.Printf("Delta-sync totals: %d NOT_MODIFIED rounds, %d cache hits, %d invalidations, %d singleflight joins.\n",
		totals.NotModified, totals.CacheHits, totals.CacheInvalidations, totals.SingleflightHits)
}
