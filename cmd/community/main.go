// Command community is the interactive PeerHood Community terminal
// application — the reproduction of the thesis's main user screen
// (Figure 10). It boots a simulated neighborhood of peers around you,
// logs you in, and exposes the features of Table 7 as menu choices.
//
// Usage:
//
//	community [-peers N] [-seed S]
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func main() {
	peers := flag.Int("peers", 3, "number of simulated peers around you")
	seed := flag.Int64("seed", 7, "world seed")
	storePath := flag.String("store", "", "profile store file: loaded on start if present, saved on quit")
	flag.Parse()
	if err := run(*peers, *seed, *storePath, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "community:", err)
		os.Exit(1)
	}
}

type app struct {
	out    io.Writer
	in     *bufio.Scanner
	ctx    context.Context
	client *community.Client
	server *community.Server
	store  *profile.Store
	me     ids.MemberID
	sem    *interest.Semantics
}

func run(peers int, seed int64, storePath string, in io.Reader, out io.Writer) error {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-3)))
	net := netsim.New(env, seed)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()

	peerSpecs := []struct {
		member    ids.MemberID
		interests []string
	}{
		{"bob", []string{"football", "movies"}},
		{"carol", []string{"music", "football"}},
		{"dave", []string{"chess", "cooking"}},
		{"erin", []string{"photography", "music"}},
		{"frank", []string{"football", "chess"}},
	}
	if peers > len(peerSpecs) {
		peers = len(peerSpecs)
	}

	mkNode := func(member ids.MemberID, at geo.Point, interests []string) (*peerhood.Daemon, *community.Server, *profile.Store, error) {
		dev := ids.DeviceID("dev-" + string(member))
		if err := env.Add(dev, mobility.Static{At: at}, radio.Bluetooth); err != nil {
			return nil, nil, nil, err
		}
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			return nil, nil, nil, err
		}
		store := profile.NewStore(nil)
		if err := store.CreateAccount(member, "pw"); err != nil {
			return nil, nil, nil, err
		}
		if err := store.Login(member, "pw"); err != nil {
			return nil, nil, nil, err
		}
		for _, term := range interests {
			if err := store.AddInterest(member, term); err != nil {
				return nil, nil, nil, err
			}
		}
		server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
		if err != nil {
			return nil, nil, nil, err
		}
		if err := server.Start(); err != nil {
			return nil, nil, nil, err
		}
		return daemon, server, store, nil
	}

	for i := 0; i < peers; i++ {
		spec := peerSpecs[i]
		daemon, server, store, err := mkNode(spec.member, geo.Pt(float64(2+i), float64(i%3)), spec.interests)
		if err != nil {
			return err
		}
		defer daemon.Stop()
		defer server.Stop()
		// Every peer trusts you and shares something, so the trusted
		// features have something to show.
		if err := store.AddTrusted(spec.member, "you"); err != nil {
			return err
		}
		if err := server.ShareContent(spec.member, string(spec.member)+"-mixtape.mp3", []byte("music bytes from "+spec.member)); err != nil {
			return err
		}
	}

	daemon, server, store, err := mkNode("you", geo.Pt(0, 0), []string{"football", "music"})
	if err != nil {
		return err
	}
	defer daemon.Stop()
	defer server.Stop()

	// Persistence: a previously saved store replaces the fresh one, so
	// your profile, inbox and trusted friends survive across sessions.
	if storePath != "" {
		if _, statErr := os.Stat(storePath); statErr == nil {
			if err := store.LoadFile(storePath); err != nil {
				return err
			}
			if err := store.Login("you", "pw"); err != nil {
				return fmt.Errorf("stored profile does not contain user 'you': %w", err)
			}
			fmt.Fprintf(out, "(profile store loaded from %s)\n", storePath)
		}
		defer func() {
			if err := store.SaveFile(storePath); err != nil {
				fmt.Fprintln(os.Stderr, "saving store:", err)
			} else {
				fmt.Fprintf(out, "(profile store saved to %s)\n", storePath)
			}
		}()
	}

	sem := interest.NewSemantics()
	// Taught synonyms persist alongside the profile store.
	if storePath != "" {
		semPath := storePath + ".sem"
		if _, statErr := os.Stat(semPath); statErr == nil {
			if err := sem.LoadFile(semPath); err != nil {
				return err
			}
		}
		defer func() {
			if err := sem.SaveFile(semPath); err != nil {
				fmt.Fprintln(os.Stderr, "saving semantics:", err)
			}
		}()
	}
	client, err := community.NewClient(peerhood.NewLibrary(daemon), store, sem)
	if err != nil {
		return err
	}
	defer client.Close()

	fmt.Fprintln(out, "PeerHood Community — social networking on mobile environment")
	fmt.Fprintln(out, "Scanning the neighborhood (Bluetooth inquiry)...")
	if err := daemon.RefreshNow(ctx); err != nil {
		return err
	}
	if _, err := client.RefreshGroups(ctx); err != nil {
		return err
	}
	fmt.Fprintf(out, "Logged in as 'you'. %d PeerHood devices nearby.\n\n", len(peerhood.NewLibrary(daemon).GetDeviceList()))

	a := &app{
		out: out, in: bufio.NewScanner(in), ctx: ctx,
		client: client, server: server, store: store, me: "you", sem: sem,
	}
	return a.menuLoop(daemon)
}

// menuLoop renders Figure 10's main user screen until quit/EOF.
func (a *app) menuLoop(daemon *peerhood.Daemon) error {
	for {
		fmt.Fprint(a.out, `
*********** PeerHood Community ***********
 1. View Online Members
 2. View Interests List
 3. View My Groups
 4. View Member Profile
 5. Comment Member Profile
 6. Send Message
 7. Read My Inbox
 8. View Members Trusted Friends
 9. View Members Shared Content
10. Fetch Shared Content
11. Add Personal Interest
12. Teach Interest Synonym
13. Join Group Manually
14. Leave Group Manually
15. Rescan Neighborhood
 0. Log out and quit
Choice: `)
		choice, ok := a.readLine()
		if !ok {
			return nil
		}
		var err error
		switch strings.TrimSpace(choice) {
		case "1":
			err = a.viewMembers()
		case "2":
			err = a.viewInterests()
		case "3":
			err = a.viewGroups()
		case "4":
			err = a.viewProfile()
		case "5":
			err = a.commentProfile()
		case "6":
			err = a.sendMessage()
		case "7":
			err = a.readInbox()
		case "8":
			err = a.viewTrusted()
		case "9":
			err = a.viewShared()
		case "10":
			err = a.fetchShared()
		case "11":
			err = a.addInterest()
		case "12":
			err = a.teachSynonym()
		case "13":
			err = a.joinGroup()
		case "14":
			err = a.leaveGroup()
		case "15":
			fmt.Fprintln(a.out, "scanning...")
			if err = daemon.RefreshNow(a.ctx); err == nil {
				_, err = a.client.RefreshGroups(a.ctx)
			}
		case "0", "q", "quit", "exit":
			a.store.Logout()
			fmt.Fprintln(a.out, "Logged out. Goodbye!")
			return nil
		default:
			fmt.Fprintln(a.out, "unknown choice")
		}
		if err != nil {
			fmt.Fprintln(a.out, "error:", err)
		}
	}
}

func (a *app) readLine() (string, bool) {
	if !a.in.Scan() {
		return "", false
	}
	return a.in.Text(), true
}

func (a *app) prompt(label string) (string, bool) {
	fmt.Fprint(a.out, label)
	return a.readLine()
}

func (a *app) viewMembers() error {
	members, err := a.client.OnlineMembers(a.ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "%d online members:\n", len(members))
	for _, m := range members {
		fmt.Fprintf(a.out, "  %-10s on %s\n", m.Member, m.Device)
	}
	return nil
}

func (a *app) viewInterests() error {
	interests, err := a.client.InterestsList(a.ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "interests in the neighborhood: %s\n", strings.Join(interests, ", "))
	return nil
}

func (a *app) viewGroups() error {
	if _, err := a.client.RefreshGroups(a.ctx); err != nil {
		return err
	}
	groups := a.client.Groups()
	if len(groups) == 0 {
		fmt.Fprintln(a.out, "no dynamic groups right now")
		return nil
	}
	for _, g := range groups {
		fmt.Fprintf(a.out, "  %-14s %v\n", g.Interest, g.MemberIDs())
	}
	return nil
}

func (a *app) viewProfile() error {
	who, ok := a.prompt("member id: ")
	if !ok {
		return nil
	}
	p, err := a.client.ViewProfile(a.ctx, ids.MemberID(strings.TrimSpace(who)))
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "profile of %s:\n  name: %s\n  location: %s\n  about: %s\n  interests: %s\n",
		p.Member, p.FullName, p.Location, p.About, strings.Join(p.Interests, ", "))
	fmt.Fprintf(a.out, "  trusted friends: %v\n  comments:\n", p.Trusted)
	for _, cm := range p.Comments {
		fmt.Fprintf(a.out, "    %s: %s\n", cm.From, cm.Text)
	}
	return nil
}

func (a *app) commentProfile() error {
	who, ok := a.prompt("member id: ")
	if !ok {
		return nil
	}
	text, ok := a.prompt("comment: ")
	if !ok {
		return nil
	}
	if err := a.client.CommentProfile(a.ctx, ids.MemberID(strings.TrimSpace(who)), text); err != nil {
		return err
	}
	fmt.Fprintln(a.out, "comment written")
	return nil
}

func (a *app) sendMessage() error {
	who, ok := a.prompt("to: ")
	if !ok {
		return nil
	}
	subject, ok := a.prompt("subject: ")
	if !ok {
		return nil
	}
	body, ok := a.prompt("message: ")
	if !ok {
		return nil
	}
	if err := a.client.SendMessage(a.ctx, ids.MemberID(strings.TrimSpace(who)), subject, body); err != nil {
		return err
	}
	fmt.Fprintln(a.out, "message sent")
	return nil
}

func (a *app) readInbox() error {
	p, err := a.store.Get(a.me)
	if err != nil {
		return err
	}
	if len(p.Inbox) == 0 {
		fmt.Fprintln(a.out, "inbox empty")
		return nil
	}
	for i, m := range p.Inbox {
		status := " "
		if !m.Read {
			status = "*"
		}
		fmt.Fprintf(a.out, "%s [%d] from %s: %s — %s\n", status, i, m.From, m.Subject, m.Body)
		_ = a.store.MarkRead(a.me, i)
	}
	return nil
}

func (a *app) viewTrusted() error {
	who, ok := a.prompt("member id: ")
	if !ok {
		return nil
	}
	trusted, err := a.client.TrustedFriendsOf(a.ctx, ids.MemberID(strings.TrimSpace(who)))
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "trusted friends: %v\n", trusted)
	return nil
}

func (a *app) viewShared() error {
	who, ok := a.prompt("member id: ")
	if !ok {
		return nil
	}
	items, err := a.client.SharedContentOf(a.ctx, ids.MemberID(strings.TrimSpace(who)))
	if errors.Is(err, community.ErrNotTrusted) {
		fmt.Fprintln(a.out, "NOT_TRUSTED_YET — that member has not accepted you as a trusted friend")
		return nil
	}
	if err != nil {
		return err
	}
	for _, item := range items {
		fmt.Fprintf(a.out, "  %-30s %6d bytes\n", item.Name, item.Size)
	}
	return nil
}

func (a *app) fetchShared() error {
	who, ok := a.prompt("member id: ")
	if !ok {
		return nil
	}
	name, ok := a.prompt("content name: ")
	if !ok {
		return nil
	}
	data, err := a.client.FetchShared(a.ctx, ids.MemberID(strings.TrimSpace(who)), strings.TrimSpace(name))
	if err != nil {
		return err
	}
	fmt.Fprintf(a.out, "fetched %d bytes: %q\n", len(data), truncate(string(data), 60))
	return nil
}

func (a *app) addInterest() error {
	term, ok := a.prompt("new interest: ")
	if !ok {
		return nil
	}
	if err := a.store.AddInterest(a.me, term); err != nil {
		return err
	}
	_, err := a.client.RefreshGroups(a.ctx)
	return err
}

func (a *app) teachSynonym() error {
	first, ok := a.prompt("term: ")
	if !ok {
		return nil
	}
	second, ok := a.prompt("means the same as: ")
	if !ok {
		return nil
	}
	a.sem.Teach(first, second)
	fmt.Fprintf(a.out, "taught: %q == %q\n", strings.TrimSpace(first), strings.TrimSpace(second))
	_, err := a.client.RefreshGroups(a.ctx)
	return err
}

func (a *app) joinGroup() error {
	term, ok := a.prompt("group interest: ")
	if !ok {
		return nil
	}
	mgr, err := a.client.Manager()
	if err != nil {
		return err
	}
	mgr.JoinManually(term)
	_, err = a.client.RefreshGroups(a.ctx)
	return err
}

func (a *app) leaveGroup() error {
	term, ok := a.prompt("group interest: ")
	if !ok {
		return nil
	}
	mgr, err := a.client.Manager()
	if err != nil {
		return err
	}
	mgr.LeaveManually(term)
	_, err = a.client.RefreshGroups(a.ctx)
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
