package main

import (
	"bytes"
	"strings"
	"testing"
)

// drive runs the CLI against scripted stdin and returns stdout.
func drive(t *testing.T, input string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(2, 7, "", strings.NewReader(input), &out); err != nil {
		t.Fatalf("run: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

func TestCLIBootAndQuit(t *testing.T) {
	out := drive(t, "0\n")
	for _, want := range []string{
		"PeerHood Community",
		"2 PeerHood devices nearby",
		"Logged out. Goodbye!",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLIViewMembersAndGroups(t *testing.T) {
	out := drive(t, "1\n3\n0\n")
	if !strings.Contains(out, "bob") || !strings.Contains(out, "carol") {
		t.Errorf("member list missing peers:\n%s", out)
	}
	if !strings.Contains(out, "football") {
		t.Errorf("groups missing football:\n%s", out)
	}
}

func TestCLIProfileAndComment(t *testing.T) {
	out := drive(t, "4\nbob\n5\nbob\nnice to meet you\n0\n")
	if !strings.Contains(out, "profile of bob") {
		t.Errorf("profile view missing:\n%s", out)
	}
	if !strings.Contains(out, "comment written") {
		t.Errorf("comment ack missing:\n%s", out)
	}
}

func TestCLIMessaging(t *testing.T) {
	out := drive(t, "6\nbob\nhello\nsee you\n7\n0\n")
	if !strings.Contains(out, "message sent") {
		t.Errorf("send ack missing:\n%s", out)
	}
	// Own inbox is empty (bob can't reply in this script).
	if !strings.Contains(out, "inbox empty") {
		t.Errorf("inbox view missing:\n%s", out)
	}
}

func TestCLITrustedAndShared(t *testing.T) {
	out := drive(t, "8\nbob\n9\nbob\n10\nbob\nbob-mixtape.mp3\n0\n")
	if !strings.Contains(out, "trusted friends: [you]") {
		t.Errorf("trusted list missing:\n%s", out)
	}
	if !strings.Contains(out, "bob-mixtape.mp3") {
		t.Errorf("shared content missing:\n%s", out)
	}
	if !strings.Contains(out, "fetched") {
		t.Errorf("fetch ack missing:\n%s", out)
	}
}

func TestCLISemanticsTeaching(t *testing.T) {
	// Add "cykling" as an interest, teach it equals carol's "music"...
	// use a realistic pair instead: add "soccer", teach soccer=football,
	// then the groups view shows the merged group containing bob and
	// carol (both have football).
	out := drive(t, "11\nsoccer\n12\nsoccer\nfootball\n3\n0\n")
	if !strings.Contains(out, `taught: "soccer" == "football"`) {
		t.Errorf("teach ack missing:\n%s", out)
	}
}

func TestCLIUnknownChoiceAndErrors(t *testing.T) {
	out := drive(t, "banana\n4\nnobody\n0\n")
	if !strings.Contains(out, "unknown choice") {
		t.Errorf("unknown choice handling missing:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Errorf("error for unknown member missing:\n%s", out)
	}
}

func TestCLIStorePersistence(t *testing.T) {
	path := t.TempDir() + "/store.json"
	var out bytes.Buffer
	if err := run(1, 7, path, strings.NewReader("11\nskiing\n0\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile store saved") {
		t.Fatalf("save ack missing:\n%s", out.String())
	}
	out.Reset()
	if err := run(1, 7, path, strings.NewReader("2\n0\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "profile store loaded") {
		t.Fatalf("load ack missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "skiing") {
		t.Fatalf("persisted interest missing:\n%s", out.String())
	}
}

func TestCLIEOFExitsCleanly(t *testing.T) {
	_ = drive(t, "") // immediate EOF must not error
}

func TestCLISemanticsPersistence(t *testing.T) {
	path := t.TempDir() + "/store.json"
	var out bytes.Buffer
	// Teach soccer == football and quit.
	if err := run(1, 7, path, strings.NewReader("12\nsoccer\nfootball\n0\n"), &out); err != nil {
		t.Fatal(err)
	}
	// New session: querying the interests list canonicalizes through
	// the reloaded semantics, so "soccer" and "football" are one entry.
	out.Reset()
	if err := run(1, 7, path, strings.NewReader("11\nsoccer\n2\n0\n"), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "soccer") && strings.Contains(text, "football") {
		// Both appearing in the interests list means the classes did
		// not merge.
		if strings.Contains(text, "football, ") && strings.Contains(text, "soccer") &&
			strings.Contains(text, "interests in the neighborhood") {
			listLine := ""
			for _, line := range strings.Split(text, "\n") {
				if strings.Contains(line, "interests in the neighborhood") {
					listLine = line
				}
			}
			if strings.Contains(listLine, "soccer") && strings.Contains(listLine, "football") {
				t.Fatalf("semantics not persisted; list shows both terms: %q", listLine)
			}
		}
	}
}
