// Command groupscale runs the scaling experiment the thesis's
// conclusion proposes as future work: "performance testing during the
// dynamic group discovery in the social network on mobile environment
// can be done in order to analyze the efficiency of such dynamic group
// discovery". It measures the full cold-start search time (Bluetooth
// inquiry + SDP + interest gathering + group formation) as the
// neighborhood grows, and prints the series.
//
// Usage:
//
//	groupscale [-peers 1,2,4,8,16] [-scale FACTOR]
//	groupscale -substrate [-peers 100,500,1000,2000]
//	groupscale -overload [-des] [-peers 100,400,1000]
//	groupscale -delta [-des] [-peers 100,500,1000,2000]
//	groupscale -des [-peers 1000,10000,50000,100000] [-workers N]
//	groupscale -gossip [-peers 1000,10000,50000]
//	groupscale -dtn [-peers 100,200,400]
//
// Every mode accepts -cpuprofile/-memprofile to write pprof profiles
// of the run, for hunting the next engine bottleneck without ad-hoc
// patches.
//
// With -substrate it instead measures the radio substrate itself —
// per-query neighbor-discovery cost, grid index vs brute force — at
// thousand-device scale, where the full-stack experiment would be
// dominated by protocol time.
//
// With -des it runs the engine-scaling sweep on the discrete-event
// transport engine — virtual time advanced by popping the event queue —
// at sizes the goroutine engine's timer waits cannot reach, printing a
// goroutine-engine reference row for each size small enough to run.
//
// With -gossip it compares dissemination strategies for neighborhood
// group state over a field of proximity clusters: the fan-out baseline
// (re-poll every neighbor's full record each round) against the
// epidemic engine (rumor mongering + bloom digests + anti-entropy),
// reporting rounds-to-converge and steady wire bytes per round.
// Fan-out reference rows run for sizes up to 2000 devices; the
// epidemic runs on the discrete-event engine beyond that.
//
// With -dtn it runs the store-carry-forward delivery experiment over
// sparse mobility worlds (bus routes and campus grids) where couriers
// are the only path between communities: epidemic spray-and-wait
// against the social group-encounter strategy, reporting delivery
// ratio, mean latency in contact rounds, and copies per delivered
// message.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/vtime"
)

func main() {
	peersFlag := flag.String("peers", "1,2,4,8,16", "comma-separated peer counts")
	scale := flag.Float64("scale", 1e-2, "latency scale: real seconds per modeled second")
	churn := flag.Bool("churn", false, "also measure group churn vs. walking speed")
	substrate := flag.Bool("substrate", false, "measure substrate neighbor queries (grid vs brute) instead of the full stack")
	delta := flag.Bool("delta", false, "measure delta-synchronized group rounds (cold vs steady cache) instead of the full stack")
	overload := flag.Bool("overload", false, "measure graceful degradation under offered load (admission control, shedding, bounded steady rounds)")
	desFlag := flag.Bool("des", false, "run the discovery sweep on the discrete-event engine (with goroutine-engine reference rows at small sizes)")
	gossipFlag := flag.Bool("gossip", false, "compare epidemic dissemination (rumor mongering + anti-entropy) against the fan-out baseline")
	dtnFlag := flag.Bool("dtn", false, "run the store-carry-forward delivery experiment (epidemic spray vs social relay) over sparse mobility worlds")
	workers := flag.Int("workers", 0, "event-scheduler executor count for -des modes (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "groupscale: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "groupscale: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "groupscale: memprofile:", err)
			}
			_ = f.Close()
		}()
	}

	peersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "peers" {
			peersSet = true
		}
	})
	if (*substrate || *delta) && !peersSet {
		// The substrate and delta experiments are about large worlds.
		*peersFlag = "100,500,1000,2000"
	}
	if *overload && !peersSet {
		*peersFlag = "100,400,1000"
	}
	if *desFlag && !peersSet {
		*peersFlag = "1000,10000,50000,100000"
	}
	if *gossipFlag && !peersSet {
		*peersFlag = "1000,10000,50000"
	}
	if *dtnFlag && !peersSet {
		*peersFlag = "100,200,400"
	}

	var counts []int
	for _, f := range strings.Split(*peersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "groupscale: bad peer count %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	if *desFlag && !*dtnFlag && !*overload && !*delta && !*gossipFlag {
		fmt.Println("Engine-scaling discovery sweep: every device runs an inquiry")
		fmt.Println("window, queries its neighborhood and exchanges interest")
		fmt.Println("advertisements with a capped fan-out. The discrete-event engine")
		fmt.Println("collapses shared deadlines into event windows, so wall-clock")
		fmt.Println("scales with executed events; goroutine-engine reference rows run")
		fmt.Println("for sizes up to 2000 devices.")
		fmt.Println()
		const oracleCap = 2000
		var points []harness.EngineScalePoint
		for _, n := range counts {
			if n > oracleCap {
				continue
			}
			ps, err := harness.RunEngineScale(harness.EngineScaleConfig{Seed: 7}, []int{n})
			if err != nil {
				fmt.Fprintln(os.Stderr, "groupscale:", err)
				os.Exit(1)
			}
			points = append(points, ps...)
		}
		ps, err := harness.RunEngineScale(harness.EngineScaleConfig{Seed: 7, DES: true, Workers: *workers}, counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale:", err)
			os.Exit(1)
		}
		points = append(points, ps...)
		fmt.Print(harness.FormatEngineScale(points))
		return
	}

	if *gossipFlag {
		fmt.Println("Epidemic dissemination vs fan-out: every device in a field of")
		fmt.Println("Bluetooth-scale proximity clusters must hold each radio")
		fmt.Println("neighbor's current interest record. Fan-out re-pulls every")
		fmt.Println("neighbor's full record each round; the gossip engine pushes")
		fmt.Println("rumors that die under redundancy feedback, skips pushes covered")
		fmt.Println("by bloom have-digests, and reconciles by periodic anti-entropy —")
		fmt.Println("so its steady wire bytes per round collapse after convergence.")
		fmt.Println("Fan-out reference rows run up to 2000 devices; larger epidemic")
		fmt.Println("rows run on the discrete-event engine.")
		fmt.Println()
		const fanoutCap = 2000
		var points []harness.GossipScalePoint
		for _, n := range counts {
			if n <= fanoutCap {
				p, err := harness.RunGossipScaleMode(harness.GossipScaleConfig{Seed: 7}, n, "fanout")
				if err != nil {
					fmt.Fprintln(os.Stderr, "groupscale:", err)
					os.Exit(1)
				}
				points = append(points, p)
				p, err = harness.RunGossipScaleMode(harness.GossipScaleConfig{Seed: 7}, n, "gossip")
				if err != nil {
					fmt.Fprintln(os.Stderr, "groupscale:", err)
					os.Exit(1)
				}
				points = append(points, p)
				continue
			}
			p, err := harness.RunGossipScaleMode(harness.GossipScaleConfig{Seed: 7, DES: true, Workers: *workers}, n, "gossip")
			if err != nil {
				fmt.Fprintln(os.Stderr, "groupscale:", err)
				os.Exit(1)
			}
			points = append(points, p)
		}
		fmt.Print(harness.FormatGossipScale(points))
		return
	}

	if *dtnFlag {
		fmt.Println("Store-carry-forward delivery over sparse mobility: communities")
		fmt.Println("sit far outside each other's radio range and couriers (buses on")
		fmt.Println("a line, students on a campus grid) are the only inter-community")
		fmt.Println("path. Epidemic spray hands out bounded copy budgets to whoever")
		fmt.Println("it meets; the social strategy relays only through couriers that")
		fmt.Println("have shared a group with the destination — fewer copies for the")
		fmt.Println("same deliveries.")
		fmt.Println()
		points, err := harness.RunDTNScale(harness.DTNScaleConfig{Seed: 7, DES: *desFlag, Workers: *workers}, counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale:", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatDTNScale(points))
		return
	}

	if *overload {
		fmt.Println("Graceful degradation under overload: every server runs with a")
		fmt.Println("small explicit admission capacity (8 sessions, queue depth 16);")
		fmt.Println("a load generator offers 1×–10× that capacity in raw sessions")
		fmt.Println("against one hot server while an observer keeps refreshing its")
		fmt.Println("groups. Fresh arrivals beyond capacity queue up to the bound and")
		fmt.Println("are then shed with BUSY; the observer's established sessions keep")
		fmt.Println("service, so its steady round stays bounded at every offered load.")
		fmt.Println()
		if *desFlag {
			fmt.Println("(-des: offered sessions run as event-native cascades on the")
			fmt.Println("discrete-event engine; the observer stays the blocking client.)")
			fmt.Println()
		}
		points, err := harness.RunOverload(harness.OverloadConfig{Devices: counts, DES: *desFlag, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale:", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatOverload(points))
		return
	}

	if *delta {
		fmt.Println("Delta-synchronized group rounds: one client refreshing its")
		fmt.Println("groups against n neighbors, cold (empty cache, full interest")
		fmt.Println("lists on the wire) vs steady state (epoch-primed cache,")
		fmt.Println("NOT_MODIFIED answers, group rebuild skipped).")
		fmt.Println()
		if *desFlag {
			fmt.Println("(-des: the transport rides the discrete-event engine; the")
			fmt.Println("measured client stays the blocking differential oracle.)")
			fmt.Println()
		}
		points, err := harness.RunDeltaScaleConfig(harness.DeltaScaleConfig{
			Scale: vtime.NewScale(1e-4), DES: *desFlag, Workers: *workers,
		}, counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale:", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatDeltaScale(points))
		return
	}

	if *substrate {
		fmt.Println("Substrate neighbor-query scaling: per-query cost of one")
		fmt.Println("neighborhood discovery (Bluetooth, constant density), spatial")
		fmt.Println("grid index vs the brute-force per-pair oracle.")
		fmt.Println()
		points, err := harness.RunNeighborScale(counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groupscale:", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatNeighborScale(points))
		return
	}

	fmt.Println("Dynamic group discovery scaling (the thesis's proposed future work):")
	fmt.Println("cold-start search time as the neighborhood grows. The 10.24 s")
	fmt.Println("Bluetooth inquiry dominates; the per-peer gathering cost is small.")
	fmt.Println()
	points, err := harness.RunDiscoveryScale(vtime.NewScale(*scale), counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupscale:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatDiscoveryScale(points))

	if !*churn {
		return
	}
	fmt.Println()
	fmt.Println("Group churn vs. walking speed (membership events per modeled")
	fmt.Println("minute around a stationary observer — the 'instantaneous social")
	fmt.Println("network' property):")
	fmt.Println()
	churnPoints, err := harness.RunChurn(harness.ChurnConfig{Scale: vtime.NewScale(*scale)}, []float64{0, 0.5, 1.5, 3})
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupscale:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatChurn(churnPoints))
}
