// Command groupscale runs the scaling experiment the thesis's
// conclusion proposes as future work: "performance testing during the
// dynamic group discovery in the social network on mobile environment
// can be done in order to analyze the efficiency of such dynamic group
// discovery". It measures the full cold-start search time (Bluetooth
// inquiry + SDP + interest gathering + group formation) as the
// neighborhood grows, and prints the series.
//
// Usage:
//
//	groupscale [-peers 1,2,4,8,16] [-scale FACTOR]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/vtime"
)

func main() {
	peersFlag := flag.String("peers", "1,2,4,8,16", "comma-separated peer counts")
	scale := flag.Float64("scale", 1e-2, "latency scale: real seconds per modeled second")
	churn := flag.Bool("churn", false, "also measure group churn vs. walking speed")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*peersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "groupscale: bad peer count %q\n", f)
			os.Exit(2)
		}
		counts = append(counts, n)
	}

	fmt.Println("Dynamic group discovery scaling (the thesis's proposed future work):")
	fmt.Println("cold-start search time as the neighborhood grows. The 10.24 s")
	fmt.Println("Bluetooth inquiry dominates; the per-peer gathering cost is small.")
	fmt.Println()
	points, err := harness.RunDiscoveryScale(vtime.NewScale(*scale), counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupscale:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatDiscoveryScale(points))

	if !*churn {
		return
	}
	fmt.Println()
	fmt.Println("Group churn vs. walking speed (membership events per modeled")
	fmt.Println("minute around a stationary observer — the 'instantaneous social")
	fmt.Println("network' property):")
	fmt.Println()
	churnPoints, err := harness.RunChurn(harness.ChurnConfig{Scale: vtime.NewScale(*scale)}, []float64{0, 0.5, 1.5, 3})
	if err != nil {
		fmt.Fprintln(os.Stderr, "groupscale:", err)
		os.Exit(1)
	}
	fmt.Print(harness.FormatChurn(churnPoints))
}
