// Command mscgen regenerates the message sequence charts of the
// thesis's Figures 11–17 from live traffic: it stands up a three-device
// PeerHood Community neighborhood, performs each documented operation
// with an MSC recorder attached, and prints the resulting charts.
//
// Usage:
//
//	mscgen [-figure N] [-format ascii|mermaid]   # N in 11..17; default: all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/msc"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

type node struct {
	client *community.Client
	server *community.Server
	store  *profile.Store
	daemon *peerhood.Daemon
}

func main() {
	figure := flag.Int("figure", 0, "render only this figure (11..17); 0 = all")
	format := flag.String("format", "ascii", "output format: ascii or mermaid")
	flag.Parse()
	if *format != "ascii" && *format != "mermaid" {
		fmt.Fprintln(os.Stderr, "mscgen: -format must be ascii or mermaid")
		os.Exit(2)
	}
	if err := run(*figure, *format); err != nil {
		fmt.Fprintln(os.Stderr, "mscgen:", err)
		os.Exit(1)
	}
}

func run(figure int, format string) error {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-3)))
	net := netsim.New(env, 1)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	mk := func(member ids.MemberID, at geo.Point, interests ...string) (*node, error) {
		dev := ids.DeviceID("dev-" + string(member))
		if err := env.Add(dev, mobility.Static{At: at}, radio.Bluetooth); err != nil {
			return nil, err
		}
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			return nil, err
		}
		lib := peerhood.NewLibrary(daemon)
		store := profile.NewStore(nil)
		if err := store.CreateAccount(member, "pw"); err != nil {
			return nil, err
		}
		if err := store.Login(member, "pw"); err != nil {
			return nil, err
		}
		for _, term := range interests {
			if err := store.AddInterest(member, term); err != nil {
				return nil, err
			}
		}
		server, err := community.NewServer(lib, store)
		if err != nil {
			return nil, err
		}
		if err := server.Start(); err != nil {
			return nil, err
		}
		client, err := community.NewClient(lib, store, nil)
		if err != nil {
			return nil, err
		}
		return &node{client: client, server: server, store: store, daemon: daemon}, nil
	}

	alice, err := mk("alice", geo.Pt(0, 0), "football")
	if err != nil {
		return err
	}
	bob, err := mk("bob", geo.Pt(4, 0), "football", "movies")
	if err != nil {
		return err
	}
	if _, err := mk("carol", geo.Pt(0, 4), "music"); err != nil {
		return err
	}
	if err := alice.daemon.RefreshNow(ctx); err != nil {
		return err
	}
	// Bob trusts alice and shares a file, so Figures 15/16 have content.
	if err := bob.store.AddTrusted("bob", "alice"); err != nil {
		return err
	}
	if err := bob.server.ShareContent("bob", "england-football.mp4", []byte("highlights")); err != nil {
		return err
	}

	type chart struct {
		num   int
		title string
		op    func() error
	}
	charts := []chart{
		{11, "Get Member List", func() error {
			_, err := alice.client.OnlineMembers(ctx)
			return err
		}},
		{12, "Get Interests List", func() error {
			_, err := alice.client.InterestsList(ctx)
			return err
		}},
		{13, "View Member Profile", func() error {
			_, err := alice.client.ViewProfile(ctx, "bob")
			return err
		}},
		{14, "Put Profile Comment", func() error {
			return alice.client.CommentProfile(ctx, "bob", "nice profile!")
		}},
		{15, "View Members Trusted Friends", func() error {
			_, err := alice.client.TrustedFriendsOf(ctx, "bob")
			return err
		}},
		{16, "View Members Shared Content", func() error {
			_, err := alice.client.SharedContentOf(ctx, "bob")
			return err
		}},
		{17, "Send Message", func() error {
			return alice.client.SendMessage(ctx, "bob", "hello", "see you at the match")
		}},
	}

	for _, c := range charts {
		if figure != 0 && figure != c.num {
			continue
		}
		rec := msc.NewRecorder(fmt.Sprintf("Figure %d: %s", c.num, c.title))
		alice.client.SetRecorder(rec)
		if err := c.op(); err != nil {
			return fmt.Errorf("figure %d: %w", c.num, err)
		}
		alice.client.SetRecorder(nil)
		if format == "mermaid" {
			if err := rec.RenderMermaid(os.Stdout); err != nil {
				return err
			}
		} else if err := rec.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
