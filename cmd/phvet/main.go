// Command phvet is the project's static-analysis driver. It enforces
// the invariants the simulation's reproducibility rests on:
//
//	walltime   simulation time flows through internal/vtime only
//	detrand    randomness comes from explicitly seeded *rand.Rand
//	lockguard  mutexes are not held across blocking operations
//	errdrop    wire codec / Close / Write errors are never dropped
//
// Usage:
//
//	go run ./cmd/phvet ./...
//
// Findings print one per line as "file:line: analyzer: message" and the
// exit status is 1 when any finding survives. Suppress a finding with
//
//	//phvet:ignore <analyzer> <justification>
//
// on the offending line or the line directly above it. Exit status 2
// means phvet itself could not load or type-check the tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: phvet [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}

func run(patterns []string) int {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
		return 2
	}
	cwd, _ := os.Getwd()
	status := 0
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "phvet: %s: %v\n", pkg.Path, e)
			}
			status = 2
			continue
		}
		for _, d := range analysis.Run(pkg, analysis.All()) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				d.Pos.Filename = rel
			}
			fmt.Println(d)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}
