// Command phvet is the project's static-analysis driver. It enforces
// the invariants the simulation's reproducibility rests on:
//
//	walltime    simulation time flows through internal/vtime only
//	detrand     randomness comes from explicitly seeded *rand.Rand
//	lockguard   mutexes are not held across blocking operations
//	errdrop     wire codec / Close / Write errors are never dropped
//	mapiter     map iteration order stays out of wire bytes, event
//	            queues, digests and fan-out order
//	taintclock  helpers that transitively reach the wall clock or the
//	            global rand poison their simulation-plane callers
//	goloss      go-launched pump loops are tied to a lifecycle
//
// Usage:
//
//	go run ./cmd/phvet [flags] ./...
//
//	-baseline FILE        suppress findings grandfathered in FILE; stale
//	                      entries (fixed findings still listed) fail the
//	                      run so the baseline only ever shrinks
//	-write-baseline FILE  write the current findings to FILE and exit 0
//	-json                 emit findings as JSON (id, analyzer, file,
//	                      line, message, baselined)
//	-annotate             also emit GitHub Actions ::error annotations
//	                      for non-baselined findings
//	-maxtime DURATION     fail if the whole run exceeds DURATION (the
//	                      committed ceiling guarding loader regressions)
//
// Findings print one per line as "file:line: analyzer: message [id]"
// and the exit status is 1 when any non-baselined finding (or stale
// baseline entry) survives. Suppress a finding in place with
//
//	//phvet:ignore <analyzer> <justification>
//
// on the offending line or the line directly above it, or grandfather
// it by ID in the baseline (`make vet-baseline`). Exit status 2 means
// phvet itself could not load or type-check the tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = usage
	baselinePath := flag.String("baseline", "", "suppress findings listed in this baseline file; stale entries fail")
	writeBaseline := flag.String("write-baseline", "", "regenerate the baseline file from current findings and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	annotate := flag.Bool("annotate", false, "emit GitHub Actions ::error annotations for failing findings")
	maxtime := flag.Duration("maxtime", 0, "fail if the full run takes longer than this (0 = no ceiling)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(run(patterns, *baselinePath, *writeBaseline, *jsonOut, *annotate, *maxtime))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: phvet [flags] [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}

func run(patterns []string, baselinePath, writeBaseline string, jsonOut, annotate bool, maxtime time.Duration) int {
	start := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
		return 2
	}
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			for _, e := range pkg.Errors {
				fmt.Fprintf(os.Stderr, "phvet: %s: %v\n", pkg.Path, e)
			}
			return 2
		}
	}

	cwd, _ := os.Getwd()
	diags := analysis.RunAll(pkgs, analysis.All())
	findings := analysis.Findings(cwd, diags)

	if writeBaseline != "" {
		if err := analysis.WriteBaseline(writeBaseline, findings); err != nil {
			fmt.Fprintf(os.Stderr, "phvet: writing baseline: %v\n", err)
			return 2
		}
		fmt.Printf("phvet: wrote %d finding(s) to %s\n", len(findings), writeBaseline)
		return 0
	}

	var stale []analysis.Finding
	if baselinePath != "" {
		b, err := analysis.ReadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
			return 2
		}
		stale = analysis.ApplyBaseline(b, findings)
	}

	failing := 0
	baselined := 0
	for _, f := range findings {
		if f.Baselined {
			baselined++
		} else {
			failing++
		}
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "phvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Baselined {
				continue
			}
			fmt.Println(f)
		}
		if baselined > 0 {
			fmt.Fprintf(os.Stderr, "phvet: %d baselined finding(s) suppressed (%s)\n", baselined, baselinePath)
		}
	}
	if annotate {
		for _, f := range findings {
			if f.Baselined {
				continue
			}
			fmt.Printf("::error file=%s,line=%d,title=phvet %s::%s [%s]\n",
				f.File, f.Line, f.Analyzer, f.Message, f.ID)
		}
		for _, f := range stale {
			fmt.Printf("::error file=%s,title=phvet stale baseline::baseline entry %s (%s) no longer occurs; run `make vet-baseline` to prune it\n",
				baselinePath, f.ID, f.Message)
		}
	}
	for _, f := range stale {
		fmt.Fprintf(os.Stderr, "phvet: stale baseline entry %s: %s:%d: %s (fixed — run `make vet-baseline` to prune)\n",
			f.ID, f.File, f.Line, f.Message)
	}

	if maxtime > 0 {
		if elapsed := time.Since(start); elapsed > maxtime {
			fmt.Fprintf(os.Stderr, "phvet: run took %v, over the committed %v ceiling — the loader's package-parallel path has regressed\n",
				elapsed.Round(time.Millisecond), maxtime)
			return 1
		}
	}
	if failing > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}
