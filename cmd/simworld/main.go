// Command simworld runs a mobile social-networking scenario and
// narrates it: pedestrians with interest profiles walk around a campus
// quad while one observer's PeerHood daemon discovers them and the
// community client forms, grows, shrinks and dissolves dynamic interest
// groups (the behaviour of Figures 2 and 5).
//
// Usage:
//
//	simworld [-people N] [-minutes M] [-seed S] [-size METERS]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

var interestPool = []string{
	"football", "music", "movies", "chess", "photography", "cooking",
}

func main() {
	people := flag.Int("people", 8, "number of walking peers")
	minutes := flag.Int("minutes", 5, "modeled minutes to simulate")
	seed := flag.Int64("seed", 42, "scenario seed")
	size := flag.Float64("size", 60, "square campus side in meters")
	flag.Parse()
	if err := run(*people, *minutes, *seed, *size); err != nil {
		fmt.Fprintln(os.Stderr, "simworld:", err)
		os.Exit(1)
	}
}

func run(people, minutes int, seed int64, size float64) error {
	scale := vtime.NewScale(1e-2)
	env := radio.NewEnvironment(radio.WithScale(scale))
	net := netsim.New(env, seed)
	defer net.Close()
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(size, size))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Observer in the middle of the quad.
	if err := env.Add("observer", mobility.Static{At: region.Center()}, radio.Bluetooth); err != nil {
		return err
	}
	observerDaemon, err := peerhood.NewDaemon(peerhood.Config{Device: "observer", Network: net})
	if err != nil {
		return err
	}
	defer observerDaemon.Stop()
	observerStore := profile.NewStore(nil)
	if err := observerStore.CreateAccount("you", "pw"); err != nil {
		return err
	}
	if err := observerStore.Login("you", "pw"); err != nil {
		return err
	}
	for _, t := range []string{"football", "music", "photography"} {
		if err := observerStore.AddInterest("you", t); err != nil {
			return err
		}
	}
	observerLib := peerhood.NewLibrary(observerDaemon)
	observerServer, err := community.NewServer(observerLib, observerStore)
	if err != nil {
		return err
	}
	if err := observerServer.Start(); err != nil {
		return err
	}
	defer observerServer.Stop()
	client, err := community.NewClient(observerLib, observerStore, nil)
	if err != nil {
		return err
	}
	defer client.Close()

	// Walking peers.
	var cleanup []func()
	defer func() {
		for _, fn := range cleanup {
			fn()
		}
	}()
	for i := 0; i < people; i++ {
		member := ids.MemberID(fmt.Sprintf("peer-%02d", i))
		dev := ids.DeviceID("dev-" + string(member))
		walk := mobility.NewPedestrian(region, seed+int64(i))
		if err := env.Add(dev, walk, radio.Bluetooth); err != nil {
			return err
		}
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			return err
		}
		store := profile.NewStore(nil)
		if err := store.CreateAccount(member, "pw"); err != nil {
			return err
		}
		if err := store.Login(member, "pw"); err != nil {
			return err
		}
		// Deterministic interest mix: each peer takes two pool entries.
		for k := 0; k < 2; k++ {
			term := interestPool[(i+k*3)%len(interestPool)]
			if err := store.AddInterest(member, term); err != nil {
				return err
			}
		}
		server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
		if err != nil {
			return err
		}
		if err := server.Start(); err != nil {
			return err
		}
		cleanup = append(cleanup, server.Stop, daemon.Stop)
	}

	fmt.Printf("simworld: %d pedestrians on a %.0fx%.0f m quad, observer in the middle,\n",
		people, size, size)
	fmt.Printf("Bluetooth range %.0f m, %d modeled minutes (seed %d)\n\n",
		env.PHY(radio.Bluetooth).Range, minutes, seed)

	mgr, err := client.Manager()
	if err != nil {
		return err
	}
	_ = mgr

	deadline := time.Duration(minutes) * time.Minute
	for env.Elapsed() < deadline {
		if err := observerDaemon.RefreshNow(ctx); err != nil {
			return err
		}
		events, err := client.RefreshGroups(ctx)
		if err != nil {
			return err
		}
		stamp := env.Elapsed().Round(time.Second)
		for _, ev := range events {
			switch ev.Type {
			case core.EventGroupFormed:
				fmt.Printf("[%6s] group %q formed\n", stamp, ev.Interest)
			case core.EventGroupDissolved:
				fmt.Printf("[%6s] group %q dissolved\n", stamp, ev.Interest)
			case core.EventMemberJoined:
				fmt.Printf("[%6s] %s joined %q\n", stamp, ev.Member, ev.Interest)
			case core.EventMemberLeft:
				fmt.Printf("[%6s] %s left %q\n", stamp, ev.Member, ev.Interest)
			}
		}
	}

	stats := observerDaemon.Stats()
	fmt.Printf("\ndaemon stats: %d discovery rounds, %d SDP queries sent, %d served, %d connects, %d monitor events\n",
		stats.DiscoveryRounds, stats.SDPQueriesSent, stats.SDPQueriesServed, stats.ConnectsRouted, stats.MonitorEvents)
	counters := net.Counters()
	fmt.Printf("network: %d/%d dials connected, %d messages (%d bytes) delivered, %d link failures\n",
		counters.ConnsEstablished, counters.DialsAttempted,
		counters.MessagesDelivered, counters.BytesDelivered, counters.LinkFailures)
	fmt.Println("\neveryone ever sighted (PeerHood's stored neighborhood information):")
	for _, s := range observerDaemon.History() {
		fmt.Printf("  %-16s rounds=%-3d first=%-8s last=%s\n",
			s.Device, s.Rounds, s.FirstSeen.Round(time.Second), s.LastSeen.Round(time.Second))
	}
	fmt.Println("\nfinal groups:")
	groups := client.Groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i].Interest < groups[j].Interest })
	if len(groups) == 0 {
		fmt.Println("  (none — nobody with shared interests in range)")
	}
	for _, g := range groups {
		fmt.Printf("  %-14s %v\n", g.Interest, g.MemberIDs())
	}
	return nil
}
