// Command table8 reruns the thesis's Table 8 experiment — the time to
// search an interest group, join it, view the member list and view one
// member profile on Facebook/Hi5 (via simulated Nokia N810/N95
// handsets over GPRS) versus PeerHood Community (over simulated
// Bluetooth in the ComLab testbed) — and prints the resulting table.
//
// Usage:
//
//	table8 [-warm] [-peers N] [-scale FACTOR]
//
// -warm enables the warm-cache ablation where PeerHood's background
// discovery has already run before the user searches.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/vtime"
)

func main() {
	warm := flag.Bool("warm", false, "PeerHood daemon cache pre-warmed before the user searches (ablation)")
	peers := flag.Int("peers", 2, "number of football peers around the active PeerHood user")
	scale := flag.Float64("scale", 1e-2, "latency scale: real seconds per modeled second")
	trials := flag.Int("trials", 1, "trials to average, like the thesis's averaged timings")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	opts := harness.Table8Options{
		Scale:     vtime.NewScale(*scale),
		WarmCache: *warm,
		PeerCount: *peers,
	}
	fmt.Println("Reproducing Table 8: time records for searching an interest group,")
	fmt.Println("joining, and viewing member list/profile — SNS vs PeerHood Community.")
	fmt.Printf("(latency scale %g: one modeled second runs in %.0f ms of wall time; %d trial(s) averaged)\n\n", *scale, *scale*1000, *trials)

	rows, err := harness.RunTable8Averaged(opts, *trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table8:", err)
		os.Exit(1)
	}
	if *format == "csv" {
		fmt.Print(harness.FormatTable8CSV(rows))
		return
	}
	fmt.Print(harness.FormatTable8(rows))

	phc := rows[len(rows)-1]
	worst := rows[0]
	for _, r := range rows[:len(rows)-1] {
		if r.Total() > worst.Total() {
			worst = r
		}
	}
	fmt.Printf("\nPeerHood Community total %s vs worst SNS column %s (%.1fx faster);\n",
		harness.FormatDuration(phc.Total()), harness.FormatDuration(worst.Total()),
		float64(worst.Total())/float64(phc.Total()))
	fmt.Println("join time is zero because dynamic group discovery already placed the")
	fmt.Println("user in the group — the paper's central claim.")
}
