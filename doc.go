// Package repro reproduces "Social Networking on Mobile Environment on
// top of PeerHood" (Karki, Lappeenranta University of Technology,
// 2008): the PeerHood network-management middleware, the dynamic
// group discovery algorithm, the PeerHood Community reference
// application, and the evaluation against centralized social
// networking sites.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory), runnable programs under cmd/ and examples/, and
// the per-table/figure benchmarks in bench_test.go at this root.
package repro
