// Accesscontrol: PeerHood as a general middleware (§4.4) — the same
// daemon/library/plugin stack that carries the social network also
// drives the thesis's wireless access-control system: a phone acts as a
// key for a Bluetooth-controlled door, and the door re-locks itself
// when PeerHood's monitoring sees the key holder walk away.
//
//	go run ./examples/accesscontrol
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/apps/accesscontrol"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/vtime"
)

const doorSecret = "comlab-6604"

func main() {
	env := radio.NewEnvironment(radio.WithScale(vtime.DefaultScale()))
	net := netsim.New(env, 9)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	must(env.Add("lab-door", mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth))
	must(env.Add("my-phone", mobility.Static{At: geo.Pt(4, 0)}, radio.Bluetooth))

	mkLib := func(dev ids.DeviceID) *peerhood.Library {
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		must(err)
		must(daemon.Start())
		return peerhood.NewLibrary(daemon)
	}
	doorLib := mkLib("lab-door")
	phoneLib := mkLib("my-phone")

	door, err := accesscontrol.NewDoor(doorLib, doorSecret)
	must(err)
	defer door.Stop()
	door.Authorize("my-phone")

	must(phoneLib.Daemon().RefreshNow(ctx))
	key := accesscontrol.NewKey(phoneLib, doorSecret)

	fmt.Println("doors in Bluetooth range:", key.NearbyDoors())
	fmt.Println("door state:", door.State())

	fmt.Println("\nwalking up to the door and unlocking with the phone...")
	must(key.Unlock(ctx, "lab-door"))
	fmt.Println("door state:", door.State())

	fmt.Println("\nwalking away down the corridor...")
	must(env.SetModel("my-phone", mobility.Linear{Start: geo.Pt(4, 0), Velocity: geo.Vec(1.4, 0)}))
	deadline := time.Now().Add(10 * time.Second)
	for door.State() != accesscontrol.Locked && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("door state:", door.State(), "(auto-locked by PeerHood monitoring)")
	fmt.Println("\naudit log:")
	for _, line := range door.Transcript() {
		fmt.Println(" ", line)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
