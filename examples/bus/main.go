// Bus: the "mobile community" scenario of §5.1 — "and in mobile
// community like in bus or airplane while travelling". The bus itself
// moves, but the passengers move *together*, so their relative
// positions are stable and the social network persists for the whole
// ride; a passenger who gets off at a stop drops out of every group —
// the thesis's "instantaneous social network" whose "long distance
// traveling members could never be together again".
//
//	go run ./examples/bus
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// busSpeed is a city bus cruising along the x axis.
const busSpeed = 10.0 // m/s

// seatOffsets places passengers around the bus origin (a 10 m vehicle,
// everyone inside Bluetooth range of everyone).
var seatOffsets = []geo.Vector{
	{DX: 0, DY: 0}, {DX: 2, DY: 1}, {DX: 4, DY: 0}, {DX: 6, DY: 1}, {DX: 8, DY: 0},
}

var passengers = []struct {
	member    ids.MemberID
	interests []string
}{
	{"teemu", []string{"football", "podcasts"}},
	{"sanna", []string{"football", "knitting"}},
	{"mikko", []string{"podcasts", "chess"}},
	{"laura", []string{"knitting", "football"}},
	{"pekka", []string{"chess", "football"}},
}

func main() {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-2)))
	net := netsim.New(env, 5)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Everyone rides the bus: same velocity, different seats.
	peers := make(map[ids.MemberID]*peer, len(passengers))
	for i, spec := range passengers {
		dev := ids.DeviceID("phone-" + string(spec.member))
		ride := mobility.Linear{
			Start:    geo.Pt(0, 0).Add(seatOffsets[i]),
			Velocity: geo.Vec(busSpeed, 0),
		}
		must(env.Add(dev, ride, radio.Bluetooth))
		peers[spec.member] = newPeer(net, dev, spec.member, spec.interests...)
	}
	defer func() {
		for _, p := range peers {
			p.stop()
		}
	}()

	teemu := peers["teemu"]
	must(teemu.daemon.RefreshNow(ctx))
	_, err := teemu.client.RefreshGroups(ctx)
	must(err)

	fmt.Println("on the bus, teemu's groups:")
	printGroups(teemu)

	// The ride: the bus covers kilometers, yet nothing changes —
	// relative positions are constant, so the social network survives
	// the mobility. (This is the scenario where an infrastructure
	// network would churn constantly.)
	rideFor(env, 2*time.Minute)
	must(teemu.daemon.RefreshNow(ctx))
	events, err := teemu.client.RefreshGroups(ctx)
	must(err)
	pos, _ := env.Position("phone-teemu")
	fmt.Printf("\nafter 2 minutes (bus has moved to x=%.0f m): %d group events — the network rode along\n",
		pos.X, len(events))

	// Passengers chat while riding.
	must(teemu.client.SendMessage(ctx, "sanna", "halftime", "did you see the goal?"))
	sannaProfile, err := peers["sanna"].store.Get("sanna")
	must(err)
	fmt.Printf("sanna's inbox on the moving bus: %d message(s)\n", len(sannaProfile.Inbox))

	// Laura gets off at her stop: her phone stays where she alighted
	// while the bus drives on.
	stopPos, err := env.Position("phone-laura")
	must(err)
	must(env.SetModel("phone-laura", mobility.Static{At: stopPos}))
	fmt.Println("\nlaura gets off at the stop...")
	rideFor(env, 30*time.Second) // bus drives 300 m away
	must(teemu.daemon.RefreshNow(ctx))
	events, err = teemu.client.RefreshGroups(ctx)
	must(err)
	for _, ev := range events {
		fmt.Printf("  event: %s %s %s\n", ev.Type, ev.Interest, ev.Member)
	}
	fmt.Println("\nteemu's groups after laura left:")
	printGroups(teemu)
}

func rideFor(env *radio.Environment, modeled time.Duration) {
	env.Clock().Sleep(env.Scale().ToReal(modeled))
}

func printGroups(p *peer) {
	groups := p.client.Groups()
	if len(groups) == 0 {
		fmt.Println("  (none)")
	}
	for _, g := range groups {
		fmt.Printf("  %-10s %v\n", g.Interest, g.MemberIDs())
	}
}

type peer struct {
	daemon *peerhood.Daemon
	store  *profile.Store
	server *community.Server
	client *community.Client
}

func newPeer(net *netsim.Network, dev ids.DeviceID, member ids.MemberID, interests ...string) *peer {
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
	must(err)
	store := profile.NewStore(nil)
	must(store.CreateAccount(member, "pw"))
	must(store.Login(member, "pw"))
	for _, term := range interests {
		must(store.AddInterest(member, term))
	}
	server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
	must(err)
	must(server.Start())
	client, err := community.NewClient(peerhood.NewLibrary(daemon), store, nil)
	must(err)
	return &peer{daemon: daemon, store: store, server: server, client: client}
}

func (p *peer) stop() {
	p.client.Close()
	p.server.Stop()
	p.daemon.Stop()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
