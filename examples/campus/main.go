// Campus: the "instant local community" scenario of §5.1 — "social
// networking on top of PeerHood is very much feasible in instant local
// communities like in university or pub". Students walk a campus quad;
// a stationary student's device continuously re-forms interest groups
// as people drift through Bluetooth range, with active monitoring
// noticing every appearance and disappearance.
//
//	go run ./examples/campus
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

const (
	quadSide       = 50.0 // meters
	studentCount   = 6
	modeledMinutes = 4
)

var courses = [][]string{
	{"football", "networking"},
	{"music", "football"},
	{"photography", "music"},
	{"networking", "chess"},
	{"football", "photography"},
	{"chess", "music"},
}

func main() {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-2)))
	net := netsim.New(env, 2008)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	quad := geo.NewRect(geo.Pt(0, 0), geo.Pt(quadSide, quadSide))

	// The observing student sits at the quad's center with PeerHood
	// monitoring turned on.
	must(env.Add("my-laptop", mobility.Static{At: quad.Center()}, radio.Bluetooth))
	me := newPeer(net, "my-laptop", "me", "football", "music", "networking")
	defer me.stop()

	// Walking students.
	for i := 0; i < studentCount; i++ {
		member := ids.MemberID(fmt.Sprintf("student-%d", i))
		dev := ids.DeviceID("phone-" + string(member))
		must(env.Add(dev, mobility.NewPedestrian(quad, int64(100+i)), radio.Bluetooth))
		s := newPeer(net, dev, member, courses[i%len(courses)]...)
		defer s.stop()
	}

	// Active monitoring: log every student entering/leaving my range.
	for i := 0; i < studentCount; i++ {
		dev := ids.DeviceID(fmt.Sprintf("phone-student-%d", i))
		cancelMon := me.daemon.Monitor(dev, func(ev peerhood.MonitorEvent) {
			verb := "disappeared from"
			if ev.Appeared {
				verb = "appeared in"
			}
			fmt.Printf("[%6s] monitor: %s %s range\n", env.Elapsed().Round(time.Second), ev.Device, verb)
		})
		defer cancelMon()
	}
	must(me.daemon.Start()) // background discovery + monitor loops

	fmt.Printf("campus quad %gx%g m, %d walking students, observing for %d modeled minutes\n\n",
		quadSide, quadSide, studentCount, modeledMinutes)

	groupEvents := 0
	for env.Elapsed() < modeledMinutes*time.Minute {
		events, err := me.client.RefreshGroups(ctx)
		must(err)
		stamp := env.Elapsed().Round(time.Second)
		for _, ev := range events {
			groupEvents++
			switch ev.Type {
			case core.EventGroupFormed:
				fmt.Printf("[%6s] + group %q\n", stamp, ev.Interest)
			case core.EventGroupDissolved:
				fmt.Printf("[%6s] - group %q\n", stamp, ev.Interest)
			case core.EventMemberJoined:
				fmt.Printf("[%6s]   %s joined %q\n", stamp, ev.Member, ev.Interest)
			case core.EventMemberLeft:
				fmt.Printf("[%6s]   %s left %q\n", stamp, ev.Member, ev.Interest)
			}
		}
		env.Clock().Sleep(env.Scale().ToReal(5 * time.Second))
	}

	fmt.Printf("\n%d group events in %d modeled minutes; final groups:\n", groupEvents, modeledMinutes)
	for _, g := range me.client.Groups() {
		fmt.Printf("  %-12s %v\n", g.Interest, g.MemberIDs())
	}
	if len(me.client.Groups()) == 0 {
		fmt.Println("  (nobody with shared interests in range right now)")
	}
}

type peer struct {
	daemon *peerhood.Daemon
	store  *profile.Store
	server *community.Server
	client *community.Client
}

func newPeer(net *netsim.Network, dev ids.DeviceID, member ids.MemberID, interests ...string) *peer {
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
	must(err)
	store := profile.NewStore(nil)
	must(store.CreateAccount(member, "pw"))
	must(store.Login(member, "pw"))
	for _, term := range interests {
		must(store.AddInterest(member, term))
	}
	server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
	must(err)
	must(server.Start())
	client, err := community.NewClient(peerhood.NewLibrary(daemon), store, nil)
	must(err)
	return &peer{daemon: daemon, store: store, server: server, client: client}
}

func (p *peer) stop() {
	p.client.Close()
	p.server.Stop()
	p.daemon.Stop()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
