// Guidance: the §4.4 location-aware guidance system on top of PeerHood.
// Guidance points stand at known places in a building; a traveler's PTD
// discovers the point in Bluetooth range and asks it for the shortest
// walking route to a destination — no maps on the device, no
// infrastructure network, just proximity services.
//
//	go run ./examples/guidance
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/apps/guidance"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func main() {
	env := radio.NewEnvironment(radio.WithScale(vtime.DefaultScale()))
	net := netsim.New(env, 4)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The building's walkway graph, shared by every guidance point.
	m := guidance.NewMap()
	places := map[string]geo.Point{
		"entrance":  geo.Pt(0, 0),
		"lobby":     geo.Pt(25, 0),
		"stairs":    geo.Pt(50, 0),
		"cafeteria": geo.Pt(25, 30),
		"room6604":  geo.Pt(75, 10),
	}
	for name, at := range places {
		m.AddPlace(name, at)
	}
	for _, e := range [][2]string{
		{"entrance", "lobby"}, {"lobby", "stairs"}, {"lobby", "cafeteria"},
		{"stairs", "room6604"}, {"cafeteria", "room6604"},
	} {
		must(m.Connect(e[0], e[1]))
	}

	// Guidance points at the entrance and the lobby.
	for _, place := range []string{"entrance", "lobby"} {
		dev := ids.DeviceID("gp-" + place)
		must(env.Add(dev, mobility.Static{At: places[place]}, radio.Bluetooth))
		daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		must(err)
		defer daemon.Stop()
		point, err := guidance.NewPoint(peerhood.NewLibrary(daemon), m, place)
		must(err)
		defer point.Stop()
	}

	// A traveler arrives at the entrance.
	must(env.Add("visitor-ptd", mobility.Static{At: places["entrance"]}, radio.Bluetooth))
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: "visitor-ptd", Network: net})
	must(err)
	defer daemon.Stop()
	lib := peerhood.NewLibrary(daemon)
	must(daemon.RefreshNow(ctx))

	traveler := guidance.NewTraveler(lib)
	fmt.Println("visitor at the entrance, looking for room 6604...")
	path, err := traveler.Directions(ctx, "room6604")
	must(err)
	length, err := m.RouteLength(path)
	must(err)
	fmt.Printf("guidance point says: %s  (%.0f m walk)\n", strings.Join(path, " -> "), length)

	// Walk to the lobby and ask again: the nearer point answers with
	// the remaining route.
	must(env.SetModel("visitor-ptd", mobility.Static{At: places["lobby"]}))
	must(daemon.RefreshNow(ctx))
	path, err = traveler.Directions(ctx, "room6604")
	must(err)
	fmt.Printf("from the lobby: %s\n", strings.Join(path, " -> "))

	if _, err := traveler.Directions(ctx, "swimming pool"); err != nil {
		fmt.Println("asking for an unknown place:", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
