// Quickstart: the smallest complete PeerHood Community setup — two
// devices in Bluetooth range, one shared interest, a dynamic group
// forms, a message flows.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func main() {
	// 1. A world: two devices five meters apart, Bluetooth radios,
	//    running 1000x faster than real time.
	env := radio.NewEnvironment(radio.WithScale(vtime.DefaultScale()))
	net := netsim.New(env, 1)
	defer net.Close()
	must(env.Add("alice-phone", mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth))
	must(env.Add("bob-phone", mobility.Static{At: geo.Pt(5, 0)}, radio.Bluetooth))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// 2. Each device runs a PeerHood daemon, a profile store with a
	//    logged-in user, and the community server.
	alice := newPeer(net, "alice-phone", "alice", "football", "music")
	defer alice.stop()
	bob := newPeer(net, "bob-phone", "bob", "football", "chess")
	defer bob.stop()

	// 3. Alice's daemon scans the neighborhood (a Bluetooth inquiry —
	//    about 11 modeled seconds, 11 real milliseconds here).
	must(alice.daemon.RefreshNow(ctx))
	fmt.Println("devices nearby:", alice.lib.GetDeviceList())

	// 4. Dynamic group discovery: the shared "football" interest forms
	//    a group automatically — no create, no invite, no join.
	events, err := alice.client.RefreshGroups(ctx)
	must(err)
	for _, ev := range events {
		fmt.Printf("group event: %s %s %s\n", ev.Type, ev.Interest, ev.Member)
	}
	for _, g := range alice.client.Groups() {
		fmt.Printf("group %q members: %v\n", g.Interest, g.MemberIDs())
	}

	// 5. Social features: view bob's profile, comment it, message him.
	p, err := alice.client.ViewProfile(ctx, "bob")
	must(err)
	fmt.Printf("bob's interests: %v\n", p.Interests)
	must(alice.client.CommentProfile(ctx, "bob", "found you via the football group!"))
	must(alice.client.SendMessage(ctx, "bob", "hello", "kickabout at five?"))

	bobProfile, err := bob.store.Get("bob")
	must(err)
	fmt.Printf("bob's inbox: %d message(s); first subject: %q\n",
		len(bobProfile.Inbox), bobProfile.Inbox[0].Subject)
	fmt.Printf("bob's profile comments: %q\n", bobProfile.Comments[0].Text)
}

type peer struct {
	daemon *peerhood.Daemon
	lib    *peerhood.Library
	store  *profile.Store
	server *community.Server
	client *community.Client
}

func newPeer(net *netsim.Network, dev ids.DeviceID, member ids.MemberID, interests ...string) *peer {
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
	must(err)
	lib := peerhood.NewLibrary(daemon)
	store := profile.NewStore(nil)
	must(store.CreateAccount(member, "password"))
	must(store.Login(member, "password"))
	for _, term := range interests {
		must(store.AddInterest(member, term))
	}
	server, err := community.NewServer(lib, store)
	must(err)
	must(server.Start())
	client, err := community.NewClient(lib, store, nil)
	must(err)
	return &peer{daemon: daemon, lib: lib, store: store, server: server, client: client}
}

func (p *peer) stop() {
	p.client.Close()
	p.server.Stop()
	p.daemon.Stop()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
