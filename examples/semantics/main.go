// Semantics: the thesis's future-work feature in action. §5.2.6 notes
// the disadvantage of exact-match grouping: "users interested in riding
// bicycle can put biking or cycling as their interest. Even though both
// have same meaning, the application is not that much intelligent to
// know both interest are same and it creates two different dynamic
// groups rather than one single group." The conclusion proposes
// "semantics teaching to the environment" as future work; this example
// runs both worlds side by side.
//
//	go run ./examples/semantics
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

var riders = []struct {
	member ids.MemberID
	term   string
}{
	{"anna", "biking"},
	{"ben", "cycling"},
	{"cem", "bike riding"},
	{"dina", "cycling"},
}

func main() {
	env := radio.NewEnvironment(radio.WithScale(vtime.DefaultScale()))
	net := netsim.New(env, 3)
	defer net.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// The observer is also a cyclist — she wrote "biking".
	must(env.Add("observer", mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth))
	sem := interest.NewSemantics()
	me := newPeer(net, "observer", "me", sem, "biking")
	defer me.stop()

	for i, r := range riders {
		dev := ids.DeviceID("phone-" + string(r.member))
		must(env.Add(dev, mobility.Static{At: geo.Pt(float64(i+1), 1)}, radio.Bluetooth))
		p := newPeer(net, dev, r.member, nil, r.term)
		defer p.stop()
	}

	must(me.daemon.RefreshNow(ctx))

	// Without semantics: exact string matching, like the reference
	// implementation. Only the literal "biking" users group with us.
	_, err := me.client.RefreshGroups(ctx)
	must(err)
	fmt.Println("WITHOUT semantics teaching (the thesis's reference implementation):")
	printGroups(me)
	fmt.Println("  -> ben, cem and dina are invisible: same meaning, different words")

	// Teach the environment, as the conclusion proposes.
	sem.Teach("biking", "cycling")
	sem.Teach("cycling", "bike riding")
	fmt.Println("\nteaching: biking == cycling == bike riding")

	_, err = me.client.RefreshGroups(ctx)
	must(err)
	fmt.Println("\nWITH semantics teaching (the proposed future work):")
	printGroups(me)
	fmt.Printf("  -> one group under the canonical term %q\n", sem.Canon("cycling"))
}

func printGroups(p *peer) {
	groups := p.client.Groups()
	if len(groups) == 0 {
		fmt.Println("  (no groups)")
	}
	for _, g := range groups {
		fmt.Printf("  group %-12q members: %v\n", g.Interest, g.MemberIDs())
	}
}

type peer struct {
	daemon *peerhood.Daemon
	store  *profile.Store
	server *community.Server
	client *community.Client
}

func newPeer(net *netsim.Network, dev ids.DeviceID, member ids.MemberID, sem *interest.Semantics, interests ...string) *peer {
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
	must(err)
	store := profile.NewStore(nil)
	must(store.CreateAccount(member, "pw"))
	must(store.Login(member, "pw"))
	for _, term := range interests {
		must(store.AddInterest(member, term))
	}
	server, err := community.NewServer(peerhood.NewLibrary(daemon), store)
	must(err)
	must(server.Start())
	client, err := community.NewClient(peerhood.NewLibrary(daemon), store, sem)
	must(err)
	return &peer{daemon: daemon, store: store, server: server, client: client}
}

func (p *peer) stop() {
	p.client.Close()
	p.server.Stop()
	p.daemon.Stop()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
