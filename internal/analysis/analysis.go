// Package analysis is the zero-dependency static-analysis framework
// behind cmd/phvet. It loads the module's packages with go/parser and
// type-checks them with go/types (stdlib only — no golang.org/x/tools),
// then runs project-specific analyzers that enforce the simulation's
// determinism and concurrency invariants:
//
//   - walltime:  simulation time must flow through internal/vtime
//   - detrand:   randomness must come from an explicitly seeded source
//   - lockguard: mutexes must not be held across blocking operations
//   - errdrop:   wire codec, Close and Write errors must not be dropped
//
// Findings print as "file:line: analyzer: message". A finding can be
// suppressed with a "//phvet:ignore <analyzer> <justification>" comment
// on the offending line or the line directly above it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description shown by phvet's usage text.
	Doc string
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path. A nil AppliesTo means every package.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the canonical phvet shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics, with //phvet:ignore suppressions applied and
// the rest ordered by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if ignores.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// All returns every analyzer phvet ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, Detrand, Lockguard, Errdrop}
}
