// Package analysis is the zero-dependency static-analysis framework
// behind cmd/phvet. It loads the module's packages with go/parser and
// type-checks them with go/types (stdlib only — no golang.org/x/tools),
// then runs project-specific analyzers that enforce the simulation's
// determinism and concurrency invariants:
//
//   - walltime:   simulation time must flow through internal/vtime
//   - detrand:    randomness must come from an explicitly seeded source
//   - lockguard:  mutexes must not be held across blocking operations
//   - errdrop:    wire codec, Close and Write errors must not be dropped
//   - mapiter:    map iteration order must not escape into ordering-
//     sensitive sinks (wire writes, event enqueues, digests, fan-outs)
//   - taintclock: wall-clock/global-rand access reached *indirectly*
//     through helpers poisons every simulation-plane caller (an
//     interprocedural call-graph taint pass)
//   - goloss:     goroutine pump loops must be tied to a tracked
//     lifecycle (WaitGroup, close/done channel, or context)
//
// Findings print as "file:line: analyzer: message". A finding can be
// suppressed with a "//phvet:ignore <analyzer> <justification>" comment
// on the offending line or the line directly above it, or grandfathered
// in the committed baseline file (see Finding and Baseline).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check run over type-checked packages. Exactly
// one of Run (per-package) and RunModule (whole-module) is set: a
// per-package analyzer sees one package at a time, while a module
// analyzer (taintclock) sees every loaded package at once so it can
// build a cross-package call graph.
type Analyzer struct {
	// Name is the identifier used in diagnostics and ignore comments.
	Name string
	// Doc is a one-line description shown by phvet's usage text.
	Doc string
	// AppliesTo reports whether the analyzer reports findings in the
	// package with the given import path. A nil AppliesTo means every
	// package. Module analyzers still *inspect* every loaded package
	// (the call graph needs them all); AppliesTo only filters where
	// findings may land.
	AppliesTo func(pkgPath string) bool
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole package set at once.
	RunModule func(mpass *ModulePass)
}

// Pass carries one package's parsed and type-checked state through an
// analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the canonical phvet shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass carries the whole loaded package set through a module
// analyzer run.
type ModulePass struct {
	Analyzer *Analyzer
	Pkgs     []*Package

	diags []Diagnostic
}

// Applies reports whether findings may land in pkg.
func (mp *ModulePass) Applies(pkg *Package) bool {
	return mp.Analyzer.AppliesTo == nil || mp.Analyzer.AppliesTo(pkg.Path)
}

// Reportf records a finding at pos, resolved through pkg's file set.
// Findings in packages AppliesTo rejects are dropped silently, so a
// module analyzer may report wherever its graph walk lands.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	if !mp.Applies(pkg) {
		return
	}
	mp.diags = append(mp.diags, Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one loaded package and returns the
// surviving diagnostics. It is RunAll over a one-package module; the
// fixture tests use it to run a single analyzer in isolation.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunAll([]*Package{pkg}, analyzers)
}

// RunAll executes the analyzers over the loaded package set and returns
// the surviving diagnostics: per-package analyzers run on each package
// they apply to, module analyzers run once over the whole set, then
// //phvet:ignore suppressions are applied and the rest ordered by
// position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ignores := &ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, pkg := range pkgs {
		collectIgnoresInto(ignores, pkg.Fset, pkg.Files)
	}
	var out []Diagnostic
	keep := func(diags []Diagnostic) {
		for _, d := range diags {
			if !ignores.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule != nil {
			mpass := &ModulePass{Analyzer: a, Pkgs: pkgs}
			a.RunModule(mpass)
			keep(mpass.diags)
			continue
		}
		for _, pkg := range pkgs {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			keep(pass.diags)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// All returns every analyzer phvet ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, Detrand, Lockguard, Errdrop, Mapiter, Taintclock, Goloss}
}
