package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// checkFixture type-checks every .go file under testdata/<dir> as one
// package with import path pkgPath, runs the analyzer (suppressions
// included), and compares the diagnostics against the fixtures'
// expectations: a comment of the form
//
//	// want "substring" ["substring"...]
//
// on a line demands one diagnostic per quoted string whose message
// contains it; every diagnostic must be demanded by some want.
func checkFixture(t *testing.T, a *Analyzer, pkgPath, dir string) {
	t.Helper()
	pkg := loadFixture(t, pkgPath, dir)
	diags := Run(pkg, []*Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, w := range parseWants(t, c.Text) {
					pos := pkg.Fset.Position(c.Pos())
					wants[key{name, pos.Line}] = append(wants[key{name, pos.Line}], w)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var missed []string
	for k, ws := range wants {
		for _, w := range ws {
			missed = append(missed, fmt.Sprintf("%s:%d: missing diagnostic matching %q", k.file, k.line, w))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// loadFixture parses and type-checks the fixture directory as a single
// package. Fixtures import only the standard library, resolved through
// the source importer.
func loadFixture(t *testing.T, pkgPath, dir string) *Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(full, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", full)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{Path: pkgPath, Dir: full, Fset: fset, Files: files, Types: tpkg, Info: info}
}

var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantStrRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func parseWants(t *testing.T, comment string) []string {
	m := wantRe.FindStringSubmatch(comment)
	if m == nil {
		return nil
	}
	var out []string
	for _, q := range wantStrRe.FindAllString(m[1], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("bad want string %s: %v", q, err)
		}
		out = append(out, s)
	}
	return out
}
