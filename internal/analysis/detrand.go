package analysis

import (
	"go/ast"
)

// detrandAllowed lists the math/rand package-level functions that do
// not touch the shared global source: constructors for explicit,
// seedable sources. Everything else at package scope draws from (or
// reseeds) the process-global generator and is forbidden.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// Detrand forbids the global math/rand functions in simulation code.
// Reproducing a run (same seed, same latencies, same group-discovery
// order) requires every random draw to come from an explicitly seeded
// *rand.Rand that the scenario owns; the package-global source is
// shared across goroutines and cannot be replayed.
var Detrand = &Analyzer{
	Name:      "detrand",
	Doc:       "forbid global math/rand functions; draw from an explicitly seeded *rand.Rand",
	AppliesTo: inInternal,
	Run:       runDetrand,
}

func runDetrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := packageFunc(pass.Info, id)
			if obj == nil || detrandAllowed[obj.Name()] {
				return true
			}
			if p := obj.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			pass.Reportf(id.Pos(),
				"rand.%s draws from the unseeded process-global source; use an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				obj.Name())
			return true
		})
	}
}
