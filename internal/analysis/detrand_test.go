package analysis

import "testing"

func TestDetrandFindsGlobalDraws(t *testing.T) {
	checkFixture(t, Detrand, "repro/internal/fixture", "detrand")
}

func TestDetrandScope(t *testing.T) {
	if !Detrand.AppliesTo("repro/internal/mobility") {
		t.Error("detrand must cover simulation packages under internal/")
	}
	if Detrand.AppliesTo("repro/cmd/simworld") {
		t.Error("detrand is scoped to internal/; command-line tools are exempt")
	}
}
