package analysis

import (
	"go/ast"
	"strings"
)

// errdropNames are the method/function names whose error results must
// not be silently discarded: stream teardown, raw writes, and the wire
// codec surface (community/wire.go and friends). A dropped Close on a
// write path loses flush errors; a dropped Unmarshal hides protocol
// corruption.
func errdropTarget(name string) bool {
	if name == "Close" || name == "Write" {
		return true
	}
	for _, prefix := range [...]string{"Marshal", "Unmarshal", "Encode", "Decode"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// Errdrop flags statements that call an error-returning Close, Write,
// or wire encode/decode function and drop the error on the floor. An
// explicit `_ =` assignment is accepted as a deliberate acknowledgment.
var Errdrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flag discarded errors from Close/Write and wire codec call sites",
	Run:  runErrdrop,
}

func runErrdrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
				how = "is discarded"
			case *ast.DeferStmt:
				call = stmt.Call
				how = "is discarded by defer"
			case *ast.GoStmt:
				call = stmt.Call
				how = "is discarded by go"
			default:
				return true
			}
			if call == nil {
				return true
			}
			name := calleeName(call)
			if !errdropTarget(name) || !lastResultIsError(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error from %s %s; handle it or assign it to _ explicitly",
				name, how)
			return true
		})
	}
}
