package analysis

import "testing"

func TestErrdropFindsDiscardedErrors(t *testing.T) {
	checkFixture(t, Errdrop, "repro/internal/fixture", "errdrop")
}

func TestErrdropTargetNames(t *testing.T) {
	for _, name := range []string{"Close", "Write", "MarshalRequest", "UnmarshalResponse", "EncodeFrame", "DecodeServices"} {
		if !errdropTarget(name) {
			t.Errorf("errdropTarget(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"Send", "Recv", "Flush", "close"} {
		if errdropTarget(name) {
			t.Errorf("errdropTarget(%q) = true, want false", name)
		}
	}
}
