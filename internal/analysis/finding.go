package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
)

// Finding is a Diagnostic plus the stable identity the baseline
// workflow keys on. The ID hashes analyzer, module-relative file and
// message (plus an ordinal for identical repeats in one file), so it
// survives unrelated edits that shift line numbers — the committed
// baseline does not churn every time a file above a grandfathered
// finding grows a line.
type Finding struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative, slash-separated
	Line     int    `json:"line"`
	Message  string `json:"message"`
	// Baselined marks a finding matched by the committed baseline:
	// reported for visibility but not a failure.
	Baselined bool `json:"baselined,omitempty"`
}

// String formats the finding in the canonical phvet shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s [%s]", f.File, f.Line, f.Analyzer, f.Message, f.ID)
}

// Findings converts diagnostics to findings with stable IDs. Paths are
// made relative to moduleRoot (kept as-is when they do not lie under
// it) and slash-normalized so IDs agree across machines.
func Findings(moduleRoot string, diags []Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	seen := make(map[string]int) // analyzer|file|message -> repeats
	for _, d := range diags {
		file := d.Pos.Filename
		if moduleRoot != "" {
			if rel, err := filepath.Rel(moduleRoot, file); err == nil && !filepath.IsAbs(rel) && rel != ".." && !isParentPath(rel) {
				file = rel
			}
		}
		file = filepath.ToSlash(file)
		key := d.Analyzer + "|" + file + "|" + d.Message
		ord := seen[key]
		seen[key]++
		out = append(out, Finding{
			ID:       findingID(d.Analyzer, file, d.Message, ord),
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Message:  d.Message,
		})
	}
	return out
}

func isParentPath(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

// findingID is the stable identity: analyzer-prefixed FNV-32a over the
// position-independent content, with an ordinal distinguishing repeats
// of the same message in the same file (ordered by line, the only
// line-number dependence left).
func findingID(analyzer, file, message string, ordinal int) string {
	h := fnv.New32a()
	fmt.Fprintf(h, "%s|%s|%s|%d", analyzer, file, message, ordinal)
	return fmt.Sprintf("%s-%08x", analyzer, h.Sum32())
}

// Baseline is the committed suppression file: findings that existed
// when the baseline was last regenerated. New findings fail CI;
// baselined ones do not; baselined entries that no longer occur are
// *stale* and fail CI too, so the file can only shrink as debt is paid
// (regenerate with `make vet-baseline`).
type Baseline struct {
	// Comment documents the regeneration workflow inside the JSON file.
	Comment  string    `json:"comment,omitempty"`
	Findings []Finding `json:"findings"`
}

// baselineComment is written into generated baseline files.
const baselineComment = "phvet suppression baseline: grandfathered findings by stable ID. " +
	"New findings fail CI; entries here do not; stale entries (no longer reported) fail CI. " +
	"Regenerate with `make vet-baseline` after fixing findings."

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, so a fresh checkout with no grandfathered findings needs no
// file at all.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes the findings as a fresh baseline, sorted by file
// then line so diffs stay readable.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Comment: baselineComment, Findings: make([]Finding, len(findings))}
	copy(b.Findings, findings)
	sort.Slice(b.Findings, func(i, j int) bool {
		if b.Findings[i].File != b.Findings[j].File {
			return b.Findings[i].File < b.Findings[j].File
		}
		if b.Findings[i].Line != b.Findings[j].Line {
			return b.Findings[i].Line < b.Findings[j].Line
		}
		return b.Findings[i].ID < b.Findings[j].ID
	})
	for i := range b.Findings {
		b.Findings[i].Baselined = false // meaningless inside the file itself
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline marks findings covered by the baseline and returns the
// stale baseline entries: grandfathered findings that no longer occur
// and must be pruned from the file. Matching is by ID only — line
// numbers in the baseline are documentation.
func ApplyBaseline(b *Baseline, findings []Finding) (stale []Finding) {
	matched := make(map[string]bool, len(findings))
	ids := make(map[string]bool, len(b.Findings))
	for _, f := range b.Findings {
		ids[f.ID] = true
	}
	for i := range findings {
		if ids[findings[i].ID] {
			findings[i].Baselined = true
			matched[findings[i].ID] = true
		}
	}
	for _, f := range b.Findings {
		if !matched[f.ID] {
			stale = append(stale, f)
		}
	}
	return stale
}
