package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func diag(file string, line int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: file, Line: line},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestFindingIDsStableAcrossLineDrift is the property the baseline
// workflow rests on: an unrelated edit that shifts a grandfathered
// finding down the file must not change its ID.
func TestFindingIDsStableAcrossLineDrift(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	before := Findings(root, []Diagnostic{
		diag(filepath.Join(root, "internal/a/a.go"), 10, "mapiter", "iteration order escapes"),
	})
	after := Findings(root, []Diagnostic{
		diag(filepath.Join(root, "internal/a/a.go"), 47, "mapiter", "iteration order escapes"),
	})
	if before[0].ID != after[0].ID {
		t.Errorf("ID changed with line drift: %q vs %q", before[0].ID, after[0].ID)
	}
	if before[0].File != "internal/a/a.go" {
		t.Errorf("file not module-relative: %q", before[0].File)
	}
}

// TestFindingIDsDistinguishRepeats: two identical messages in one file
// must get distinct, order-stable IDs.
func TestFindingIDsDistinguishRepeats(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	f := filepath.Join(root, "internal/a/a.go")
	fs := Findings(root, []Diagnostic{
		diag(f, 5, "errdrop", "error from Close is discarded"),
		diag(f, 9, "errdrop", "error from Close is discarded"),
	})
	if fs[0].ID == fs[1].ID {
		t.Fatalf("repeated findings share ID %q", fs[0].ID)
	}
	again := Findings(root, []Diagnostic{
		diag(f, 6, "errdrop", "error from Close is discarded"),
		diag(f, 30, "errdrop", "error from Close is discarded"),
	})
	if fs[0].ID != again[0].ID || fs[1].ID != again[1].ID {
		t.Error("repeat ordinals are not position-order stable")
	}
	if fs[0].Analyzer != "errdrop" || fs[0].Line != 5 {
		t.Errorf("finding fields wrong: %+v", fs[0])
	}
}

// TestBaselineRoundTripAndStaleness covers the whole workflow: write,
// read, match by ID, and detect entries that no longer occur.
func TestBaselineRoundTripAndStaleness(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "baseline.json")
	old := Findings(root, []Diagnostic{
		diag(filepath.Join(root, "a.go"), 1, "mapiter", "first"),
		diag(filepath.Join(root, "b.go"), 2, "goloss", "second"),
	})
	if err := WriteBaseline(path, old); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("round trip lost findings: %d", len(b.Findings))
	}

	// Current run: "first" persists, "second" was fixed, "third" is new.
	current := Findings(root, []Diagnostic{
		diag(filepath.Join(root, "a.go"), 8, "mapiter", "first"),
		diag(filepath.Join(root, "c.go"), 3, "taintclock", "third"),
	})
	stale := ApplyBaseline(b, current)
	if !current[0].Baselined {
		t.Error("persisting finding not marked baselined")
	}
	if current[1].Baselined {
		t.Error("new finding wrongly baselined")
	}
	if len(stale) != 1 || stale[0].Message != "second" {
		t.Errorf("stale = %+v, want the fixed 'second' entry", stale)
	}
}

// TestBaselineMissingFileIsEmpty: a clean tree needs no baseline file.
func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Fatalf("missing baseline not empty: %+v", b.Findings)
	}
}
