package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Goloss is the static twin of internal/testutil's runtime goroutine-
// leak checker: it flags `go` launches whose goroutine runs an
// unbounded pump loop (`for { ... }` with no condition) with no visible
// tie to a tracked lifecycle. Every long-lived goroutine in the
// simulator — conn pumps, link sweepers, accept loops — must die when
// its owner closes, or device counts in the thousands leak schedulers
// dry and the leak checker fails tests one package at a time.
//
// Lifecycle evidence, any of which silences the finding:
//
//   - a sync.WaitGroup Done call (the launcher Waits for it);
//   - a context.Context Done call (cancellation bounds it);
//   - ranging over a channel (closing the channel ends it);
//   - any identifier whose name smells of lifecycle — done, stop, quit,
//     close(d), shutdown, exit, cancel, kill — consulted anywhere in
//     the body (covers `case <-c.closed:` and `if n.closed` patterns).
//
// Launches of named same-package functions are resolved and their
// bodies checked; cross-package and func-value launches are skipped
// (bias toward false negatives). Bodies without an unbounded loop are
// never flagged: a one-shot goroutine ends itself.
var Goloss = &Analyzer{
	Name:      "goloss",
	Doc:       "flag go-launched unbounded loops not tied to a WaitGroup, context or close/done channel",
	AppliesTo: inInternal,
	Run:       runGoloss,
}

// golossLifecycleRe matches identifier names that tie a goroutine to a
// lifecycle. Substring match on the lowercased name: "closed",
// "stopCh", "shutdownC", "ctxDone" all count.
var golossLifecycleRe = regexp.MustCompile(`(?i)done|stop|quit|clos|shut|exit|cancel|kill|halt`)

func runGoloss(pass *Pass) {
	// Index same-package function declarations so `go d.serveSDP()`
	// resolves to a checkable body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, gs, decls)
			if body == nil {
				return true
			}
			if !hasUnboundedLoop(body) || hasLifecycleEvidence(pass, body) {
				return true
			}
			pass.Reportf(gs.Go,
				"goroutine runs an unbounded loop with no lifecycle tie; bind it to a WaitGroup, a context, or a close/done channel so Close can reap it")
			return true
		})
	}
}

// goBody resolves the launched goroutine's body: a function literal
// in place, or the declaration of a same-package named function or
// method. nil when the body is not visible here.
func goBody(pass *Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasUnboundedLoop reports whether the body contains a `for { ... }`
// with no condition outside nested function literals. Conditional and
// three-clause loops have their own exit; ranging is bounded by the
// collection (channel ranges end on close and count as evidence
// anyway).
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if v.Cond == nil {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasLifecycleEvidence scans the body (nested literals included — a
// deferred closure calling wg.Done still ties the goroutine) for any
// of the lifecycle shapes.
func hasLifecycleEvidence(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.Ident:
			if golossLifecycleRe.MatchString(v.Name) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[v.X]; ok && isChannel(tv.Type) {
				found = true
			}
		case *ast.CallExpr:
			if obj, _ := methodFunc(pass.Info, v); obj != nil && obj.Name() == "Done" {
				if isMethodOf(obj, "sync", "WaitGroup") || isMethodOf(obj, "context", "Context") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
