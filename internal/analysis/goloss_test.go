package analysis

import "testing"

func TestGolossFindsOrphanPumps(t *testing.T) {
	checkFixture(t, Goloss, "repro/internal/fixture", "goloss")
}

func TestGolossScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/netsim", true},
		{"repro/internal/peerhood", true},
		{"repro/cmd/simworld", false},
		{"repro/examples/campus", false},
	}
	for _, c := range cases {
		if got := Goloss.AppliesTo(c.path); got != c.want {
			t.Errorf("Goloss.AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
