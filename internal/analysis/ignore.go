package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the directive that suppresses findings. The full
// shape is:
//
//	//phvet:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either at the end of the offending line or on the line
// directly above it. The analyzer list may be "all". The justification
// is free text and is strongly encouraged; it is not machine-checked.
const ignorePrefix = "phvet:ignore"

// ignoreSet indexes suppression directives by file, line and analyzer.
type ignoreSet struct {
	// byLine maps filename -> line -> set of analyzer names ("all"
	// suppresses every analyzer on that line).
	byLine map[string]map[int]map[string]bool
}

// collectIgnoresInto scans every comment in the files for phvet:ignore
// directives and merges them into set. A directive claims its own line
// and the line below it, so both trailing-comment and comment-above
// styles work.
func collectIgnoresInto(set *ignoreSet, fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names := parseIgnoreNames(rest)
				pos := fset.Position(c.Pos())
				set.add(pos.Filename, pos.Line, names)
				set.add(pos.Filename, pos.Line+1, names)
			}
		}
	}
}

// parseIgnoreNames extracts the analyzer list from the directive body.
// The first whitespace-separated field is a comma-separated analyzer
// list; everything after it is the human justification. A bare
// directive with no fields suppresses all analyzers.
func parseIgnoreNames(rest string) []string {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return []string{"all"}
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return []string{"all"}
	}
	return names
}

func (s *ignoreSet) add(file string, line int, names []string) {
	lines := s.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, n := range names {
		set[n] = true
	}
}

// suppresses reports whether the diagnostic is covered by a directive.
func (s *ignoreSet) suppresses(d Diagnostic) bool {
	set := s.byLine[d.Pos.Filename][d.Pos.Line]
	return set != nil && (set["all"] || set[d.Analyzer])
}
