package analysis

import "testing"

// TestIgnoreDirectives runs walltime and detrand together over a
// fixture where every violation but two carries a //phvet:ignore; the
// surviving diagnostics must be exactly the deliberate controls.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadFixture(t, "repro/internal/fixture", "ignore")
	diags := Run(pkg, []*Analyzer{Walltime, Detrand})
	if len(diags) != 2 {
		for _, d := range diags {
			t.Logf("diagnostic: %s", d)
		}
		t.Fatalf("got %d diagnostics, want exactly the 2 unsuppressed controls", len(diags))
	}
	if diags[0].Analyzer != "walltime" || diags[1].Analyzer != "detrand" {
		t.Errorf("surviving diagnostics = %s / %s, want the walltime then detrand controls",
			diags[0], diags[1])
	}
}

func TestParseIgnoreNames(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", []string{"all"}},
		{"walltime reason text", []string{"walltime"}},
		{"walltime,detrand several named", []string{"walltime", "detrand"}},
		{"all justification", []string{"all"}},
	}
	for _, c := range cases {
		got := parseIgnoreNames(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseIgnoreNames(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIgnoreNames(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
