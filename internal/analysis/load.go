package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one module package, parsed and type-checked.
type Package struct {
	Path  string // import path, e.g. "repro/internal/netsim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
	// Errors holds type-check problems. Analysis still runs — the
	// checker fills Info with everything it could resolve — but the
	// driver reports them and fails the run.
	Errors []error

	// imports are the module-internal import paths, scanned from the
	// parsed files; they drive the parallel scheduling below.
	imports []string
}

// Loader loads and type-checks packages of a single module using only
// the standard library. Module-internal imports resolve recursively
// from source; all other imports (the standard library) resolve through
// go/importer's source importer. Test files are not loaded: phvet's
// invariants deliberately exempt _test.go code.
//
// Loading is parallel in two phases. Parsing fans out over a worker
// pool: every package reachable from the patterns through
// module-internal imports is parsed concurrently (token.FileSet is
// documented safe for concurrent use). Type-checking then proceeds in
// dependency waves — each wave checks, in parallel, every package
// whose module-internal imports are already checked — so independent
// subtrees of the import graph overlap instead of serializing. The
// standard-library source importer is not concurrency-safe and is
// guarded by a mutex; after the first package warms its cache the
// guarded calls are cheap map hits.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	workers    int

	stdMu sync.Mutex
	std   types.Importer

	mu   sync.Mutex
	pkgs map[string]*Package // memo by import path, complete once checked
}

// NewLoader returns a loader rooted at the directory containing go.mod.
// root may be any directory inside the module.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: modRoot,
		modulePath: modPath,
		workers:    loaderWorkers(),
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// loaderWorkers sizes the pool: GOMAXPROCS, overridable for tests and
// triage via PHVET_WORKERS (1 = the old sequential behavior).
func loaderWorkers() int {
	if s := os.Getenv("PHVET_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// ModulePath reports the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the enclosing go.mod and extracts the
// module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// Load resolves the patterns ("./...", "./dir/...", or plain package
// directories, relative to the module root) into packages, loading and
// type-checking each plus its module-internal dependencies. Returned
// packages are exactly those matched by the patterns, in path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "...") {
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			if base == "." || base == "" {
				base = l.moduleRoot
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(l.moduleRoot, base)
			}
			dirs, err := goDirsUnder(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.moduleRoot, dir)
		}
		dirSet[filepath.Clean(dir)] = true
	}
	var targets []string
	for d := range dirSet {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		targets = append(targets, path)
	}
	sort.Strings(targets)

	parsed, err := l.parseClosure(targets)
	if err != nil {
		return nil, err
	}
	if err := l.checkWaves(parsed); err != nil {
		return nil, err
	}

	var out []*Package
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, path := range targets {
		if pkg := l.pkgs[path]; pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// parseClosure parses, with a worker pool, every not-yet-loaded package
// reachable from the target paths through module-internal imports,
// breadth-first: each round parses the whole frontier in parallel, then
// the freshly scanned imports form the next frontier. A target
// directory with no non-test sources is skipped; an *imported* one is
// an error (the import cannot resolve). Returns the freshly parsed
// packages.
func (l *Loader) parseClosure(targets []string) (map[string]*Package, error) {
	parsed := make(map[string]*Package)
	queued := make(map[string]bool)
	viaImport := make(map[string]bool)
	var pending []string
	add := func(path string, imported bool) {
		if imported {
			viaImport[path] = true
		}
		if queued[path] {
			return
		}
		l.mu.Lock()
		_, done := l.pkgs[path]
		l.mu.Unlock()
		if done {
			return
		}
		queued[path] = true
		pending = append(pending, path)
	}
	for _, t := range targets {
		add(t, false)
	}
	for len(pending) > 0 {
		batch := pending
		pending = nil
		results := make([]*Package, len(batch))
		errs := make([]error, len(batch))
		var wg sync.WaitGroup
		sem := make(chan struct{}, l.workers)
		for i, path := range batch {
			wg.Add(1)
			go func(i int, path string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i], errs[i] = l.parsePackage(path)
			}(i, path)
		}
		wg.Wait()
		for i, path := range batch {
			if errs[i] != nil {
				return nil, errs[i]
			}
			if results[i] == nil {
				if viaImport[path] {
					return nil, fmt.Errorf("analysis: no Go files in %s", l.dirFor(path))
				}
				continue
			}
			parsed[path] = results[i]
			for _, imp := range results[i].imports {
				add(imp, true)
			}
		}
	}
	return parsed, nil
}

// parsePackage parses the non-test sources of one import path and scans
// its module-internal imports. Returns (nil, nil) when the directory
// has no sources.
func (l *Loader) parsePackage(path string) (*Package, error) {
	dir := l.dirFor(path)
	files, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	seen := make(map[string]bool)
	for _, file := range files {
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isModulePath(p) && !seen[p] {
				seen[p] = true
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

func (l *Loader) isModulePath(p string) bool {
	return p == l.modulePath || strings.HasPrefix(p, l.modulePath+"/")
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

// checkWaves type-checks the parsed packages in dependency waves: every
// package whose module-internal imports are all checked goes into the
// current wave, and the wave runs on the worker pool. A wave that
// cannot form while packages remain is an import cycle.
func (l *Loader) checkWaves(parsed map[string]*Package) error {
	remaining := make(map[string]*Package, len(parsed))
	for p, pkg := range parsed {
		remaining[p] = pkg
	}
	for len(remaining) > 0 {
		var wave []*Package
		for _, pkg := range remaining {
			ready := true
			for _, imp := range pkg.imports {
				if _, pending := remaining[imp]; pending {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, pkg)
			}
		}
		if len(wave) == 0 {
			var stuck []string
			for p := range remaining {
				stuck = append(stuck, p)
			}
			sort.Strings(stuck)
			return fmt.Errorf("analysis: import cycle through %s", stuck[0])
		}
		sort.Slice(wave, func(i, j int) bool { return wave[i].Path < wave[j].Path })
		var wg sync.WaitGroup
		sem := make(chan struct{}, l.workers)
		for _, pkg := range wave {
			delete(remaining, pkg.Path)
			wg.Add(1)
			go func(pkg *Package) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				l.checkPackage(pkg)
			}(pkg)
		}
		wg.Wait()
	}
	return nil
}

// checkPackage type-checks one parsed package (all of whose
// module-internal imports are already in the memo) and publishes it.
func (l *Loader) checkPackage(pkg *Package) {
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Check returns the (possibly partial) package even on error; the
	// collected pkg.Errors carry the details.
	pkg.Types, _ = conf.Check(pkg.Path, l.fset, pkg.Files, pkg.Info)
	l.mu.Lock()
	l.pkgs[pkg.Path] = pkg
	l.mu.Unlock()
}

// goDirsUnder lists directories under base that contain at least one
// non-test .go file, skipping testdata, hidden and underscore dirs.
func goDirsUnder(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSourceFiles(p)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// goSourceFiles lists the non-test .go files in dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// moduleImporter resolves module-internal imports from the memo (the
// wave scheduler guarantees dependencies are checked first) and defers
// everything else to the mutex-guarded standard-library source
// importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if l.isModulePath(path) {
		l.mu.Lock()
		pkg := l.pkgs[path]
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", l.dirFor(path))
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
