package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one module package, parsed and type-checked.
type Package struct {
	Path  string // import path, e.g. "repro/internal/netsim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
	// Errors holds type-check problems. Analysis still runs — the
	// checker fills Info with everything it could resolve — but the
	// driver reports them and fails the run.
	Errors []error
}

// Loader loads and type-checks packages of a single module using only
// the standard library. Module-internal imports resolve recursively
// from source; all other imports (the standard library) resolve through
// go/importer's source importer. Test files are not loaded: phvet's
// invariants deliberately exempt _test.go code.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package // memo by import path
	loading    map[string]bool     // cycle detection
}

// NewLoader returns a loader rooted at the directory containing go.mod.
// root may be any directory inside the module.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: modRoot,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModulePath reports the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the enclosing go.mod and extracts the
// module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// Load resolves the patterns ("./...", "./dir/...", or plain package
// directories, relative to the module root) into packages, loading and
// type-checking each plus its module-internal dependencies. Returned
// packages are exactly those matched by the patterns, in path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirSet := make(map[string]bool)
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "...") {
			base := strings.TrimSuffix(pat, "...")
			base = strings.TrimSuffix(base, "/")
			if base == "." || base == "" {
				base = l.moduleRoot
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(l.moduleRoot, base)
			}
			dirs, err := goDirsUnder(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				dirSet[d] = true
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.moduleRoot, dir)
		}
		dirSet[filepath.Clean(dir)] = true
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)

	var out []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// goDirsUnder lists directories under base that contain at least one
// non-test .go file, skipping testdata, hidden and underscore dirs.
func goDirsUnder(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := goSourceFiles(p)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// goSourceFiles lists the non-test .go files in dir, sorted.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
	}
	if rel == "." {
		return l.modulePath, nil
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// loadPath parses and type-checks the package at the import path,
// memoized. Returns (nil, nil) when the directory has no non-test
// sources.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset}
	for _, file := range files {
		f, err := parser.ParseFile(l.fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: (*moduleImporter)(l),
		Error:    func(err error) { pkg.Errors = append(pkg.Errors, err) },
	}
	// Check returns the (possibly partial) package even on error; the
	// collected pkg.Errors carry the details.
	pkg.Types, _ = conf.Check(path, l.fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// moduleImporter resolves module-internal imports from source and
// defers everything else to the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		pkg, err := l.loadPath(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: type-checking %s failed", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
