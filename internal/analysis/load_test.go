package analysis

import (
	"strings"
	"testing"
)

// TestLoaderResolvesModulePackages exercises the whole pipeline the
// phvet driver uses: find go.mod, map directories to import paths,
// parse, and type-check with module-internal imports resolved from
// source.
func TestLoaderResolvesModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "repro" {
		t.Fatalf("module path = %q, want %q", l.ModulePath(), "repro")
	}

	// profile imports ids, interest and vtime — loading it proves the
	// recursive module importer works.
	pkgs, err := l.Load("internal/profile")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "repro/internal/profile" {
		t.Errorf("package path = %q, want repro/internal/profile", pkg.Path)
	}
	for _, e := range pkg.Errors {
		t.Errorf("type error: %v", e)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Store") == nil {
		t.Error("type-checked package is missing the Store type")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader picked up test file %s", name)
		}
	}
}

func TestLoaderPatternExpansion(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/vtime/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/vtime" {
		t.Fatalf("internal/vtime/... resolved to %v", pkgPaths(pkgs))
	}
	// testdata must never be analyzed: its fixtures violate the
	// invariants on purpose.
	all, err := l.Load("internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("loader descended into %s", p.Path)
		}
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestLoaderParallelMatchesSequential pins the parallel loader against
// the one-worker configuration: same packages, same types, same
// analyzer verdicts, regardless of pool size or scheduling.
func TestLoaderParallelMatchesSequential(t *testing.T) {
	load := func(workers int) []*Package {
		t.Helper()
		l, err := NewLoader(".")
		if err != nil {
			t.Fatal(err)
		}
		l.workers = workers
		// simtest sits near the top of the module's import graph, so
		// this exercises multi-wave scheduling over shared deps.
		pkgs, err := l.Load("internal/simtest", "internal/harness")
		if err != nil {
			t.Fatal(err)
		}
		return pkgs
	}
	seq := load(1)
	par := load(8)
	if len(seq) != len(par) {
		t.Fatalf("package count: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Path != par[i].Path {
			t.Errorf("package %d: %s vs %s", i, seq[i].Path, par[i].Path)
		}
		if len(seq[i].Errors) != len(par[i].Errors) {
			t.Errorf("%s: %d vs %d type errors", seq[i].Path, len(seq[i].Errors), len(par[i].Errors))
		}
	}
	sd := RunAll(seq, All())
	pd := RunAll(par, All())
	if len(sd) != len(pd) {
		t.Fatalf("diagnostics: sequential %d, parallel %d", len(sd), len(pd))
	}
	for i := range sd {
		if sd[i].String() != pd[i].String() {
			t.Errorf("diagnostic %d differs:\n  seq: %s\n  par: %s", i, sd[i], pd[i])
		}
	}
}
