package analysis

import (
	"strings"
	"testing"
)

// TestLoaderResolvesModulePackages exercises the whole pipeline the
// phvet driver uses: find go.mod, map directories to import paths,
// parse, and type-check with module-internal imports resolved from
// source.
func TestLoaderResolvesModulePackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "repro" {
		t.Fatalf("module path = %q, want %q", l.ModulePath(), "repro")
	}

	// profile imports ids, interest and vtime — loading it proves the
	// recursive module importer works.
	pkgs, err := l.Load("internal/profile")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "repro/internal/profile" {
		t.Errorf("package path = %q, want repro/internal/profile", pkg.Path)
	}
	for _, e := range pkg.Errors {
		t.Errorf("type error: %v", e)
	}
	if pkg.Types == nil || pkg.Types.Scope().Lookup("Store") == nil {
		t.Error("type-checked package is missing the Store type")
	}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			t.Errorf("loader picked up test file %s", name)
		}
	}
}

func TestLoaderPatternExpansion(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/vtime/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/vtime" {
		t.Fatalf("internal/vtime/... resolved to %v", pkgPaths(pkgs))
	}
	// testdata must never be analyzed: its fixtures violate the
	// invariants on purpose.
	all, err := l.Load("internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("loader descended into %s", p.Path)
		}
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}
