package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Lockguard enforces the project's mutex discipline in two ways:
//
//  1. a sync.Mutex/RWMutex held across a blocking operation — channel
//     send/receive, a select without a default, ranging over a channel,
//     or a call to a known-blocking method (Send/Recv/Accept/Dial/Wait/
//     Sleep) — is flagged: in the simulator that pattern serializes
//     independent devices and is the classic shape of the deadlocks the
//     netsim stress tests hunt for;
//  2. a Lock with no matching Unlock anywhere in the same function
//     (direct, deferred, or inside a function literal) is flagged.
//
// sync.Cond.Wait is exempt from (1): the condition-variable contract
// requires holding the lock.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "flag mutexes held across blocking operations and Lock calls with no Unlock",
	Run:  runLockguard,
}

// blockingMethods are method names treated as blocking operations when
// called with a lock held. The set is deliberately small and
// name-based: it targets this codebase's Conn/Listener/WaitGroup
// surface without drowning map lookups in false positives.
var blockingMethods = map[string]bool{
	"Send":   true,
	"Recv":   true,
	"Accept": true,
	"Dial":   true,
	"Wait":   true,
	"Sleep":  true,
}

func runLockguard(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// lockKey identifies one lock "side": the receiver expression plus
// whether it is the read side of an RWMutex (RLock pairs with RUnlock,
// Lock with Unlock).
type lockKey struct {
	recv string
	read bool
}

// lockCall classifies a call expression as a mutex lock or unlock.
// ok is false for anything else.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (key lockKey, isLock bool, ok bool) {
	obj, recv := methodFunc(info, call)
	if obj == nil {
		return lockKey{}, false, false
	}
	if !isMethodOf(obj, "sync", "Mutex") && !isMethodOf(obj, "sync", "RWMutex") {
		return lockKey{}, false, false
	}
	key.recv = types.ExprString(recv)
	switch obj.Name() {
	case "Lock":
		return key, true, true
	case "RLock":
		key.read = true
		return key, true, true
	case "Unlock":
		return key, false, true
	case "RUnlock":
		key.read = true
		return key, false, true
	}
	return lockKey{}, false, false
}

// checkFunc runs both lockguard checks over one function body.
// Function literals nested inside are skipped here (each gets its own
// checkFunc call from the inspector) except that their unlocks count
// toward check 2 — an unlock inside a closure is still an unlock this
// function arranges.
func checkFunc(pass *Pass, body *ast.BlockStmt) {
	// Check 2: every locked key needs at least one unlock somewhere in
	// the function, closures included.
	locks := make(map[lockKey][]token.Pos)
	unlocks := make(map[lockKey]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, isLock, ok := classifyLockCall(pass.Info, call); ok {
			if isLock {
				locks[key] = append(locks[key], call.Pos())
			} else {
				unlocks[key] = true
			}
		}
		return true
	})
	for key, positions := range locks {
		if unlocks[key] {
			continue
		}
		verb := "Lock"
		if key.read {
			verb = "RLock"
		}
		for _, pos := range positions {
			pass.Reportf(pos, "%s.%s with no matching unlock in this function", key.recv, verb)
		}
	}

	// Check 1: linear scan for blocking operations while a lock is
	// held.
	scanBlock(pass, body.List, make(map[lockKey]token.Pos))
}

// scanBlock walks a statement list tracking which locks are held.
// Nested blocks share the held map: an unlock on any scanned path
// releases the key, which biases the check toward false negatives
// rather than false positives on branchy unlock patterns.
func scanBlock(pass *Pass, stmts []ast.Stmt, held map[lockKey]token.Pos) {
	for _, s := range stmts {
		if call := lockStmtCall(s); call != nil {
			if key, isLock, ok := classifyLockCall(pass.Info, call); ok {
				if isLock {
					held[key] = call.Pos()
				} else {
					delete(held, key)
				}
				continue
			}
		}
		scanStmt(pass, s, held)
	}
}

// lockStmtCall extracts the call from a plain `x.Lock()` / `x.Unlock()`
// expression statement.
func lockStmtCall(s ast.Stmt) *ast.CallExpr {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, _ := es.X.(*ast.CallExpr)
	return call
}

// scanStmt looks for blocking operations in one statement while locks
// are held, recursing into compound statements.
func scanStmt(pass *Pass, s ast.Stmt, held map[lockKey]token.Pos) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		scanBlock(pass, st.List, held)
	case *ast.IfStmt:
		reportBlockingExprs(pass, st.Cond, held)
		scanStmt(pass, st.Body, held)
		if st.Else != nil {
			scanStmt(pass, st.Else, held)
		}
	case *ast.ForStmt:
		reportBlockingExprs(pass, st.Cond, held)
		scanStmt(pass, st.Body, held)
	case *ast.RangeStmt:
		if len(held) > 0 && isChannel(exprType(pass, st.X)) {
			reportHeld(pass, st.Range, held, "range over a channel")
		}
		scanStmt(pass, st.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			reportHeld(pass, st.Select, held, "blocking select")
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				scanBlock(pass, cc.Body, held)
			}
		}
	case *ast.SwitchStmt:
		reportBlockingExprs(pass, st.Tag, held)
		scanCaseBodies(pass, st.Body, held)
	case *ast.TypeSwitchStmt:
		scanCaseBodies(pass, st.Body, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			reportHeld(pass, st.Arrow, held, "channel send")
		}
		reportBlockingExprs(pass, st.Value, held)
	case *ast.LabeledStmt:
		scanStmt(pass, st.Stmt, held)
	case *ast.GoStmt:
		// The spawned call runs on its own goroutine; only its
		// arguments are evaluated while the lock is held.
		for _, arg := range st.Call.Args {
			reportBlockingExprs(pass, arg, held)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held until return, so the
		// held set is deliberately untouched; for any deferred call
		// only the argument expressions are evaluated here and now.
		for _, arg := range st.Call.Args {
			reportBlockingExprs(pass, arg, held)
		}
	default:
		reportBlockingNode(pass, s, held)
	}
}

func scanCaseBodies(pass *Pass, body *ast.BlockStmt, held map[lockKey]token.Pos) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			scanBlock(pass, cc.Body, held)
		}
	}
}

func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func reportBlockingExprs(pass *Pass, e ast.Expr, held map[lockKey]token.Pos) {
	if e == nil || len(held) == 0 {
		return
	}
	reportBlockingNode(pass, e, held)
}

// reportBlockingNode inspects a leaf statement or expression for
// channel receives and known-blocking method calls. Function literals
// are skipped: their bodies run later, typically on another goroutine.
func reportBlockingNode(pass *Pass, n ast.Node, held map[lockKey]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch e := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				reportHeld(pass, e.OpPos, held, "channel receive")
			}
		case *ast.SendStmt:
			reportHeld(pass, e.Arrow, held, "channel send")
		case *ast.CallExpr:
			obj, _ := methodFunc(pass.Info, e)
			if obj == nil || !blockingMethods[obj.Name()] {
				return true
			}
			if isMethodOf(obj, "sync", "Cond") {
				return true // Cond.Wait must hold the lock
			}
			reportHeld(pass, e.Pos(), held, "call to blocking method "+obj.Name())
		}
		return true
	})
}

func reportHeld(pass *Pass, pos token.Pos, held map[lockKey]token.Pos, what string) {
	for key := range held {
		verb := "Lock"
		if key.read {
			verb = "RLock"
		}
		pass.Reportf(pos, "%s while %s.%s is held; release the mutex before blocking", what, key.recv, verb)
	}
}
