package analysis

import "testing"

func TestLockguardFindsHeldBlockingAndMissingUnlock(t *testing.T) {
	checkFixture(t, Lockguard, "repro/internal/fixture", "lockguard")
}
