package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter flags `range` statements over maps whose iteration order
// escapes into an ordering-sensitive sink. Map iteration order is
// randomized per run, so any byte sequence, event ordering or digest it
// reaches differs between replays of the same seed — exactly the class
// of nondeterminism the chaos suite's byte-for-byte replay contract
// forbids.
//
// Sinks, checked inside the loop body:
//
//   - append to a slice declared outside the loop, unless that slice is
//     sorted later in the same function (the canonical collect-then-
//     sort-keys pattern stays legal);
//   - a channel send (event enqueue in iteration order);
//   - a call to an ordering-sensitive method: Send/Enqueue/Dispatch/
//     Publish/Broadcast (fan-out order), Write/WriteString/WriteByte
//     (wire bytes, digest input — hash.Hash is an io.Writer), or a
//     Marshal*/Encode*/Append* codec call.
//
// Order-insensitive bodies — counting, summing, max-finding, writes
// into another map, deletes — are untouched. Closures inside the body
// are skipped (they typically run later, off the iteration order);
// the bias, as everywhere in phvet, is toward false negatives.
var Mapiter = &Analyzer{
	Name:      "mapiter",
	Doc:       "flag map iteration order escaping into slices (unsorted), channels, wire writes or digests",
	AppliesTo: inInternal,
	Run:       runMapiter,
}

// mapiterSinkMethods are method names whose call inside a map-range
// body consumes the iteration order: transport sends, event/dispatch
// fan-outs, and byte-stream writes (bytes.Buffer, strings.Builder,
// hash.Hash and net conns all expose Write*).
var mapiterSinkMethods = map[string]bool{
	"Send":        true,
	"Enqueue":     true,
	"Dispatch":    true,
	"Publish":     true,
	"Broadcast":   true,
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

// mapiterCodecPrefixes extend the sink set to the wire codec surface:
// marshalling in iteration order commits the order to wire bytes.
var mapiterCodecPrefixes = [...]string{"Marshal", "Encode", "Append"}

func runMapiter(pass *Pass) {
	for _, f := range pass.Files {
		// Walk with explicit function context so the sorted-later
		// exemption can scan the rest of the enclosing function.
		var walk func(n ast.Node, fn ast.Node)
		walk = func(n ast.Node, fn ast.Node) {
			ast.Inspect(n, func(c ast.Node) bool {
				switch v := c.(type) {
				case *ast.FuncDecl:
					if v == n {
						return true
					}
					walk(v, v)
					return false
				case *ast.FuncLit:
					if v == n {
						return true
					}
					walk(v, v)
					return false
				case *ast.RangeStmt:
					if isMapType(exprType(pass, v.X)) {
						checkMapRange(pass, v, fn)
					}
				}
				return true
			})
		}
		walk(f, nil)
	}
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for sinks. fn is the
// enclosing function (FuncDecl or FuncLit) used to look for a
// subsequent sort of an append target; nil at file scope.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, fn ast.Node) {
	mapExpr := types.ExprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			return false // runs later; not this iteration order
		case *ast.RangeStmt:
			if v != rng && isMapType(exprType(pass, v.X)) {
				return false // the nested range reports for itself
			}
		case *ast.SendStmt:
			pass.Reportf(v.Arrow,
				"iteration order of map %s escapes into a channel send; enqueue from sorted keys instead",
				mapExpr)
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, v, rng, fn, mapExpr)
		case *ast.CallExpr:
			if obj, _ := methodFunc(pass.Info, v); obj != nil {
				name := obj.Name()
				if mapiterSinkMethods[name] || hasAnyPrefix(name, mapiterCodecPrefixes[:]) {
					pass.Reportf(v.Pos(),
						"iteration order of map %s escapes into ordering-sensitive call %s; iterate sorted keys instead",
						mapExpr, name)
				}
			}
		}
		return true
	})
}

// checkMapRangeAppend flags `dst = append(dst, ...)` inside a map-range
// body when dst outlives the loop and is never sorted afterwards in the
// same function.
func checkMapRangeAppend(pass *Pass, assign *ast.AssignStmt, rng *ast.RangeStmt, fn ast.Node, mapExpr string) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(assign.Lhs) {
			continue
		}
		target := assignTargetObj(pass.Info, assign.Lhs[i])
		if target == nil {
			continue
		}
		// A target rooted at a variable declared inside the loop body
		// (`cp := *s; cp.Xs = append(cp.Xs, ...)`) dies with the
		// iteration; its order cannot escape.
		if rng.Body.Pos() <= target.Pos() && target.Pos() <= rng.Body.End() {
			continue
		}
		if fn != nil && sortedInFunc(pass, fn, target) {
			continue
		}
		pass.Reportf(call.Pos(),
			"iteration order of map %s escapes into append to %s, which is never sorted in this function; sort it (or collect+sort keys) before the order can reach the wire, an event queue or a digest",
			mapExpr, types.ExprString(assign.Lhs[i]))
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// assignTargetObj resolves the assignment target to the object of its
// *root* variable: `keys` for keys, `cp` for cp.Technologies. The root
// decides lifetime (loop-local copies are exempt) and is what a later
// sort call must mention.
func assignTargetObj(info *types.Info, lhs ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := info.Defs[e]; obj != nil {
				return obj
			}
			return info.Uses[e]
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}

// sortedInFunc reports whether the enclosing function also passes
// target to a sort/slices ordering call — the collect-then-sort idiom.
func sortedInFunc(pass *Pass, fn ast.Node, target types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isSortCall(pass.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(pass.Info, arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall reports whether call orders its argument: a package-level
// function of sort or slices, or any function whose name says it sorts
// (sortEvents, sortConns, SortByID — the house idiom for a shared
// comparator).
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj := packageFunc(info, fun.Sel); obj != nil {
			switch obj.Pkg().Path() {
			case "sort", "slices":
				return true
			}
		}
		return sortishName(fun.Sel.Name)
	case *ast.Ident:
		return sortishName(fun.Name)
	}
	return false
}

// sortishName matches function names that promise ordering.
func sortishName(name string) bool {
	return strings.Contains(strings.ToLower(name), "sort")
}

// exprMentions reports whether e references obj anywhere (covers
// sort.Strings(keys), sort.Slice(keys, ...), sort.Sort(byID(keys))).
func exprMentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// hasAnyPrefix reports whether s starts with any of the prefixes.
func hasAnyPrefix(s string, prefixes []string) bool {
	for _, p := range prefixes {
		if len(s) >= len(p) && s[:len(p)] == p {
			return true
		}
	}
	return false
}
