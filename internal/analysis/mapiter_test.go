package analysis

import "testing"

func TestMapiterFindsOrderingSinks(t *testing.T) {
	checkFixture(t, Mapiter, "repro/internal/fixture", "mapiter")
}

func TestMapiterScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/netsim", true},
		{"repro/internal/vtime", true}, // waking waiters in map order is still an ordering bug
		{"repro/cmd/chaos", false},     // report tools may print in any order
		{"repro/examples/bus", false},
	}
	for _, c := range cases {
		if got := Mapiter.AppliesTo(c.path); got != c.want {
			t.Errorf("Mapiter.AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
