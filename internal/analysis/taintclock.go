package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Taintclock upgrades walltime/detrand from direct-call detection to an
// interprocedural call-graph taint pass. A module function that calls
// time.Now (or any other forbidden wall-clock/global-rand function) is
// a taint *seed*; taint propagates callee-to-caller across the whole
// loaded package set, and every call site in a simulation-plane package
// that reaches a tainted helper is a finding — so wrapping the wall
// clock in a helper (or a helper of a helper, in any package) no longer
// hides it from phvet.
//
// Two escape hatches keep the sanctioned real-time edges quiet:
//
//   - package allowlist: internal/vtime (the clock implementations) and
//     internal/testutil (the leak checker polls real teardown) never
//     seed or carry taint — calling into them is the *fix*, not the bug;
//   - a seed call suppressed in place with //phvet:ignore walltime (or
//     detrand) marks its enclosing function as a justified real-time
//     edge — the justification text covers the whole function, so its
//     callers are not poisoned. New helpers without a justification
//     poison every transitive caller.
//
// Direct forbidden calls are walltime/detrand findings already;
// taintclock reports only the *indirect* sites (calls to tainted module
// functions), each with its witness path to the root clock/rand call.
//
// Known false negatives, by design: calls through interfaces do not
// propagate (the interface method has no body), and function values
// passed around taint only the function that references them.
var Taintclock = &Analyzer{
	Name:      "taintclock",
	Doc:       "interprocedural taint: flag simulation-plane calls that transitively reach the wall clock or global rand",
	AppliesTo: taintReportsIn,
	RunModule: runTaintclock,
}

// taintReportsIn scopes reporting to the simulation plane: internal/
// minus the allowlisted real-time packages.
func taintReportsIn(pkgPath string) bool {
	return inInternal(pkgPath) && !taintAllowedPkg(pkgPath)
}

// taintAllowedPkg is the package-level allowlist for the real-time
// edge: the virtual-clock implementations and the test-teardown
// utilities read the host clock on purpose, and functions there neither
// seed nor carry taint. The discrete-event scheduler joins them: its
// runner's settle heuristic measures host-scheduler quiescence (a
// real-time property by definition — see DESIGN.md "Discrete-event
// core"), and everything else in the package IS the sanctioned virtual
// clock.
func taintAllowedPkg(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/vtime") ||
		strings.Contains(pkgPath, "/internal/testutil") ||
		strings.Contains(pkgPath, "/internal/des")
}

// taintSeedName classifies obj as a forbidden wall-clock or global-rand
// function and returns its display name ("time.Now", "rand.Intn"), or
// "".
func taintSeedName(obj *types.Func) string {
	if obj.Pkg() == nil || obj.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if walltimeForbidden[obj.Name()] {
			return "time." + obj.Name()
		}
	case "math/rand", "math/rand/v2":
		if !detrandAllowed[obj.Name()] {
			return "rand." + obj.Name()
		}
	}
	return ""
}

// taintFn is one module function's node in the call graph.
type taintFn struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// seed is the forbidden function this body calls directly ("" when
	// none survives suppression).
	seed string
	// sanctioned marks a function whose direct seed call carries a
	// //phvet:ignore — a justified real-time edge that stops taint.
	sanctioned bool
	// callees are module functions this body references, with one
	// representative position each.
	callees map[*types.Func]token.Pos

	// taint state, filled by propagation:
	tainted bool
	// via is the callee that tainted this function (nil for seeds).
	via *types.Func
}

func runTaintclock(mp *ModulePass) {
	modulePkgs := make(map[*types.Package]*Package, len(mp.Pkgs))
	for _, pkg := range mp.Pkgs {
		if pkg.Types != nil {
			modulePkgs[pkg.Types] = pkg
		}
	}

	// Pass 1: build one node per declared function/method, recording
	// direct seeds (minus suppressed ones) and module-internal edges.
	fns := make(map[*types.Func]*taintFn)
	var order []*taintFn // deterministic propagation order
	for _, pkg := range mp.Pkgs {
		ignores := &ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
		collectIgnoresInto(ignores, pkg.Fset, pkg.Files)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := &taintFn{obj: obj, pkg: pkg, decl: fd, callees: make(map[*types.Func]token.Pos)}
				buildTaintNode(fn, ignores, modulePkgs)
				fns[obj] = fn
				order = append(order, fn)
			}
		}
	}

	// Pass 2: propagate taint callee-to-caller to a fixed point. The
	// allowlisted packages and sanctioned functions are barriers: they
	// never become tainted, so taint cannot flow through them. Callees
	// are visited in source-position order so the chosen witness edge —
	// and with it the finding message — is replay-stable.
	for _, fn := range order {
		if fn.seed != "" && !taintAllowedPkg(fn.pkg.Path) {
			fn.tainted = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if fn.tainted || fn.sanctioned || taintAllowedPkg(fn.pkg.Path) {
				continue
			}
			for _, callee := range sortedCallees(fn.callees) {
				if c := fns[callee]; c != nil && c.tainted {
					fn.tainted = true
					fn.via = callee
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: report every call site of a tainted module function, with
	// its witness path down to the root forbidden call.
	for _, fn := range order {
		if !mp.Applies(fn.pkg) || fn.sanctioned {
			continue
		}
		type site struct {
			callee *types.Func
			pos    token.Pos
		}
		var sites []site
		for callee, pos := range fn.callees {
			if c := fns[callee]; c != nil && c.tainted {
				sites = append(sites, site{callee, pos})
			}
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, s := range sites {
			mp.Reportf(fn.pkg, s.pos,
				"call to %s reaches the wall clock/global rand (%s); thread a vtime.Clock or seeded *rand.Rand through, or justify the edge with //phvet:ignore at the root call",
				s.callee.Name(), taintPath(fns, s.callee))
		}
	}

	// Package-level var initializers reference functions outside any
	// body; a stored tainted helper smuggles the clock just like a
	// stored time.Now does for walltime.
	for _, pkg := range mp.Pkgs {
		if !mp.Applies(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				ast.Inspect(gd, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
						return true // literal bodies still reference in this scope
					}
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj, ok := pkg.Info.Uses[id].(*types.Func)
					if !ok {
						return true
					}
					if c := fns[obj]; c != nil && c.tainted {
						mp.Reportf(pkg, id.Pos(),
							"call to %s reaches the wall clock/global rand (%s); thread a vtime.Clock or seeded *rand.Rand through, or justify the edge with //phvet:ignore at the root call",
							obj.Name(), taintPath(fns, obj))
					}
					return true
				})
			}
		}
	}
}

// buildTaintNode walks one function body, classifying every referenced
// function object as a seed or a module-internal edge. References count
// like calls (a stored time.Now function value smuggles the clock just
// as effectively), matching walltime's ident-based detection.
func buildTaintNode(fn *taintFn, ignores *ignoreSet, modulePkgs map[*types.Package]*Package) {
	info := fn.pkg.Info
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return true
		}
		if name := taintSeedName(obj); name != "" {
			pos := fn.pkg.Fset.Position(id.Pos())
			if ignores.suppresses(Diagnostic{Pos: pos, Analyzer: "walltime"}) ||
				ignores.suppresses(Diagnostic{Pos: pos, Analyzer: "detrand"}) ||
				ignores.suppresses(Diagnostic{Pos: pos, Analyzer: "taintclock"}) {
				fn.sanctioned = true
				return true
			}
			fn.seed = name
			return true
		}
		if _, ok := modulePkgs[obj.Pkg()]; ok && obj != fn.obj {
			if _, dup := fn.callees[obj]; !dup {
				fn.callees[obj] = id.Pos()
			}
		}
		return true
	})
}

// sortedCallees returns the edge targets ordered by the position of
// their first reference, keeping propagation and witness paths
// deterministic.
func sortedCallees(callees map[*types.Func]token.Pos) []*types.Func {
	out := make([]*types.Func, 0, len(callees))
	for c := range callees {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return callees[out[i]] < callees[out[j]] })
	return out
}

// taintPath renders the witness chain from callee down to the root
// forbidden call, e.g. "stamp → now → time.Now".
func taintPath(fns map[*types.Func]*taintFn, callee *types.Func) string {
	var parts []string
	for cur := callee; cur != nil; {
		fn := fns[cur]
		if fn == nil {
			break
		}
		parts = append(parts, cur.Name())
		if fn.seed != "" {
			parts = append(parts, fn.seed)
			break
		}
		if len(parts) >= 8 { // witness, not a stack trace
			parts = append(parts, "…")
			break
		}
		cur = fn.via
	}
	return strings.Join(parts, " → ")
}
