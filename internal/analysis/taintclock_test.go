package analysis

import "testing"

func TestTaintclockFindsIndirectClockAccess(t *testing.T) {
	checkFixture(t, Taintclock, "repro/internal/fixture", "taintclock")
}

// TestTaintclockScope pins the reporting scope and the package-level
// allowlist: the clock implementations and the leak checker are the
// sanctioned real-time edges.
func TestTaintclockScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/netsim", true},
		{"repro/internal/community", true},
		{"repro/internal/faults", true},
		{"repro/internal/simtest", true},
		{"repro/internal/vtime", false},
		{"repro/internal/testutil", false},
		{"repro/cmd/table8", false},
		{"repro/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := Taintclock.AppliesTo(c.path); got != c.want {
			t.Errorf("Taintclock.AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
	for _, allowed := range []string{"repro/internal/vtime", "repro/internal/testutil"} {
		if !taintAllowedPkg(allowed) {
			t.Errorf("taintAllowedPkg(%q) = false, want true", allowed)
		}
	}
}

// TestTaintclockCrossPackage proves taint crosses package boundaries:
// internal/profile transitively uses vtime (allowlisted), so a full
// multi-package run over real module packages must stay quiet, while
// the module-level machinery (RunAll with several packages) holds
// together.
func TestTaintclockCrossPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("internal/profile", "internal/interest", "internal/ids", "internal/vtime")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		for _, e := range p.Errors {
			t.Fatalf("type error in %s: %v", p.Path, e)
		}
	}
	diags := RunAll(pkgs, []*Analyzer{Taintclock})
	for _, d := range diags {
		t.Errorf("unexpected cross-package taint finding: %s", d)
	}
}
