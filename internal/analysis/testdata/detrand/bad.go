// Package fixture exercises the detrand analyzer: draws from the
// process-global math/rand source are irreproducible.
package fixture

import "math/rand"

func globalDraws() {
	_ = rand.Intn(10)        // want "rand.Intn draws from the unseeded process-global source"
	_ = rand.Float64()       // want "rand.Float64 draws from the unseeded process-global source"
	_ = rand.Int63()         // want "rand.Int63 draws from the unseeded process-global source"
	_ = rand.Perm(4)         // want "rand.Perm draws from the unseeded process-global source"
	rand.Shuffle(4, func(i, j int) {}) // want "rand.Shuffle draws from the unseeded process-global source"
	rand.Seed(42)            // want "rand.Seed draws from the unseeded process-global source"
}
