package fixture

import "math/rand"

// seededDraws is the sanctioned pattern: an explicit source, seeded by
// the scenario, so a run can be replayed bit-for-bit.
func seededDraws(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(4, func(i, j int) {})
	zipf := rand.NewZipf(rng, 1.1, 1, 100)
	return rng.Intn(10) + int(zipf.Uint64())
}
