// Package fixture exercises the errdrop analyzer: silently dropped
// errors from Close/Write and wire codec calls.
package fixture

type conn struct{}

func (conn) Close() error             { return nil }
func (conn) Write(p []byte) (int, error) { return len(p), nil }
func (conn) Send(p []byte) error      { return nil }

func UnmarshalFrame(p []byte) (string, error) { return "", nil }
func EncodeFrame(s string) error              { return nil }

func drops(c conn) {
	c.Close()               // want "error from Close is discarded"
	defer c.Close()         // want "error from Close is discarded by defer"
	go c.Close()            // want "error from Close is discarded by go"
	c.Write([]byte("x"))    // want "error from Write is discarded"
	UnmarshalFrame(nil)     // want "error from UnmarshalFrame is discarded"
	EncodeFrame("x")        // want "error from EncodeFrame is discarded"
}
