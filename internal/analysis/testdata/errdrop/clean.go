package fixture

// handled shows the accepted shapes: a consumed error, an explicit
// blank assignment, a deferred closure that acknowledges the drop, and
// calls outside the checked name set.
func handled(c conn) error {
	if err := c.Close(); err != nil {
		return err
	}
	_ = c.Close()
	defer func() { _ = c.Close() }()
	if _, err := c.Write([]byte("x")); err != nil {
		return err
	}
	// Send is not in errdrop's name set even though it returns error;
	// other tooling (and code review) own the general case.
	c.Send(nil)
	return nil
}

type quietCloser struct{}

func (quietCloser) Close() {}

// closeWithoutError: a Close that returns nothing has nothing to drop.
func closeWithoutError(q quietCloser) {
	q.Close()
	defer q.Close()
}
