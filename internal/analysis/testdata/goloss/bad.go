// Package fixture exercises goloss: every launch below runs an
// unbounded pump loop no lifecycle can reap.
package fixture

func process(int)  {}
func step()        {}
func spin()        {}

// orphanPump is the classic leak: a receive loop that only ends when
// the process does.
func orphanPump(jobs chan int) {
	go func() { // want "unbounded loop with no lifecycle tie"
		for {
			j := <-jobs
			process(j)
		}
	}()
}

// runForever leaks through a named launch: the body is resolved
// in-package and checked the same way.
func runForever() {
	for {
		step()
	}
}

func launchNamed() {
	go runForever() // want "unbounded loop with no lifecycle tie"
}

// pumper leaks through a method launch.
type pumper struct{ in chan int }

func (p *pumper) loop() {
	for {
		process(<-p.in)
	}
}

func launchMethod(p *pumper) {
	go p.loop() // want "unbounded loop with no lifecycle tie"
}

// suppressed proves //phvet:ignore silences the launch site.
func suppressed() {
	go func() { //phvet:ignore goloss fixture: suppression covers the launch site
		for {
			spin()
		}
	}()
}
