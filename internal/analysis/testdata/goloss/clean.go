// The legal goroutine shapes: close/done channels, WaitGroups,
// contexts, channel ranges, bounded loops and one-shot bodies.
package fixture

import (
	"context"
	"sync"
)

func work(int) {}

// closedPump is the house pump shape: the closed channel reaps it.
type conn struct {
	sendQ  chan int
	closed chan struct{}
}

func (c *conn) pump() {
	for {
		select {
		case <-c.closed:
			return
		case m := <-c.sendQ:
			work(m)
		}
	}
}

func launchPump(c *conn) {
	go c.pump()
}

// waitGroupLoop is tracked by its WaitGroup: Wait hangs visibly if the
// loop wedges, which is a lifecycle, not a leak.
func waitGroupLoop(wg *sync.WaitGroup, jobs chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			j, ok := <-jobs
			if !ok {
				return
			}
			work(j)
		}
	}()
}

// ctxLoop is bounded by cancellation.
func ctxLoop(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				work(j)
			}
		}
	}()
}

// rangeLoop ends when the channel closes.
func rangeLoop(jobs chan int) {
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

// oneShot ends itself: no loop, no finding.
func oneShot(result chan int) {
	go func() {
		result <- 42
	}()
}

// boundedLoop has its own exit condition.
func boundedLoop(n int) {
	go func() {
		for i := 0; i < n; i++ {
			work(i)
		}
	}()
}

// stopField proves the looser evidence: a lifecycle-named field
// consulted in the loop counts even outside a select.
type sweeper struct {
	mu      sync.Mutex
	stopped bool
}

func (s *sweeper) sweep() {
	for {
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		work(0)
	}
}

func launchSweeper(s *sweeper) {
	go s.sweep()
}
