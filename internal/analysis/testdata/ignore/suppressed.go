// Package fixture exercises //phvet:ignore suppression: every
// violation below carries a directive, so the analyzers must stay
// silent except for the one deliberate control case.
package fixture

import (
	"math/rand"
	"time"
)

func suppressedTrailing() time.Time {
	return time.Now() //phvet:ignore walltime fixture exercises same-line suppression
}

// The comment-above form claims the next line.
func suppressedAbove() int {
	//phvet:ignore detrand fixture exercises comment-above suppression
	return rand.Intn(10)
}

func suppressedList() {
	//phvet:ignore walltime,detrand one directive may name several analyzers
	time.Sleep(time.Duration(rand.Intn(3)))
}

func suppressedAll() time.Time {
	return time.Now() //phvet:ignore all the explicit catch-all scope silences every analyzer on the line
}

// control proves suppression is line-scoped: no directive, so this one
// still fires.
func control() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

// wrongName proves a directive for one analyzer does not shadow
// another's finding on the same line.
func wrongName() int {
	return rand.Intn(10) //phvet:ignore walltime wrong analyzer named — detrand must still fire // want "rand.Intn draws from the unseeded process-global source"
}
