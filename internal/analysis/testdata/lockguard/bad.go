// Package fixture exercises the lockguard analyzer: mutexes held
// across blocking operations, and locks that are never released.
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (g *guarded) sendWhileHeld() {
	g.mu.Lock()
	g.ch <- 1 // want "channel send while g.mu.Lock is held"
	g.mu.Unlock()
}

func (g *guarded) recvWhileDeferHeld() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-g.ch // want "channel receive while g.mu.Lock is held"
}

func (g *guarded) selectWhileHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want "blocking select while g.mu.Lock is held"
	case v := <-g.ch:
		_ = v
	case g.ch <- 2:
	}
}

func (g *guarded) waitWhileReadHeld() {
	g.rw.RLock()
	g.wg.Wait() // want "call to blocking method Wait while g.rw.RLock is held"
	g.rw.RUnlock()
}

func (g *guarded) rangeWhileHeld() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for v := range g.ch { // want "range over a channel while g.mu.Lock is held"
		_ = v
	}
}

func (g *guarded) lockWithoutUnlock() {
	g.mu.Lock() // want "g.mu.Lock with no matching unlock in this function"
	g.ch = make(chan int)
}

func (g *guarded) readLockWriteUnlockMismatch() {
	g.rw.RLock() // want "g.rw.RLock with no matching unlock in this function"
	defer g.rw.Unlock()
}
