package fixture

import "sync"

type tidy struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	ch   chan int
	n    int
}

// unlockBeforeBlocking is the sanctioned shape: compute under the
// lock, release, then block.
func (t *tidy) unlockBeforeBlocking() {
	t.mu.Lock()
	v := t.n
	t.mu.Unlock()
	t.ch <- v
}

// nonBlockingSelect: a select with a default never parks the
// goroutine, so holding the lock is fine.
func (t *tidy) nonBlockingSelect() {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case v := <-t.ch:
		t.n = v
	default:
	}
}

// condWait must be called with the lock held; lockguard exempts it.
func (t *tidy) condWait() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for t.n == 0 {
		t.cond.Wait()
	}
}

// readersUseRUnlock pairs RLock with RUnlock across branches.
func (t *tidy) readersUseRUnlock(fast bool) int {
	t.rw.RLock()
	if fast {
		n := t.n
		t.rw.RUnlock()
		return n
	}
	n := t.n * 2
	t.rw.RUnlock()
	return n
}

// goroutineBodyIsSeparate: the literal runs on its own goroutine with
// its own locking discipline; the spawn itself does not block.
func (t *tidy) goroutineBodyIsSeparate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.ch <- 1
	}()
}

// unlockInClosure counts as an unlock arranged by this function.
func (t *tidy) unlockInClosure() func() {
	t.mu.Lock()
	return func() { t.mu.Unlock() }
}
