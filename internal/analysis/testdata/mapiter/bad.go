// Package fixture exercises the mapiter analyzer's ordering-sensitive
// sinks: every range below lets map iteration order escape into bytes,
// events or collection order.
package fixture

import "bytes"

// fanout enqueues to per-peer channels in map order: the event order
// downstream differs between replays of the same seed.
func fanout(peers map[string]chan []byte, payload []byte) {
	for _, ch := range peers {
		ch <- payload // want "escapes into a channel send"
	}
}

// collectUnsorted returns keys in iteration order; the caller's loop
// over them inherits the nondeterminism.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys, which is never sorted"
	}
	return keys
}

// digest feeds a byte stream in map order: the resulting bytes (and any
// hash of them) differ run to run.
func digest(m map[string]string, buf *bytes.Buffer) {
	for k, v := range m {
		buf.WriteString(k) // want "ordering-sensitive call WriteString"
		buf.WriteString(v) // want "ordering-sensitive call WriteString"
	}
}

type queue struct{ items []string }

func (q *queue) Enqueue(s string) { q.items = append(q.items, s) }

// dispatchOrder enqueues work in map order.
func dispatchOrder(q *queue, pending map[string]bool) {
	for id := range pending {
		q.Enqueue(id) // want "ordering-sensitive call Enqueue"
	}
}

// fieldAppend shows the sink through a struct field, not just a local.
type batch struct{ out []int }

func (b *batch) drain(m map[int]int) {
	for _, v := range m {
		b.out = append(b.out, v) // want "append to b.out, which is never sorted"
	}
}

// suppressed proves //phvet:ignore works for mapiter: the order is
// genuinely free here (summed downstream), so the directive silences
// the finding.
func suppressed(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) //phvet:ignore mapiter fixture: values are summed downstream; order-free
	}
	return vals
}
