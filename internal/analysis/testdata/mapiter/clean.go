// The legal map-range shapes: collect-then-sort, order-free
// aggregation, and iteration whose order dies inside the loop.
package fixture

import (
	"sort"
	"strings"
)

// collectSorted is the canonical fix: the append target is sorted in
// the same function before the order can escape.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type entry struct {
	k string
	v int
}

// collectSortSlice covers the sort.Slice form of the same idiom.
func collectSortSlice(m map[string]int) []entry {
	var entries []entry
	for k, v := range m {
		entries = append(entries, entry{k, v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	return entries
}

// counting aggregates commutatively: no order escapes.
func counting(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// mapToMap re-keys into another map: the destination has no order.
func mapToMap(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// localScratch appends to a slice born inside the loop body: its order
// dies with the iteration.
func localScratch(m map[string]string) int {
	n := 0
	for k, v := range m {
		var parts []string
		parts = append(parts, k, v)
		n += len(strings.Join(parts, "/"))
	}
	return n
}

// sliceRange is not a map range at all.
func sliceRange(xs []string, ch chan string) {
	for _, x := range xs {
		ch <- x
	}
}

// sortHelper delegates ordering to a package helper whose name promises
// a sort; the analyzer trusts sort-named functions that take the target.
func sortHelper(m map[string]int) []entry {
	var entries []entry
	for k, v := range m {
		entries = append(entries, entry{k, v})
	}
	sortEntries(entries)
	return entries
}

func sortEntries(es []entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].k < es[j].k })
}

type record struct {
	id   string
	tags []string
}

// loopLocalCopy appends to a field of a struct copied inside the loop
// body: the root variable cp is loop-local, so no order outlives the
// iteration (each copy lands keyed in a map).
func loopLocalCopy(src map[string]*record, dst map[string]record) {
	for id, r := range src {
		cp := *r
		cp.tags = append(cp.tags, "seen")
		dst[id] = cp
	}
}

// maxKey picks an extremum: order-free.
func maxKey(m map[int]int) int {
	best := 0
	for k := range m {
		if k > best {
			best = k
		}
	}
	return best
}
