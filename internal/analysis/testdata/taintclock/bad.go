// Package fixture exercises taintclock's interprocedural taint: the
// direct time.Now/rand calls below are walltime/detrand territory; what
// taintclock must catch is every *caller* that reaches them through
// helpers.
package fixture

import (
	"math/rand"
	"time"
)

// root reads the clock directly (a walltime finding, not repeated by
// taintclock) and seeds the taint.
func root() time.Time {
	return time.Now()
}

// helper is one hop away: the call to root is an indirect clock read.
func helper() time.Time {
	return root() // want "call to root reaches the wall clock"
}

// caller is two hops away; the witness path names the whole chain.
func caller() int64 {
	return helper().UnixNano() // want "call to helper reaches the wall clock"
}

// draw seeds rand taint through the process-global source.
func draw() int {
	return rand.Intn(6)
}

func gamble() int {
	return draw() // want "call to draw reaches the wall clock"
}

// stamped shows taint through a method: the method body seeds, the
// call site is the finding.
type stamped struct{ at time.Time }

func (s *stamped) touch() {
	s.at = time.Now()
}

func useStamped(s *stamped) {
	s.touch() // want "call to touch reaches the wall clock"
}

// ignoredCaller proves //phvet:ignore suppresses the indirect finding
// at the call site too.
func ignoredCaller() time.Time {
	return helper() //phvet:ignore taintclock fixture: suppression works on indirect findings
}

// valueRef proves a bare reference to a tainted helper counts like a
// call: storing it smuggles the clock somewhere else.
var valueRef = helper // want "call to helper reaches the wall clock"
