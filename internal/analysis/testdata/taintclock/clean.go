// The legal shapes: injected clocks, seeded sources, pure time
// arithmetic, and a justified real-time edge whose suppression stops
// taint from poisoning its callers.
package fixture

import (
	"math/rand"
	"time"
)

// Clock is the injected dependency simulation code should use; calling
// through it never taints.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// onClock threads the injected clock: no taint anywhere.
func onClock(c Clock) time.Duration {
	start := c.Now()
	<-c.After(time.Millisecond)
	return c.Now().Sub(start)
}

// seededDraw owns an explicitly seeded source: detrand-legal and
// taint-free.
func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func usesSeeded() int {
	return seededDraw(42)
}

// sanctionedEdge is a justified real-time edge: the in-place
// suppression marks the whole function as the sanctioned boundary, so
// its callers stay clean.
func sanctionedEdge() time.Time {
	return time.Now() //phvet:ignore walltime fixture: justified real-time edge stops taint
}

// usesSanctioned must NOT be poisoned: the justification at the root
// covers this path.
func usesSanctioned() time.Time {
	return sanctionedEdge()
}

// pureArithmetic never samples any clock.
func pureArithmetic() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

func usesPure() time.Time {
	return pureArithmetic()
}
