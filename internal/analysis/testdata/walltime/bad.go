// Package fixture exercises the walltime analyzer's forbidden calls.
package fixture

import "time"

func readsWallClock() time.Time {
	t := time.Now() // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)  // want "time.Sleep reads the wall clock"
	<-time.After(time.Second)     // want "time.After reads the wall clock"
	tm := time.NewTimer(1)        // want "time.NewTimer reads the wall clock"
	tk := time.NewTicker(1)       // want "time.NewTicker reads the wall clock"
	_ = time.Since(t)             // want "time.Since reads the wall clock"
	_ = time.Until(t)             // want "time.Until reads the wall clock"
	time.AfterFunc(1, func() {})  // want "time.AfterFunc reads the wall clock"
	tm.Stop()
	tk.Stop()
	return t
}

// A bare function-value reference counts too: it smuggles the wall
// clock somewhere else.
var clockFn = time.Now // want "time.Now reads the wall clock"

// A hedged send that races the second attempt off the host clock is
// the exact misuse the resilience layer must avoid: a wall-clock hedge
// delay makes the winner scheduling-dependent and breaks seed replay.
func hedgedSendMisuse(primary, hedge func() error) error {
	done := make(chan error, 2)
	go func() { done <- primary() }()
	select {
	case err := <-done:
		return err
	case <-time.After(time.Millisecond): // want "time.After reads the wall clock"
		go func() { done <- hedge() }()
		return <-done
	}
}
