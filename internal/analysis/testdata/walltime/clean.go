package fixture

import "time"

// Clock is the shape simulation code should depend on; calling its
// methods is fine everywhere.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

// pureTimeArithmetic shows the time-package surface that stays legal:
// construction, parsing, durations — everything that never samples the
// host clock.
func pureTimeArithmetic(c Clock) time.Duration {
	start := time.Unix(0, 0)
	later := start.Add(3 * time.Second)
	c.Sleep(time.Millisecond)
	<-c.After(time.Millisecond)
	return later.Sub(c.Now())
}

// hedgedSend shows the legal shape of a hedge delay: the race timer
// comes from the injected clock, so the hedge fires at the same
// modeled instant on every replay.
func hedgedSend(c Clock, delay time.Duration, primary, hedge func() error) error {
	done := make(chan error, 2)
	go func() { done <- primary() }()
	select {
	case err := <-done:
		return err
	case <-c.After(delay):
		go func() { done <- hedge() }()
		return <-done
	}
}
