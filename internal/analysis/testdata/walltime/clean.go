package fixture

import "time"

// Clock is the shape simulation code should depend on; calling its
// methods is fine everywhere.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

// pureTimeArithmetic shows the time-package surface that stays legal:
// construction, parsing, durations — everything that never samples the
// host clock.
func pureTimeArithmetic(c Clock) time.Duration {
	start := time.Unix(0, 0)
	later := start.Add(3 * time.Second)
	c.Sleep(time.Millisecond)
	<-c.After(time.Millisecond)
	return later.Sub(c.Now())
}
