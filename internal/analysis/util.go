package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// packageFunc resolves id to a package-scope function object (not a
// method, not a variable) and returns it, or nil.
func packageFunc(info *types.Info, id *ast.Ident) *types.Func {
	obj, ok := info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if obj.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return obj
}

// methodFunc resolves the callee of call to a method object and
// returns it plus the receiver expression, or (nil, nil).
func methodFunc(info *types.Info, call *ast.CallExpr) (*types.Func, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, nil
	}
	if obj.Type().(*types.Signature).Recv() == nil {
		return nil, nil
	}
	return obj, sel.X
}

// calleeName returns the bare name of the function or method being
// called, or "" when it cannot be determined (e.g. a called func value).
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// lastResultIsError reports whether the call's final result is the
// built-in error type.
func lastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// recvNamed returns the receiver's named type (through one pointer),
// or nil.
func recvNamed(obj *types.Func) *types.Named {
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOf reports whether obj is a method on pkgPath.typeName.
func isMethodOf(obj *types.Func, pkgPath, typeName string) bool {
	named := recvNamed(obj)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// isChannel reports whether t's core type is a channel.
func isChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// inInternal reports whether the package path lies under the module's
// internal/ tree.
func inInternal(pkgPath string) bool {
	return strings.Contains(pkgPath, "/internal/") || strings.HasSuffix(pkgPath, "/internal")
}
