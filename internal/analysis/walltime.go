package analysis

import (
	"go/ast"
	"strings"
)

// walltimeForbidden lists the package-level functions of "time" that
// read or wait on the wall clock. Pure arithmetic (time.Duration,
// time.Unix, Parse, Since is Now-based so it is included) stays legal.
var walltimeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// Walltime forbids direct wall-clock access in simulation code. All
// latencies the paper reports (Table 8, Figure 6) are measured on the
// virtual clock in internal/vtime; a stray time.Now or time.Sleep makes
// runs irreproducible and couples results to host load. Only
// internal/vtime may touch the real clock.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Sleep/After/Timers outside internal/vtime; use the vtime.Clock",
	AppliesTo: func(pkgPath string) bool {
		return inInternal(pkgPath) && !strings.Contains(pkgPath, "/internal/vtime")
	},
	Run: runWalltime,
}

func runWalltime(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := packageFunc(pass.Info, id)
			if obj == nil || obj.Pkg().Path() != "time" || !walltimeForbidden[obj.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock; route through vtime.Clock so simulated latencies stay reproducible",
				obj.Name())
			return true
		})
	}
}
