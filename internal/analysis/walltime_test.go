package analysis

import "testing"

func TestWalltimeFindsForbiddenCalls(t *testing.T) {
	checkFixture(t, Walltime, "repro/internal/fixture", "walltime")
}

func TestWalltimeScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/netsim", true},
		{"repro/internal/apps/fitness", true},
		{"repro/internal/vtime", false},
		{"repro/cmd/table8", false}, // harness tools measure real wall time on purpose
		{"repro/examples/quickstart", false},
	}
	for _, c := range cases {
		if got := Walltime.AppliesTo(c.path); got != c.want {
			t.Errorf("Walltime.AppliesTo(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
