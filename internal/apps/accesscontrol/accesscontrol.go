// Package accesscontrol implements the wireless access-control system
// the thesis describes in §4.4 as an existing application on the mobile
// environment: "PTDs with wireless access control system can be used as
// keys for locking or unlocking and provides access to locked resources
// and places." A door device registers an AccessControl service in
// PeerHood; a personal trusted device carrying an authorized credential
// unlocks it over Bluetooth when in proximity, and the door re-locks
// automatically when the key device leaves radio range (PeerHood's
// active monitoring).
package accesscontrol

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/peerhood"
)

// ServiceName is the service doors register in the PeerHood daemon.
const ServiceName ids.ServiceName = "AccessControl"

// Errors.
var (
	ErrAccessDenied = errors.New("accesscontrol: access denied")
	ErrDoorGone     = errors.New("accesscontrol: door unreachable")
)

// credentialFor derives the unlock token for a key holder from the
// door's shared secret — the moral equivalent of the Bluetooth PIN
// pairing the thesis mentions.
func credentialFor(secret string, holder ids.DeviceID) string {
	mac := hmac.New(sha256.New, []byte(secret))
	_, _ = mac.Write([]byte(holder)) // hash.Hash.Write never returns an error
	return hex.EncodeToString(mac.Sum(nil))
}

// DoorState is the lock's condition.
type DoorState int

// Lock states.
const (
	Locked DoorState = iota + 1
	Unlocked
)

// String implements fmt.Stringer.
func (s DoorState) String() string {
	if s == Unlocked {
		return "unlocked"
	}
	return "locked"
}

// Door is a Bluetooth-controlled lock on a PeerHood device.
type Door struct {
	lib    *peerhood.Library
	secret string

	mu         sync.Mutex
	state      DoorState
	authorized map[ids.DeviceID]bool
	unlockedBy ids.DeviceID
	cancelMon  func()
	transcript []string

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewDoor registers the access-control service on the door's device and
// starts serving unlock requests. The secret is shared out of band with
// authorized key holders.
func NewDoor(lib *peerhood.Library, secret string) (*Door, error) {
	d := &Door{
		lib:        lib,
		secret:     secret,
		state:      Locked,
		authorized: make(map[ids.DeviceID]bool),
	}
	listener, err := lib.RegisterService(ServiceName, map[string]string{"kind": "door"})
	if err != nil {
		return nil, fmt.Errorf("accesscontrol: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.cancel = cancel
	d.wg.Add(1)
	go d.serve(ctx, listener)
	return d, nil
}

// Stop unregisters and stops the door.
func (d *Door) Stop() {
	d.cancel()
	d.lib.UnregisterService(ServiceName)
	d.wg.Wait()
	d.mu.Lock()
	if d.cancelMon != nil {
		d.cancelMon()
		d.cancelMon = nil
	}
	d.mu.Unlock()
}

// Authorize grants a key device access.
func (d *Door) Authorize(key ids.DeviceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.authorized[key] = true
}

// Revoke removes a key device's access.
func (d *Door) Revoke(key ids.DeviceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.authorized, key)
}

// State returns the current lock state.
func (d *Door) State() DoorState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Transcript returns the audit log of lock events.
func (d *Door) Transcript() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.transcript...)
}

func (d *Door) logf(format string, args ...any) {
	d.transcript = append(d.transcript, fmt.Sprintf(format, args...))
}

func (d *Door) serve(ctx context.Context, listener *netsim.Listener) {
	defer d.wg.Done()
	for {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() { _ = conn.Close() }()
			req, err := conn.Recv(ctx)
			if err != nil {
				return
			}
			resp := d.handle(conn.Remote(), string(req))
			_ = conn.Send([]byte(resp))
		}()
	}
}

// handle processes "UNLOCK <credential>" and "LOCK" requests.
func (d *Door) handle(from ids.DeviceID, req string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case len(req) > 7 && req[:7] == "UNLOCK ":
		cred := req[7:]
		if !d.authorized[from] || !hmac.Equal([]byte(cred), []byte(credentialFor(d.secret, from))) {
			d.logf("denied %s", from)
			return "DENIED"
		}
		d.state = Unlocked
		d.unlockedBy = from
		d.logf("unlocked by %s", from)
		d.armAutoLockLocked(from)
		return "UNLOCKED"
	case req == "LOCK":
		d.state = Locked
		d.unlockedBy = ""
		d.logf("locked by %s", from)
		if d.cancelMon != nil {
			d.cancelMon()
			d.cancelMon = nil
		}
		return "LOCKED"
	default:
		return "BAD_REQUEST"
	}
}

// armAutoLockLocked starts monitoring the key holder; when PeerHood
// reports the device left range, the door re-locks itself. Callers hold
// d.mu.
func (d *Door) armAutoLockLocked(key ids.DeviceID) {
	if d.cancelMon != nil {
		d.cancelMon()
	}
	d.cancelMon = d.lib.Monitor(key, func(ev peerhood.MonitorEvent) {
		if ev.Appeared {
			return
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		if d.state == Unlocked && d.unlockedBy == key {
			d.state = Locked
			d.unlockedBy = ""
			d.logf("auto-locked: %s left range", key)
		}
	})
}

// Key is the PTD side: it finds nearby doors and unlocks them.
type Key struct {
	lib    *peerhood.Library
	secret string
}

// NewKey binds a key to the holder's PeerHood library and the shared
// secret.
func NewKey(lib *peerhood.Library, secret string) *Key {
	return &Key{lib: lib, secret: secret}
}

// NearbyDoors lists discovered devices offering the door service.
func (k *Key) NearbyDoors() []ids.DeviceID {
	return k.lib.DevicesOffering(ServiceName)
}

// Unlock asks a door to open.
func (k *Key) Unlock(ctx context.Context, door ids.DeviceID) error {
	resp, err := k.request(ctx, door, "UNLOCK "+credentialFor(k.secret, k.lib.Device()))
	if err != nil {
		return err
	}
	if resp != "UNLOCKED" {
		return fmt.Errorf("%w: door said %q", ErrAccessDenied, resp)
	}
	return nil
}

// Lock asks a door to close.
func (k *Key) Lock(ctx context.Context, door ids.DeviceID) error {
	resp, err := k.request(ctx, door, "LOCK")
	if err != nil {
		return err
	}
	if resp != "LOCKED" {
		return fmt.Errorf("accesscontrol: door said %q", resp)
	}
	return nil
}

func (k *Key) request(ctx context.Context, door ids.DeviceID, msg string) (string, error) {
	conn, err := k.lib.Connect(ctx, door, ServiceName)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrDoorGone, err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send([]byte(msg)); err != nil {
		return "", err
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		return "", err
	}
	return string(resp), nil
}
