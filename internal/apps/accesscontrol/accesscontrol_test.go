package accesscontrol

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/vtime"
)

const secret = "room-6604-secret"

type fixture struct {
	env  *radio.Environment
	net  *netsim.Network
	door *Door
	key  *Key
	ctx  context.Context

	doorLib *peerhood.Library
	keyLib  *peerhood.Library
}

func setup(t *testing.T) *fixture {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	if err := env.Add("door-dev", mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	if err := env.Add("phone", mobility.Static{At: geo.Pt(3, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	mkLib := func(dev ids.DeviceID) *peerhood.Library {
		d, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		if err := d.Start(); err != nil {
			t.Fatal(err)
		}
		return peerhood.NewLibrary(d)
	}
	doorLib := mkLib("door-dev")
	keyLib := mkLib("phone")

	door, err := NewDoor(doorLib, secret)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(door.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	if err := keyLib.Daemon().RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		env: env, net: net, door: door,
		key: NewKey(keyLib, secret), ctx: ctx,
		doorLib: doorLib, keyLib: keyLib,
	}
}

func TestDiscoverDoor(t *testing.T) {
	f := setup(t)
	doors := f.key.NearbyDoors()
	if len(doors) != 1 || doors[0] != "door-dev" {
		t.Fatalf("NearbyDoors = %v", doors)
	}
}

func TestUnlockAuthorized(t *testing.T) {
	f := setup(t)
	f.door.Authorize("phone")
	if err := f.key.Unlock(f.ctx, "door-dev"); err != nil {
		t.Fatal(err)
	}
	if f.door.State() != Unlocked {
		t.Fatal("door should be unlocked")
	}
	if err := f.key.Lock(f.ctx, "door-dev"); err != nil {
		t.Fatal(err)
	}
	if f.door.State() != Locked {
		t.Fatal("door should be locked")
	}
}

func TestUnlockUnauthorizedDenied(t *testing.T) {
	f := setup(t)
	if err := f.key.Unlock(f.ctx, "door-dev"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want ErrAccessDenied", err)
	}
	if f.door.State() != Locked {
		t.Fatal("door must stay locked")
	}
}

func TestWrongSecretDenied(t *testing.T) {
	f := setup(t)
	f.door.Authorize("phone")
	badKey := NewKey(f.keyLib, "wrong-secret")
	if err := badKey.Unlock(f.ctx, "door-dev"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want ErrAccessDenied", err)
	}
}

func TestRevoke(t *testing.T) {
	f := setup(t)
	f.door.Authorize("phone")
	f.door.Revoke("phone")
	if err := f.key.Unlock(f.ctx, "door-dev"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("err = %v, want ErrAccessDenied", err)
	}
}

func TestAutoLockWhenKeyLeaves(t *testing.T) {
	f := setup(t)
	f.door.Authorize("phone")
	if err := f.key.Unlock(f.ctx, "door-dev"); err != nil {
		t.Fatal(err)
	}
	// The key holder walks away beyond Bluetooth range.
	if err := f.env.SetModel("phone", mobility.Static{At: geo.Pt(500, 0)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.door.State() != Locked && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if f.door.State() != Locked {
		t.Fatal("door did not auto-lock after the key left range")
	}
	transcript := strings.Join(f.door.Transcript(), "\n")
	if !strings.Contains(transcript, "auto-locked") {
		t.Fatalf("transcript = %q, want auto-lock entry", transcript)
	}
}

func TestUnlockOutOfRangeFails(t *testing.T) {
	f := setup(t)
	f.door.Authorize("phone")
	if err := f.env.SetModel("phone", mobility.Static{At: geo.Pt(500, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := f.key.Unlock(f.ctx, "door-dev"); !errors.Is(err, ErrDoorGone) {
		t.Fatalf("err = %v, want ErrDoorGone", err)
	}
}

func TestCredentialBinding(t *testing.T) {
	// The credential is bound to the holder device: one holder's token
	// never works for another device.
	a := credentialFor(secret, "phone")
	b := credentialFor(secret, "other")
	if a == b {
		t.Fatal("credentials must differ per device")
	}
	if credentialFor("other-secret", "phone") == a {
		t.Fatal("credentials must differ per secret")
	}
}

func TestDoorStateString(t *testing.T) {
	if Locked.String() != "locked" || Unlocked.String() != "unlocked" {
		t.Fatal("state strings wrong")
	}
}

func TestBadRequest(t *testing.T) {
	f := setup(t)
	conn, err := f.keyLib.Connect(f.ctx, "door-dev", ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send([]byte("GIBBERISH")); err != nil {
		t.Fatal(err)
	}
	resp, err := conn.Recv(f.ctx)
	if err != nil || string(resp) != "BAD_REQUEST" {
		t.Fatalf("resp = %q, %v", resp, err)
	}
}
