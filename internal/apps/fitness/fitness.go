// Package fitness implements the Fitness System of §4.4, "an
// application built on top of PeerHood [that] promotes physical
// exercise through encouragement and motivates the users by providing
// instant analyzed feedback of the exercise." A coach device registers
// the FitnessSystem service; exercising users stream heart-rate samples
// over whatever technology PeerHood picks, and receive analyzed
// feedback per interval.
package fitness

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/peerhood"
)

// ServiceName is the service the coach registers.
const ServiceName ids.ServiceName = "FitnessSystem"

// ErrNoCoach reports no coach device in the neighborhood.
var ErrNoCoach = errors.New("fitness: no coach in range")

// Zone classifies a heart-rate sample.
type Zone int

// Training zones, gentlest first.
const (
	ZoneRest Zone = iota + 1
	ZoneFatBurn
	ZoneCardio
	ZonePeak
)

// String implements fmt.Stringer.
func (z Zone) String() string {
	switch z {
	case ZoneRest:
		return "rest"
	case ZoneFatBurn:
		return "fat-burn"
	case ZoneCardio:
		return "cardio"
	case ZonePeak:
		return "peak"
	default:
		return fmt.Sprintf("zone(%d)", int(z))
	}
}

// ZoneFor classifies a heart rate against an age-derived maximum
// (the classic 220-age formula the 2003-era fitness literature used).
func ZoneFor(heartRate, age int) Zone {
	max := 220 - age
	if max < 1 {
		max = 1
	}
	ratio := float64(heartRate) / float64(max)
	switch {
	case ratio < 0.5:
		return ZoneRest
	case ratio < 0.7:
		return ZoneFatBurn
	case ratio < 0.85:
		return ZoneCardio
	default:
		return ZonePeak
	}
}

// Feedback is the coach's instant analysis of one sample batch.
type Feedback struct {
	AverageHR int
	Zone      Zone
	// Encouragement is the motivational line the thesis's system
	// displayed.
	Encouragement string
}

// Coach runs the analysis service.
type Coach struct {
	lib *peerhood.Library

	mu       sync.Mutex
	sessions map[ids.DeviceID]int // samples seen per athlete device

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoach registers the fitness service and starts serving.
func NewCoach(lib *peerhood.Library) (*Coach, error) {
	c := &Coach{lib: lib, sessions: make(map[ids.DeviceID]int)}
	listener, err := lib.RegisterService(ServiceName, map[string]string{"kind": "coach"})
	if err != nil {
		return nil, fmt.Errorf("fitness: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(1)
	go c.serve(ctx, listener)
	return c, nil
}

// Stop unregisters and stops the coach.
func (c *Coach) Stop() {
	c.cancel()
	c.lib.UnregisterService(ServiceName)
	c.wg.Wait()
}

// SamplesSeen reports how many samples one athlete has streamed.
func (c *Coach) SamplesSeen(dev ids.DeviceID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[dev]
}

func (c *Coach) serve(ctx context.Context, listener *netsim.Listener) {
	defer c.wg.Done()
	for {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() { _ = conn.Close() }()
			for {
				req, err := conn.Recv(ctx)
				if err != nil {
					return
				}
				resp := c.handle(conn.Remote(), string(req))
				if err := conn.Send([]byte(resp)); err != nil {
					return
				}
			}
		}()
	}
}

// handle answers "SAMPLES <age> <hr1,hr2,...>" with
// "FEEDBACK <avg> <zone> <encouragement>".
func (c *Coach) handle(from ids.DeviceID, req string) string {
	parts := strings.SplitN(req, " ", 3)
	if len(parts) != 3 || parts[0] != "SAMPLES" {
		return "BAD_REQUEST"
	}
	age, err := strconv.Atoi(parts[1])
	if err != nil || age <= 0 || age > 150 {
		return "BAD_REQUEST"
	}
	var sum, n int
	for _, f := range strings.Split(parts[2], ",") {
		hr, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || hr <= 0 || hr > 260 {
			return "BAD_REQUEST"
		}
		sum += hr
		n++
	}
	if n == 0 {
		return "BAD_REQUEST"
	}
	c.mu.Lock()
	c.sessions[from] += n
	c.mu.Unlock()

	avg := sum / n
	zone := ZoneFor(avg, age)
	return fmt.Sprintf("FEEDBACK %d %d %s", avg, int(zone), encouragementFor(zone))
}

// encouragementFor picks the motivational line per zone.
func encouragementFor(z Zone) string {
	switch z {
	case ZoneRest:
		return "warm up — pick up the pace!"
	case ZoneFatBurn:
		return "steady burn — keep it going!"
	case ZoneCardio:
		return "great cardio work — you're flying!"
	case ZonePeak:
		return "peak effort — ease off soon!"
	default:
		return "keep moving!"
	}
}

// Athlete is the exercising user's side: it streams samples to a
// discovered coach.
type Athlete struct {
	lib *peerhood.Library
	age int

	mu   sync.Mutex
	conn *peerhood.RobustConn
}

// NewAthlete binds an athlete of the given age to their device.
func NewAthlete(lib *peerhood.Library, age int) *Athlete {
	return &Athlete{lib: lib, age: age}
}

// Close drops the coach connection.
func (a *Athlete) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
}

// Report streams one batch of heart-rate samples and returns the
// coach's instant feedback. The connection is seamless: if the current
// link breaks mid-exercise, PeerHood fails over and the stream
// continues.
func (a *Athlete) Report(ctx context.Context, samples []int) (Feedback, error) {
	if len(samples) == 0 {
		return Feedback{}, errors.New("fitness: no samples")
	}
	conn, err := a.coachConn(ctx)
	if err != nil {
		return Feedback{}, err
	}
	fields := make([]string, len(samples))
	for i, s := range samples {
		fields[i] = strconv.Itoa(s)
	}
	req := fmt.Sprintf("SAMPLES %d %s", a.age, strings.Join(fields, ","))
	resp, err := conn.Call(ctx, []byte(req))
	if err != nil {
		return Feedback{}, err
	}
	return parseFeedback(string(resp))
}

func (a *Athlete) coachConn(ctx context.Context) (*peerhood.RobustConn, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.conn != nil {
		return a.conn, nil
	}
	coaches := a.lib.DevicesOffering(ServiceName)
	if len(coaches) == 0 {
		return nil, ErrNoCoach
	}
	conn, err := a.lib.ConnectRobust(ctx, coaches[0], ServiceName)
	if err != nil {
		return nil, fmt.Errorf("fitness: %w", err)
	}
	a.conn = conn
	return conn, nil
}

func parseFeedback(resp string) (Feedback, error) {
	parts := strings.SplitN(resp, " ", 4)
	if len(parts) != 4 || parts[0] != "FEEDBACK" {
		return Feedback{}, fmt.Errorf("fitness: malformed feedback %q", resp)
	}
	avg, err := strconv.Atoi(parts[1])
	if err != nil {
		return Feedback{}, fmt.Errorf("fitness: bad average in %q", resp)
	}
	zone, err := strconv.Atoi(parts[2])
	if err != nil {
		return Feedback{}, fmt.Errorf("fitness: bad zone in %q", resp)
	}
	return Feedback{AverageHR: avg, Zone: Zone(zone), Encouragement: parts[3]}, nil
}
