package fitness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/vtime"
)

func TestZoneFor(t *testing.T) {
	tests := []struct {
		hr, age int
		want    Zone
	}{
		{60, 30, ZoneRest},     // 60/190 = 0.32
		{110, 30, ZoneFatBurn}, // 0.58
		{150, 30, ZoneCardio},  // 0.79
		{175, 30, ZonePeak},    // 0.92
	}
	for _, tt := range tests {
		if got := ZoneFor(tt.hr, tt.age); got != tt.want {
			t.Errorf("ZoneFor(%d, %d) = %v, want %v", tt.hr, tt.age, got, tt.want)
		}
	}
}

func TestZoneMonotonicInHR(t *testing.T) {
	prev := ZoneRest
	for hr := 40; hr <= 200; hr += 5 {
		z := ZoneFor(hr, 25)
		if z < prev {
			t.Fatalf("zone decreased at hr=%d", hr)
		}
		prev = z
	}
}

func TestZoneStrings(t *testing.T) {
	for _, z := range []Zone{ZoneRest, ZoneFatBurn, ZoneCardio, ZonePeak} {
		if s := z.String(); s == "" || strings.HasPrefix(s, "zone(") {
			t.Errorf("missing String for zone %d", int(z))
		}
	}
	if !strings.HasPrefix(Zone(9).String(), "zone(") {
		t.Error("unknown zone String wrong")
	}
}

type fixture struct {
	env     *radio.Environment
	coach   *Coach
	athlete *Athlete
	ctx     context.Context
}

func setup(t *testing.T) *fixture {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	// Coach and athlete carry Bluetooth and WLAN, so the stream can
	// fail over mid-exercise.
	for _, d := range []ids.DeviceID{"gym-coach", "runner-watch"} {
		if err := env.Add(d, mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth, radio.WLAN); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.SetModel("runner-watch", mobility.Static{At: geo.Pt(5, 0)}); err != nil {
		t.Fatal(err)
	}
	mkDaemon := func(dev ids.DeviceID) *peerhood.Daemon {
		d, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		return d
	}
	coachDaemon := mkDaemon("gym-coach")
	athleteDaemon := mkDaemon("runner-watch")

	coach, err := NewCoach(peerhood.NewLibrary(coachDaemon))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coach.Stop)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	if err := athleteDaemon.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	athlete := NewAthlete(peerhood.NewLibrary(athleteDaemon), 30)
	t.Cleanup(athlete.Close)
	return &fixture{env: env, coach: coach, athlete: athlete, ctx: ctx}
}

func TestInstantFeedback(t *testing.T) {
	f := setup(t)
	fb, err := f.athlete.Report(f.ctx, []int{148, 152, 150})
	if err != nil {
		t.Fatal(err)
	}
	if fb.AverageHR != 150 {
		t.Errorf("average = %d, want 150", fb.AverageHR)
	}
	if fb.Zone != ZoneCardio {
		t.Errorf("zone = %v, want cardio", fb.Zone)
	}
	if fb.Encouragement == "" {
		t.Error("no encouragement — the whole point of the system")
	}
	if got := f.coach.SamplesSeen("runner-watch"); got != 3 {
		t.Errorf("SamplesSeen = %d, want 3", got)
	}
}

func TestStreamingAccumulates(t *testing.T) {
	f := setup(t)
	for i := 0; i < 5; i++ {
		if _, err := f.athlete.Report(f.ctx, []int{120, 125}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.coach.SamplesSeen("runner-watch"); got != 10 {
		t.Fatalf("SamplesSeen = %d, want 10", got)
	}
}

func TestReportValidation(t *testing.T) {
	f := setup(t)
	if _, err := f.athlete.Report(f.ctx, nil); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := f.athlete.Report(f.ctx, []int{-5}); err == nil {
		t.Fatal("negative heart rate accepted")
	}
}

func TestNoCoach(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	if err := env.Add("solo", mobility.Static{}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	d, err := peerhood.NewDaemon(peerhood.Config{Device: "solo", Network: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	athlete := NewAthlete(peerhood.NewLibrary(d), 30)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := athlete.Report(ctx, []int{100}); !errors.Is(err, ErrNoCoach) {
		t.Fatalf("err = %v, want ErrNoCoach", err)
	}
}

// TestStreamSurvivesTechnologySwitch: the athlete runs out of Bluetooth
// range mid-exercise; the seamless connection fails over to WLAN and
// feedback keeps flowing (the §4.4 claim that PeerHood apps "retain
// existing connection and communicate with all the moving devices").
func TestStreamSurvivesTechnologySwitch(t *testing.T) {
	f := setup(t)
	if _, err := f.athlete.Report(f.ctx, []int{140}); err != nil {
		t.Fatal(err)
	}
	// Run to 50 m: outside Bluetooth (10 m), inside WLAN (91 m).
	if err := f.env.SetModel("runner-watch", mobility.Static{At: geo.Pt(50, 0)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		fb, err := f.athlete.Report(f.ctx, []int{142})
		lastErr = err
		if err == nil && fb.AverageHR == 142 {
			return // stream survived the switch
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("stream never recovered after leaving Bluetooth range: %v", lastErr)
}

func TestParseFeedbackMalformed(t *testing.T) {
	for _, bad := range []string{"", "NOPE", "FEEDBACK x 1 hi", "FEEDBACK 1 x hi", "FEEDBACK 1 2"} {
		if _, err := parseFeedback(bad); err == nil {
			t.Errorf("parseFeedback(%q) should fail", bad)
		}
	}
}
