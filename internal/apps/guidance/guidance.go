// Package guidance implements the location-aware guidance system of
// §4.4: "The guidance system offers guidance to travelers in some
// strange environment into some selected destinations" using
// Bluetooth-range guidance points. Each guidance point is a fixed
// PeerHood device that knows the building's walkway graph; a traveler's
// PTD asks the nearest point (the only one in Bluetooth range) for the
// next hop toward a destination.
package guidance

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/peerhood"
)

// ServiceName is the service guidance points register.
const ServiceName ids.ServiceName = "GuidancePoint"

// Errors.
var (
	ErrNoGuidance     = errors.New("guidance: no guidance point in range")
	ErrNoRoute        = errors.New("guidance: no route to destination")
	ErrUnknownPlace   = errors.New("guidance: unknown destination")
	ErrMalformedReply = errors.New("guidance: malformed reply")
)

// Map is the walkway graph shared by all guidance points: named places
// with positions and bidirectional edges.
type Map struct {
	mu     sync.RWMutex
	places map[string]geo.Point
	edges  map[string]map[string]bool
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{
		places: make(map[string]geo.Point),
		edges:  make(map[string]map[string]bool),
	}
}

// AddPlace registers a named location.
func (m *Map) AddPlace(name string, at geo.Point) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.places[name] = at
	if m.edges[name] == nil {
		m.edges[name] = make(map[string]bool)
	}
}

// Connect links two places with a bidirectional walkway.
func (m *Map) Connect(a, b string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.places[a]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlace, a)
	}
	if _, ok := m.places[b]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPlace, b)
	}
	m.edges[a][b] = true
	m.edges[b][a] = true
	return nil
}

// Position returns a place's location.
func (m *Map) Position(name string) (geo.Point, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.places[name]
	return p, ok
}

// Route returns the shortest walking path between two places: Dijkstra
// over the walkway graph with Euclidean edge lengths, so a traveler is
// sent down the genuinely shortest corridor, not just the fewest hops.
func (m *Map) Route(from, to string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.places[from]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, from)
	}
	if _, ok := m.places[to]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, to)
	}
	if from == to {
		return []string{from}, nil
	}
	const unreached = math.MaxFloat64
	dist := map[string]float64{from: 0}
	prev := map[string]string{}
	done := map[string]bool{}
	for {
		// Extract the nearest unfinished place (linear scan: campus
		// maps are tiny).
		cur, best := "", unreached
		for place, d := range dist {
			if !done[place] && d < best {
				cur, best = place, d
			}
		}
		if cur == "" {
			return nil, fmt.Errorf("%w: %s -> %s", ErrNoRoute, from, to)
		}
		if cur == to {
			break
		}
		done[cur] = true
		for next := range m.edges[cur] {
			if done[next] {
				continue
			}
			step := m.places[cur].DistanceTo(m.places[next])
			if alt := best + step; alt < distOr(dist, next, unreached) {
				dist[next] = alt
				prev[next] = cur
			}
		}
	}
	var path []string
	for at := to; at != from; at = prev[at] {
		path = append([]string{at}, path...)
	}
	return append([]string{from}, path...), nil
}

// RouteLength returns the walking distance of a path in meters.
func (m *Map) RouteLength(path []string) (float64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0.0
	for i := 0; i < len(path)-1; i++ {
		a, okA := m.places[path[i]]
		b, okB := m.places[path[i+1]]
		if !okA || !okB {
			return 0, fmt.Errorf("%w: in path %v", ErrUnknownPlace, path)
		}
		if !m.edges[path[i]][path[i+1]] {
			return 0, fmt.Errorf("guidance: %s and %s are not connected", path[i], path[i+1])
		}
		total += a.DistanceTo(b)
	}
	return total, nil
}

func distOr(dist map[string]float64, key string, def float64) float64 {
	if d, ok := dist[key]; ok {
		return d
	}
	return def
}

// Point is one guidance point: a fixed device at a named place serving
// route queries.
type Point struct {
	lib   *peerhood.Library
	wmap  *Map
	place string

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewPoint registers the guidance service on a device standing at the
// named place.
func NewPoint(lib *peerhood.Library, wmap *Map, place string) (*Point, error) {
	if _, ok := wmap.Position(place); !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, place)
	}
	p := &Point{lib: lib, wmap: wmap, place: place}
	listener, err := lib.RegisterService(ServiceName, map[string]string{"place": place})
	if err != nil {
		return nil, fmt.Errorf("guidance: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.wg.Add(1)
	go p.serve(ctx, listener)
	return p, nil
}

// Stop unregisters the point.
func (p *Point) Stop() {
	p.cancel()
	p.lib.UnregisterService(ServiceName)
	p.wg.Wait()
}

// Place returns where this point stands.
func (p *Point) Place() string { return p.place }

func (p *Point) serve(ctx context.Context, listener *netsim.Listener) {
	defer p.wg.Done()
	for {
		conn, err := listener.Accept(ctx)
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer func() { _ = conn.Close() }()
			req, err := conn.Recv(ctx)
			if err != nil {
				return
			}
			_ = conn.Send([]byte(p.handle(string(req))))
		}()
	}
}

// handle answers "ROUTE <destination>" with "OK <hop1>,<hop2>,..." or
// an error token.
func (p *Point) handle(req string) string {
	const prefix = "ROUTE "
	if !strings.HasPrefix(req, prefix) {
		return "BAD_REQUEST"
	}
	dest := strings.TrimSpace(strings.TrimPrefix(req, prefix))
	path, err := p.wmap.Route(p.place, dest)
	if errors.Is(err, ErrUnknownPlace) {
		return "UNKNOWN_PLACE"
	}
	if err != nil {
		return "NO_ROUTE"
	}
	return "OK " + strings.Join(path, ",")
}

// Traveler is the PTD side: it discovers the in-range guidance point
// and asks for directions.
type Traveler struct {
	lib *peerhood.Library
}

// NewTraveler binds a traveler to their device's library.
func NewTraveler(lib *peerhood.Library) *Traveler {
	return &Traveler{lib: lib}
}

// Directions queries the nearest (first discovered) guidance point for
// the hop sequence to the destination.
func (t *Traveler) Directions(ctx context.Context, destination string) ([]string, error) {
	points := t.lib.DevicesOffering(ServiceName)
	if len(points) == 0 {
		return nil, ErrNoGuidance
	}
	conn, err := t.lib.Connect(ctx, points[0], ServiceName)
	if err != nil {
		return nil, fmt.Errorf("guidance: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send([]byte("ROUTE " + destination)); err != nil {
		return nil, err
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	reply := string(resp)
	switch {
	case strings.HasPrefix(reply, "OK "):
		return strings.Split(strings.TrimPrefix(reply, "OK "), ","), nil
	case reply == "UNKNOWN_PLACE":
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlace, destination)
	case reply == "NO_ROUTE":
		return nil, fmt.Errorf("%w: to %q", ErrNoRoute, destination)
	default:
		return nil, fmt.Errorf("%w: %q", ErrMalformedReply, reply)
	}
}
