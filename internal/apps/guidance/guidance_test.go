package guidance

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// campusMap builds the test walkway graph:
//
//	entrance - lobby - corridor - room6604
//	              \
//	               cafeteria
func campusMap(t *testing.T) *Map {
	t.Helper()
	m := NewMap()
	m.AddPlace("entrance", geo.Pt(0, 0))
	m.AddPlace("lobby", geo.Pt(20, 0))
	m.AddPlace("corridor", geo.Pt(40, 0))
	m.AddPlace("room6604", geo.Pt(60, 0))
	m.AddPlace("cafeteria", geo.Pt(20, 20))
	for _, e := range [][2]string{
		{"entrance", "lobby"}, {"lobby", "corridor"},
		{"corridor", "room6604"}, {"lobby", "cafeteria"},
	} {
		if err := m.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestRouteShortestPath(t *testing.T) {
	m := campusMap(t)
	path, err := m.Route("entrance", "room6604")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"entrance", "lobby", "corridor", "room6604"}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	m := campusMap(t)
	path, err := m.Route("lobby", "lobby")
	if err != nil || len(path) != 1 || path[0] != "lobby" {
		t.Fatalf("path = %v, %v", path, err)
	}
}

func TestRouteUnknownAndUnreachable(t *testing.T) {
	m := campusMap(t)
	if _, err := m.Route("entrance", "mars"); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("err = %v, want ErrUnknownPlace", err)
	}
	m.AddPlace("island", geo.Pt(999, 999)) // no edges
	if _, err := m.Route("entrance", "island"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestConnectValidation(t *testing.T) {
	m := NewMap()
	m.AddPlace("a", geo.Pt(0, 0))
	if err := m.Connect("a", "missing"); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("err = %v", err)
	}
}

func TestGuidanceOverPeerHood(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	m := campusMap(t)

	// A guidance point in the lobby; a traveler standing next to it.
	if err := env.Add("gp-lobby", mobility.Static{At: geo.Pt(20, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	if err := env.Add("traveler-ptd", mobility.Static{At: geo.Pt(22, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	mkLib := func(dev ids.DeviceID) *peerhood.Library {
		d, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Stop)
		return peerhood.NewLibrary(d)
	}
	gpLib := mkLib("gp-lobby")
	travelerLib := mkLib("traveler-ptd")

	point, err := NewPoint(gpLib, m, "lobby")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(point.Stop)
	if point.Place() != "lobby" {
		t.Fatalf("Place = %q", point.Place())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	if err := travelerLib.Daemon().RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}

	traveler := NewTraveler(travelerLib)
	path, err := traveler.Directions(ctx, "room6604")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != "lobby" || path[2] != "room6604" {
		t.Fatalf("directions = %v", path)
	}

	if _, err := traveler.Directions(ctx, "mars"); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("err = %v, want ErrUnknownPlace", err)
	}
}

func TestNoGuidancePointInRange(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	if err := env.Add("lonely", mobility.Static{At: geo.Pt(0, 0)}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	d, err := peerhood.NewDaemon(peerhood.Config{Device: "lonely", Network: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	traveler := NewTraveler(peerhood.NewLibrary(d))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := traveler.Directions(ctx, "anywhere"); !errors.Is(err, ErrNoGuidance) {
		t.Fatalf("err = %v, want ErrNoGuidance", err)
	}
}

func TestNewPointUnknownPlace(t *testing.T) {
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-4)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	if err := env.Add("gp", mobility.Static{}, radio.Bluetooth); err != nil {
		t.Fatal(err)
	}
	d, err := peerhood.NewDaemon(peerhood.Config{Device: "gp", Network: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Stop)
	if _, err := NewPoint(peerhood.NewLibrary(d), NewMap(), "nowhere"); !errors.Is(err, ErrUnknownPlace) {
		t.Fatalf("err = %v, want ErrUnknownPlace", err)
	}
}

// TestRoutePicksShorterDistanceNotFewerHops: with a long direct
// corridor and a shorter two-hop detour, Dijkstra takes the detour.
func TestRoutePicksShorterDistanceNotFewerHops(t *testing.T) {
	m := NewMap()
	m.AddPlace("start", geo.Pt(0, 0))
	m.AddPlace("end", geo.Pt(100, 0))
	m.AddPlace("mid", geo.Pt(50, 5)) // slight dogleg: ~100.5 m total
	// Direct corridor loops far around: model as a waypoint way off axis.
	m.AddPlace("detour", geo.Pt(50, 200)) // start->detour->end ≈ 412 m
	for _, e := range [][2]string{{"start", "detour"}, {"detour", "end"}, {"start", "mid"}, {"mid", "end"}} {
		if err := m.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	path, err := m.Route("start", "end")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1] != "mid" {
		t.Fatalf("path = %v, want via mid", path)
	}
	length, err := m.RouteLength(path)
	if err != nil {
		t.Fatal(err)
	}
	if length < 100 || length > 101 {
		t.Fatalf("length = %.1f, want ≈100.5", length)
	}
}

func TestRouteLengthValidation(t *testing.T) {
	m := campusMap(t)
	if _, err := m.RouteLength([]string{"entrance", "mars"}); err == nil {
		t.Fatal("unknown place accepted")
	}
	if _, err := m.RouteLength([]string{"entrance", "room6604"}); err == nil {
		t.Fatal("unconnected hop accepted")
	}
	length, err := m.RouteLength([]string{"entrance", "lobby"})
	if err != nil || length != 20 {
		t.Fatalf("length = %v, %v", length, err)
	}
	if zero, err := m.RouteLength([]string{"lobby"}); err != nil || zero != 0 {
		t.Fatalf("single-place length = %v, %v", zero, err)
	}
}
