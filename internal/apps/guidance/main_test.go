package guidance

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain arms the goroutine-leak checker: a test that returns while
// simulator goroutines (conn pumps, daemon loops, servers) are still
// running has failed to tear its world down, and the next test inherits
// load-dependent timing.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
