package community

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
)

// ServerOptions tunes the server's behavior under overload. The zero
// value (via NewServer) serves every session it can hold and never
// rate-limits, which preserves the classic Table 6 behavior; overload
// experiments shrink the limits explicitly.
type ServerOptions struct {
	// MaxSessions bounds the concurrent serving sessions (default 1024).
	// Serving goroutines are started on demand and exit when idle, so a
	// generous bound costs nothing in a quiet neighborhood.
	MaxSessions int
	// QueueDepth bounds the admission queue holding accepted sessions
	// that wait for a free serving slot (default 256). A session arriving
	// with the queue full is shed: it gets one BUSY frame and is closed.
	QueueDepth int
	// RatePerPeer is the per-peer request budget in weighted requests
	// per modeled second; 0 disables rate limiting. Control frames
	// (PS_PING) weigh nothing, bulk transfers weigh more than small
	// reads, so pings stay answerable while profiles are throttled.
	RatePerPeer float64
	// Burst is the token-bucket depth (default 4×RatePerPeer).
	Burst float64
	// WriteTimeout bounds, in modeled time, how long a response write
	// may wait on a peer that has stopped reading before the session is
	// aborted (default 30s).
	WriteTimeout time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Burst <= 0 {
		o.Burst = 4 * o.RatePerPeer
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// ServerStats counts the server's admission decisions, so overload
// experiments can see load being shed explicitly instead of latency
// growing without bound.
type ServerStats struct {
	// Admitted counts sessions handed to a serving worker.
	Admitted uint64
	// Queued counts sessions that waited in the admission queue before
	// being served.
	Queued uint64
	// Shed counts sessions rejected at admission with a BUSY frame (or
	// dropped outright when even the shed path was saturated).
	Shed uint64
	// RateLimited counts requests refused with BUSY by the per-peer
	// token bucket.
	RateLimited uint64
	// Served counts requests dispatched to a Table 6 handler.
	Served uint64
	// SlowWriters counts sessions aborted because a response write
	// exceeded WriteTimeout — the peer stopped reading.
	SlowWriters uint64
	// QueueDepthMax is the admission queue's high-water mark.
	QueueDepthMax uint64
}

// Add accumulates another snapshot into s (QueueDepthMax takes the
// max), so experiments can sum a whole deployment.
func (s *ServerStats) Add(o ServerStats) {
	s.Admitted += o.Admitted
	s.Queued += o.Queued
	s.Shed += o.Shed
	s.RateLimited += o.RateLimited
	s.Served += o.Served
	s.SlowWriters += o.SlowWriters
	if o.QueueDepthMax > s.QueueDepthMax {
		s.QueueDepthMax = o.QueueDepthMax
	}
}

type serverCounters struct {
	admitted      atomic.Uint64
	queued        atomic.Uint64
	shed          atomic.Uint64
	rateLimited   atomic.Uint64
	served        atomic.Uint64
	slowWriters   atomic.Uint64
	queueDepthMax atomic.Uint64
}

func (c *serverCounters) observeDepth(depth uint64) {
	for {
		cur := c.queueDepthMax.Load()
		if depth <= cur || c.queueDepthMax.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// Stats returns a snapshot of the server's admission counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Admitted:      s.counters.admitted.Load(),
		Queued:        s.counters.queued.Load(),
		Shed:          s.counters.shed.Load(),
		RateLimited:   s.counters.rateLimited.Load(),
		Served:        s.counters.served.Load(),
		SlowWriters:   s.counters.slowWriters.Load(),
		QueueDepthMax: s.counters.queueDepthMax.Load(),
	}
}

// opWeight prices one request against the per-peer budget. Pings are
// free — under overload the server keeps answering the tiny control
// frames that feed liveness decisions, and sheds the expensive traffic
// instead. Bulk transfers cost four small reads.
func opWeight(op string) float64 {
	switch op {
	case OpPing:
		return 0
	case OpGetProfile, OpFetchShared, OpSharedContent:
		return 4
	default:
		return 1
	}
}

// peerBucket is one peer's token bucket, refilled on the modeled
// clock so rate limiting replays deterministically with the scenario.
type peerBucket struct {
	tokens float64
	last   time.Duration
}

// allowRequest charges weight against the remote peer's bucket,
// reporting false when the budget is exhausted.
func (s *Server) allowRequest(remote ids.DeviceID, weight float64) bool {
	if s.opts.RatePerPeer <= 0 || weight == 0 {
		return true
	}
	now := s.env.Elapsed()
	s.rlMu.Lock()
	defer s.rlMu.Unlock()
	b, ok := s.buckets[remote]
	if !ok {
		b = &peerBucket{tokens: s.opts.Burst, last: now}
		s.buckets[remote] = b
	}
	if now > b.last {
		b.tokens += s.opts.RatePerPeer * (now - b.last).Seconds()
		if b.tokens > s.opts.Burst {
			b.tokens = s.opts.Burst
		}
		b.last = now
	}
	if b.tokens < weight {
		return false
	}
	b.tokens -= weight
	return true
}

// admit routes one accepted session: straight to a worker while slots
// are free, into the bounded queue while they are not, and to the shed
// path when even the queue is full. Admission never blocks the accept
// loop and never spawns an unbounded goroutine.
func (s *Server) admit(ctx context.Context, conn *netsim.Conn) {
	s.admMu.Lock()
	if s.active < s.opts.MaxSessions {
		s.active++
		s.admMu.Unlock()
		s.counters.admitted.Add(1)
		s.wg.Add(1)
		go s.worker(ctx, conn)
		return
	}
	if len(s.backlog) < s.opts.QueueDepth {
		s.backlog = append(s.backlog, conn)
		depth := uint64(len(s.backlog))
		s.admMu.Unlock()
		s.counters.queued.Add(1)
		s.counters.observeDepth(depth)
		return
	}
	s.admMu.Unlock()
	s.shed(conn)
}

// worker serves its session, then keeps draining the backlog until it
// is empty — so idle servers hold zero serving goroutines and loaded
// ones hold at most MaxSessions.
func (s *Server) worker(ctx context.Context, conn *netsim.Conn) {
	defer s.wg.Done()
	for {
		s.serveConn(ctx, conn)
		s.admMu.Lock()
		if ctx.Err() != nil || len(s.backlog) == 0 {
			s.active--
			s.admMu.Unlock()
			return
		}
		conn = s.backlog[0]
		s.backlog[0] = nil
		s.backlog = s.backlog[1:]
		s.admMu.Unlock()
		s.counters.admitted.Add(1)
	}
}

// shed rejects one session with an explicit BUSY frame. Delivery goes
// through a single shedder goroutine so a pathological peer (or a
// stalled outbound pump) can never wedge the accept loop; when the
// shedder itself is saturated the session is dropped without the
// courtesy frame — the client sees a reset and backs off anyway.
func (s *Server) shed(conn *netsim.Conn) {
	s.counters.shed.Add(1)
	select {
	case s.shedQ <- conn:
	default:
		conn.Abort()
	}
}

// shedder delivers BUSY frames for shed sessions, one at a time.
func (s *Server) shedder(ctx context.Context) {
	defer s.wg.Done()
	busy := MarshalResponse(Response{Status: StatusBusy})
	for {
		select {
		case <-ctx.Done():
			return
		case conn := <-s.shedQ:
			// The session is fresh, so its transmit queue is empty and
			// Send cannot block; Close's flush is bounded by the conn's
			// own flush timeout.
			_ = conn.Send(busy)
			_ = conn.Close()
		}
	}
}
