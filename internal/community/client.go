package community

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/msc"
	"repro/internal/peerhood"
	"repro/internal/profile"
)

// Errors returned by the client.
var (
	ErrNotLoggedIn   = profile.ErrNotLoggedIn
	ErrMemberUnknown = fmt.Errorf("community: member not found in the neighborhood")
	ErrNotTrusted    = fmt.Errorf("community: not a trusted friend")
	ErrRemote        = fmt.Errorf("community: remote error")
	ErrClientClosed  = fmt.Errorf("community: client closed")
	// ErrPeerBusy reports explicit load shedding: the peer answered
	// BUSY, refusing the session or the request. The peer is healthy.
	ErrPeerBusy = fmt.Errorf("community: peer shed the request")
	// ErrPeerCircuitOpen reports that the peer's circuit breaker is
	// open: recent calls kept failing, so the client skips the peer
	// until the breaker's next probe window.
	ErrPeerCircuitOpen = fmt.Errorf("community: peer circuit open")
)

// MemberInfo locates an online member in the neighborhood.
type MemberInfo struct {
	Member ids.MemberID
	Device ids.DeviceID
}

// Client is the application client of §5.2.3.2: it connects to the
// PeerHoodCommunity servers of all nearby devices, fans requests out
// "simultaneously" as the MSCs show, aggregates the answers, and keeps
// the local dynamic-group view updated.
type Client struct {
	lib   *peerhood.Library
	store *profile.Store
	sem   *interest.Semantics
	mgr   *core.Manager

	mu       sync.Mutex
	conns    map[ids.DeviceID]*peerhood.RobustConn
	resolved map[ids.MemberID]ids.DeviceID
	cache    map[ids.DeviceID]*peerCache
	inflight map[flightKey]*flightCall
	rec      *msc.Recorder
	resil    *resilience
	closed   bool

	counters clientCounters
}

// peerCache is the delta-synchronization state for one neighbor: the
// last versioned answers it gave us and the epoch they were valid at.
// Entries are dropped whole on dropConn — link loss means we can no
// longer tell what the far side mutated while unreachable.
type peerCache struct {
	// Member summary (conditional PS_GETINTERESTLIST).
	hasSummary   bool
	summaryEpoch uint64
	online       bool // the device had a logged-in member at summaryEpoch
	member       ids.MemberID
	interests    []string

	// Remote profile (conditional PS_GETPROFILE).
	hasProfile    bool
	profileEpoch  uint64
	profileMember ids.MemberID
	prof          RemoteProfile
}

// flightKey identifies one in-flight request for singleflight
// collapsing: same device, op and arguments.
type flightKey struct {
	dev  ids.DeviceID
	op   string
	args string
}

// flightCall is the shared result of one collapsed exchange.
type flightCall struct {
	done chan struct{}
	resp Response
	err  error
}

// ClientStats counts the client's transport experience, so experiments
// can see how gracefully it degraded under faults: a failed call inside
// a fan-out does not fail the operation, it just marks the fan-out
// degraded.
type ClientStats struct {
	// CallsAttempted counts request/response exchanges started.
	CallsAttempted uint64
	// CallsFailed counts exchanges that returned a transport or
	// decoding error after RobustConn's retries were exhausted.
	CallsFailed uint64
	// FanoutsRun counts parallel all-neighbor request rounds.
	FanoutsRun uint64
	// FanoutsDegraded counts fan-outs where at least one device failed
	// to answer and the operation proceeded on partial results.
	FanoutsDegraded uint64
	// CacheHits counts reads served from the per-peer delta cache after
	// a NOT_MODIFIED answer.
	CacheHits uint64
	// CacheInvalidations counts per-peer caches dropped on link loss.
	CacheInvalidations uint64
	// NotModified counts NOT_MODIFIED answers received from servers.
	NotModified uint64
	// SingleflightHits counts calls that were collapsed into an
	// identical exchange already in flight to the same device.
	SingleflightHits uint64
	// BreakerSkips counts calls refused locally because the peer's
	// circuit breaker was open — failures the client didn't wait for.
	BreakerSkips uint64
	// BreakerOpens counts breaker trips (closed→open plus failed
	// probes re-opening).
	BreakerOpens uint64
	// BreakerReadmits counts peers re-admitted after a successful
	// half-open probe.
	BreakerReadmits uint64
	// BusyRejected counts BUSY answers — the peer shedding load
	// explicitly rather than failing.
	BusyRejected uint64
	// HedgesLaunched counts spare sessions raced against a silent
	// primary; HedgeWins counts races the spare won.
	HedgesLaunched uint64
	HedgeWins      uint64
}

type clientCounters struct {
	callsAttempted     atomic.Uint64
	callsFailed        atomic.Uint64
	fanoutsRun         atomic.Uint64
	fanoutsDegraded    atomic.Uint64
	cacheHits          atomic.Uint64
	cacheInvalidations atomic.Uint64
	notModified        atomic.Uint64
	singleflightHits   atomic.Uint64
	breakerSkips       atomic.Uint64
	busyRejected       atomic.Uint64
	hedgesLaunched     atomic.Uint64
	hedgeWins          atomic.Uint64
}

// Stats returns a snapshot of the client's transport counters.
func (c *Client) Stats() ClientStats {
	out := ClientStats{
		CallsAttempted:     c.counters.callsAttempted.Load(),
		CallsFailed:        c.counters.callsFailed.Load(),
		FanoutsRun:         c.counters.fanoutsRun.Load(),
		FanoutsDegraded:    c.counters.fanoutsDegraded.Load(),
		CacheHits:          c.counters.cacheHits.Load(),
		CacheInvalidations: c.counters.cacheInvalidations.Load(),
		NotModified:        c.counters.notModified.Load(),
		SingleflightHits:   c.counters.singleflightHits.Load(),
		BreakerSkips:       c.counters.breakerSkips.Load(),
		BusyRejected:       c.counters.busyRejected.Load(),
		HedgesLaunched:     c.counters.hedgesLaunched.Load(),
		HedgeWins:          c.counters.hedgeWins.Load(),
	}
	if r := c.resilience(); r != nil {
		r.mu.Lock()
		for _, b := range r.breakers {
			cts := b.Counts()
			out.BreakerOpens += cts.Opened + cts.Reopened
			out.BreakerReadmits += cts.Readmitted
		}
		r.mu.Unlock()
	}
	return out
}

// Add accumulates another snapshot into s, so experiments can sum the
// counters of a whole deployment.
func (s *ClientStats) Add(o ClientStats) {
	s.CallsAttempted += o.CallsAttempted
	s.CallsFailed += o.CallsFailed
	s.FanoutsRun += o.FanoutsRun
	s.FanoutsDegraded += o.FanoutsDegraded
	s.CacheHits += o.CacheHits
	s.CacheInvalidations += o.CacheInvalidations
	s.NotModified += o.NotModified
	s.SingleflightHits += o.SingleflightHits
	s.BreakerSkips += o.BreakerSkips
	s.BreakerOpens += o.BreakerOpens
	s.BreakerReadmits += o.BreakerReadmits
	s.BusyRejected += o.BusyRejected
	s.HedgesLaunched += o.HedgesLaunched
	s.HedgeWins += o.HedgeWins
}

// NewClient builds a client for the logged-in user of the device's
// store. sem may be nil to disable interest semantics.
func NewClient(lib *peerhood.Library, store *profile.Store, sem *interest.Semantics) (*Client, error) {
	if lib == nil || store == nil {
		return nil, fmt.Errorf("community: client needs a library and a store")
	}
	c := &Client{
		lib:      lib,
		store:    store,
		sem:      sem,
		conns:    make(map[ids.DeviceID]*peerhood.RobustConn),
		resolved: make(map[ids.MemberID]ids.DeviceID),
		cache:    make(map[ids.DeviceID]*peerCache),
		inflight: make(map[flightKey]*flightCall),
	}
	return c, nil
}

// SetRecorder attaches an MSC recorder to capture the message sequences
// of every operation; nil disables recording.
func (c *Client) SetRecorder(rec *msc.Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = rec
}

func (c *Client) recorder() *msc.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

// name identifies this client on MSC charts.
func (c *Client) name() string { return "client@" + string(c.lib.Device()) }

func serverName(dev ids.DeviceID) string { return "server@" + string(dev) }

// Close releases cached connections; subsequent operations fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[ids.DeviceID]*peerhood.RobustConn)
}

// Manager returns the dynamic-group manager, creating it lazily for the
// logged-in member.
func (c *Client) Manager() (*core.Manager, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mgr != nil {
		return c.mgr, nil
	}
	p, err := c.store.ActiveProfile()
	if err != nil {
		return nil, err
	}
	self := core.Member{Device: c.lib.Device(), ID: p.Member, Interests: p.Interests}
	c.mgr = core.NewManager(self, c.sem)
	return c.mgr, nil
}

// activeMember returns the logged-in member ID.
func (c *Client) activeMember() (ids.MemberID, error) {
	m := c.store.Active()
	if m == "" {
		return "", ErrNotLoggedIn
	}
	return m, nil
}

// conn returns a cached robust connection to a device's community
// server, dialing on first use.
func (c *Client) conn(ctx context.Context, dev ids.DeviceID) (*peerhood.RobustConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if rc, ok := c.conns[dev]; ok {
		c.mu.Unlock()
		return rc, nil
	}
	c.mu.Unlock()
	rc, err := c.lib.ConnectRobust(ctx, dev, ServiceName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		rc.Close()
		return nil, ErrClientClosed
	}
	if existing, ok := c.conns[dev]; ok {
		rc.Close()
		return existing, nil
	}
	c.conns[dev] = rc
	return rc, nil
}

// dropConn forgets a dead connection and invalidates the device's
// delta cache: across a link loss we cannot know what the far side
// mutated, so the next exchange must be a full fetch.
func (c *Client) dropConn(dev ids.DeviceID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rc, ok := c.conns[dev]; ok {
		rc.Close()
		delete(c.conns, dev)
	}
	if _, ok := c.cache[dev]; ok {
		delete(c.cache, dev)
		c.counters.cacheInvalidations.Add(1)
	}
}

// cacheEntry returns the device's cache record, creating it if absent.
// Callers hold c.mu.
func (c *Client) cacheEntry(dev ids.DeviceID) *peerCache {
	pc, ok := c.cache[dev]
	if !ok {
		pc = &peerCache{}
		c.cache[dev] = pc
	}
	return pc
}

// call performs one request/response with a device, recording the MSC
// arrows. It is where the client's degradation machinery lives: the
// peer's circuit breaker gates the attempt, explicit BUSY answers are
// surfaced as backpressure (and never count against the peer's
// health), and everything else feeds the breaker's health score.
func (c *Client) call(ctx context.Context, dev ids.DeviceID, req Request) (Response, error) {
	c.counters.callsAttempted.Add(1)
	br := c.breakerFor(dev)
	if br != nil && !br.Allow() {
		c.counters.breakerSkips.Add(1)
		c.counters.callsFailed.Add(1)
		return Response{}, fmt.Errorf("%w: %s", ErrPeerCircuitOpen, dev)
	}
	rc, err := c.conn(ctx, dev)
	if err != nil {
		c.counters.callsFailed.Add(1)
		c.recordOutcome(br, err)
		return Response{}, err
	}
	rec := c.recorder()
	rec.Record(c.name(), serverName(dev), req.Op)
	// Marshal into a pooled buffer: the transport copies the payload on
	// send, so the buffer is reusable as soon as the exchange returns
	// (the hedged path copies it up front for its own legs).
	buf := getFrameBuf()
	*buf = AppendRequest(*buf, req)
	raw, err := c.exchange(ctx, dev, rc, *buf, req.Op)
	putFrameBuf(buf)
	if err != nil {
		c.dropConn(dev)
		c.counters.callsFailed.Add(1)
		c.recordOutcome(br, err)
		return Response{}, fmt.Errorf("community: calling %s on %s: %w", req.Op, dev, err)
	}
	resp, err := UnmarshalResponse(raw)
	if err != nil {
		// A mangled frame degrades to a failed call; it must never take
		// the client down.
		c.counters.callsFailed.Add(1)
		c.recordOutcome(br, err)
		return Response{}, err
	}
	if resp.Status == StatusBusy {
		// Explicit shedding: the peer is alive and chose not to serve
		// us. Health-wise that is a success — tripping the breaker on
		// BUSY would turn graceful degradation into self-inflicted
		// partition.
		c.counters.busyRejected.Add(1)
		c.counters.callsFailed.Add(1)
		if br != nil {
			br.Record(true)
		}
		rec.Record(serverName(dev), c.name(), resp.Status)
		return Response{}, fmt.Errorf("%w: %s refused %s", ErrPeerBusy, dev, req.Op)
	}
	if br != nil {
		br.Record(true)
	}
	rec.Record(serverName(dev), c.name(), resp.Status)
	return resp, nil
}

// Ping probes one device's community server. It is free under the
// server's rate limit and hedge-eligible, so it answers "overloaded or
// dead?" even when everything else is being shed.
func (c *Client) Ping(ctx context.Context, dev ids.DeviceID) error {
	resp, err := c.call(ctx, dev, Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	return nil
}

// singleflightable reports whether identical concurrent requests for
// this op may share one wire exchange. Only side-effect-free reads
// qualify: mutations (comments, messages) must each reach the server,
// and PS_GETPROFILE records a visitor per request.
func singleflightable(op string) bool {
	switch op {
	case OpGetOnlineMemberList, OpGetInterestList, OpGetInterestedMemberList,
		OpGetTrustedFriend, OpCheckTrusted, OpCheckMemberID, OpSharedContent:
		return true
	}
	return false
}

// callShared performs one request/response, collapsing identical
// concurrent read requests to the same device into a single exchange.
// The lock is never held across the call itself; late arrivals wait on
// the leader's done channel.
func (c *Client) callShared(ctx context.Context, dev ids.DeviceID, req Request) (Response, error) {
	if !singleflightable(req.Op) {
		return c.call(ctx, dev, req)
	}
	key := flightKey{dev: dev, op: req.Op, args: strings.Join(req.Args, "\x1f")}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Response{}, ErrClientClosed
	}
	if fc, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.counters.singleflightHits.Add(1)
		<-fc.done
		return fc.resp, fc.err
	}
	fc := &flightCall{done: make(chan struct{})}
	c.inflight[key] = fc
	c.mu.Unlock()
	fc.resp, fc.err = c.call(ctx, dev, req)
	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fc.done)
	return fc.resp, fc.err
}

// fanoutWorkers bounds how many calls one fan-out keeps in flight. The
// thesis's client asks "simultaneously", but at substrate scale an
// unbounded goroutine-per-device round is its own denial of service;
// a fixed pool keeps rounds cheap without changing observable order.
const fanoutWorkers = 16

// runBounded executes fn(0..n-1) on at most fanoutWorkers goroutines,
// returning when all are done. Indices are handed out atomically, so
// callers index result slices and keep deterministic output order.
func (c *Client) runBounded(n int, fn func(int)) {
	workers := fanoutWorkers
	if n < workers {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// deviceResponse pairs a device with its answer.
type deviceResponse struct {
	Device   ids.DeviceID
	Response Response
	Err      error
}

// fanout sends one request to every neighborhood device offering the
// community service, in parallel ("simultaneously", Figures 11–17), and
// returns the answers sorted by device.
func (c *Client) fanout(ctx context.Context, req Request) []deviceResponse {
	return c.fanoutBy(ctx, func(ids.DeviceID) Request { return req })
}

// fanoutBy is fanout with a per-device request builder, so conditional
// reads can quote each device's cached epoch. Answers come back sorted
// by device: DevicesOffering returns devices sorted and results are
// written by index, regardless of worker scheduling.
func (c *Client) fanoutBy(ctx context.Context, build func(ids.DeviceID) Request) []deviceResponse {
	c.counters.fanoutsRun.Add(1)
	devices := c.lib.DevicesOffering(ServiceName)
	out := make([]deviceResponse, len(devices))
	c.runBounded(len(devices), func(i int) {
		dev := devices[i]
		resp, err := c.callShared(ctx, dev, build(dev))
		out[i] = deviceResponse{Device: dev, Response: resp, Err: err}
	})
	for _, dr := range out {
		if dr.Err != nil {
			c.counters.fanoutsDegraded.Add(1)
			break
		}
	}
	return out
}

// OnlineMembers implements Figure 11 (Get Member List): ask every
// connected server for its online member and merge the answers.
func (c *Client) OnlineMembers(ctx context.Context) ([]MemberInfo, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	var members []MemberInfo
	for _, dr := range c.fanout(ctx, Request{Op: OpGetOnlineMemberList}) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		for _, f := range dr.Response.Fields {
			members = append(members, MemberInfo{Member: ids.MemberID(f), Device: dr.Device})
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Member < members[j].Member })
	return members, nil
}

// InterestsList implements Figure 12 (Get Interests List): gather
// interests from every server, merge with the local ones, deduplicate.
func (c *Client) InterestsList(ctx context.Context) ([]string, error) {
	member, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var all []string
	add := func(term string) {
		canon := c.sem.Canon(term)
		if canon == "" || seen[canon] {
			return
		}
		seen[canon] = true
		all = append(all, canon)
	}
	p, err := c.store.Get(member)
	if err != nil {
		return nil, err
	}
	for _, t := range p.Interests {
		add(t)
	}
	for _, dr := range c.fanout(ctx, Request{Op: OpGetInterestList}) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		for _, t := range dr.Response.Fields {
			add(t)
		}
	}
	sort.Strings(all)
	return all, nil
}

// InterestedMembers implements PS_GETINTERESTEDMEMBERLIST: the online
// members sharing one interest. With a semantics layer attached, the
// query expands to the whole taught synonym class, so asking for
// "biking" also finds members who wrote "cycling".
func (c *Client) InterestedMembers(ctx context.Context, term string) ([]MemberInfo, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	variants := []string{interest.Normalize(term)}
	if c.sem != nil {
		if class := c.sem.Class(term); len(class) > 0 {
			variants = class
		}
	}
	seen := make(map[ids.MemberID]bool)
	var members []MemberInfo
	for _, variant := range variants {
		for _, dr := range c.fanout(ctx, Request{Op: OpGetInterestedMemberList, Args: []string{variant}}) {
			if dr.Err != nil || dr.Response.Status != StatusOK {
				continue
			}
			for _, f := range dr.Response.Fields {
				m := ids.MemberID(f)
				if seen[m] {
					continue
				}
				seen[m] = true
				members = append(members, MemberInfo{Member: m, Device: dr.Device})
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Member < members[j].Member })
	return members, nil
}

// resolveDevice finds which neighborhood device hosts a member, via
// PS_CHECKMEMBERID. Successful resolutions are cached; a cached entry
// is re-verified with a single request (instead of a full fan-out) and
// dropped if the device no longer hosts the member.
func (c *Client) resolveDevice(ctx context.Context, member ids.MemberID) (ids.DeviceID, error) {
	c.mu.Lock()
	cached, ok := c.resolved[member]
	c.mu.Unlock()
	if ok {
		resp, err := c.call(ctx, cached, Request{Op: OpCheckMemberID, Args: []string{string(member)}})
		if err == nil && resp.Status == StatusSuccess {
			return cached, nil
		}
		c.mu.Lock()
		delete(c.resolved, member)
		c.mu.Unlock()
	}
	for _, dr := range c.fanout(ctx, Request{Op: OpCheckMemberID, Args: []string{string(member)}}) {
		if dr.Err == nil && dr.Response.Status == StatusSuccess {
			c.mu.Lock()
			c.resolved[member] = dr.Device
			c.mu.Unlock()
			return dr.Device, nil
		}
	}
	return "", fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// ViewProfile implements Figure 13 (View Member Profile): the request
// goes to all connected servers; the desired one answers with the
// profile (and records us as a visitor), the others with
// NO_MEMBERS_YET. Requests are conditional: a device whose profile we
// already cached is asked with its epoch and answers NOT_MODIFIED when
// nothing changed — the visit is still recorded server-side.
func (c *Client) ViewProfile(ctx context.Context, member ids.MemberID) (RemoteProfile, error) {
	requester, err := c.activeMember()
	if err != nil {
		return RemoteProfile{}, err
	}
	results := c.fanoutBy(ctx, func(dev ids.DeviceID) Request {
		var epoch uint64
		var known bool
		c.mu.Lock()
		if pc, ok := c.cache[dev]; ok && pc.hasProfile && pc.profileMember == member {
			epoch, known = pc.profileEpoch, true
		}
		c.mu.Unlock()
		return Request{Op: OpGetProfile, Args: []string{string(member), string(requester), ifEpochArg(epoch, known)}}
	})
	for _, dr := range results {
		if dr.Err != nil {
			continue
		}
		switch dr.Response.Status {
		case StatusOK:
			fields, sealed := openVersioned(dr.Response)
			if !sealed || len(fields) < 1 {
				continue
			}
			epoch, perr := strconv.ParseUint(fields[0], 10, 64)
			if perr != nil {
				continue
			}
			prof, derr := decodeProfile(fields[1:])
			if derr != nil {
				return RemoteProfile{}, derr
			}
			c.mu.Lock()
			pc := c.cacheEntry(dr.Device)
			pc.hasProfile, pc.profileEpoch, pc.profileMember = true, epoch, member
			pc.prof = cloneRemoteProfile(prof)
			c.mu.Unlock()
			return prof, nil
		case StatusNotModified:
			if _, sealed := openVersioned(dr.Response); !sealed {
				continue
			}
			c.counters.notModified.Add(1)
			c.mu.Lock()
			if pc, ok := c.cache[dr.Device]; ok && pc.hasProfile && pc.profileMember == member {
				prof := cloneRemoteProfile(pc.prof)
				c.mu.Unlock()
				c.counters.cacheHits.Add(1)
				return prof, nil
			}
			c.mu.Unlock()
		}
	}
	return RemoteProfile{}, fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// cloneRemoteProfile deep-copies a profile so cached state and returned
// values never alias.
func cloneRemoteProfile(p RemoteProfile) RemoteProfile {
	out := p
	out.Interests = append([]string(nil), p.Interests...)
	out.Comments = append([]profile.Comment(nil), p.Comments...)
	out.Trusted = append([]ids.MemberID(nil), p.Trusted...)
	return out
}

// CommentProfile implements Figure 14 (Put Profile Comment).
func (c *Client) CommentProfile(ctx context.Context, member ids.MemberID, text string) error {
	requester, err := c.activeMember()
	if err != nil {
		return err
	}
	req := Request{Op: OpAddProfileComment, Args: []string{string(member), string(requester), text}}
	for _, dr := range c.fanout(ctx, req) {
		if dr.Err == nil && dr.Response.Status == StatusWritten {
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// TrustedFriendsOf implements Figure 15 (View Members Trusted Friends).
func (c *Client) TrustedFriendsOf(ctx context.Context, member ids.MemberID) ([]ids.MemberID, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	req := Request{Op: OpGetTrustedFriend, Args: []string{string(member)}}
	for _, dr := range c.fanout(ctx, req) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		out := make([]ids.MemberID, 0, len(dr.Response.Fields))
		for _, f := range dr.Response.Fields {
			out = append(out, ids.MemberID(f))
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// SharedContentOf implements Figure 16 (View Members Shared Content):
// first PS_CHECKTRUSTED, then PS_GETSHAREDCONTENT if trusted.
func (c *Client) SharedContentOf(ctx context.Context, member ids.MemberID) ([]profile.ContentItem, error) {
	requester, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	dev, err := c.resolveDevice(ctx, member)
	if err != nil {
		return nil, err
	}
	check, err := c.call(ctx, dev, Request{Op: OpCheckTrusted, Args: []string{string(member), string(requester)}})
	if err != nil {
		return nil, err
	}
	if check.Status == StatusNotTrustedYet {
		return nil, fmt.Errorf("%w: %s has not accepted %s", ErrNotTrusted, member, requester)
	}
	if check.Status != StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, check.Status)
	}
	resp, err := c.call(ctx, dev, Request{Op: OpSharedContent, Args: []string{string(member), string(requester)}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	if len(resp.Fields)%2 != 0 {
		return nil, fmt.Errorf("community: malformed shared-content list")
	}
	var items []profile.ContentItem
	for i := 0; i < len(resp.Fields); i += 2 {
		size, err := strconv.ParseInt(resp.Fields[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("community: bad content size %q", resp.Fields[i+1])
		}
		items = append(items, profile.ContentItem{Name: resp.Fields[i], Size: size})
	}
	return items, nil
}

// FetchShared transfers one shared item from a trusted friend.
func (c *Client) FetchShared(ctx context.Context, member ids.MemberID, name string) ([]byte, error) {
	requester, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	dev, err := c.resolveDevice(ctx, member)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, dev, Request{Op: OpFetchShared, Args: []string{string(member), string(requester), name}})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case StatusOK:
		if len(resp.Fields) != 1 {
			return nil, fmt.Errorf("community: malformed fetch response")
		}
		return []byte(resp.Fields[0]), nil
	case StatusNotTrustedYet:
		return nil, fmt.Errorf("%w: fetching %q from %s", ErrNotTrusted, name, member)
	default:
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
}

// SendMessage implements Figure 17 (Send Message): locate the
// receiver's device, deliver PS_MSG, and on SUCCESSFULLY_WRITTEN record
// the copy in the local outbox.
func (c *Client) SendMessage(ctx context.Context, to ids.MemberID, subject, body string) error {
	sender, err := c.activeMember()
	if err != nil {
		return err
	}
	dev, err := c.resolveDevice(ctx, to)
	if err != nil {
		return err
	}
	resp, err := c.call(ctx, dev, Request{Op: OpMsg, Args: []string{string(to), string(sender), subject, body}})
	if err != nil {
		return err
	}
	if resp.Status != StatusWritten {
		return fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	return c.store.RecordSent(sender, profile.Message{From: sender, To: to, Subject: subject, Body: body})
}

// memberSummary fetches one device's member summary (who is logged in
// and their interests) with a conditional read: the cached epoch is
// quoted, a NOT_MODIFIED answer is served from the cache, and a full
// answer re-primes it. One exchange either way — the versioned
// interest-list reply carries the member ID, where the classic path
// needed PS_GETONLINEMEMBERLIST plus PS_GETINTERESTLIST.
func (c *Client) memberSummary(ctx context.Context, dev ids.DeviceID) (core.Member, bool, error) {
	var epoch uint64
	var known bool
	c.mu.Lock()
	if pc, ok := c.cache[dev]; ok && pc.hasSummary {
		epoch, known = pc.summaryEpoch, true
	}
	c.mu.Unlock()
	resp, err := c.callShared(ctx, dev, Request{Op: OpGetInterestList, Args: []string{ifEpochArg(epoch, known)}})
	if err != nil {
		return core.Member{}, false, err // call already dropped the conn + cache
	}
	switch resp.Status {
	case StatusNotModified:
		if _, sealed := openVersioned(resp); !sealed {
			return core.Member{}, false, nil
		}
		c.counters.notModified.Add(1)
		c.mu.Lock()
		pc, ok := c.cache[dev]
		if !ok || !pc.hasSummary {
			// The cache vanished between our request and the answer (a
			// concurrent link loss); treat the device as absent this
			// round and re-fetch next time.
			c.mu.Unlock()
			return core.Member{}, false, nil
		}
		m := core.Member{Device: dev, ID: pc.member, Interests: pc.interests}
		online := pc.online
		c.mu.Unlock()
		c.counters.cacheHits.Add(1)
		return m, online, nil
	case StatusOK:
		fields, sealed := openVersioned(resp)
		if !sealed || len(fields) < 2 {
			return core.Member{}, false, nil
		}
		e, perr := strconv.ParseUint(fields[0], 10, 64)
		if perr != nil {
			return core.Member{}, false, nil
		}
		member := ids.MemberID(fields[1])
		interests := fields[2:]
		c.mu.Lock()
		pc := c.cacheEntry(dev)
		pc.hasSummary, pc.summaryEpoch, pc.online = true, e, true
		pc.member, pc.interests = member, interests
		c.mu.Unlock()
		return core.Member{Device: dev, ID: member, Interests: interests}, true, nil
	case StatusNoMembersYet:
		if fields, sealed := openVersioned(resp); sealed && len(fields) == 1 {
			if e, perr := strconv.ParseUint(fields[0], 10, 64); perr == nil {
				c.mu.Lock()
				pc := c.cacheEntry(dev)
				pc.hasSummary, pc.summaryEpoch, pc.online = true, e, false
				pc.member, pc.interests = "", nil
				c.mu.Unlock()
			}
		}
		return core.Member{}, false, nil
	default:
		return core.Member{}, false, nil
	}
}

// NearbyMembers gathers a core.Member snapshot for every online
// neighborhood member: who they are and what they are interested in.
// This is the steady-state hot path of dynamic group discovery; it
// runs on the bounded pool with per-device conditional reads.
func (c *Client) NearbyMembers(ctx context.Context) ([]core.Member, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	type answer struct {
		m   core.Member
		ok  bool
		err error
	}
	c.counters.fanoutsRun.Add(1)
	devices := c.lib.DevicesOffering(ServiceName)
	answers := make([]answer, len(devices))
	c.runBounded(len(devices), func(i int) {
		m, ok, err := c.memberSummary(ctx, devices[i])
		answers[i] = answer{m: m, ok: ok, err: err}
	})
	var out []core.Member
	degraded := false
	for _, a := range answers {
		if a.err != nil {
			degraded = true
		}
		if a.ok {
			out = append(out, a.m)
		}
	}
	if degraded {
		// Partial neighborhood: some device failed to answer (or its
		// circuit was open) and discovery proceeded without it.
		c.counters.fanoutsDegraded.Add(1)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RefreshGroups implements the dynamic group discovery cycle of
// Figure 6 end-to-end: gather nearby members over PeerHood and update
// the group manager, returning the membership events.
func (c *Client) RefreshGroups(ctx context.Context) ([]core.Event, error) {
	mgr, err := c.Manager()
	if err != nil {
		return nil, err
	}
	// Keep the manager's view of our interests current.
	p, err := c.store.ActiveProfile()
	if err != nil {
		return nil, err
	}
	mgr.SetInterests(p.Interests)
	nearby, err := c.NearbyMembers(ctx)
	if err != nil {
		return nil, err
	}
	rec := c.recorder()
	rec.Record(c.name(), c.name(), "dynamic group discovery")
	return mgr.Update(nearby), nil
}

// Groups returns the current dynamic groups.
func (c *Client) Groups() []core.Group {
	c.mu.Lock()
	mgr := c.mgr
	c.mu.Unlock()
	if mgr == nil {
		return nil
	}
	return mgr.Groups()
}
