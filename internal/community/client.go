package community

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/msc"
	"repro/internal/peerhood"
	"repro/internal/profile"
)

// Errors returned by the client.
var (
	ErrNotLoggedIn   = profile.ErrNotLoggedIn
	ErrMemberUnknown = fmt.Errorf("community: member not found in the neighborhood")
	ErrNotTrusted    = fmt.Errorf("community: not a trusted friend")
	ErrRemote        = fmt.Errorf("community: remote error")
	ErrClientClosed  = fmt.Errorf("community: client closed")
)

// MemberInfo locates an online member in the neighborhood.
type MemberInfo struct {
	Member ids.MemberID
	Device ids.DeviceID
}

// Client is the application client of §5.2.3.2: it connects to the
// PeerHoodCommunity servers of all nearby devices, fans requests out
// "simultaneously" as the MSCs show, aggregates the answers, and keeps
// the local dynamic-group view updated.
type Client struct {
	lib   *peerhood.Library
	store *profile.Store
	sem   *interest.Semantics
	mgr   *core.Manager

	mu       sync.Mutex
	conns    map[ids.DeviceID]*peerhood.RobustConn
	resolved map[ids.MemberID]ids.DeviceID
	rec      *msc.Recorder
	closed   bool

	counters clientCounters
}

// ClientStats counts the client's transport experience, so experiments
// can see how gracefully it degraded under faults: a failed call inside
// a fan-out does not fail the operation, it just marks the fan-out
// degraded.
type ClientStats struct {
	// CallsAttempted counts request/response exchanges started.
	CallsAttempted uint64
	// CallsFailed counts exchanges that returned a transport or
	// decoding error after RobustConn's retries were exhausted.
	CallsFailed uint64
	// FanoutsRun counts parallel all-neighbor request rounds.
	FanoutsRun uint64
	// FanoutsDegraded counts fan-outs where at least one device failed
	// to answer and the operation proceeded on partial results.
	FanoutsDegraded uint64
}

type clientCounters struct {
	callsAttempted  atomic.Uint64
	callsFailed     atomic.Uint64
	fanoutsRun      atomic.Uint64
	fanoutsDegraded atomic.Uint64
}

// Stats returns a snapshot of the client's transport counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		CallsAttempted:  c.counters.callsAttempted.Load(),
		CallsFailed:     c.counters.callsFailed.Load(),
		FanoutsRun:      c.counters.fanoutsRun.Load(),
		FanoutsDegraded: c.counters.fanoutsDegraded.Load(),
	}
}

// NewClient builds a client for the logged-in user of the device's
// store. sem may be nil to disable interest semantics.
func NewClient(lib *peerhood.Library, store *profile.Store, sem *interest.Semantics) (*Client, error) {
	if lib == nil || store == nil {
		return nil, fmt.Errorf("community: client needs a library and a store")
	}
	c := &Client{
		lib:      lib,
		store:    store,
		sem:      sem,
		conns:    make(map[ids.DeviceID]*peerhood.RobustConn),
		resolved: make(map[ids.MemberID]ids.DeviceID),
	}
	return c, nil
}

// SetRecorder attaches an MSC recorder to capture the message sequences
// of every operation; nil disables recording.
func (c *Client) SetRecorder(rec *msc.Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = rec
}

func (c *Client) recorder() *msc.Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rec
}

// name identifies this client on MSC charts.
func (c *Client) name() string { return "client@" + string(c.lib.Device()) }

func serverName(dev ids.DeviceID) string { return "server@" + string(dev) }

// Close releases cached connections; subsequent operations fail with
// ErrClientClosed.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[ids.DeviceID]*peerhood.RobustConn)
}

// Manager returns the dynamic-group manager, creating it lazily for the
// logged-in member.
func (c *Client) Manager() (*core.Manager, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.mgr != nil {
		return c.mgr, nil
	}
	p, err := c.store.ActiveProfile()
	if err != nil {
		return nil, err
	}
	self := core.Member{Device: c.lib.Device(), ID: p.Member, Interests: p.Interests}
	c.mgr = core.NewManager(self, c.sem)
	return c.mgr, nil
}

// activeMember returns the logged-in member ID.
func (c *Client) activeMember() (ids.MemberID, error) {
	m := c.store.Active()
	if m == "" {
		return "", ErrNotLoggedIn
	}
	return m, nil
}

// conn returns a cached robust connection to a device's community
// server, dialing on first use.
func (c *Client) conn(ctx context.Context, dev ids.DeviceID) (*peerhood.RobustConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if rc, ok := c.conns[dev]; ok {
		c.mu.Unlock()
		return rc, nil
	}
	c.mu.Unlock()
	rc, err := c.lib.ConnectRobust(ctx, dev, ServiceName)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		rc.Close()
		return nil, ErrClientClosed
	}
	if existing, ok := c.conns[dev]; ok {
		rc.Close()
		return existing, nil
	}
	c.conns[dev] = rc
	return rc, nil
}

// dropConn forgets a dead connection.
func (c *Client) dropConn(dev ids.DeviceID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rc, ok := c.conns[dev]; ok {
		rc.Close()
		delete(c.conns, dev)
	}
}

// call performs one request/response with a device, recording the MSC
// arrows.
func (c *Client) call(ctx context.Context, dev ids.DeviceID, req Request) (Response, error) {
	c.counters.callsAttempted.Add(1)
	rc, err := c.conn(ctx, dev)
	if err != nil {
		c.counters.callsFailed.Add(1)
		return Response{}, err
	}
	rec := c.recorder()
	rec.Record(c.name(), serverName(dev), req.Op)
	raw, err := rc.Call(ctx, MarshalRequest(req))
	if err != nil {
		c.dropConn(dev)
		c.counters.callsFailed.Add(1)
		return Response{}, fmt.Errorf("community: calling %s on %s: %w", req.Op, dev, err)
	}
	resp, err := UnmarshalResponse(raw)
	if err != nil {
		// A mangled frame degrades to a failed call; it must never take
		// the client down.
		c.counters.callsFailed.Add(1)
		return Response{}, err
	}
	rec.Record(serverName(dev), c.name(), resp.Status)
	return resp, nil
}

// deviceResponse pairs a device with its answer.
type deviceResponse struct {
	Device   ids.DeviceID
	Response Response
	Err      error
}

// fanout sends one request to every neighborhood device offering the
// community service, in parallel ("simultaneously", Figures 11–17), and
// returns the answers sorted by device.
func (c *Client) fanout(ctx context.Context, req Request) []deviceResponse {
	c.counters.fanoutsRun.Add(1)
	devices := c.lib.DevicesOffering(ServiceName)
	out := make([]deviceResponse, len(devices))
	var wg sync.WaitGroup
	for i, dev := range devices {
		i, dev := i, dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.call(ctx, dev, req)
			out[i] = deviceResponse{Device: dev, Response: resp, Err: err}
		}()
	}
	wg.Wait()
	for _, dr := range out {
		if dr.Err != nil {
			c.counters.fanoutsDegraded.Add(1)
			break
		}
	}
	return out
}

// OnlineMembers implements Figure 11 (Get Member List): ask every
// connected server for its online member and merge the answers.
func (c *Client) OnlineMembers(ctx context.Context) ([]MemberInfo, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	var members []MemberInfo
	for _, dr := range c.fanout(ctx, Request{Op: OpGetOnlineMemberList}) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		for _, f := range dr.Response.Fields {
			members = append(members, MemberInfo{Member: ids.MemberID(f), Device: dr.Device})
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Member < members[j].Member })
	return members, nil
}

// InterestsList implements Figure 12 (Get Interests List): gather
// interests from every server, merge with the local ones, deduplicate.
func (c *Client) InterestsList(ctx context.Context) ([]string, error) {
	member, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var all []string
	add := func(term string) {
		canon := c.sem.Canon(term)
		if canon == "" || seen[canon] {
			return
		}
		seen[canon] = true
		all = append(all, canon)
	}
	p, err := c.store.Get(member)
	if err != nil {
		return nil, err
	}
	for _, t := range p.Interests {
		add(t)
	}
	for _, dr := range c.fanout(ctx, Request{Op: OpGetInterestList}) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		for _, t := range dr.Response.Fields {
			add(t)
		}
	}
	sort.Strings(all)
	return all, nil
}

// InterestedMembers implements PS_GETINTERESTEDMEMBERLIST: the online
// members sharing one interest. With a semantics layer attached, the
// query expands to the whole taught synonym class, so asking for
// "biking" also finds members who wrote "cycling".
func (c *Client) InterestedMembers(ctx context.Context, term string) ([]MemberInfo, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	variants := []string{interest.Normalize(term)}
	if c.sem != nil {
		if class := c.sem.Class(term); len(class) > 0 {
			variants = class
		}
	}
	seen := make(map[ids.MemberID]bool)
	var members []MemberInfo
	for _, variant := range variants {
		for _, dr := range c.fanout(ctx, Request{Op: OpGetInterestedMemberList, Args: []string{variant}}) {
			if dr.Err != nil || dr.Response.Status != StatusOK {
				continue
			}
			for _, f := range dr.Response.Fields {
				m := ids.MemberID(f)
				if seen[m] {
					continue
				}
				seen[m] = true
				members = append(members, MemberInfo{Member: m, Device: dr.Device})
			}
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Member < members[j].Member })
	return members, nil
}

// resolveDevice finds which neighborhood device hosts a member, via
// PS_CHECKMEMBERID. Successful resolutions are cached; a cached entry
// is re-verified with a single request (instead of a full fan-out) and
// dropped if the device no longer hosts the member.
func (c *Client) resolveDevice(ctx context.Context, member ids.MemberID) (ids.DeviceID, error) {
	c.mu.Lock()
	cached, ok := c.resolved[member]
	c.mu.Unlock()
	if ok {
		resp, err := c.call(ctx, cached, Request{Op: OpCheckMemberID, Args: []string{string(member)}})
		if err == nil && resp.Status == StatusSuccess {
			return cached, nil
		}
		c.mu.Lock()
		delete(c.resolved, member)
		c.mu.Unlock()
	}
	for _, dr := range c.fanout(ctx, Request{Op: OpCheckMemberID, Args: []string{string(member)}}) {
		if dr.Err == nil && dr.Response.Status == StatusSuccess {
			c.mu.Lock()
			c.resolved[member] = dr.Device
			c.mu.Unlock()
			return dr.Device, nil
		}
	}
	return "", fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// ViewProfile implements Figure 13 (View Member Profile): the request
// goes to all connected servers; the desired one answers with the
// profile (and records us as a visitor), the others with
// NO_MEMBERS_YET.
func (c *Client) ViewProfile(ctx context.Context, member ids.MemberID) (RemoteProfile, error) {
	requester, err := c.activeMember()
	if err != nil {
		return RemoteProfile{}, err
	}
	req := Request{Op: OpGetProfile, Args: []string{string(member), string(requester)}}
	for _, dr := range c.fanout(ctx, req) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		return decodeProfile(dr.Response.Fields)
	}
	return RemoteProfile{}, fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// CommentProfile implements Figure 14 (Put Profile Comment).
func (c *Client) CommentProfile(ctx context.Context, member ids.MemberID, text string) error {
	requester, err := c.activeMember()
	if err != nil {
		return err
	}
	req := Request{Op: OpAddProfileComment, Args: []string{string(member), string(requester), text}}
	for _, dr := range c.fanout(ctx, req) {
		if dr.Err == nil && dr.Response.Status == StatusWritten {
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// TrustedFriendsOf implements Figure 15 (View Members Trusted Friends).
func (c *Client) TrustedFriendsOf(ctx context.Context, member ids.MemberID) ([]ids.MemberID, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	req := Request{Op: OpGetTrustedFriend, Args: []string{string(member)}}
	for _, dr := range c.fanout(ctx, req) {
		if dr.Err != nil || dr.Response.Status != StatusOK {
			continue
		}
		out := make([]ids.MemberID, 0, len(dr.Response.Fields))
		for _, f := range dr.Response.Fields {
			out = append(out, ids.MemberID(f))
		}
		return out, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrMemberUnknown, member)
}

// SharedContentOf implements Figure 16 (View Members Shared Content):
// first PS_CHECKTRUSTED, then PS_GETSHAREDCONTENT if trusted.
func (c *Client) SharedContentOf(ctx context.Context, member ids.MemberID) ([]profile.ContentItem, error) {
	requester, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	dev, err := c.resolveDevice(ctx, member)
	if err != nil {
		return nil, err
	}
	check, err := c.call(ctx, dev, Request{Op: OpCheckTrusted, Args: []string{string(member), string(requester)}})
	if err != nil {
		return nil, err
	}
	if check.Status == StatusNotTrustedYet {
		return nil, fmt.Errorf("%w: %s has not accepted %s", ErrNotTrusted, member, requester)
	}
	if check.Status != StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, check.Status)
	}
	resp, err := c.call(ctx, dev, Request{Op: OpSharedContent, Args: []string{string(member), string(requester)}})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	if len(resp.Fields)%2 != 0 {
		return nil, fmt.Errorf("community: malformed shared-content list")
	}
	var items []profile.ContentItem
	for i := 0; i < len(resp.Fields); i += 2 {
		size, err := strconv.ParseInt(resp.Fields[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("community: bad content size %q", resp.Fields[i+1])
		}
		items = append(items, profile.ContentItem{Name: resp.Fields[i], Size: size})
	}
	return items, nil
}

// FetchShared transfers one shared item from a trusted friend.
func (c *Client) FetchShared(ctx context.Context, member ids.MemberID, name string) ([]byte, error) {
	requester, err := c.activeMember()
	if err != nil {
		return nil, err
	}
	dev, err := c.resolveDevice(ctx, member)
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ctx, dev, Request{Op: OpFetchShared, Args: []string{string(member), string(requester), name}})
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case StatusOK:
		if len(resp.Fields) != 1 {
			return nil, fmt.Errorf("community: malformed fetch response")
		}
		return []byte(resp.Fields[0]), nil
	case StatusNotTrustedYet:
		return nil, fmt.Errorf("%w: fetching %q from %s", ErrNotTrusted, name, member)
	default:
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
}

// SendMessage implements Figure 17 (Send Message): locate the
// receiver's device, deliver PS_MSG, and on SUCCESSFULLY_WRITTEN record
// the copy in the local outbox.
func (c *Client) SendMessage(ctx context.Context, to ids.MemberID, subject, body string) error {
	sender, err := c.activeMember()
	if err != nil {
		return err
	}
	dev, err := c.resolveDevice(ctx, to)
	if err != nil {
		return err
	}
	resp, err := c.call(ctx, dev, Request{Op: OpMsg, Args: []string{string(to), string(sender), subject, body}})
	if err != nil {
		return err
	}
	if resp.Status != StatusWritten {
		return fmt.Errorf("%w: %s", ErrRemote, resp.Status)
	}
	return c.store.RecordSent(sender, profile.Message{From: sender, To: to, Subject: subject, Body: body})
}

// NearbyMembers gathers a core.Member snapshot for every online
// neighborhood member: who they are and what they are interested in.
func (c *Client) NearbyMembers(ctx context.Context) ([]core.Member, error) {
	if _, err := c.activeMember(); err != nil {
		return nil, err
	}
	type answer struct {
		member    ids.MemberID
		interests []string
		ok        bool
	}
	devices := c.lib.DevicesOffering(ServiceName)
	answers := make([]answer, len(devices))
	var wg sync.WaitGroup
	for i, dev := range devices {
		i, dev := i, dev
		wg.Add(1)
		go func() {
			defer wg.Done()
			who, err := c.call(ctx, dev, Request{Op: OpGetOnlineMemberList})
			if err != nil || who.Status != StatusOK || len(who.Fields) == 0 {
				return
			}
			interests, err := c.call(ctx, dev, Request{Op: OpGetInterestList})
			if err != nil || interests.Status != StatusOK {
				return
			}
			answers[i] = answer{
				member:    ids.MemberID(who.Fields[0]),
				interests: interests.Fields,
				ok:        true,
			}
		}()
	}
	wg.Wait()
	var out []core.Member
	for i, a := range answers {
		if a.ok {
			out = append(out, core.Member{Device: devices[i], ID: a.member, Interests: a.interests})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RefreshGroups implements the dynamic group discovery cycle of
// Figure 6 end-to-end: gather nearby members over PeerHood and update
// the group manager, returning the membership events.
func (c *Client) RefreshGroups(ctx context.Context) ([]core.Event, error) {
	mgr, err := c.Manager()
	if err != nil {
		return nil, err
	}
	// Keep the manager's view of our interests current.
	p, err := c.store.ActiveProfile()
	if err != nil {
		return nil, err
	}
	mgr.SetInterests(p.Interests)
	nearby, err := c.NearbyMembers(ctx)
	if err != nil {
		return nil, err
	}
	rec := c.recorder()
	rec.Record(c.name(), c.name(), "dynamic group discovery")
	return mgr.Update(nearby), nil
}

// Groups returns the current dynamic groups.
func (c *Client) Groups() []core.Group {
	c.mu.Lock()
	mgr := c.mgr
	c.mu.Unlock()
	if mgr == nil {
		return nil
	}
	return mgr.Groups()
}
