package community

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/msc"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// testScale compresses modeled time 10000x.
var testScale = vtime.NewScale(1e-4)

// node is one complete PTD: radio presence, PeerHood daemon, profile
// store with a logged-in member, community server and client.
type node struct {
	dev    ids.DeviceID
	member ids.MemberID
	daemon *peerhood.Daemon
	lib    *peerhood.Library
	store  *profile.Store
	server *Server
	client *Client
}

// testWorld wires a full PeerHood Community deployment for tests.
type testWorld struct {
	env   *radio.Environment
	net   *netsim.Network
	nodes map[ids.MemberID]*node
}

func newTestWorld(t *testing.T) *testWorld {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(testScale))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	return &testWorld{env: env, net: net, nodes: make(map[ids.MemberID]*node)}
}

// addNode creates a device at a position with a logged-in member and
// running community server.
func (w *testWorld) addNode(t *testing.T, member ids.MemberID, at geo.Point, interests ...string) *node {
	t.Helper()
	return w.addNodeSem(t, member, at, nil, interests...)
}

func (w *testWorld) addNodeSem(t *testing.T, member ids.MemberID, at geo.Point, sem *interest.Semantics, interests ...string) *node {
	t.Helper()
	dev := ids.DeviceID("dev-" + string(member))
	if err := w.env.Add(dev, mobility.Static{At: at}, radio.Bluetooth, radio.WLAN); err != nil {
		t.Fatal(err)
	}
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: w.net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Stop)
	lib := peerhood.NewLibrary(daemon)

	store := profile.NewStore(nil)
	if err := store.CreateAccount(member, "pw-"+string(member)); err != nil {
		t.Fatal(err)
	}
	if err := store.Login(member, "pw-"+string(member)); err != nil {
		t.Fatal(err)
	}
	for _, term := range interests {
		if err := store.AddInterest(member, term); err != nil {
			t.Fatal(err)
		}
	}

	server, err := NewServer(lib, store)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Stop)

	client, err := NewClient(lib, store, sem)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	n := &node{dev: dev, member: member, daemon: daemon, lib: lib, store: store, server: server, client: client}
	w.nodes[member] = n
	return n
}

// refreshAll runs one discovery round on every daemon so neighbor
// tables include everyone's services.
func (w *testWorld) refreshAll(t *testing.T, ctx context.Context) {
	t.Helper()
	for _, n := range w.nodes {
		if err := n.daemon.RefreshNow(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// pair builds the canonical two-device scenario: alice and bob in
// Bluetooth range, both interested in football.
func pair(t *testing.T) (*testWorld, *node, *node, context.Context) {
	t.Helper()
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football", "music")
	bob := w.addNode(t, "bob", geo.Pt(5, 0), "football", "movies")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)
	return w, alice, bob, ctx
}

// TestFigure7_WorkingPrinciple walks the whole Figure 7 sequence:
// server registers service, daemon discovers neighborhood, client
// connects, information is exchanged, connection terminates.
func TestFigure7_WorkingPrinciple(t *testing.T) {
	_, alice, _, ctx := pair(t)

	// The daemon discovered bob's device and its registered service.
	devices := alice.lib.GetDeviceList()
	if len(devices) != 1 || devices[0] != "dev-bob" {
		t.Fatalf("device list = %v", devices)
	}
	svcs, err := alice.lib.GetServiceList("dev-bob")
	if err != nil || len(svcs) != 1 || svcs[0].Name != ServiceName {
		t.Fatalf("services = %+v, %v", svcs, err)
	}
	// Information exchange.
	members, err := alice.client.OnlineMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].Member != "bob" || members[0].Device != "dev-bob" {
		t.Fatalf("members = %+v", members)
	}
	// Termination.
	alice.client.Close()
}

// TestTable6_AllOperations drives every request of Table 6 end-to-end.
func TestTable6_AllOperations(t *testing.T) {
	_, alice, bob, ctx := pair(t)

	t.Run("PS_GETONLINEMEMBERLIST", func(t *testing.T) {
		members, err := alice.client.OnlineMembers(ctx)
		if err != nil || len(members) != 1 || members[0].Member != "bob" {
			t.Fatalf("members = %+v, %v", members, err)
		}
	})

	t.Run("PS_GETINTERESTLIST", func(t *testing.T) {
		interests, err := alice.client.InterestsList(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want := []string{"football", "movies", "music"}
		if len(interests) != len(want) {
			t.Fatalf("interests = %v, want %v", interests, want)
		}
		for i := range want {
			if interests[i] != want[i] {
				t.Fatalf("interests = %v, want %v", interests, want)
			}
		}
	})

	t.Run("PS_GETINTERESTEDMEMBERLIST", func(t *testing.T) {
		members, err := alice.client.InterestedMembers(ctx, "football")
		if err != nil || len(members) != 1 || members[0].Member != "bob" {
			t.Fatalf("members = %+v, %v", members, err)
		}
		none, err := alice.client.InterestedMembers(ctx, "knitting")
		if err != nil || len(none) != 0 {
			t.Fatalf("knitting members = %+v, %v", none, err)
		}
	})

	t.Run("PS_GETPROFILE", func(t *testing.T) {
		if err := bob.store.SetInfo("bob", "Bob B.", "Lappeenranta", "likes football"); err != nil {
			t.Fatal(err)
		}
		p, err := alice.client.ViewProfile(ctx, "bob")
		if err != nil {
			t.Fatal(err)
		}
		if p.Member != "bob" || p.FullName != "Bob B." || p.Location != "Lappeenranta" {
			t.Fatalf("profile = %+v", p)
		}
		if len(p.Interests) != 2 {
			t.Fatalf("interests = %v", p.Interests)
		}
		// Viewing recorded bob-side (Figure 13's visitor write).
		bp, _ := bob.store.Get("bob")
		if len(bp.Visitors) != 1 || bp.Visitors[0].By != "alice" {
			t.Fatalf("visitors = %+v", bp.Visitors)
		}
	})

	t.Run("PS_ADDPROFILECOMMENT", func(t *testing.T) {
		if err := alice.client.CommentProfile(ctx, "bob", "great profile!"); err != nil {
			t.Fatal(err)
		}
		bp, _ := bob.store.Get("bob")
		if len(bp.Comments) != 1 || bp.Comments[0].From != "alice" || bp.Comments[0].Text != "great profile!" {
			t.Fatalf("comments = %+v", bp.Comments)
		}
	})

	t.Run("PS_CHECKMEMBERID", func(t *testing.T) {
		dev, err := alice.client.resolveDevice(ctx, "bob")
		if err != nil || dev != "dev-bob" {
			t.Fatalf("resolve = %v, %v", dev, err)
		}
		if _, err := alice.client.resolveDevice(ctx, "stranger"); !errors.Is(err, ErrMemberUnknown) {
			t.Fatalf("resolve stranger = %v", err)
		}
	})

	t.Run("PS_MSG", func(t *testing.T) {
		if err := alice.client.SendMessage(ctx, "bob", "hi", "see you at the match"); err != nil {
			t.Fatal(err)
		}
		bp, _ := bob.store.Get("bob")
		if len(bp.Inbox) != 1 || bp.Inbox[0].From != "alice" || bp.Inbox[0].Subject != "hi" {
			t.Fatalf("inbox = %+v", bp.Inbox)
		}
		ap, _ := alice.store.Get("alice")
		if len(ap.Outbox) != 1 || ap.Outbox[0].To != "bob" {
			t.Fatalf("outbox = %+v", ap.Outbox)
		}
	})

	t.Run("PS_SHAREDCONTENT", func(t *testing.T) {
		if err := bob.server.ShareContent("bob", "match.mp4", []byte("video-bytes")); err != nil {
			t.Fatal(err)
		}
		// Not trusted yet.
		if _, err := alice.client.SharedContentOf(ctx, "bob"); !errors.Is(err, ErrNotTrusted) {
			t.Fatalf("untrusted access = %v, want ErrNotTrusted", err)
		}
		// Bob accepts alice.
		if err := bob.store.AddTrusted("bob", "alice"); err != nil {
			t.Fatal(err)
		}
		items, err := alice.client.SharedContentOf(ctx, "bob")
		if err != nil || len(items) != 1 || items[0].Name != "match.mp4" || items[0].Size != 11 {
			t.Fatalf("items = %+v, %v", items, err)
		}
	})
}

// TestMSCFigures verifies each MSC-documented operation records the
// expected message sequence.
func TestMSCFigures(t *testing.T) {
	// Three devices so the "all connected servers simultaneously"
	// fan-out with NO_MEMBERS_YET from non-owners is visible.
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football")
	w.addNode(t, "bob", geo.Pt(5, 0), "football")
	w.addNode(t, "carol", geo.Pt(0, 5), "football")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	runOp := func(t *testing.T, title string, op func() error, wantLabels ...string) {
		t.Helper()
		rec := msc.NewRecorder(title)
		alice.client.SetRecorder(rec)
		defer alice.client.SetRecorder(nil)
		if err := op(); err != nil {
			t.Fatal(err)
		}
		events := rec.Events()
		seen := make(map[string]int)
		for _, ev := range events {
			seen[ev.Label]++
		}
		for _, label := range wantLabels {
			if seen[label] == 0 {
				t.Fatalf("MSC %q missing label %q; events: %+v", title, label, events)
			}
		}
	}

	t.Run("Figure11_GetMemberList", func(t *testing.T) {
		runOp(t, "Get Member List", func() error {
			_, err := alice.client.OnlineMembers(ctx)
			return err
		}, OpGetOnlineMemberList, StatusOK)
		// Fanout reached both servers.
		rec := msc.NewRecorder("again")
		alice.client.SetRecorder(rec)
		defer alice.client.SetRecorder(nil)
		if _, err := alice.client.OnlineMembers(ctx); err != nil {
			t.Fatal(err)
		}
		reqCount := 0
		for _, ev := range rec.Events() {
			if ev.Label == OpGetOnlineMemberList {
				reqCount++
			}
		}
		if reqCount != 2 {
			t.Fatalf("request sent to %d servers, want 2", reqCount)
		}
	})

	t.Run("Figure12_GetInterestsList", func(t *testing.T) {
		runOp(t, "Get Interests List", func() error {
			_, err := alice.client.InterestsList(ctx)
			return err
		}, OpGetInterestList, StatusOK)
	})

	t.Run("Figure13_ViewMemberProfile", func(t *testing.T) {
		runOp(t, "View Member Profile", func() error {
			_, err := alice.client.ViewProfile(ctx, "bob")
			return err
		}, OpGetProfile, StatusOK, StatusNoMembersYet)
	})

	t.Run("Figure14_PutProfileComment", func(t *testing.T) {
		runOp(t, "Put Profile Comment", func() error {
			return alice.client.CommentProfile(ctx, "bob", "hello")
		}, OpAddProfileComment, StatusWritten, StatusNoMembersYet)
	})

	t.Run("Figure15_ViewTrustedFriends", func(t *testing.T) {
		runOp(t, "View Members Trusted Friends", func() error {
			_, err := alice.client.TrustedFriendsOf(ctx, "bob")
			return err
		}, OpGetTrustedFriend, StatusOK, StatusNoMembersYet)
	})

	t.Run("Figure16_ViewSharedContent_NotTrusted", func(t *testing.T) {
		rec := msc.NewRecorder("View Members Shared Content")
		alice.client.SetRecorder(rec)
		defer alice.client.SetRecorder(nil)
		_, err := alice.client.SharedContentOf(ctx, "bob")
		if !errors.Is(err, ErrNotTrusted) {
			t.Fatalf("err = %v, want ErrNotTrusted", err)
		}
		var sawCheck, sawDenied bool
		for _, ev := range rec.Events() {
			if ev.Label == OpCheckTrusted {
				sawCheck = true
			}
			if ev.Label == StatusNotTrustedYet {
				sawDenied = true
			}
		}
		if !sawCheck || !sawDenied {
			t.Fatalf("trust check sequence missing: %+v", rec.Events())
		}
	})

	t.Run("Figure17_SendMessage", func(t *testing.T) {
		runOp(t, "Send Message", func() error {
			return alice.client.SendMessage(ctx, "bob", "subj", "body")
		}, OpMsg, StatusWritten)
	})
}
