package community

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/msc"
)

// TestManyClientsOneServer: several neighbors comment and message one
// member concurrently; every write must land exactly once.
func TestManyClientsOneServer(t *testing.T) {
	w := newTestWorld(t)
	target := w.addNode(t, "celebrity", geo.Pt(0, 0), "football")
	const fans = 5
	var nodes []*node
	for i := 0; i < fans; i++ {
		n := w.addNode(t, ids.MemberID(fmt.Sprintf("fan-%d", i)), geo.Pt(float64(i%3+1), float64(i/3)), "football")
		nodes = append(nodes, n)
	}
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	var wg sync.WaitGroup
	errs := make(chan error, fans*2)
	for i, n := range nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := n.client.CommentProfile(ctx, "celebrity", fmt.Sprintf("comment-%d", i)); err != nil {
				errs <- fmt.Errorf("fan %d comment: %w", i, err)
			}
			if err := n.client.SendMessage(ctx, "celebrity", fmt.Sprintf("subject-%d", i), "hi"); err != nil {
				errs <- fmt.Errorf("fan %d message: %w", i, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	p, err := target.store.Get("celebrity")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Comments) != fans {
		t.Errorf("comments = %d, want %d", len(p.Comments), fans)
	}
	if len(p.Inbox) != fans {
		t.Errorf("inbox = %d, want %d", len(p.Inbox), fans)
	}
	// Each fan's comment arrived exactly once.
	seen := make(map[string]int)
	for _, c := range p.Comments {
		seen[c.Text]++
	}
	for i := 0; i < fans; i++ {
		if seen[fmt.Sprintf("comment-%d", i)] != 1 {
			t.Errorf("comment-%d delivered %d times", i, seen[fmt.Sprintf("comment-%d", i)])
		}
	}
}

// TestConcurrentOpsOnOneClient drives one client from several
// goroutines — the UI, the group refresher and the monitor all share
// it in the real application.
func TestConcurrentOpsOnOneClient(t *testing.T) {
	_, alice, _, ctx := pair(t)
	var wg sync.WaitGroup
	errs := make(chan error, 30)
	for i := 0; i < 10; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			if _, err := alice.client.OnlineMembers(ctx); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := alice.client.InterestsList(ctx); err != nil {
				errs <- err
			}
		}()
		go func() {
			defer wg.Done()
			if _, err := alice.client.RefreshGroups(ctx); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResolveDeviceCaching: the first resolution fans PS_CHECKMEMBERID
// out to every server; later ones verify the cached device with a
// single request.
func TestResolveDeviceCaching(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "x")
	w.addNode(t, "bob", geo.Pt(4, 0), "x")
	w.addNode(t, "carol", geo.Pt(0, 4), "x")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	countChecks := func(op func() error) int {
		rec := msc.NewRecorder("count")
		alice.client.SetRecorder(rec)
		defer alice.client.SetRecorder(nil)
		if err := op(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ev := range rec.Events() {
			if ev.Label == OpCheckMemberID {
				n++
			}
		}
		return n
	}

	first := countChecks(func() error { return alice.client.SendMessage(ctx, "bob", "s", "b") })
	second := countChecks(func() error { return alice.client.SendMessage(ctx, "bob", "s2", "b2") })
	if first != 2 {
		t.Fatalf("first resolution sent %d checks, want 2 (full fan-out)", first)
	}
	if second != 1 {
		t.Fatalf("cached resolution sent %d checks, want 1", second)
	}
}

// TestResolveDeviceCacheInvalidation: when the cached device stops
// hosting the member (logout), resolution falls back to the fan-out.
func TestResolveDeviceCacheInvalidation(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "x")
	bob := w.addNode(t, "bob", geo.Pt(4, 0), "x")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	if err := alice.client.SendMessage(ctx, "bob", "s", "b"); err != nil {
		t.Fatal(err)
	}
	bob.store.Logout()
	if err := alice.client.SendMessage(ctx, "bob", "s2", "b2"); !errors.Is(err, ErrMemberUnknown) {
		t.Fatalf("err = %v, want ErrMemberUnknown after logout", err)
	}
	// Bob logs back in; the stale negative state must not stick.
	if err := bob.store.Login("bob", "pw-bob"); err != nil {
		t.Fatal(err)
	}
	if err := alice.client.SendMessage(ctx, "bob", "s3", "b3"); err != nil {
		t.Fatalf("send after re-login: %v", err)
	}
}

func TestClientClosedRefusesOperations(t *testing.T) {
	_, alice, _, ctx := pair(t)
	alice.client.Close()
	if _, err := alice.client.OnlineMembers(ctx); err != nil {
		// Fanout swallows per-device errors, so the result is simply
		// empty; SendMessage surfaces the closed error via resolve.
		t.Logf("OnlineMembers after close: %v", err)
	}
	if err := alice.client.SendMessage(ctx, "bob", "s", "b"); !errors.Is(err, ErrMemberUnknown) && !errors.Is(err, ErrClientClosed) {
		t.Fatalf("SendMessage after close = %v, want closed/unknown", err)
	}
}
