package community

// Tests for the delta-synchronization extension: store epochs,
// conditional reads, the client's per-peer cache, the bounded fan-out
// pool and singleflight collapsing. The classic (cache-less) protocol
// shapes are covered too, proving old clients still interoperate.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/profile"
)

// condInterestList drives the conditional PS_GETINTERESTLIST form
// straight through Handle and opens the sealed reply.
func condInterestList(t *testing.T, s *Server, epoch uint64, known bool) (status string, fields []string) {
	t.Helper()
	resp := s.Handle(Request{Op: OpGetInterestList, Args: []string{ifEpochArg(epoch, known)}})
	fields, ok := openVersioned(resp)
	if !ok {
		t.Fatalf("versioned reply failed integrity check: %+v", resp)
	}
	return resp.Status, fields
}

func TestConditionalInterestListEpochFlow(t *testing.T) {
	w := newTestWorld(t)
	bob := w.addNode(t, "bob", geo.Pt(0, 0), "football", "movies")

	// Cold read: full member summary with the current epoch.
	status, fields := condInterestList(t, bob.server, 0, false)
	if status != StatusOK {
		t.Fatalf("cold conditional read: status %q", status)
	}
	epoch, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		t.Fatalf("bad epoch field %q", fields[0])
	}
	if fields[1] != "bob" {
		t.Fatalf("summary member = %q, want bob", fields[1])
	}
	if got := strings.Join(fields[2:], ","); got != "football,movies" {
		t.Fatalf("summary interests = %q", got)
	}

	// Same epoch: tiny NOT_MODIFIED frame.
	status, fields = condInterestList(t, bob.server, epoch, true)
	if status != StatusNotModified {
		t.Fatalf("unchanged conditional read: status %q, want %q", status, StatusNotModified)
	}
	if len(fields) != 1 || fields[0] != strconv.FormatUint(epoch, 10) {
		t.Fatalf("NOT_MODIFIED fields = %v", fields)
	}

	// A wire-visible mutation bumps the epoch and re-sends in full.
	if err := bob.store.AddInterest("bob", "chess"); err != nil {
		t.Fatal(err)
	}
	status, fields = condInterestList(t, bob.server, epoch, true)
	if status != StatusOK {
		t.Fatalf("post-mutation conditional read: status %q", status)
	}
	if got := strings.Join(fields[2:], ","); got != "football,movies,chess" {
		t.Fatalf("post-mutation interests = %q", got)
	}

	// Logout is wire-visible too (the member disappears).
	epoch2, _ := strconv.ParseUint(fields[0], 10, 64)
	bob.store.Logout()
	status, fields = condInterestList(t, bob.server, epoch2, true)
	if status != StatusNoMembersYet {
		t.Fatalf("logged-out conditional read: status %q, want %q", status, StatusNoMembersYet)
	}
	if len(fields) != 1 {
		t.Fatalf("logged-out reply fields = %v", fields)
	}
}

func TestVisitsAndMessagesDoNotBumpEpoch(t *testing.T) {
	w := newTestWorld(t)
	bob := w.addNode(t, "bob", geo.Pt(0, 0), "football")

	before := bob.store.Epoch()
	// Device-local bookkeeping: none of it is wire-visible.
	if err := bob.store.RecordVisit("bob", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := bob.store.RecordSent("bob", profile.Message{From: "bob", To: "alice", Body: "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := bob.store.Deliver("bob", profile.Message{From: "alice", To: "bob", Body: "yo"}); err != nil {
		t.Fatal(err)
	}
	if err := bob.store.MarkRead("bob", 0); err != nil {
		t.Fatal(err)
	}
	if got := bob.store.Epoch(); got != before {
		t.Fatalf("local bookkeeping moved the epoch: %d -> %d", before, got)
	}

	// No-op edits must not bump either — they cannot change any answer.
	if err := bob.store.AddInterest("bob", "football"); err != nil {
		t.Fatal(err)
	}
	if err := bob.store.RemoveInterest("bob", "no-such-interest"); err != nil {
		t.Fatal(err)
	}
	if got := bob.store.Epoch(); got != before {
		t.Fatalf("no-op edits moved the epoch: %d -> %d", before, got)
	}

	if err := bob.store.AddComment("bob", "alice", "hi"); err != nil {
		t.Fatal(err)
	}
	if got := bob.store.Epoch(); got == before {
		t.Fatal("a profile comment is wire-visible and must bump the epoch")
	}
}

// TestClassicShapesUnchanged pins the cache-less protocol: requests
// without an if-epoch argument get byte-identical classic replies, so
// a client predating delta synchronization keeps working. This is the
// old-client half of the mixed interop guarantee.
func TestClassicShapesUnchanged(t *testing.T) {
	w := newTestWorld(t)
	bob := w.addNode(t, "bob", geo.Pt(0, 0), "football", "movies")

	resp := bob.server.Handle(Request{Op: OpGetInterestList})
	if resp.Status != StatusOK || strings.Join(resp.Fields, ",") != "football,movies" {
		t.Fatalf("classic interest list changed shape: %+v", resp)
	}
	resp = bob.server.Handle(Request{Op: OpGetOnlineMemberList})
	if resp.Status != StatusOK || strings.Join(resp.Fields, ",") != "bob" {
		t.Fatalf("classic member list changed shape: %+v", resp)
	}
	resp = bob.server.Handle(Request{Op: OpGetProfile, Args: []string{"bob", "alice"}})
	if resp.Status != StatusOK {
		t.Fatalf("classic profile read: %+v", resp)
	}
	if _, err := decodeProfile(resp.Fields); err != nil {
		t.Fatalf("classic profile fields no longer decode: %v", err)
	}
	// The classic read recorded the visit.
	p, err := bob.store.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Visitors) != 1 || p.Visitors[0].By != "alice" {
		t.Fatalf("classic profile read did not record the visit: %+v", p.Visitors)
	}
}

// TestOldClientOverTheWire drives classic frames through the real
// transport against a delta-aware server: marshal → netsim → server →
// unmarshal, no epochs anywhere.
func TestOldClientOverTheWire(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football")
	bob := w.addNode(t, "bob", geo.Pt(5, 0), "football", "movies")
	_ = bob
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	conn, err := alice.lib.Connect(ctx, "dev-bob", ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	exchange := func(req Request) Response {
		t.Helper()
		if err := conn.Send(MarshalRequest(req)); err != nil {
			t.Fatal(err)
		}
		raw, err := conn.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := UnmarshalResponse(raw)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// The old two-call discovery round still works end to end.
	who := exchange(Request{Op: OpGetOnlineMemberList})
	if who.Status != StatusOK || len(who.Fields) != 1 || who.Fields[0] != "bob" {
		t.Fatalf("old-client member list: %+v", who)
	}
	interests := exchange(Request{Op: OpGetInterestList})
	if interests.Status != StatusOK || strings.Join(interests.Fields, ",") != "football,movies" {
		t.Fatalf("old-client interest list: %+v", interests)
	}
	prof := exchange(Request{Op: OpGetProfile, Args: []string{"bob", "alice"}})
	if prof.Status != StatusOK {
		t.Fatalf("old-client profile: %+v", prof)
	}
	if _, err := decodeProfile(prof.Fields); err != nil {
		t.Fatalf("old-client profile decode: %v", err)
	}
}

// TestNearbyMembersCachesAndInvalidates exercises the client cache end
// to end: cold fill, NOT_MODIFIED hit, mutation-driven refresh, and
// invalidation on dropConn.
func TestNearbyMembersCachesAndInvalidates(t *testing.T) {
	_, alice, bob, ctx := pair(t)

	// Cold round: full fetch.
	members, err := alice.client.NearbyMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].ID != "bob" {
		t.Fatalf("nearby = %+v", members)
	}
	if got := alice.client.Stats(); got.NotModified != 0 || got.CacheHits != 0 {
		t.Fatalf("cold round already used the cache: %+v", got)
	}

	// Steady round: one NOT_MODIFIED, served from cache, same answer.
	members2, err := alice.client.NearbyMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members2) != 1 || members2[0].ID != "bob" ||
		strings.Join(members2[0].Interests, ",") != strings.Join(members[0].Interests, ",") {
		t.Fatalf("steady nearby = %+v, want %+v", members2, members)
	}
	st := alice.client.Stats()
	if st.NotModified != 1 || st.CacheHits != 1 {
		t.Fatalf("steady round: NotModified=%d CacheHits=%d, want 1/1", st.NotModified, st.CacheHits)
	}

	// Remote mutation: epoch moves, next round re-fetches in full.
	if err := bob.store.AddInterest("bob", "chess"); err != nil {
		t.Fatal(err)
	}
	members3, err := alice.client.NearbyMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members3) != 1 || !hasTerm(members3[0].Interests, "chess") {
		t.Fatalf("post-mutation nearby = %+v", members3)
	}
	st = alice.client.Stats()
	if st.NotModified != 1 {
		t.Fatalf("mutated state must not answer NOT_MODIFIED: %+v", st)
	}

	// dropConn invalidates: the next round is a full fetch again.
	alice.client.dropConn("dev-bob")
	st = alice.client.Stats()
	if st.CacheInvalidations != 1 {
		t.Fatalf("CacheInvalidations = %d, want 1", st.CacheInvalidations)
	}
	members4, err := alice.client.NearbyMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members4) != 1 {
		t.Fatalf("post-invalidation nearby = %+v", members4)
	}
	if got := alice.client.Stats(); got.NotModified != 1 {
		t.Fatalf("invalidated cache must not claim NOT_MODIFIED: %+v", got)
	}
}

// TestViewProfileConditional proves repeated profile views hit the
// cache while still recording every visit server-side (Figure 13's
// side effect survives delta synchronization).
func TestViewProfileConditional(t *testing.T) {
	_, alice, bob, ctx := pair(t)

	first, err := alice.client.ViewProfile(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	second, err := alice.client.ViewProfile(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(second.Interests, ",") != strings.Join(first.Interests, ",") {
		t.Fatalf("cached view differs: %+v vs %+v", second, first)
	}
	st := alice.client.Stats()
	if st.NotModified < 1 || st.CacheHits < 1 {
		t.Fatalf("second view should be NOT_MODIFIED from cache: %+v", st)
	}
	p, err := bob.store.Get("bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Visitors) != 2 {
		t.Fatalf("visits recorded = %d, want 2 (one per view, cached or not)", len(p.Visitors))
	}

	// A comment bumps bob's epoch; the next view sees it in full.
	if err := bob.store.AddComment("bob", "carol", "nice profile"); err != nil {
		t.Fatal(err)
	}
	third, err := alice.client.ViewProfile(ctx, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if len(third.Comments) != 1 || third.Comments[0].Text != "nice profile" {
		t.Fatalf("post-comment view = %+v", third.Comments)
	}
}

// TestFanoutOrderSortedByDevice pins the doc-comment promise that
// fanout answers come back sorted by device under the bounded worker
// pool, including when some peers error out mid-round.
func TestFanoutOrderSortedByDevice(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football")
	w.addNode(t, "bob", geo.Pt(3, 0), "football")
	w.addNode(t, "carol", geo.Pt(0, 3), "football")
	w.addNode(t, "dave", geo.Pt(3, 3), "football")
	w.addNode(t, "erin", geo.Pt(1, 1), "football")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	assertSorted := func(out []deviceResponse, wantLen int) {
		t.Helper()
		if len(out) != wantLen {
			t.Fatalf("fanout answered %d devices, want %d", len(out), wantLen)
		}
		for i := 1; i < len(out); i++ {
			if !(out[i-1].Device < out[i].Device) {
				t.Fatalf("fanout order not sorted by device: %q before %q",
					out[i-1].Device, out[i].Device)
			}
		}
	}

	out := alice.client.fanout(ctx, Request{Op: OpGetOnlineMemberList})
	assertSorted(out, 4)
	for _, dr := range out {
		if dr.Err != nil {
			t.Fatalf("healthy fanout errored on %s: %v", dr.Device, dr.Err)
		}
	}

	// Kill one peer's whole device (daemon down, listener gone) while
	// alice's neighbor table still lists it: that peer now errors, the
	// order must not change.
	w.nodes["carol"].server.Stop()
	w.nodes["carol"].daemon.Stop()
	out = alice.client.fanout(ctx, Request{Op: OpGetOnlineMemberList})
	assertSorted(out, 4)
	var failed ids.DeviceID
	for _, dr := range out {
		if dr.Err != nil {
			failed = dr.Device
		}
	}
	if failed != "dev-carol" {
		t.Fatalf("expected dev-carol to be the erroring peer, got %q", failed)
	}
	if st := alice.client.Stats(); st.FanoutsDegraded == 0 {
		t.Fatalf("degraded fanout not counted: %+v", st)
	}
}

// TestSingleflightCollapse pins the collapsing mechanics
// deterministically: a waiter joining a registered in-flight call gets
// the leader's response without touching the wire.
func TestSingleflightCollapse(t *testing.T) {
	_, alice, _, ctx := pair(t)

	req := Request{Op: OpGetInterestList, Args: []string{ifEpochArg(0, false)}}
	key := flightKey{dev: "dev-bob", op: req.Op, args: strings.Join(req.Args, "\x1f")}
	canned := Response{Status: StatusOK, Fields: []string{"42", "bob", "football"}}
	fc := &flightCall{done: make(chan struct{}), resp: canned}
	close(fc.done)
	alice.client.mu.Lock()
	alice.client.inflight[key] = fc
	alice.client.mu.Unlock()

	resp, err := alice.client.callShared(ctx, "dev-bob", req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != canned.Status || strings.Join(resp.Fields, ",") != strings.Join(canned.Fields, ",") {
		t.Fatalf("collapsed call returned %+v, want the leader's %+v", resp, canned)
	}
	st := alice.client.Stats()
	if st.SingleflightHits != 1 {
		t.Fatalf("SingleflightHits = %d, want 1", st.SingleflightHits)
	}
	if st.CallsAttempted != 0 {
		t.Fatalf("collapsed call still hit the wire: %+v", st)
	}

	// Mutations must never collapse.
	if singleflightable(OpMsg) || singleflightable(OpAddProfileComment) || singleflightable(OpGetProfile) {
		t.Fatal("side-effecting ops must not be singleflightable")
	}

	alice.client.mu.Lock()
	delete(alice.client.inflight, key)
	alice.client.mu.Unlock()
}

// TestCorruptVersionedReplyRejected pins the integrity digest: a
// tampered versioned reply fails openVersioned, so it can never be
// cached under a valid epoch.
func TestCorruptVersionedReplyRejected(t *testing.T) {
	resp := sealVersioned(StatusOK, []string{"7", "bob", "football"})
	if _, ok := openVersioned(resp); !ok {
		t.Fatal("sealed reply must verify")
	}
	tampered := Response{Status: resp.Status, Fields: append([]string(nil), resp.Fields...)}
	tampered.Fields[2] = "rugby"
	if _, ok := openVersioned(tampered); ok {
		t.Fatal("tampered payload must fail the digest")
	}
	tamperedEpoch := Response{Status: resp.Status, Fields: append([]string(nil), resp.Fields...)}
	tamperedEpoch.Fields[0] = "8"
	if _, ok := openVersioned(tamperedEpoch); ok {
		t.Fatal("tampered epoch must fail the digest")
	}
	wrongStatus := Response{Status: StatusNotModified, Fields: resp.Fields}
	if _, ok := openVersioned(wrongStatus); ok {
		t.Fatal("status is part of the digest")
	}
	if _, ok := openVersioned(Response{Status: StatusOK}); ok {
		t.Fatal("an empty reply has no digest to verify")
	}
}

func hasTerm(terms []string, want string) bool {
	for _, t := range terms {
		if t == want {
			return true
		}
	}
	return false
}
