package community

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/interest"
	"repro/internal/mobility"
	"repro/internal/msc"
)

// TestTable7_Features exercises every feature row of Table 7 through
// the public client/server API.
func TestTable7_Features(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football")
	bob := w.addNode(t, "bob", geo.Pt(5, 0), "football", "chess")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	t.Run("AddEditProfile", func(t *testing.T) {
		if err := alice.store.SetInfo("alice", "Alice", "LUT", "hi"); err != nil {
			t.Fatal(err)
		}
		p, _ := alice.store.Get("alice")
		if p.FullName != "Alice" {
			t.Fatal("profile edit failed")
		}
	})

	t.Run("AddEditPersonalInterest", func(t *testing.T) {
		if err := alice.store.AddInterest("alice", "music"); err != nil {
			t.Fatal(err)
		}
		if err := alice.store.RemoveInterest("alice", "music"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ViewAllMembers", func(t *testing.T) {
		members, err := alice.client.OnlineMembers(ctx)
		if err != nil || len(members) != 1 {
			t.Fatalf("members = %+v, %v", members, err)
		}
	})

	t.Run("ViewCommentOtherMembersProfile", func(t *testing.T) {
		if _, err := alice.client.ViewProfile(ctx, "bob"); err != nil {
			t.Fatal(err)
		}
		if err := alice.client.CommentProfile(ctx, "bob", "hi bob"); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ViewOwnViewersAndComments", func(t *testing.T) {
		// Bob looks at alice; alice sees the visit.
		if _, err := bob.client.ViewProfile(ctx, "alice"); err != nil {
			t.Fatal(err)
		}
		if err := bob.client.CommentProfile(ctx, "alice", "hello alice"); err != nil {
			t.Fatal(err)
		}
		p, _ := alice.store.Get("alice")
		if len(p.Visitors) == 0 || p.Visitors[0].By != "bob" {
			t.Fatalf("visitors = %+v", p.Visitors)
		}
		if len(p.Comments) == 0 || p.Comments[0].From != "bob" {
			t.Fatalf("comments = %+v", p.Comments)
		}
	})

	t.Run("SupportForMultipleProfiles", func(t *testing.T) {
		if err := alice.store.CreateAccount("alice2", "pw2"); err != nil {
			t.Fatal(err)
		}
		if got := alice.store.Members(); len(got) != 2 {
			t.Fatalf("members on device = %v", got)
		}
	})

	t.Run("SendReceiveMessages", func(t *testing.T) {
		if err := alice.client.SendMessage(ctx, "bob", "s", "b"); err != nil {
			t.Fatal(err)
		}
		bp, _ := bob.store.Get("bob")
		if bp.UnreadCount() == 0 {
			t.Fatal("bob has no unread messages")
		}
	})

	t.Run("ViewAllRegisteredServices", func(t *testing.T) {
		svcs, err := alice.lib.GetServiceList("dev-bob")
		if err != nil || len(svcs) != 1 {
			t.Fatalf("services = %+v, %v", svcs, err)
		}
		local := alice.lib.GetLocalServiceList()
		if len(local) != 1 || local[0].Name != ServiceName {
			t.Fatalf("local services = %+v", local)
		}
	})

	t.Run("DynamicDiscoveryWithCommonInterest", func(t *testing.T) {
		events, err := alice.client.RefreshGroups(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var formed bool
		for _, ev := range events {
			if ev.Type == core.EventGroupFormed && ev.Interest == "football" {
				formed = true
			}
		}
		if !formed {
			t.Fatalf("football group not formed: %+v", events)
		}
	})

	t.Run("ViewAllGroupsAndMembers", func(t *testing.T) {
		groups := alice.client.Groups()
		if len(groups) != 1 || groups[0].Interest != "football" {
			t.Fatalf("groups = %+v", groups)
		}
		ids := groups[0].MemberIDs()
		if len(ids) != 2 || ids[0] != "alice" || ids[1] != "bob" {
			t.Fatalf("group members = %v", ids)
		}
	})

	t.Run("JoinLeaveManually", func(t *testing.T) {
		mgr, err := alice.client.Manager()
		if err != nil {
			t.Fatal(err)
		}
		mgr.JoinManually("chess")
		if _, err := alice.client.RefreshGroups(ctx); err != nil {
			t.Fatal(err)
		}
		if got := mgr.MembersOf("chess"); len(got) != 2 {
			t.Fatalf("chess group = %v", got)
		}
		mgr.LeaveManually("chess")
		if _, err := alice.client.RefreshGroups(ctx); err != nil {
			t.Fatal(err)
		}
		if got := mgr.MembersOf("chess"); got != nil {
			t.Fatalf("chess group after leave = %v", got)
		}
	})

	t.Run("AddViewRemoveTrusted", func(t *testing.T) {
		if err := bob.store.AddTrusted("bob", "alice"); err != nil {
			t.Fatal(err)
		}
		trusted, err := alice.client.TrustedFriendsOf(ctx, "bob")
		if err != nil || len(trusted) != 1 || trusted[0] != "alice" {
			t.Fatalf("trusted = %v, %v", trusted, err)
		}
		if err := bob.store.RemoveTrusted("bob", "alice"); err != nil {
			t.Fatal(err)
		}
		trusted, err = alice.client.TrustedFriendsOf(ctx, "bob")
		if err != nil || len(trusted) != 0 {
			t.Fatalf("trusted after remove = %v, %v", trusted, err)
		}
	})

	t.Run("FileSharing", func(t *testing.T) {
		data := []byte("shared file bytes")
		if err := bob.server.ShareContent("bob", "notes.txt", data); err != nil {
			t.Fatal(err)
		}
		if err := bob.store.AddTrusted("bob", "alice"); err != nil {
			t.Fatal(err)
		}
		items, err := alice.client.SharedContentOf(ctx, "bob")
		if err != nil || len(items) != 1 {
			t.Fatalf("items = %+v, %v", items, err)
		}
		got, err := alice.client.FetchShared(ctx, "bob", "notes.txt")
		if err != nil || string(got) != string(data) {
			t.Fatalf("fetch = %q, %v", got, err)
		}
		if _, err := alice.client.FetchShared(ctx, "bob", "missing.txt"); err == nil {
			t.Fatal("fetching missing content succeeded")
		}
		if err := bob.server.UnshareContent("bob", "notes.txt"); err != nil {
			t.Fatal(err)
		}
		if _, err := alice.client.FetchShared(ctx, "bob", "notes.txt"); err == nil {
			t.Fatal("fetching unshared content succeeded")
		}
	})
}

// TestFetchSharedTrustEnforcedServerSide verifies a client cannot skip
// the PS_CHECKTRUSTED step: the server re-checks on fetch.
func TestFetchSharedTrustEnforcedServerSide(t *testing.T) {
	_, alice, bob, ctx := pair(t)
	if err := bob.server.ShareContent("bob", "secret.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.client.FetchShared(ctx, "bob", "secret.txt"); !errors.Is(err, ErrNotTrusted) {
		t.Fatalf("untrusted fetch = %v, want ErrNotTrusted", err)
	}
}

// TestGroupsReactToDeparture: the thesis's defining behaviour — "if any
// remote device is unreachable, that remote device is considered as
// disconnected and removed from all associated interest groups."
func TestGroupsReactToDeparture(t *testing.T) {
	w, alice, _, ctx := pair(t)
	if _, err := alice.client.RefreshGroups(ctx); err != nil {
		t.Fatal(err)
	}
	if len(alice.client.Groups()) != 1 {
		t.Fatal("precondition: football group formed")
	}
	// Bob walks far away.
	if err := w.env.SetModel("dev-bob", mobility.Static{At: geo.Pt(1000, 0)}); err != nil {
		t.Fatal(err)
	}
	// Alice's daemon notices on its next round; groups then update.
	if err := alice.daemon.RefreshNow(ctx); err != nil {
		t.Fatal(err)
	}
	events, err := alice.client.RefreshGroups(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var dissolved bool
	for _, ev := range events {
		if ev.Type == core.EventGroupDissolved && ev.Interest == "football" {
			dissolved = true
		}
	}
	if !dissolved {
		t.Fatalf("group not dissolved after departure: %+v", events)
	}
	if len(alice.client.Groups()) != 0 {
		t.Fatal("groups remain after bob left")
	}
}

// TestSemanticsEndToEnd reproduces the future-work feature over the
// wire: alice teaches biking=cycling and then groups with bob.
func TestSemanticsEndToEnd(t *testing.T) {
	w := newTestWorld(t)
	sem := interest.NewSemantics()
	alice := w.addNodeSem(t, "alice", geo.Pt(0, 0), sem, "biking")
	w.addNodeSem(t, "bob", geo.Pt(5, 0), nil, "cycling")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	// Baseline: no group (thesis's disadvantage).
	if _, err := alice.client.RefreshGroups(ctx); err != nil {
		t.Fatal(err)
	}
	if len(alice.client.Groups()) != 0 {
		t.Fatal("groups formed without semantics")
	}
	// Teach and retry.
	sem.Teach("biking", "cycling")
	if _, err := alice.client.RefreshGroups(ctx); err != nil {
		t.Fatal(err)
	}
	groups := alice.client.Groups()
	if len(groups) != 1 || groups[0].Interest != "biking" {
		t.Fatalf("groups after teaching = %+v", groups)
	}
}

// TestOperationsRequireLogin checks the client refuses to operate
// logged out.
func TestOperationsRequireLogin(t *testing.T) {
	_, alice, _, ctx := pair(t)
	alice.store.Logout()
	if _, err := alice.client.OnlineMembers(ctx); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("OnlineMembers = %v, want ErrNotLoggedIn", err)
	}
	if _, err := alice.client.InterestsList(ctx); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("InterestsList = %v", err)
	}
	if err := alice.client.SendMessage(ctx, "bob", "s", "b"); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("SendMessage = %v", err)
	}
	if err := alice.client.CommentProfile(ctx, "bob", "c"); !errors.Is(err, ErrNotLoggedIn) {
		t.Fatalf("CommentProfile = %v", err)
	}
}

// TestLoggedOutServerAnswersNoMembers: a device whose user logged out
// still answers, with NO_MEMBERS_YET, exactly like the MSCs'
// non-matching servers.
func TestLoggedOutServerAnswersNoMembers(t *testing.T) {
	_, alice, bob, ctx := pair(t)
	bob.store.Logout()
	members, err := alice.client.OnlineMembers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("members = %+v, want none while bob logged out", members)
	}
}

// TestMSCRenderedChart generates the actual ASCII chart for Figure 13
// and sanity-checks its shape.
func TestMSCRenderedChart(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "football")
	w.addNode(t, "bob", geo.Pt(5, 0), "football")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	rec := mscRecorderForTest("View Member Profile")
	alice.client.SetRecorder(rec)
	if _, err := alice.client.ViewProfile(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	chart := rec.String()
	for _, want := range []string{"MSC: View Member Profile", "client@dev-alice", "server@dev-bob", "PS_GETPROFILE"} {
		if !strings.Contains(chart, want) {
			t.Fatalf("chart missing %q:\n%s", want, chart)
		}
	}
}

// TestBadRequestHandling: the server answers garbage frames rather than
// dying.
func TestBadRequestHandling(t *testing.T) {
	_, alice, _, _ := pair(t)
	resp := alice.server.Handle(Request{Op: "PS_BOGUS"})
	if resp.Status != StatusBadRequest {
		t.Fatalf("bogus op status = %q", resp.Status)
	}
	for _, req := range []Request{
		{Op: OpGetProfile},                                        // missing args
		{Op: OpMsg, Args: []string{"a"}},                          // short args
		{Op: OpGetInterestedMemberList, Args: []string{"a", "b"}}, // extra args
	} {
		if resp := alice.server.Handle(req); resp.Status != StatusBadRequest {
			t.Fatalf("%s with wrong args: status = %q", req.Op, resp.Status)
		}
	}
}

// mscRecorderForTest builds a recorder without importing msc at every
// call site.
func mscRecorderForTest(title string) *msc.Recorder { return msc.NewRecorder(title) }

// TestInterestedMembersSemanticExpansion: with taught synonyms, the
// interested-member query finds members under any term of the class.
func TestInterestedMembersSemanticExpansion(t *testing.T) {
	w := newTestWorld(t)
	sem := interest.NewSemantics()
	alice := w.addNodeSem(t, "alice", geo.Pt(0, 0), sem, "biking")
	w.addNodeSem(t, "bob", geo.Pt(4, 0), nil, "cycling")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	// Untaught: exact match only, bob invisible.
	members, err := alice.client.InterestedMembers(ctx, "biking")
	if err != nil || len(members) != 0 {
		t.Fatalf("untaught query = %+v, %v", members, err)
	}
	sem.Teach("biking", "cycling")
	members, err = alice.client.InterestedMembers(ctx, "biking")
	if err != nil || len(members) != 1 || members[0].Member != "bob" {
		t.Fatalf("taught query = %+v, %v", members, err)
	}
	// Works from either synonym.
	members, err = alice.client.InterestedMembers(ctx, "cycling")
	if err != nil || len(members) != 1 {
		t.Fatalf("reverse query = %+v, %v", members, err)
	}
}
