package community

import (
	"bytes"
	"testing"

	"repro/internal/profile"
)

// FuzzUnmarshalRequest checks the wire decoder never panics and that
// every successfully decoded request re-encodes to an equivalent frame.
func FuzzUnmarshalRequest(f *testing.F) {
	f.Add([]byte("PS_GETONLINEMEMBERLIST"))
	f.Add(MarshalRequest(Request{Op: OpMsg, Args: []string{"to", "from", "subj", "body"}}))
	f.Add([]byte("op\x1farg1\x1farg2"))
	f.Add([]byte("trailing-escape\\"))
	f.Add([]byte{0x1f, 0x1f})
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		again, err := UnmarshalRequest(MarshalRequest(req))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if again.Op != req.Op || len(again.Args) != len(req.Args) {
			t.Fatalf("round trip changed request: %+v -> %+v", req, again)
		}
		for i := range req.Args {
			if again.Args[i] != req.Args[i] {
				t.Fatalf("arg %d changed: %q -> %q", i, req.Args[i], again.Args[i])
			}
		}
	})
}

// FuzzHandle feeds arbitrary decoded requests to a live server: the
// dispatcher must never panic, and must answer something.
func FuzzHandle(f *testing.F) {
	f.Add("PS_GETPROFILE", "bob", "alice")
	f.Add("PS_MSG", "a", "b")
	f.Add("", "", "")
	f.Add("PS_CHECKTRUSTED", "x", "\x00weird")
	f.Fuzz(func(t *testing.T, op, a1, a2 string) {
		// A store-only server: Handle never touches the network.
		srv := &Server{store: newLoggedInStore(t), content: map[contentKey][]byte{}}
		resp := srv.Handle(Request{Op: op, Args: []string{a1, a2}})
		if resp.Status == "" {
			t.Fatalf("empty status for op %q", op)
		}
	})
}

// FuzzUnmarshalResponse mirrors the request fuzzer for responses.
func FuzzUnmarshalResponse(f *testing.F) {
	f.Add(MarshalResponse(Response{Status: StatusOK, Fields: []string{"a", "b"}}))
	f.Add([]byte("NO_MEMBERS_YET"))
	f.Add([]byte("\x1f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		out := MarshalResponse(resp)
		again, err := UnmarshalResponse(out)
		if err != nil || again.Status != resp.Status {
			t.Fatalf("round trip failed: %+v / %v", again, err)
		}
		if !bytes.Equal(out, MarshalResponse(again)) {
			t.Fatal("re-encoding not stable")
		}
	})
}

// newLoggedInStore builds a store with one logged-in member for
// dispatcher fuzzing.
func newLoggedInStore(t *testing.T) *profile.Store {
	t.Helper()
	s := profile.NewStore(nil)
	if err := s.CreateAccount("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	return s
}
