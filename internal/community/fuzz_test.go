package community

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/profile"
)

// mangledCorpus derives seed frames from valid protocol frames mangled
// by the fault injector, so the fuzzers start from exactly the damage
// the chaos suite inflicts on the wire.
func mangledCorpus(frames ...[]byte) [][]byte {
	var out [][]byte
	for _, frame := range frames {
		for seed := uint64(0); seed < 8; seed++ {
			out = append(out, faults.Mangle(seed, frame))
		}
	}
	return out
}

// FuzzUnmarshalRequest checks the wire decoder never panics and that
// every successfully decoded request re-encodes to an equivalent frame.
func FuzzUnmarshalRequest(f *testing.F) {
	f.Add([]byte("PS_GETONLINEMEMBERLIST"))
	f.Add(MarshalRequest(Request{Op: OpMsg, Args: []string{"to", "from", "subj", "body"}}))
	f.Add([]byte("op\x1farg1\x1farg2"))
	f.Add([]byte("trailing-escape\\"))
	f.Add([]byte{0x1f, 0x1f})
	f.Add([]byte(""))
	for _, m := range mangledCorpus(
		MarshalRequest(Request{Op: OpGetProfile, Args: []string{"bob", "alice"}}),
		MarshalRequest(Request{Op: OpMsg, Args: []string{"to", "from", "subj", "body"}}),
	) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := UnmarshalRequest(data)
		if err != nil {
			return
		}
		again, err := UnmarshalRequest(MarshalRequest(req))
		if err != nil {
			t.Fatalf("re-decode of valid request failed: %v", err)
		}
		if again.Op != req.Op || len(again.Args) != len(req.Args) {
			t.Fatalf("round trip changed request: %+v -> %+v", req, again)
		}
		for i := range req.Args {
			if again.Args[i] != req.Args[i] {
				t.Fatalf("arg %d changed: %q -> %q", i, req.Args[i], again.Args[i])
			}
		}
	})
}

// FuzzHandle feeds arbitrary decoded requests to a live server: the
// dispatcher must never panic, and must answer something.
func FuzzHandle(f *testing.F) {
	f.Add("PS_GETPROFILE", "bob", "alice")
	f.Add("PS_MSG", "a", "b")
	f.Add("", "", "")
	f.Add("PS_CHECKTRUSTED", "x", "\x00weird")
	f.Fuzz(func(t *testing.T, op, a1, a2 string) {
		// A store-only server: Handle never touches the network.
		srv := &Server{store: newLoggedInStore(t), content: map[contentKey][]byte{}}
		resp := srv.Handle(Request{Op: op, Args: []string{a1, a2}})
		if resp.Status == "" {
			t.Fatalf("empty status for op %q", op)
		}
	})
}

// FuzzUnmarshalResponse mirrors the request fuzzer for responses.
func FuzzUnmarshalResponse(f *testing.F) {
	f.Add(MarshalResponse(Response{Status: StatusOK, Fields: []string{"a", "b"}}))
	f.Add([]byte("NO_MEMBERS_YET"))
	f.Add([]byte("\x1f"))
	for _, m := range mangledCorpus(
		MarshalResponse(Response{Status: StatusOK, Fields: []string{"bob", "alice"}}),
		MarshalResponse(Response{Status: StatusWritten}),
	) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		out := MarshalResponse(resp)
		again, err := UnmarshalResponse(out)
		if err != nil || again.Status != resp.Status {
			t.Fatalf("round trip failed: %+v / %v", again, err)
		}
		if !bytes.Equal(out, MarshalResponse(again)) {
			t.Fatal("re-encoding not stable")
		}
	})
}

// TestCodecRejectsMangledFrames runs the deterministic corruption
// injector over every wire shape the protocol uses: decoding a mangled
// frame must either fail cleanly or produce a frame that re-encodes —
// never panic. This is the unit-level guarantee behind the chaos
// suite's "corrupted frames never take a node down" invariant.
func TestCodecRejectsMangledFrames(t *testing.T) {
	frames := [][]byte{
		MarshalRequest(Request{Op: OpGetOnlineMemberList}),
		MarshalRequest(Request{Op: OpGetInterestList}),
		MarshalRequest(Request{Op: OpGetProfile, Args: []string{"bob", "alice"}}),
		MarshalRequest(Request{Op: OpMsg, Args: []string{"to", "from", "subject", "a longer body\x1fwith a separator"}}),
		MarshalRequest(Request{Op: OpCheckMemberID, Args: []string{"bob"}}),
		MarshalResponse(Response{Status: StatusOK, Fields: []string{"bob", "alice", "carol"}}),
		MarshalResponse(Response{Status: StatusWritten}),
		MarshalResponse(Response{Status: StatusNotTrustedYet, Fields: []string{""}}),
	}
	for fi, frame := range frames {
		for seed := uint64(0); seed < 200; seed++ {
			mangled := faults.Mangle(seed^uint64(fi)<<32, frame)
			if req, err := UnmarshalRequest(mangled); err == nil {
				if _, err := UnmarshalRequest(MarshalRequest(req)); err != nil {
					t.Fatalf("frame %d seed %d: accepted request does not re-decode: %v", fi, seed, err)
				}
			}
			if resp, err := UnmarshalResponse(mangled); err == nil {
				if _, err := UnmarshalResponse(MarshalResponse(resp)); err != nil {
					t.Fatalf("frame %d seed %d: accepted response does not re-decode: %v", fi, seed, err)
				}
			}
		}
	}
}

// newLoggedInStore builds a store with one logged-in member for
// dispatcher fuzzing.
func newLoggedInStore(t *testing.T) *profile.Store {
	t.Helper()
	s := profile.NewStore(nil)
	if err := s.CreateAccount("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Login("bob", "pw"); err != nil {
		t.Fatal(err)
	}
	return s
}
