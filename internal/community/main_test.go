package community

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain fails the package if any test leaves server or client
// session goroutines running after teardown.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
