package community

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
)

// addNodeWith is addNode with explicit server overload limits.
func (w *testWorld) addNodeWith(t *testing.T, member ids.MemberID, at geo.Point, opts ServerOptions, interests ...string) *node {
	t.Helper()
	dev := ids.DeviceID("dev-" + string(member))
	if err := w.env.Add(dev, mobility.Static{At: at}, radio.Bluetooth, radio.WLAN); err != nil {
		t.Fatal(err)
	}
	daemon, err := peerhood.NewDaemon(peerhood.Config{Device: dev, Network: w.net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(daemon.Stop)
	lib := peerhood.NewLibrary(daemon)
	store := profile.NewStore(nil)
	if err := store.CreateAccount(member, "pw-"+string(member)); err != nil {
		t.Fatal(err)
	}
	if err := store.Login(member, "pw-"+string(member)); err != nil {
		t.Fatal(err)
	}
	for _, term := range interests {
		if err := store.AddInterest(member, term); err != nil {
			t.Fatal(err)
		}
	}
	server, err := NewServerWith(lib, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Stop)
	client, err := NewClient(lib, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	n := &node{dev: dev, member: member, daemon: daemon, lib: lib, store: store, server: server, client: client}
	w.nodes[member] = n
	return n
}

// pingConn runs one PS_PING exchange over a raw session.
func pingConn(ctx context.Context, conn *netsim.Conn, tag string) error {
	if err := conn.Send(MarshalRequest(Request{Op: OpPing, Args: []string{tag}})); err != nil {
		return err
	}
	raw, err := conn.Recv(ctx)
	if err != nil {
		return err
	}
	resp, err := UnmarshalResponse(raw)
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return errors.New("ping answered " + resp.Status)
	}
	return nil
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// With one serving slot and a one-deep queue, the third session is shed
// with an explicit BUSY frame, and the queued session is served the
// moment the slot frees — bounded admission, visible rejection.
func TestAdmissionQueueAndShed(t *testing.T) {
	w := newTestWorld(t)
	srv := w.addNodeWith(t, "srv", geo.Pt(0, 0), ServerOptions{MaxSessions: 1, QueueDepth: 1})
	cli := w.addNode(t, "cli", geo.Pt(5, 0))
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	conn1, err := cli.lib.Connect(ctx, srv.dev, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer conn1.Abort()
	// The exchange proves conn1 owns the single serving slot.
	if err := pingConn(ctx, conn1, "one"); err != nil {
		t.Fatal(err)
	}

	conn2, err := cli.lib.Connect(ctx, srv.dev, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Abort()
	waitFor(t, 5*time.Second, func() bool { return srv.server.Stats().Queued == 1 },
		"second session never entered the admission queue")

	conn3, err := cli.lib.Connect(ctx, srv.dev, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Abort()
	raw, err := conn3.Recv(ctx)
	if err != nil {
		t.Fatalf("shed session got no BUSY frame: %v", err)
	}
	resp, err := UnmarshalResponse(raw)
	if err != nil || resp.Status != StatusBusy {
		t.Fatalf("shed session answered %q/%v, want BUSY", resp.Status, err)
	}

	// Freeing the slot promotes the queued session.
	conn1.Abort()
	waitFor(t, 5*time.Second, func() bool { return pingConn(ctx, conn2, "two") == nil },
		"queued session was never served after the slot freed")

	st := srv.server.Stats()
	if st.Shed != 1 || st.QueueDepthMax != 1 || st.Admitted != 2 {
		t.Fatalf("stats = %+v, want 1 shed / depth 1 / 2 admitted", st)
	}
}

// The per-peer token bucket prices bulk transfers above small reads and
// control frames at zero: when the budget runs dry the peer still gets
// BUSY answers and pings, never silence.
func TestPerPeerRateLimitPrefersControlFrames(t *testing.T) {
	w := newTestWorld(t)
	// Refill is ~0.001 tokens per real second at this scale: effectively
	// only the burst exists for the duration of the test.
	srv := w.addNodeWith(t, "srv", geo.Pt(0, 0), ServerOptions{RatePerPeer: 1e-7, Burst: 5}, "chess")
	peer := ids.DeviceID("somepeer")

	if resp := srv.server.HandleFrom(peer, Request{Op: OpGetProfile, Args: []string{"srv", "x"}}); resp.Status == StatusBusy {
		t.Fatalf("first bulk read hit the limit: %v", resp.Status)
	}
	if resp := srv.server.HandleFrom(peer, Request{Op: OpGetInterestList}); resp.Status == StatusBusy {
		t.Fatal("small read within burst was refused")
	}
	if resp := srv.server.HandleFrom(peer, Request{Op: OpGetInterestList}); resp.Status != StatusBusy {
		t.Fatalf("read beyond the budget answered %q, want BUSY", resp.Status)
	}
	for i := 0; i < 5; i++ {
		if resp := srv.server.HandleFrom(peer, Request{Op: OpPing}); resp.Status != StatusOK {
			t.Fatalf("ping %d answered %q; control frames must never be rate-limited", i, resp.Status)
		}
	}
	// A different peer has its own untouched bucket.
	if resp := srv.server.HandleFrom("otherpeer", Request{Op: OpGetInterestList}); resp.Status == StatusBusy {
		t.Fatal("one peer's exhausted bucket throttled another peer")
	}
	st := srv.server.Stats()
	if st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
}

// Regression for the unbounded-write hazard: a peer that sends requests
// but never reads responses must cost the server one aborted session
// (SlowWriters), not a forever-wedged worker. With one serving slot the
// recovery is observable: a second session gets served afterwards.
func TestNeverReadingPeerFreesWorker(t *testing.T) {
	w := newTestWorld(t)
	srv := w.addNodeWith(t, "srv", geo.Pt(0, 0), ServerOptions{
		MaxSessions:  1,
		QueueDepth:   4,
		WriteTimeout: 2 * time.Minute, // modeled; ~12ms real at test scale
	})
	cli := w.addNode(t, "cli", geo.Pt(5, 0))
	ctx := testCtx(t)
	w.refreshAll(t, ctx)

	wedge, err := cli.lib.Connect(ctx, srv.dev, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer wedge.Abort()
	// Flood requests and read nothing. Responses fill the reverse
	// buffers; the server's write deadline must fire.
	req := MarshalRequest(Request{Op: OpPing})
	for i := 0; i < 5000 && srv.server.Stats().SlowWriters == 0; i++ {
		err := wedge.SendDeadline(req, w.env.Clock().After(w.env.Scale().ToReal(time.Minute)))
		if err != nil && !errors.Is(err, netsim.ErrSendTimeout) {
			break // server aborted the session — that's the mechanism working
		}
	}
	waitFor(t, 10*time.Second, func() bool { return srv.server.Stats().SlowWriters >= 1 },
		"write deadline never fired against a never-reading peer")

	// The worker is free again: a well-behaved session gets served.
	conn2, err := cli.lib.Connect(ctx, srv.dev, ServiceName)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Abort()
	waitFor(t, 5*time.Second, func() bool { return pingConn(ctx, conn2, "after") == nil },
		"worker still wedged after the slow-writer abort")
}

// A peer that keeps failing trips its circuit breaker: subsequent calls
// fail fast with ErrPeerCircuitOpen instead of burning the retry
// budget, and once the peer heals the half-open probe re-admits it.
func TestBreakerSkipsDeadPeerThenReadmits(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "chess")
	bob := w.addNode(t, "bob", geo.Pt(5, 0), "chess")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)
	alice.client.SetResilience(ResilienceOptions{FailureThreshold: 1, OpenFor: time.Second})

	if err := alice.client.Ping(ctx, bob.dev); err != nil {
		t.Fatal(err)
	}
	if err := w.env.SetPowered(bob.dev, false); err != nil {
		t.Fatal(err)
	}
	if err := alice.client.Ping(ctx, bob.dev); err == nil {
		t.Fatal("ping to a powered-off peer succeeded")
	}
	// The breaker is open now: the next call must fail locally.
	err := alice.client.Ping(ctx, bob.dev)
	if !errors.Is(err, ErrPeerCircuitOpen) {
		t.Fatalf("want ErrPeerCircuitOpen, got %v", err)
	}
	st := alice.client.Stats()
	if st.BreakerSkips == 0 || st.BreakerOpens == 0 {
		t.Fatalf("stats = %+v, want breaker skips and opens", st)
	}

	// Heal the peer; after the open window the half-open probe must
	// re-admit it.
	if err := w.env.SetPowered(bob.dev, true); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return alice.client.Ping(ctx, bob.dev) == nil },
		"healed peer never re-admitted by the breaker probe")
	if st := alice.client.Stats(); st.BreakerReadmits == 0 {
		t.Fatalf("stats = %+v, want a breaker readmission", st)
	}
}

// BUSY answers are backpressure, not failure: they surface as
// ErrPeerBusy and never trip the breaker — shedding must not cause a
// self-inflicted partition.
func TestBusyIsBackpressureNotFailure(t *testing.T) {
	w := newTestWorld(t)
	srv := w.addNodeWith(t, "srv", geo.Pt(0, 0), ServerOptions{RatePerPeer: 1e-7, Burst: 1}, "chess")
	cli := w.addNode(t, "cli", geo.Pt(5, 0), "chess")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)
	cli.client.SetResilience(ResilienceOptions{FailureThreshold: 1, OpenFor: time.Second})

	if _, err := cli.client.call(ctx, srv.dev, Request{Op: OpGetInterestList}); err != nil {
		t.Fatalf("call within burst: %v", err)
	}
	_, err := cli.client.call(ctx, srv.dev, Request{Op: OpGetInterestList})
	if !errors.Is(err, ErrPeerBusy) {
		t.Fatalf("want ErrPeerBusy beyond the budget, got %v", err)
	}
	// Pings are free, and the breaker must still be closed.
	if err := cli.client.Ping(ctx, srv.dev); err != nil {
		t.Fatalf("ping after BUSY: %v", err)
	}
	st := cli.client.Stats()
	if st.BusyRejected != 1 || st.BreakerOpens != 0 {
		t.Fatalf("stats = %+v, want 1 busy rejection and no breaker trips", st)
	}
}

// A hedged read escapes a stalled session: the primary's reply is
// withheld (gray failure), the p99-derived delay launches a spare
// session whose per-session stall draw came up healthy, and the spare's
// reply wins the race.
func TestHedgeRescuesStalledSession(t *testing.T) {
	w := newTestWorld(t)
	alice := w.addNode(t, "alice", geo.Pt(0, 0), "chess")
	bob := w.addNode(t, "bob", geo.Pt(5, 0), "chess")
	ctx := testCtx(t)
	w.refreshAll(t, ctx)
	alice.client.SetResilience(ResilienceOptions{
		FailureThreshold: 100, // keep the breaker out of this test
		Hedge:            true,
		HedgeMinSamples:  4,
		HedgeFloor:       time.Second,
	})

	// Prime the latency window on a healthy world.
	for i := 0; i < 8; i++ {
		if err := alice.client.Ping(ctx, bob.dev); err != nil {
			t.Fatal(err)
		}
	}
	// Drop the cached session so the next call dials a session with a
	// known sequence number: S+1 primary, S+2 spare.
	alice.client.dropConn(bob.dev)
	s := w.net.ConnSeq(alice.dev, bob.dev)

	// Pick a seed where the primary session stalls serving-side only and
	// the spare is clean in both directions.
	stalls := faults.EndpointProfile{StallRate: 0.5, StallFor: time.Hour}
	var plan *faults.Plan
	for seed := int64(1); seed <= 2000; seed++ {
		p := faults.New(seed).SetEndpoints(stalls)
		if p.SessionStalled(bob.dev, alice.dev, s+1, 0) &&
			!p.SessionStalled(alice.dev, bob.dev, s+1, 0) &&
			!p.SessionStalled(bob.dev, alice.dev, s+2, 0) &&
			!p.SessionStalled(alice.dev, bob.dev, s+2, 0) {
			plan = p
			break
		}
	}
	if plan == nil {
		t.Fatal("no seed with the wanted session fates in 2000 tries")
	}
	w.net.SetFaults(plan)

	if err := alice.client.Ping(ctx, bob.dev); err != nil {
		t.Fatalf("hedged ping against a stalled primary: %v", err)
	}
	st := alice.client.Stats()
	if st.HedgesLaunched == 0 || st.HedgeWins == 0 {
		t.Fatalf("stats = %+v, want a launched and won hedge", st)
	}
	// The adopted spare session keeps serving.
	if err := alice.client.Ping(ctx, bob.dev); err != nil {
		t.Fatalf("ping on the adopted session: %v", err)
	}
}
