package community

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/profile"
)

func TestProfileCodecRoundTrip(t *testing.T) {
	p := profile.Profile{
		Member:    "bob",
		FullName:  "Bob B.",
		Location:  "Lappeenranta",
		About:     "likes football | and; weird=chars",
		Interests: []string{"football", "movies"},
		Comments: []profile.Comment{
			{From: "alice", Text: "hi"},
			{From: "carol", Text: "multi\nline\ncomment"},
		},
		Trusted: []ids.MemberID{"alice", "dave"},
	}
	out, err := decodeProfile(encodeProfile(p))
	if err != nil {
		t.Fatal(err)
	}
	if out.Member != "bob" || out.FullName != "Bob B." || out.Location != "Lappeenranta" {
		t.Fatalf("header = %+v", out)
	}
	if len(out.Interests) != 2 || out.Interests[1] != "movies" {
		t.Fatalf("interests = %v", out.Interests)
	}
	if len(out.Comments) != 2 || out.Comments[1].Text != "multi\nline\ncomment" {
		t.Fatalf("comments = %+v", out.Comments)
	}
	if len(out.Trusted) != 2 || out.Trusted[0] != "alice" {
		t.Fatalf("trusted = %v", out.Trusted)
	}
}

func TestProfileCodecEmptySections(t *testing.T) {
	out, err := decodeProfile(encodeProfile(profile.Profile{Member: "x"}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Member != "x" || len(out.Interests) != 0 || len(out.Comments) != 0 || len(out.Trusted) != 0 {
		t.Fatalf("out = %+v", out)
	}
}

// TestProfileCodecNeverPanics feeds decodeProfile arbitrary field
// slices: it must return an error or a value, never panic or loop.
func TestProfileCodecNeverPanics(t *testing.T) {
	prop := func(fields []string) bool {
		_, _ = decodeProfile(fields)
		return true // reaching here means no panic
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileCodecTruncated(t *testing.T) {
	full := encodeProfile(profile.Profile{
		Member:    "m",
		Interests: []string{"a", "b"},
		Comments:  []profile.Comment{{From: "x", Text: "y"}},
		Trusted:   []ids.MemberID{"t"},
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodeProfile(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeProfile(full); err != nil {
		t.Fatalf("full encoding rejected: %v", err)
	}
}

// TestProfileCodecHostileCounts: section counts larger than the field
// list or negative must be rejected, not trusted.
func TestProfileCodecHostileCounts(t *testing.T) {
	for _, fields := range [][]string{
		{"m", "", "", "", "999999"},
		{"m", "", "", "", "-3"},
		{"m", "", "", "", "not-a-number"},
	} {
		if _, err := decodeProfile(fields); err == nil {
			t.Fatalf("hostile counts accepted: %v", fields)
		}
	}
}

// TestProfileRoundTripProperty: any profile the store can hold survives
// the wire encoding.
func TestProfileRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		if s == "" {
			return "x"
		}
		return s
	}
	prop := func(name, loc, about, i1, i2, cfrom, ctext string) bool {
		p := profile.Profile{
			Member:    "member",
			FullName:  name,
			Location:  loc,
			About:     about,
			Interests: []string{clean(i1), clean(i2)},
			Comments:  []profile.Comment{{From: ids.MemberID(clean(cfrom)), Text: ctext}},
		}
		out, err := decodeProfile(encodeProfile(p))
		if err != nil {
			return false
		}
		return out.FullName == name && out.Location == loc && out.About == about &&
			len(out.Interests) == 2 && out.Interests[0] == clean(i1) &&
			len(out.Comments) == 1 && out.Comments[0].Text == ctext
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
