//go:build !race

package community

const raceEnabled = false
