//go:build race

package community

// raceEnabled gates allocation pins: the race runtime adds bookkeeping
// allocations that testing.AllocsPerRun would misattribute to the codec.
const raceEnabled = true
