package community

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/peerhood"
	"repro/internal/vtime"
)

// ResilienceOptions tunes the client's degradation machinery: per-peer
// circuit breakers that stop wasting fan-out time on peers that keep
// failing, and hedged requests that race a second session against a
// stalled one. The zero value enables breakers with defaults and leaves
// hedging off; a client that never calls SetResilience behaves exactly
// as before.
type ResilienceOptions struct {
	// FailureThreshold is the consecutive-failure count that trips a
	// peer's breaker (default 3).
	FailureThreshold int
	// OpenFor is how long, in modeled time, an open breaker rejects a
	// peer before probing it again (default 60s). The real wait is
	// floored at breakerOpenFloor so sub-millisecond scaled windows
	// don't thrash.
	OpenFor time.Duration
	// Hedge enables hedged requests for idempotent reads.
	Hedge bool
	// HedgeFactor multiplies the observed p99 latency to get the hedge
	// delay (default 4 — conservative, so hedges fire on genuine
	// stragglers, not ordinary jitter).
	HedgeFactor float64
	// HedgeMinSamples is how many latency samples must exist before any
	// hedge fires (default 16).
	HedgeMinSamples int
	// HedgeFloor / HedgeCap clamp the hedge delay, in modeled time
	// (defaults 1s / 30s).
	HedgeFloor time.Duration
	HedgeCap   time.Duration
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 3
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 60 * time.Second
	}
	if o.HedgeFactor <= 0 {
		o.HedgeFactor = 4
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 16
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = time.Second
	}
	if o.HedgeCap <= 0 {
		o.HedgeCap = 30 * time.Second
	}
	return o
}

// breakerOpenFloor is the minimum real-time open window. Below this,
// scheduler jitter is larger than the window itself and the breaker
// would flap; mirrors peerhood's realTimeout floor in spirit.
const breakerOpenFloor = 500 * time.Millisecond

// hedgeSampleWindow is how many recent call latencies feed the p99.
const hedgeSampleWindow = 64

// resilience is the client's degradation state: one breaker per peer
// and a shared latency window for hedge-delay estimation. All times are
// real-clock durations — the environment clock is the real clock, and
// latencies already include the scenario's scale.
type resilience struct {
	opts  ResilienceOptions
	clock vtime.Clock
	scale vtime.Scale

	mu       sync.Mutex
	breakers map[ids.DeviceID]*peerhood.Breaker
	samples  [hedgeSampleWindow]time.Duration
	next     int
	count    int
}

// SetResilience enables the client's circuit breakers (and optionally
// hedging). Call it before issuing traffic; calling it again replaces
// the options and resets all breaker state.
func (c *Client) SetResilience(opts ResilienceOptions) {
	env := c.lib.Daemon().Network().Environment()
	r := &resilience{
		opts:     opts.withDefaults(),
		clock:    env.Clock(),
		scale:    env.Scale(),
		breakers: make(map[ids.DeviceID]*peerhood.Breaker),
	}
	c.mu.Lock()
	c.resil = r
	c.mu.Unlock()
}

// resilience returns the client's degradation state, nil when disabled.
func (c *Client) resilience() *resilience {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resil
}

// breakerFor returns the peer's breaker, creating it on first use; nil
// when resilience is disabled.
func (c *Client) breakerFor(dev ids.DeviceID) *peerhood.Breaker {
	r := c.resilience()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[dev]
	if !ok {
		openFor := r.scale.ToReal(r.opts.OpenFor)
		if openFor < breakerOpenFloor {
			openFor = breakerOpenFloor
		}
		b = peerhood.NewBreaker(r.clock, peerhood.BreakerOptions{
			FailureThreshold: r.opts.FailureThreshold,
			OpenFor:          openFor,
		})
		r.breakers[dev] = b
	}
	return b
}

// recordOutcome feeds one call outcome into the peer's breaker. A
// cancellation of our own context says nothing about the peer's health
// and is not recorded.
func (c *Client) recordOutcome(br *peerhood.Breaker, err error) {
	if br == nil {
		return
	}
	if err == nil {
		br.Record(true)
		return
	}
	if errors.Is(err, context.Canceled) {
		return
	}
	br.Record(false)
}

// observe feeds one successful call's real latency into the window.
func (r *resilience) observe(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples[r.next] = d
	r.next = (r.next + 1) % hedgeSampleWindow
	if r.count < hedgeSampleWindow {
		r.count++
	}
}

// hedgeDelay derives the current hedge trigger from the p99 of the
// latency window. ok=false means not enough samples yet.
func (r *resilience) hedgeDelay() (time.Duration, bool) {
	r.mu.Lock()
	n := r.count
	tmp := make([]time.Duration, n)
	copy(tmp, r.samples[:n])
	r.mu.Unlock()
	if n < r.opts.HedgeMinSamples {
		return 0, false
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	idx := (n*99+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	d := time.Duration(float64(tmp[idx]) * r.opts.HedgeFactor)
	if floor := r.scale.ToReal(r.opts.HedgeFloor); d < floor {
		d = floor
	}
	if cap := r.scale.ToReal(r.opts.HedgeCap); d > cap {
		d = cap
	}
	return d, true
}

// hedgeEligible ops are safe to send twice: idempotent reads, plus the
// free ping probe. Mutations (messages, comments) must reach the server
// exactly once and are never hedged.
func hedgeEligible(op string) bool {
	return op == OpPing || singleflightable(op)
}

// timedCall is one exchange with latency observation.
func (c *Client) timedCall(ctx context.Context, rc *peerhood.RobustConn, payload []byte, r *resilience) ([]byte, error) {
	if r == nil {
		return rc.Call(ctx, payload)
	}
	start := r.clock.Now()
	raw, err := rc.Call(ctx, payload)
	if err == nil {
		r.observe(r.clock.Now().Sub(start))
	}
	return raw, err
}

// exchange runs one request/response against a peer, hedging eligible
// reads: once the primary has been silent for a p99-derived delay, a
// second session is raced against it and the first reply wins. A fresh
// session matters — the fault plane draws stall fates per session, so a
// re-dial escapes a stalled one.
func (c *Client) exchange(ctx context.Context, dev ids.DeviceID, rc *peerhood.RobustConn, payload []byte, op string) ([]byte, error) {
	r := c.resilience()
	if r == nil || !r.opts.Hedge || !hedgeEligible(op) {
		return c.timedCall(ctx, rc, payload, r)
	}
	delay, ok := r.hedgeDelay()
	if !ok {
		return c.timedCall(ctx, rc, payload, r)
	}
	return c.hedgedCall(ctx, dev, rc, payload, delay, r)
}

// hedgeResult is one leg's outcome; conn is non-nil only for the spare
// leg, which owns its session until adopted or reaped.
type hedgeResult struct {
	raw  []byte
	err  error
	conn *peerhood.RobustConn
}

// hedgedCall races the primary exchange against a late-started spare
// session. The pooled payload buffer is copied once up front because
// both legs may outlive the caller's frame.
func (c *Client) hedgedCall(ctx context.Context, dev ids.DeviceID, rc *peerhood.RobustConn, payload []byte, delay time.Duration, r *resilience) ([]byte, error) {
	owned := append([]byte(nil), payload...)
	results := make(chan hedgeResult, 2)
	go func() {
		start := r.clock.Now()
		raw, err := rc.Call(ctx, owned)
		if err == nil {
			r.observe(r.clock.Now().Sub(start))
		}
		results <- hedgeResult{raw: raw, err: err}
	}()

	spareCtx, cancelSpare := context.WithCancel(ctx)
	launched := false
	outstanding := 1
	var firstErr error
	hedgeTimer := r.clock.After(delay)
	defer func() {
		// Reap whatever leg is still in flight: cancel it and close the
		// spare session once it resolves, so neither goroutines nor
		// connections leak past the call.
		cancelSpare()
		if outstanding > 0 {
			go func(n int) {
				for i := 0; i < n; i++ {
					if res := <-results; res.conn != nil {
						res.conn.Close()
					}
				}
			}(outstanding)
		}
	}()

	for {
		select {
		case res := <-results:
			outstanding--
			if res.err == nil {
				if res.conn != nil {
					// The spare won: adopt its healthy session and retire
					// the one that stalled.
					c.counters.hedgeWins.Add(1)
					c.adoptConn(dev, rc, res.conn)
				}
				return res.raw, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedgeTimer:
			if launched {
				hedgeTimer = nil
				continue
			}
			launched = true
			hedgeTimer = nil
			c.counters.hedgesLaunched.Add(1)
			outstanding++
			go func() {
				spare, err := c.lib.ConnectRobust(spareCtx, dev, ServiceName)
				if err != nil {
					results <- hedgeResult{err: err}
					return
				}
				start := r.clock.Now()
				raw, err := spare.Call(spareCtx, owned)
				if err != nil {
					spare.Close()
					results <- hedgeResult{err: err}
					return
				}
				r.observe(r.clock.Now().Sub(start))
				results <- hedgeResult{raw: raw, conn: spare}
			}()
		}
	}
}

// adoptConn swaps the cached session for a peer: if old is still the
// cached conn it is replaced by won and closed; otherwise won becomes
// the cache only if the slot is empty (a concurrent dropConn ran).
func (c *Client) adoptConn(dev ids.DeviceID, old, won *peerhood.RobustConn) {
	c.mu.Lock()
	cur, ok := c.conns[dev]
	switch {
	case ok && cur == old:
		c.conns[dev] = won
		c.mu.Unlock()
		old.Close()
	case !ok && !c.closed:
		c.conns[dev] = won
		c.mu.Unlock()
	default:
		c.mu.Unlock()
		won.Close()
	}
}
