package community

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/profile"
	"repro/internal/radio"
)

// Server is the application server every PTD runs (§5.2.3.1): it
// registers the PeerHoodCommunity service into the PeerHood daemon,
// stays in the listening state, and answers the requests of Table 6
// against the device's profile store. Admission is bounded: sessions
// beyond MaxSessions wait in a fixed queue, sessions beyond that are
// shed with an explicit BUSY frame, and per-peer token buckets throttle
// request floods — overload degrades into visible rejections, never
// into unbounded goroutines or silent hangs.
type Server struct {
	lib   *peerhood.Library
	store *profile.Store
	env   *radio.Environment
	opts  ServerOptions

	mu      sync.Mutex
	content map[contentKey][]byte

	admMu   sync.Mutex
	active  int
	backlog []*netsim.Conn
	shedQ   chan *netsim.Conn

	rlMu    sync.Mutex
	buckets map[ids.DeviceID]*peerBucket

	counters serverCounters

	listener *netsim.Listener
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	started  bool
}

type contentKey struct {
	member ids.MemberID
	name   string
}

// NewServer creates a server bound to a PeerHood library and the
// device's profile store, with default admission limits.
func NewServer(lib *peerhood.Library, store *profile.Store) (*Server, error) {
	return NewServerWith(lib, store, ServerOptions{})
}

// NewServerWith is NewServer with explicit overload tuning.
func NewServerWith(lib *peerhood.Library, store *profile.Store, opts ServerOptions) (*Server, error) {
	if lib == nil || store == nil {
		return nil, fmt.Errorf("community: server needs a library and a store")
	}
	o := opts.withDefaults()
	return &Server{
		lib:     lib,
		store:   store,
		env:     lib.Daemon().Network().Environment(),
		opts:    o,
		content: make(map[contentKey][]byte),
		shedQ:   make(chan *netsim.Conn, o.QueueDepth),
		buckets: make(map[ids.DeviceID]*peerBucket),
	}, nil
}

// Options returns the server's effective admission limits.
func (s *Server) Options() ServerOptions { return s.opts }

// Start registers the service (Figure 8) and begins serving.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("community: server already started")
	}
	s.started = true
	s.mu.Unlock()

	listener, err := s.lib.RegisterService(ServiceName, map[string]string{"app": "community"})
	if err != nil {
		return fmt.Errorf("community: registering service: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.listener = listener
	s.cancel = cancel
	s.wg.Add(2)
	go s.acceptLoop(ctx)
	go s.shedder(ctx)
	return nil
}

// Stop unregisters the service and stops serving. Sessions still
// waiting for a worker or a BUSY frame are aborted — a stopping server
// owes nobody a flush.
func (s *Server) Stop() {
	s.mu.Lock()
	started := s.started
	s.started = false
	s.mu.Unlock()
	if !started {
		return
	}
	s.cancel()
	s.lib.UnregisterService(ServiceName)
	s.wg.Wait()
	s.admMu.Lock()
	backlog := s.backlog
	s.backlog = nil
	s.admMu.Unlock()
	for _, conn := range backlog {
		conn.Abort()
	}
	for {
		select {
		case conn := <-s.shedQ:
			conn.Abort()
		default:
			return
		}
	}
}

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept(ctx)
		if err != nil {
			return
		}
		s.admit(ctx, conn)
	}
}

// serveConn answers requests on one connection until it dies. Response
// frames are marshaled into one pooled buffer reused across the whole
// session: Conn.Send copies the payload, so the buffer is free again
// the moment Send returns. Writes carry a modeled-clock deadline, so a
// peer that sends requests but never reads answers costs one aborted
// session instead of a wedged worker.
func (s *Server) serveConn(ctx context.Context, conn *netsim.Conn) {
	buf := getFrameBuf()
	defer putFrameBuf(buf)
	remote := conn.Remote()
	for {
		frame, err := conn.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				conn.Abort() // shutdown: don't wait out a flush on a dying world
			} else {
				_ = conn.Close() // peer is done; flush what it hasn't read yet
			}
			return
		}
		req, err := UnmarshalRequest(frame)
		var resp Response
		if err != nil {
			resp = Response{Status: StatusBadRequest, Fields: []string{err.Error()}}
		} else {
			resp = s.HandleFrom(remote, req)
		}
		*buf = AppendResponse((*buf)[:0], resp)
		deadline := s.env.Clock().After(s.env.Scale().ToReal(s.opts.WriteTimeout))
		if err := conn.SendDeadline(*buf, deadline); err != nil {
			if errors.Is(err, netsim.ErrSendTimeout) {
				s.counters.slowWriters.Add(1)
			}
			conn.Abort()
			return
		}
	}
}

// HandleFrom dispatches one request attributed to a remote peer,
// applying the per-peer rate limit before the Table 6 handlers. The
// network path calls it with conn.Remote(); benchmarks call it directly
// to price the serve and shed fast paths without a transport.
func (s *Server) HandleFrom(remote ids.DeviceID, req Request) Response {
	if !s.allowRequest(remote, opWeight(req.Op)) {
		s.counters.rateLimited.Add(1)
		return Response{Status: StatusBusy}
	}
	s.counters.served.Add(1)
	return s.Handle(req)
}

// Handle dispatches one request to its Table 6 server function. It is
// exported so tests (and the MSC generator) can drive the server
// without a network.
func (s *Server) Handle(req Request) Response {
	switch req.Op {
	case OpPing:
		// Liveness probe: echo the arguments. Costs nothing against the
		// rate limit, so peers can tell "overloaded" from "dead".
		return Response{Status: StatusOK, Fields: req.Args}
	case OpGetOnlineMemberList:
		return s.handleOnlineMemberList()
	case OpGetInterestList:
		return s.handleInterestList(req.Args)
	case OpGetInterestedMemberList:
		return s.handleInterestedMemberList(req.Args)
	case OpGetProfile:
		return s.handleGetProfile(req.Args)
	case OpAddProfileComment:
		return s.handleAddComment(req.Args)
	case OpCheckMemberID:
		return s.handleCheckMemberID(req.Args)
	case OpMsg:
		return s.handleMsg(req.Args)
	case OpGetTrustedFriend:
		return s.handleGetTrusted(req.Args)
	case OpCheckTrusted:
		return s.handleCheckTrusted(req.Args)
	case OpSharedContent:
		return s.handleSharedContent(req.Args)
	case OpFetchShared:
		return s.handleFetchShared(req.Args)
	default:
		return Response{Status: StatusBadRequest, Fields: []string{"unknown op " + req.Op}}
	}
}

// activeProfile returns the logged-in profile, if any.
func (s *Server) activeProfile() (profile.Profile, bool) {
	p, err := s.store.ActiveProfile()
	if err != nil {
		return profile.Profile{}, false
	}
	return p, true
}

// handleOnlineMemberList: "Identifies list of online member and
// transmits the list to the requesting client."
func (s *Server) handleOnlineMemberList() Response {
	p, ok := s.activeProfile()
	if !ok {
		return Response{Status: StatusNoMembersYet}
	}
	return Response{Status: StatusOK, Fields: []string{string(p.Member)}}
}

// --- delta synchronization (if-epoch conditional reads) ---

// ifEpochPrefix tags the optional trailing argument that turns a
// PS_GETINTERESTLIST / PS_GETPROFILE request into a conditional read.
// Clients that never send it get byte-identical classic replies, which
// is what keeps old clients interoperating with new servers.
const ifEpochPrefix = "IF-EPOCH:"

// ifEpochArg renders the conditional-read argument. known=false (no
// cached epoch yet) produces the "IF-EPOCH:-" form, which never
// matches but still asks for a versioned reply carrying the epoch.
func ifEpochArg(epoch uint64, known bool) string {
	if !known {
		return ifEpochPrefix + "-"
	}
	return ifEpochPrefix + strconv.FormatUint(epoch, 10)
}

// parseIfEpoch recognizes an if-epoch argument. conditional reports
// whether the argument is one at all; known reports whether it quotes
// a concrete epoch (a malformed number degrades to "no cached epoch",
// which just costs a full reply).
func parseIfEpoch(arg string) (epoch uint64, conditional, known bool) {
	if !strings.HasPrefix(arg, ifEpochPrefix) {
		return 0, false, false
	}
	v := arg[len(ifEpochPrefix):]
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, true, false
	}
	return n, true, true
}

// formatEpoch renders an epoch as a response field.
func formatEpoch(epoch uint64) string {
	return strconv.FormatUint(epoch, 10)
}

// handleInterestList: "Identifies list of local interests and
// transmits the list to the requesting client." A trailing if-epoch
// argument upgrades it to a conditional member-summary read.
func (s *Server) handleInterestList(args []string) Response {
	if len(args) >= 1 {
		if want, conditional, known := parseIfEpoch(args[len(args)-1]); conditional {
			return s.handleInterestListVersioned(want, known)
		}
	}
	p, ok := s.activeProfile()
	if !ok {
		return Response{Status: StatusNoMembersYet}
	}
	return Response{Status: StatusOK, Fields: p.Interests}
}

// handleInterestListVersioned answers the conditional form: NOT_MODIFIED
// when the client's quoted epoch is current, otherwise a member summary
// [epoch, member, interests...] that primes the client cache in one
// exchange. The epoch is read before the profile so a concurrent
// mutation can only make the reply look older than it is (a wasted
// re-fetch later), never newer (a stale cache passing as fresh).
func (s *Server) handleInterestListVersioned(want uint64, known bool) Response {
	epoch := s.store.Epoch()
	if known && want == epoch {
		return sealVersioned(StatusNotModified, []string{formatEpoch(epoch)})
	}
	p, ok := s.activeProfile()
	if !ok {
		return sealVersioned(StatusNoMembersYet, []string{formatEpoch(epoch)})
	}
	fields := make([]string, 0, len(p.Interests)+3)
	fields = append(fields, formatEpoch(epoch), string(p.Member))
	fields = append(fields, p.Interests...)
	return sealVersioned(StatusOK, fields)
}

// handleInterestedMemberList: "Identifies the list of online member in
// accordance to a common interest."
func (s *Server) handleInterestedMemberList(args []string) Response {
	if len(args) != 1 {
		return Response{Status: StatusBadRequest}
	}
	p, ok := s.activeProfile()
	if !ok {
		return Response{Status: StatusNoMembersYet}
	}
	if p.HasInterest(interest.Normalize(args[0])) {
		return Response{Status: StatusOK, Fields: []string{string(p.Member)}}
	}
	return Response{Status: StatusOK}
}

// handleGetProfile: "Transmits the local user profile to the requesting
// client" and records the requester as a profile visitor (Figure 13).
// A third if-epoch argument upgrades it to a conditional read; the
// visit is recorded either way (viewing is a side effect of asking, not
// of transferring the payload), and visits never bump the epoch.
func (s *Server) handleGetProfile(args []string) Response {
	if len(args) == 3 {
		if want, conditional, known := parseIfEpoch(args[2]); conditional {
			return s.handleGetProfileVersioned(ids.MemberID(args[0]), ids.MemberID(args[1]), want, known)
		}
	}
	if len(args) != 2 {
		return Response{Status: StatusBadRequest}
	}
	member, requester := ids.MemberID(args[0]), ids.MemberID(args[1])
	p, ok := s.activeProfile()
	if !ok || p.Member != member {
		return Response{Status: StatusNoMembersYet}
	}
	if requester != "" && requester != member {
		_ = s.store.RecordVisit(member, requester)
	}
	return Response{Status: StatusOK, Fields: encodeProfile(p)}
}

// handleGetProfileVersioned answers the conditional form of
// PS_GETPROFILE. As in the interest-list handler, the epoch is read
// before the profile so races only ever cause an extra re-fetch.
func (s *Server) handleGetProfileVersioned(member, requester ids.MemberID, want uint64, known bool) Response {
	epoch := s.store.Epoch()
	p, ok := s.activeProfile()
	if !ok || p.Member != member {
		return sealVersioned(StatusNoMembersYet, []string{formatEpoch(epoch)})
	}
	if requester != "" && requester != member {
		_ = s.store.RecordVisit(member, requester)
	}
	if known && want == epoch {
		return sealVersioned(StatusNotModified, []string{formatEpoch(epoch)})
	}
	return sealVersioned(StatusOK, append([]string{formatEpoch(epoch)}, encodeProfile(p)...))
}

// handleAddComment: "Writes or appends the Profile comments send by
// remote client into the local user's profile" (Figure 14).
func (s *Server) handleAddComment(args []string) Response {
	if len(args) != 3 {
		return Response{Status: StatusBadRequest}
	}
	member, from, text := ids.MemberID(args[0]), ids.MemberID(args[1]), args[2]
	p, ok := s.activeProfile()
	if !ok || p.Member != member {
		return Response{Status: StatusNoMembersYet}
	}
	if err := s.store.AddComment(member, from, text); err != nil {
		return Response{Status: StatusUnsuccessful, Fields: []string{err.Error()}}
	}
	return Response{Status: StatusWritten}
}

// handleCheckMemberID: "Compares the received MemberID with local
// user's member ID and returns the success or failure."
func (s *Server) handleCheckMemberID(args []string) Response {
	if len(args) != 1 {
		return Response{Status: StatusBadRequest}
	}
	p, ok := s.activeProfile()
	if ok && p.Member == ids.MemberID(args[0]) {
		return Response{Status: StatusSuccess}
	}
	return Response{Status: StatusFailure}
}

// handleMsg: "Receives the message from the remote client and writes
// into the local user's message inbox" (Figure 17).
func (s *Server) handleMsg(args []string) Response {
	if len(args) != 4 {
		return Response{Status: StatusBadRequest}
	}
	receiver, sender, subject, body := ids.MemberID(args[0]), ids.MemberID(args[1]), args[2], args[3]
	p, ok := s.activeProfile()
	if !ok || p.Member != receiver {
		return Response{Status: StatusUnsuccessful}
	}
	msg := profile.Message{From: sender, To: receiver, Subject: subject, Body: body}
	if err := s.store.Deliver(receiver, msg); err != nil {
		return Response{Status: StatusUnsuccessful, Fields: []string{err.Error()}}
	}
	return Response{Status: StatusWritten}
}

// handleGetTrusted returns the member's trusted-friends list
// (Figure 15).
func (s *Server) handleGetTrusted(args []string) Response {
	if len(args) != 1 {
		return Response{Status: StatusBadRequest}
	}
	p, ok := s.activeProfile()
	if !ok || p.Member != ids.MemberID(args[0]) {
		return Response{Status: StatusNoMembersYet}
	}
	fields := make([]string, 0, len(p.Trusted))
	for _, tf := range p.Trusted {
		fields = append(fields, string(tf))
	}
	return Response{Status: StatusOK, Fields: fields}
}

// handleCheckTrusted answers whether the requester is a trusted friend
// (the first half of Figure 16).
func (s *Server) handleCheckTrusted(args []string) Response {
	if len(args) != 2 {
		return Response{Status: StatusBadRequest}
	}
	member, requester := ids.MemberID(args[0]), ids.MemberID(args[1])
	p, ok := s.activeProfile()
	if !ok || p.Member != member {
		return Response{Status: StatusNoMembersYet}
	}
	if p.IsTrusted(requester) {
		return Response{Status: StatusOK}
	}
	return Response{Status: StatusNotTrustedYet}
}

// trustGate enforces the §5.1 trust levels for shared-content access.
func (s *Server) trustGate(member, requester ids.MemberID, perm core.Permission) (profile.Profile, Response, bool) {
	p, ok := s.activeProfile()
	if !ok || p.Member != member {
		return profile.Profile{}, Response{Status: StatusNoMembersYet}, false
	}
	level := core.LevelFor(true, p.IsTrusted(requester))
	if !level.Allows(perm) {
		return profile.Profile{}, Response{Status: StatusNotTrustedYet}, false
	}
	return p, Response{}, true
}

// handleSharedContent lists shared content to trusted friends
// (the second half of Figure 16).
func (s *Server) handleSharedContent(args []string) Response {
	if len(args) != 2 {
		return Response{Status: StatusBadRequest}
	}
	p, failure, ok := s.trustGate(ids.MemberID(args[0]), ids.MemberID(args[1]), core.PermViewShared)
	if !ok {
		return failure
	}
	fields := make([]string, 0, 2*len(p.Shared))
	for _, item := range p.Shared {
		fields = append(fields, item.Name, strconv.FormatInt(item.Size, 10))
	}
	return Response{Status: StatusOK, Fields: fields}
}

// handleFetchShared transfers one shared item's bytes to a trusted
// friend ("that trusted peer can view what files the accepting peer has
// shared and use them if needed", chapter 1).
func (s *Server) handleFetchShared(args []string) Response {
	if len(args) != 3 {
		return Response{Status: StatusBadRequest}
	}
	member, requester, name := ids.MemberID(args[0]), ids.MemberID(args[1]), args[2]
	_, failure, ok := s.trustGate(member, requester, core.PermFetchShared)
	if !ok {
		return failure
	}
	s.mu.Lock()
	data, exists := s.content[contentKey{member: member, name: name}]
	s.mu.Unlock()
	if !exists {
		return Response{Status: StatusUnsuccessful, Fields: []string{"no such content"}}
	}
	return Response{Status: StatusOK, Fields: []string{string(data)}}
}

// ShareContent shares a named blob on behalf of a member: the metadata
// goes into the profile (visible via PS_SHAREDCONTENT) and the bytes
// are retained for PS_FETCHSHARED.
func (s *Server) ShareContent(member ids.MemberID, name string, data []byte) error {
	if err := s.store.Share(member, profile.ContentItem{Name: name, Size: int64(len(data))}); err != nil {
		return err
	}
	s.mu.Lock()
	s.content[contentKey{member: member, name: name}] = append([]byte(nil), data...)
	s.mu.Unlock()
	return nil
}

// UnshareContent removes a shared item.
func (s *Server) UnshareContent(member ids.MemberID, name string) error {
	if err := s.store.Unshare(member, name); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.content, contentKey{member: member, name: name})
	s.mu.Unlock()
	return nil
}

// --- profile wire encoding ---

// encodeProfile flattens a profile into count-prefixed sections:
// fullname, location, about, #interests, interests..., #comments,
// (from, text) pairs..., #trusted, trusted...
func encodeProfile(p profile.Profile) []string {
	fields := []string{string(p.Member), p.FullName, p.Location, p.About}
	fields = append(fields, strconv.Itoa(len(p.Interests)))
	fields = append(fields, p.Interests...)
	fields = append(fields, strconv.Itoa(len(p.Comments)))
	for _, c := range p.Comments {
		fields = append(fields, string(c.From), c.Text)
	}
	fields = append(fields, strconv.Itoa(len(p.Trusted)))
	for _, tf := range p.Trusted {
		fields = append(fields, string(tf))
	}
	return fields
}

// RemoteProfile is the view of another member's profile a client
// receives from PS_GETPROFILE (Figure 13: profile information, interest
// list, trusted friends list and profile comments).
type RemoteProfile struct {
	Member    ids.MemberID
	FullName  string
	Location  string
	About     string
	Interests []string
	Comments  []profile.Comment
	Trusted   []ids.MemberID
}

// decodeProfile parses encodeProfile's output.
func decodeProfile(fields []string) (RemoteProfile, error) {
	var out RemoteProfile
	pos := 0
	next := func() (string, error) {
		if pos >= len(fields) {
			return "", fmt.Errorf("community: truncated profile")
		}
		f := fields[pos]
		pos++
		return f, nil
	}
	nextCount := func() (int, error) {
		f, err := next()
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 || n > len(fields) {
			return 0, fmt.Errorf("community: bad section count %q", f)
		}
		return n, nil
	}

	memberField, err := next()
	if err != nil {
		return out, err
	}
	out.Member = ids.MemberID(memberField)
	if out.FullName, err = next(); err != nil {
		return out, err
	}
	if out.Location, err = next(); err != nil {
		return out, err
	}
	if out.About, err = next(); err != nil {
		return out, err
	}
	nInterests, err := nextCount()
	if err != nil {
		return out, err
	}
	for i := 0; i < nInterests; i++ {
		f, err := next()
		if err != nil {
			return out, err
		}
		out.Interests = append(out.Interests, f)
	}
	nComments, err := nextCount()
	if err != nil {
		return out, err
	}
	for i := 0; i < nComments; i++ {
		from, err := next()
		if err != nil {
			return out, err
		}
		text, err := next()
		if err != nil {
			return out, err
		}
		out.Comments = append(out.Comments, profile.Comment{From: ids.MemberID(from), Text: text})
	}
	nTrusted, err := nextCount()
	if err != nil {
		return out, err
	}
	for i := 0; i < nTrusted; i++ {
		f, err := next()
		if err != nil {
			return out, err
		}
		out.Trusted = append(out.Trusted, ids.MemberID(f))
	}
	return out, nil
}
