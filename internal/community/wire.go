// Package community implements PeerHood Community, the thesis's
// reference application (§5.2): a client/server social-networking
// application where every device runs both sides. The server registers
// the "PeerHoodCommunity" service in the PeerHood daemon and answers
// the PS_* requests of Table 6; the client fans requests out to every
// connected server exactly as the MSCs of Figures 11–17 show, and feeds
// the gathered interests into the core group manager for dynamic group
// discovery.
package community

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
)

// ServiceName is the service the server registers into the PeerHood
// daemon, as in Figure 8.
const ServiceName = "PeerHoodCommunity"

// Op codes, named exactly as Table 6 lists them (plus the trust checks
// Figures 15 and 16 use).
const (
	OpGetOnlineMemberList     = "PS_GETONLINEMEMBERLIST"
	OpGetInterestList         = "PS_GETINTERESTLIST"
	OpGetInterestedMemberList = "PS_GETINTERESTEDMEMBERLIST"
	OpGetProfile              = "PS_GETPROFILE"
	OpAddProfileComment       = "PS_ADDPROFILECOMMENT"
	OpCheckMemberID           = "PS_CHECKMEMBERID"
	OpMsg                     = "PS_MSG"
	OpSharedContent           = "PS_SHAREDCONTENT"
	OpGetTrustedFriend        = "PS_GETTRUSTEDFRIEND"
	OpCheckTrusted            = "PS_CHECKTRUSTED"
	OpFetchShared             = "PS_FETCHSHARED"
	// OpPing is a liveness/latency probe answered from the admission
	// layer's fast path — an overload-control extension, not part of the
	// thesis's Table 6. It is never rate-limited, so a peer can always
	// distinguish an overloaded server from a dead one.
	OpPing = "PS_PING"
)

// Status strings, named as the MSCs show them.
const (
	StatusOK            = "OK"
	StatusNoMembersYet  = "NO_MEMBERS_YET"
	StatusNotTrustedYet = "NOT_TRUSTED_YET"
	StatusWritten       = "SUCCESSFULLY_WRITTEN"
	StatusUnsuccessful  = "UNSUCCESSFULL" // sic, as in the thesis
	StatusSuccess       = "SUCCESS"
	StatusFailure       = "FAILURE"
	StatusBadRequest    = "BAD_REQUEST"
	// StatusNotModified answers a conditional (if-epoch) read whose
	// state is unchanged since the epoch the client quoted — the delta
	// synchronization extension, not part of the thesis's Table 6.
	StatusNotModified = "NOT_MODIFIED"
	// StatusBusy is explicit load shedding: the server refused the
	// session (admission queue full) or the request (per-peer budget
	// exhausted). Clients treat it as backpressure, not as peer failure.
	StatusBusy = "BUSY"
)

// Request is one client operation.
type Request struct {
	Op   string
	Args []string
}

// Response is one server answer: a status plus zero or more fields.
type Response struct {
	Status string
	Fields []string
}

// The wire format packs op/status and fields into one frame using unit
// separators, with backslash escaping so fields may contain anything —
// the moral equivalent of the original application's fixed buffers, but
// binary-safe.
const (
	fieldSep = '\x1f'
	escape   = '\\'
)

var errMalformedFrame = errors.New("community: malformed frame")

// specials is the set of bytes that need escaping; keeping it a named
// constant lets the fast-path checks below use strings.ContainsAny /
// IndexByte without spelling the pair twice.
const specials = "\x1f\\"

// escapedLen returns the encoded length of one field: its byte length
// plus one escape byte per separator or backslash. It allocates
// nothing, so marshalers can size a frame buffer exactly.
func escapedLen(s string) int {
	n := len(s)
	for i := 0; i < len(s); i++ {
		if s[i] == fieldSep || s[i] == escape {
			n++
		}
	}
	return n
}

// appendEscaped appends one escaped field to dst. The common case — a
// field with no separators or backslashes — is a single bulk append
// with no per-byte work.
func appendEscaped(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, specials) {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == fieldSep || c == escape {
			dst = append(dst, escape)
		}
		dst = append(dst, c)
	}
	return dst
}

// escapeField protects separators inside a field.
func escapeField(s string) string {
	if !strings.ContainsAny(s, specials) {
		return s
	}
	return string(appendEscaped(make([]byte, 0, escapedLen(s)), s))
}

// splitFields reverses escapeField across a frame body. A frame with no
// escape bytes — every frame whose fields are plain member IDs,
// interests and status tokens — is sliced directly out of the input
// string without copying a single field. Escaped frames decode through
// one shared scratch buffer, so even the slow path costs a bounded
// number of allocations rather than one per field.
func splitFields(data string) ([]string, error) {
	if strings.IndexByte(data, escape) < 0 {
		fields := make([]string, 0, strings.Count(data, string(fieldSep))+1)
		for {
			i := strings.IndexByte(data, fieldSep)
			if i < 0 {
				return append(fields, data), nil
			}
			fields = append(fields, data[:i])
			data = data[i+1:]
		}
	}
	// Slow path: unescape every field into one contiguous buffer,
	// convert it to a string once, then slice the fields out of it.
	buf := make([]byte, 0, len(data))
	ends := make([]int, 0, 8)
	for i := 0; i < len(data); i++ {
		switch c := data[i]; c {
		case escape:
			i++
			if i >= len(data) {
				return nil, fmt.Errorf("%w: trailing escape", errMalformedFrame)
			}
			buf = append(buf, data[i])
		case fieldSep:
			ends = append(ends, len(buf))
		default:
			buf = append(buf, c)
		}
	}
	ends = append(ends, len(buf))
	decoded := string(buf)
	fields := make([]string, len(ends))
	start := 0
	for k, end := range ends {
		fields[k] = decoded[start:end]
		start = end
	}
	return fields, nil
}

// appendFrame packs a head token and fields onto dst.
func appendFrame(dst []byte, head string, fields []string) []byte {
	dst = appendEscaped(dst, head)
	for _, f := range fields {
		dst = append(dst, fieldSep)
		dst = appendEscaped(dst, f)
	}
	return dst
}

// frameLen returns the exact encoded size of a frame.
func frameLen(head string, fields []string) int {
	n := escapedLen(head)
	for _, f := range fields {
		n += 1 + escapedLen(f)
	}
	return n
}

// unmarshalFrame unpacks a frame into head and fields.
func unmarshalFrame(data []byte) (head string, fields []string, err error) {
	all, err := splitFields(string(data))
	if err != nil {
		return "", nil, err
	}
	if len(all) == 0 || all[0] == "" {
		return "", nil, fmt.Errorf("%w: empty head", errMalformedFrame)
	}
	return all[0], all[1:], nil
}

// framePool recycles marshal scratch buffers for the request/response
// hot path. netsim's Conn.Send copies the payload before returning, so
// a buffer may be recycled as soon as the send completes.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// getFrameBuf leases an empty scratch buffer from the pool.
func getFrameBuf() *[]byte {
	b := framePool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// putFrameBuf returns a scratch buffer to the pool.
func putFrameBuf(b *[]byte) {
	framePool.Put(b)
}

// digestFields hashes a versioned reply's status and payload fields
// (FNV-1a 64, rendered as hex). Versioned replies get cached across
// rounds, so unlike the classic stateless exchanges a corrupted-but-
// parseable frame would poison the client's view until the next epoch
// bump; the digest lets the client reject such frames outright. Classic
// replies carry no digest — their bytes are part of the compatibility
// contract, and a corrupt one only misleads a single round.
func digestFields(status string, fields []string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(status)) // hash.Hash never errors
	for _, f := range fields {
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(f))
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// sealVersioned appends the integrity digest to a versioned reply.
func sealVersioned(status string, fields []string) Response {
	return Response{Status: status, Fields: append(fields, digestFields(status, fields))}
}

// openVersioned verifies and strips the digest of a versioned reply,
// returning the payload fields. ok=false means the frame was truncated
// or corrupted and must be ignored.
func openVersioned(resp Response) ([]string, bool) {
	if len(resp.Fields) < 1 {
		return nil, false
	}
	payload := resp.Fields[:len(resp.Fields)-1]
	if resp.Fields[len(resp.Fields)-1] != digestFields(resp.Status, payload) {
		return nil, false
	}
	return payload, true
}

// AppendRequest appends a request frame to dst and returns the extended
// slice; the allocation-free form of MarshalRequest for callers that
// recycle buffers.
func AppendRequest(dst []byte, req Request) []byte {
	return appendFrame(dst, req.Op, req.Args)
}

// MarshalRequest encodes a request frame.
func MarshalRequest(req Request) []byte {
	return appendFrame(make([]byte, 0, frameLen(req.Op, req.Args)), req.Op, req.Args)
}

// UnmarshalRequest decodes a request frame.
func UnmarshalRequest(data []byte) (Request, error) {
	op, args, err := unmarshalFrame(data)
	if err != nil {
		return Request{}, err
	}
	return Request{Op: op, Args: args}, nil
}

// AppendResponse appends a response frame to dst and returns the
// extended slice; the allocation-free form of MarshalResponse.
func AppendResponse(dst []byte, resp Response) []byte {
	return appendFrame(dst, resp.Status, resp.Fields)
}

// MarshalResponse encodes a response frame.
func MarshalResponse(resp Response) []byte {
	return appendFrame(make([]byte, 0, frameLen(resp.Status, resp.Fields)), resp.Status, resp.Fields)
}

// UnmarshalResponse decodes a response frame.
func UnmarshalResponse(data []byte) (Response, error) {
	status, fields, err := unmarshalFrame(data)
	if err != nil {
		return Response{}, err
	}
	return Response{Status: status, Fields: fields}, nil
}
