// Package community implements PeerHood Community, the thesis's
// reference application (§5.2): a client/server social-networking
// application where every device runs both sides. The server registers
// the "PeerHoodCommunity" service in the PeerHood daemon and answers
// the PS_* requests of Table 6; the client fans requests out to every
// connected server exactly as the MSCs of Figures 11–17 show, and feeds
// the gathered interests into the core group manager for dynamic group
// discovery.
package community

import (
	"errors"
	"fmt"
	"strings"
)

// ServiceName is the service the server registers into the PeerHood
// daemon, as in Figure 8.
const ServiceName = "PeerHoodCommunity"

// Op codes, named exactly as Table 6 lists them (plus the trust checks
// Figures 15 and 16 use).
const (
	OpGetOnlineMemberList     = "PS_GETONLINEMEMBERLIST"
	OpGetInterestList         = "PS_GETINTERESTLIST"
	OpGetInterestedMemberList = "PS_GETINTERESTEDMEMBERLIST"
	OpGetProfile              = "PS_GETPROFILE"
	OpAddProfileComment       = "PS_ADDPROFILECOMMENT"
	OpCheckMemberID           = "PS_CHECKMEMBERID"
	OpMsg                     = "PS_MSG"
	OpSharedContent           = "PS_SHAREDCONTENT"
	OpGetTrustedFriend        = "PS_GETTRUSTEDFRIEND"
	OpCheckTrusted            = "PS_CHECKTRUSTED"
	OpFetchShared             = "PS_FETCHSHARED"
)

// Status strings, named as the MSCs show them.
const (
	StatusOK            = "OK"
	StatusNoMembersYet  = "NO_MEMBERS_YET"
	StatusNotTrustedYet = "NOT_TRUSTED_YET"
	StatusWritten       = "SUCCESSFULLY_WRITTEN"
	StatusUnsuccessful  = "UNSUCCESSFULL" // sic, as in the thesis
	StatusSuccess       = "SUCCESS"
	StatusFailure       = "FAILURE"
	StatusBadRequest    = "BAD_REQUEST"
)

// Request is one client operation.
type Request struct {
	Op   string
	Args []string
}

// Response is one server answer: a status plus zero or more fields.
type Response struct {
	Status string
	Fields []string
}

// The wire format packs op/status and fields into one frame using unit
// separators, with backslash escaping so fields may contain anything —
// the moral equivalent of the original application's fixed buffers, but
// binary-safe.
const (
	fieldSep = '\x1f'
	escape   = '\\'
)

var errMalformedFrame = errors.New("community: malformed frame")

// escapeField protects separators inside a field.
func escapeField(s string) string {
	if !strings.ContainsAny(s, "\x1f\\") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == fieldSep || c == escape {
			b.WriteByte(escape)
		}
		b.WriteByte(c)
	}
	return b.String()
}

// splitFields reverses escapeField across a frame body.
func splitFields(data string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	for i := 0; i < len(data); i++ {
		c := data[i]
		switch c {
		case escape:
			i++
			if i >= len(data) {
				return nil, fmt.Errorf("%w: trailing escape", errMalformedFrame)
			}
			cur.WriteByte(data[i])
		case fieldSep:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	fields = append(fields, cur.String())
	return fields, nil
}

// marshalFrame packs a head token and fields.
func marshalFrame(head string, fields []string) []byte {
	parts := make([]string, 0, len(fields)+1)
	parts = append(parts, escapeField(head))
	for _, f := range fields {
		parts = append(parts, escapeField(f))
	}
	return []byte(strings.Join(parts, string(fieldSep)))
}

// unmarshalFrame unpacks a frame into head and fields.
func unmarshalFrame(data []byte) (head string, fields []string, err error) {
	all, err := splitFields(string(data))
	if err != nil {
		return "", nil, err
	}
	if len(all) == 0 || all[0] == "" {
		return "", nil, fmt.Errorf("%w: empty head", errMalformedFrame)
	}
	return all[0], all[1:], nil
}

// MarshalRequest encodes a request frame.
func MarshalRequest(req Request) []byte {
	return marshalFrame(req.Op, req.Args)
}

// UnmarshalRequest decodes a request frame.
func UnmarshalRequest(data []byte) (Request, error) {
	op, args, err := unmarshalFrame(data)
	if err != nil {
		return Request{}, err
	}
	return Request{Op: op, Args: args}, nil
}

// MarshalResponse encodes a response frame.
func MarshalResponse(resp Response) []byte {
	return marshalFrame(resp.Status, resp.Fields)
}

// UnmarshalResponse decodes a response frame.
func UnmarshalResponse(data []byte) (Response, error) {
	status, fields, err := unmarshalFrame(data)
	if err != nil {
		return Response{}, err
	}
	return Response{Status: status, Fields: fields}, nil
}
