package community

// Allocation pins for the codec's no-escape fast paths. These are the
// numbers the steady-state group round depends on; a regression here
// shows up as GC pressure at 500 peers long before a benchmark floor
// trips. Skipped under -race (the race runtime allocates on its own).

import "testing"

// plainReq/plainResp exercise the fast path only: member IDs, interest
// terms and status tokens never contain the separator or escape byte.
var (
	plainReq = Request{
		Op:   OpGetInterestedMemberList,
		Args: []string{"football", "music", "movies"},
	}
	plainResp = Response{
		Status: StatusOK,
		Fields: []string{"alice", "bob", "carol", "dave", "erin"},
	}
)

func requireNoRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under the race detector")
	}
}

func TestMarshalRequestAllocs(t *testing.T) {
	requireNoRace(t)
	got := testing.AllocsPerRun(200, func() {
		_ = MarshalRequest(plainReq)
	})
	// Exactly the result slice; frameLen sizes it so append never grows.
	if got > 1 {
		t.Fatalf("MarshalRequest fast path: %.1f allocs/op, want <= 1", got)
	}
}

func TestMarshalResponseAllocs(t *testing.T) {
	requireNoRace(t)
	got := testing.AllocsPerRun(200, func() {
		_ = MarshalResponse(plainResp)
	})
	if got > 1 {
		t.Fatalf("MarshalResponse fast path: %.1f allocs/op, want <= 1", got)
	}
}

func TestAppendRequestZeroAlloc(t *testing.T) {
	requireNoRace(t)
	buf := make([]byte, 0, 256)
	got := testing.AllocsPerRun(200, func() {
		buf = AppendRequest(buf[:0], plainReq)
	})
	// The pooled-buffer path the client and server actually use.
	if got != 0 {
		t.Fatalf("AppendRequest into a sized buffer: %.1f allocs/op, want 0", got)
	}
}

func TestAppendResponseZeroAlloc(t *testing.T) {
	requireNoRace(t)
	buf := make([]byte, 0, 256)
	got := testing.AllocsPerRun(200, func() {
		buf = AppendResponse(buf[:0], plainResp)
	})
	if got != 0 {
		t.Fatalf("AppendResponse into a sized buffer: %.1f allocs/op, want 0", got)
	}
}

func TestUnmarshalResponseAllocs(t *testing.T) {
	requireNoRace(t)
	raw := MarshalResponse(plainResp)
	got := testing.AllocsPerRun(200, func() {
		if _, err := UnmarshalResponse(raw); err != nil {
			t.Fatal(err)
		}
	})
	// One string conversion of the frame plus one fields slice; every
	// field is sliced out of the converted string without copying.
	if got > 2 {
		t.Fatalf("UnmarshalResponse fast path: %.1f allocs/op, want <= 2", got)
	}
}

func TestUnmarshalRequestAllocs(t *testing.T) {
	requireNoRace(t)
	raw := MarshalRequest(plainReq)
	got := testing.AllocsPerRun(200, func() {
		if _, err := UnmarshalRequest(raw); err != nil {
			t.Fatal(err)
		}
	})
	if got > 2 {
		t.Fatalf("UnmarshalRequest fast path: %.1f allocs/op, want <= 2", got)
	}
}
