package community

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	tests := []Request{
		{Op: OpGetOnlineMemberList},
		{Op: OpGetProfile, Args: []string{"bob", "alice"}},
		{Op: OpMsg, Args: []string{"bob", "alice", "subject with spaces", "body\nwith\nnewlines"}},
		{Op: OpAddProfileComment, Args: []string{"bob", "alice", "tricky \x1f field \\ with separators"}},
		{Op: OpCheckMemberID, Args: []string{""}},
	}
	for _, req := range tests {
		got, err := UnmarshalRequest(MarshalRequest(req))
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if got.Op != req.Op || len(got.Args) != len(req.Args) {
			t.Fatalf("round trip %+v -> %+v", req, got)
		}
		for i := range req.Args {
			if got.Args[i] != req.Args[i] {
				t.Fatalf("arg %d: %q != %q", i, got.Args[i], req.Args[i])
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := Response{Status: StatusOK, Fields: []string{"a", "", "c\x1fd", "e\\f"}}
	got, err := UnmarshalResponse(MarshalResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusOK || len(got.Fields) != 4 {
		t.Fatalf("got %+v", got)
	}
	for i := range resp.Fields {
		if got.Fields[i] != resp.Fields[i] {
			t.Fatalf("field %d: %q != %q", i, got.Fields[i], resp.Fields[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(op string, a, b, c string) bool {
		if op == "" || strings.Contains(op, "\x00") {
			op = "PS_TEST"
		}
		req := Request{Op: op, Args: []string{a, b, c}}
		got, err := UnmarshalRequest(MarshalRequest(req))
		if err != nil {
			return false
		}
		return got.Op == req.Op && len(got.Args) == 3 &&
			got.Args[0] == a && got.Args[1] == b && got.Args[2] == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalMalformed(t *testing.T) {
	if _, err := UnmarshalRequest([]byte("")); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := UnmarshalRequest([]byte("op\\")); err == nil {
		t.Error("trailing escape accepted")
	}
	if _, err := UnmarshalResponse([]byte("\x1ffield")); err == nil {
		t.Error("empty status accepted")
	}
}

func TestEmptyArgsPreserved(t *testing.T) {
	req := Request{Op: "X", Args: []string{"", "", ""}}
	got, err := UnmarshalRequest(MarshalRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 3 {
		t.Fatalf("args = %v, want 3 empties", got.Args)
	}
}

func TestNoArgsDecodesToNone(t *testing.T) {
	got, err := UnmarshalRequest(MarshalRequest(Request{Op: "X"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Args) != 0 {
		t.Fatalf("args = %v, want none", got.Args)
	}
}
