// Package core implements the thesis's primary contribution: the social
// networking middleware that sits on top of PeerHood (chapter 5). It
// provides the dynamic group discovery algorithm of Figure 6 — the
// automatic formation of per-interest groups among nearby peers — the
// continuous group management that reacts as devices enter and leave
// the neighborhood (Figures 2 and 5), and the trust levels that gate
// access to profile features (§5.1).
//
// The package is transport-agnostic: it consumes Member snapshots (who
// is nearby and what they are interested in) that the community layer
// extracts over PeerHood, and produces Groups and membership events.
package core

import (
	"sort"

	"repro/internal/ids"
	"repro/internal/interest"
)

// Member is one social-network participant as seen from the local
// device: the device carrying them, their member identity and their
// advertised interests.
type Member struct {
	Device    ids.DeviceID
	ID        ids.MemberID
	Interests []string
}

// NormalizedInterests returns the member's interests mapped through the
// semantics layer (nil-safe) and deduplicated.
func (m Member) NormalizedInterests(sem *interest.Semantics) []string {
	return sem.CanonAll(m.Interests)
}

// Group is one dynamically discovered interest group: the canonical
// interest that formed it and its members (always including the active
// user), sorted by member ID.
type Group struct {
	Interest string
	Members  []Member
}

// GroupID returns the group's identity; groups are keyed by their
// canonical interest.
func (g Group) GroupID() ids.GroupID { return ids.GroupID(g.Interest) }

// MemberIDs returns the member identities in order.
func (g Group) MemberIDs() []ids.MemberID {
	out := make([]ids.MemberID, 0, len(g.Members))
	for _, m := range g.Members {
		out = append(out, m.ID)
	}
	return out
}

// Has reports whether a member is in the group.
func (g Group) Has(id ids.MemberID) bool {
	for _, m := range g.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// DiscoverGroups is the dynamic group discovery algorithm of Figure 6:
//
//	collect the list of active user's personal interests
//	get the list of all the nearby devices
//	for each personal interest of the active user:
//	    for each nearby member:
//	        if any interest of the member matches the personal interest:
//	            list both in the same interest group
//
// A group forms only when at least one nearby member shares the
// interest ("groups are formed dynamically, if any interest matches
// between them"). Interests are compared through the semantics layer,
// so taught synonyms ("biking"/"cycling") land in one group; pass a nil
// *interest.Semantics for the thesis's baseline behaviour where they
// form two groups.
//
// The result is deterministic: groups sorted by interest, members by
// member ID (the active user first).
func DiscoverGroups(active Member, nearby []Member, sem *interest.Semantics) []Group {
	var groups []Group
	for _, personal := range active.NormalizedInterests(sem) {
		group := Group{Interest: personal, Members: []Member{active}}
		for _, other := range nearby {
			if other.ID == active.ID {
				continue
			}
			for _, theirs := range other.NormalizedInterests(sem) {
				if theirs == personal {
					group.Members = append(group.Members, other)
					break
				}
			}
		}
		if len(group.Members) > 1 {
			sortMembersKeepFirst(group.Members)
			groups = append(groups, group)
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].Interest < groups[j].Interest })
	return groups
}

// AllInterestsNearby returns the union of interests advertised by the
// active user and the nearby members, canonicalized, sorted — what the
// Get Interests List operation (Figure 12) displays.
func AllInterestsNearby(active Member, nearby []Member, sem *interest.Semantics) []string {
	seen := make(map[string]bool)
	var out []string
	add := func(terms []string) {
		for _, t := range sem.CanonAll(terms) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	add(active.Interests)
	for _, m := range nearby {
		add(m.Interests)
	}
	sort.Strings(out)
	return out
}

// sortMembersKeepFirst sorts members[1:] by ID, keeping the active user
// at the head.
func sortMembersKeepFirst(members []Member) {
	if len(members) < 3 {
		return
	}
	rest := members[1:]
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
}
