package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/interest"
)

func member(id string, interests ...string) Member {
	return Member{Device: ids.DeviceID("dev-" + id), ID: ids.MemberID(id), Interests: interests}
}

// TestFigure6_AlgorithmBasicMatch follows Figure 6 directly: one
// personal interest matched against nearby members.
func TestFigure6_AlgorithmBasicMatch(t *testing.T) {
	active := member("alice", "football")
	nearby := []Member{
		member("bob", "football", "movies"),
		member("carol", "movies"),
	}
	groups := DiscoverGroups(active, nearby, nil)
	if len(groups) != 1 {
		t.Fatalf("groups = %+v, want 1", groups)
	}
	g := groups[0]
	if g.Interest != "football" {
		t.Fatalf("interest = %q", g.Interest)
	}
	if len(g.Members) != 2 || g.Members[0].ID != "alice" || g.Members[1].ID != "bob" {
		t.Fatalf("members = %v", g.MemberIDs())
	}
	if !g.Has("bob") || g.Has("carol") {
		t.Fatal("Has() wrong")
	}
	if g.GroupID() != "football" {
		t.Fatalf("GroupID = %q", g.GroupID())
	}
}

// TestFigure2_OneGroupPerInterest reproduces the concept of Figure 2:
// the central user's three distinct interests form three distinct
// dynamic groups around them.
func TestFigure2_OneGroupPerInterest(t *testing.T) {
	active := member("center", "football", "music", "movies")
	nearby := []Member{
		member("f1", "football"),
		member("f2", "football"),
		member("m1", "music"),
		member("v1", "movies"),
		member("v2", "movies"),
		member("none", "knitting"),
	}
	groups := DiscoverGroups(active, nearby, nil)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 (one per interest)", len(groups))
	}
	want := map[string]int{"football": 3, "movies": 3, "music": 2}
	for _, g := range groups {
		if n := want[g.Interest]; len(g.Members) != n {
			t.Errorf("group %q has %d members, want %d", g.Interest, len(g.Members), n)
		}
	}
}

func TestDiscoverNoMatchNoGroup(t *testing.T) {
	active := member("alice", "football")
	nearby := []Member{member("bob", "chess")}
	if groups := DiscoverGroups(active, nearby, nil); len(groups) != 0 {
		t.Fatalf("groups = %+v, want none (no interest matches)", groups)
	}
}

func TestDiscoverEmptyNeighborhood(t *testing.T) {
	active := member("alice", "football")
	if groups := DiscoverGroups(active, nil, nil); len(groups) != 0 {
		t.Fatal("groups formed with nobody around")
	}
}

func TestDiscoverActiveWithoutInterests(t *testing.T) {
	active := member("alice")
	nearby := []Member{member("bob", "football")}
	if groups := DiscoverGroups(active, nearby, nil); len(groups) != 0 {
		t.Fatal("groups formed without personal interests")
	}
}

func TestDiscoverNormalizesCase(t *testing.T) {
	active := member("alice", "Football")
	nearby := []Member{member("bob", "  FOOTBALL ")}
	groups := DiscoverGroups(active, nearby, nil)
	if len(groups) != 1 || groups[0].Interest != "football" {
		t.Fatalf("groups = %+v", groups)
	}
}

func TestDiscoverSkipsSelfInNearby(t *testing.T) {
	active := member("alice", "football")
	nearby := []Member{member("alice", "football"), member("bob", "football")}
	groups := DiscoverGroups(active, nearby, nil)
	if len(groups) != 1 || len(groups[0].Members) != 2 {
		t.Fatalf("self duplicated: %v", groups[0].MemberIDs())
	}
}

// TestDiscoverSemanticsMergesSynonyms reproduces §5.2.6's biking/
// cycling scenario: without semantics two groups would be impossible
// to form (no exact match); with taught semantics one group forms.
func TestDiscoverSemanticsMergesSynonyms(t *testing.T) {
	active := member("alice", "biking")
	nearby := []Member{member("bob", "cycling")}

	if groups := DiscoverGroups(active, nearby, nil); len(groups) != 0 {
		t.Fatal("baseline: biking and cycling must NOT match (thesis's noted disadvantage)")
	}
	sem := interest.NewSemantics()
	sem.Teach("biking", "cycling")
	groups := DiscoverGroups(active, nearby, sem)
	if len(groups) != 1 {
		t.Fatalf("with semantics: groups = %+v, want 1", groups)
	}
	if groups[0].Interest != "biking" { // canonical = lexicographically smaller
		t.Fatalf("canonical interest = %q", groups[0].Interest)
	}
	if len(groups[0].Members) != 2 {
		t.Fatal("both members should be in the merged group")
	}
}

func TestDiscoverDeterministicOrder(t *testing.T) {
	active := member("alice", "b-interest", "a-interest")
	nearby := []Member{
		member("zed", "a-interest", "b-interest"),
		member("bob", "a-interest", "b-interest"),
	}
	groups := DiscoverGroups(active, nearby, nil)
	if len(groups) != 2 || groups[0].Interest != "a-interest" || groups[1].Interest != "b-interest" {
		t.Fatalf("group order: %+v", groups)
	}
	ids := groups[0].MemberIDs()
	if ids[0] != "alice" || ids[1] != "bob" || ids[2] != "zed" {
		t.Fatalf("member order: %v", ids)
	}
}

// Property: every discovered group contains the active user plus at
// least one other member, and every non-active member genuinely shares
// the group's interest.
func TestDiscoverInvariantsProperty(t *testing.T) {
	interests := []string{"a", "b", "c", "d"}
	prop := func(seed uint32) bool {
		// Build a pseudo-random neighborhood from the seed.
		nearby := make([]Member, 0, 5)
		s := seed
		pick := func() []string {
			var out []string
			for i, term := range interests {
				if s&(1<<uint(i)) != 0 {
					out = append(out, term)
				}
			}
			s = s*1664525 + 1013904223
			return out
		}
		active := member("active", pick()...)
		for i := 0; i < 5; i++ {
			nearby = append(nearby, member(fmt.Sprintf("m%d", i), pick()...))
		}
		groups := DiscoverGroups(active, nearby, nil)
		for _, g := range groups {
			if len(g.Members) < 2 {
				return false
			}
			if g.Members[0].ID != active.ID {
				return false
			}
			if !hasInterest(active, g.Interest) {
				return false
			}
			for _, m := range g.Members[1:] {
				if !hasInterest(m, g.Interest) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// hasInterest reports whether the member lists the normalized interest.
func hasInterest(m Member, term string) bool {
	for _, t := range m.NormalizedInterests(nil) {
		if t == term {
			return true
		}
	}
	return false
}

func TestAllInterestsNearby(t *testing.T) {
	active := member("alice", "football", "music")
	nearby := []Member{
		member("bob", "football", "chess"),
		member("carol", "MUSIC"),
	}
	got := AllInterestsNearby(active, nearby, nil)
	want := []string{"chess", "football", "music"}
	if len(got) != len(want) {
		t.Fatalf("AllInterestsNearby = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AllInterestsNearby = %v, want %v", got, want)
		}
	}
}

func TestAllInterestsNearbySemantics(t *testing.T) {
	sem := interest.NewSemantics()
	sem.Teach("biking", "cycling")
	got := AllInterestsNearby(member("a", "biking"), []Member{member("b", "cycling")}, sem)
	if len(got) != 1 || got[0] != "biking" {
		t.Fatalf("AllInterestsNearby = %v, want [biking]", got)
	}
}
