package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interest"
)

// ExampleDiscoverGroups runs the Figure 6 algorithm on the thesis's
// canonical situation: a user surrounded by peers, grouped per shared
// interest.
func ExampleDiscoverGroups() {
	active := core.Member{Device: "my-phone", ID: "me", Interests: []string{"football", "music"}}
	nearby := []core.Member{
		{Device: "dev-bob", ID: "bob", Interests: []string{"Football", "movies"}},
		{Device: "dev-carol", ID: "carol", Interests: []string{"music"}},
		{Device: "dev-dave", ID: "dave", Interests: []string{"chess"}},
	}
	for _, g := range core.DiscoverGroups(active, nearby, nil) {
		fmt.Println(g.Interest, g.MemberIDs())
	}
	// Output:
	// football [me bob]
	// music [me carol]
}

// ExampleDiscoverGroups_semantics shows the future-work synonym layer
// merging "biking" and "cycling" into one group.
func ExampleDiscoverGroups_semantics() {
	sem := interest.NewSemantics()
	sem.Teach("biking", "cycling")
	active := core.Member{ID: "me", Interests: []string{"biking"}}
	nearby := []core.Member{{ID: "bob", Interests: []string{"cycling"}}}
	for _, g := range core.DiscoverGroups(active, nearby, sem) {
		fmt.Println(g.Interest, g.MemberIDs())
	}
	// Output:
	// biking [me bob]
}

// ExampleManager shows group churn as the neighborhood changes.
func ExampleManager() {
	mgr := core.NewManager(core.Member{ID: "me", Interests: []string{"football"}}, nil)
	bob := core.Member{ID: "bob", Interests: []string{"football"}}

	show := func(ev core.Event) {
		if ev.Member == "" {
			fmt.Println(ev.Type, ev.Interest)
			return
		}
		fmt.Println(ev.Type, ev.Interest, ev.Member)
	}
	for _, ev := range mgr.Update([]core.Member{bob}) {
		show(ev)
	}
	for _, ev := range mgr.Update(nil) { // bob walks away
		show(ev)
	}
	// Output:
	// group-formed football
	// member-joined football bob
	// member-left football bob
	// group-dissolved football
}
