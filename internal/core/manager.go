package core

import (
	"sort"
	"sync"

	"repro/internal/ids"
	"repro/internal/interest"
)

// EventType classifies group-membership events.
type EventType int

// The four events the group manager emits as the neighborhood churns.
const (
	// EventGroupFormed fires when an interest group first gains a
	// remote member.
	EventGroupFormed EventType = iota + 1
	// EventGroupDissolved fires when a group's last remote member
	// leaves.
	EventGroupDissolved
	// EventMemberJoined fires per remote member entering a group.
	EventMemberJoined
	// EventMemberLeft fires per remote member leaving a group.
	EventMemberLeft
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventGroupFormed:
		return "group-formed"
	case EventGroupDissolved:
		return "group-dissolved"
	case EventMemberJoined:
		return "member-joined"
	case EventMemberLeft:
		return "member-left"
	default:
		return "unknown"
	}
}

// Event is one group-membership change.
type Event struct {
	Type     EventType
	Interest string
	// Member is set for joined/left events.
	Member ids.MemberID
}

// Manager maintains the local device's view of its dynamic groups as
// the PeerHood neighborhood changes (Figure 5): call Update with each
// fresh neighbor snapshot and the manager re-runs discovery, diffs the
// result and reports what changed. It also implements the manual
// join/leave of Table 7.
type Manager struct {
	mu     sync.Mutex
	self   Member
	sem    *interest.Semantics
	manual map[string]bool // interests joined manually (not personal)
	left   map[string]bool // personal interests left manually
	groups map[string]Group
	subs   map[int]func(Event)
	nextID int

	// Snapshot fingerprint of the last Update: discovery is a pure
	// function of (effective terms, neighbor snapshot, semantics
	// generation), so when none of the three moved the whole rebuild is
	// skipped and zero events are emitted.
	snapValid  bool
	lastTerms  []string
	lastNearby []Member
	lastSemGen uint64
	skipped    uint64
}

// NewManager returns a manager for the active user. sem may be nil to
// disable semantics.
func NewManager(self Member, sem *interest.Semantics) *Manager {
	return &Manager{
		self:   self,
		sem:    sem,
		manual: make(map[string]bool),
		left:   make(map[string]bool),
		groups: make(map[string]Group),
		subs:   make(map[int]func(Event)),
	}
}

// Self returns the active user as currently configured.
func (m *Manager) Self() Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.self
}

// SetInterests replaces the active user's personal interests; the next
// Update reflects the change.
func (m *Manager) SetInterests(terms []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.self.Interests = interest.NormalizeAll(terms)
}

// JoinManually subscribes the user to an interest group they do not
// have as a personal interest ("Join/Leave Manually", Table 7).
func (m *Manager) JoinManually(term string) {
	c := m.sem.Canon(term)
	if c == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.manual[c] = true
	delete(m.left, c)
}

// LeaveManually unsubscribes from a group even if the interest is
// personal; discovery skips it until joined again.
func (m *Manager) LeaveManually(term string) {
	c := m.sem.Canon(term)
	if c == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.manual, c)
	m.left[c] = true
}

// AdoptInterest adds another member's interest as a personal interest
// ("add others interests as own interest", §5.1).
func (m *Manager) AdoptInterest(term string) {
	n := interest.Normalize(term)
	if n == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.self.Interests {
		if t == n {
			return
		}
	}
	m.self.Interests = append(m.self.Interests, n)
	delete(m.left, m.sem.Canon(n))
}

// Subscribe registers an event callback; callbacks run synchronously
// inside Update, after the lock is released, so they may query the
// manager.
func (m *Manager) Subscribe(fn func(Event)) (cancel func()) {
	m.mu.Lock()
	id := m.nextID
	m.nextID++
	m.subs[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
	}
}

// Update recomputes the group set from a fresh neighbor snapshot and
// returns the membership events, oldest-change-first (formed before
// joined, left before dissolved).
func (m *Manager) Update(nearby []Member) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Effective interest list: personal + manual - left.
	effective := m.self
	var terms []string
	for _, t := range m.self.Interests {
		if !m.left[m.sem.Canon(t)] {
			terms = append(terms, t)
		}
	}
	for t := range m.manual {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	effective.Interests = terms

	semGen := m.sem.Generation()
	if m.snapValid && semGen == m.lastSemGen &&
		equalTerms(terms, m.lastTerms) && equalMembers(nearby, m.lastNearby) {
		m.skipped++
		return nil
	}

	next := make(map[string]Group)
	for _, g := range DiscoverGroups(effective, nearby, m.sem) {
		next[g.Interest] = g
	}

	var events []Event
	// Joined / formed.
	for interestKey, g := range next {
		old, existed := m.groups[interestKey]
		if !existed {
			events = append(events, Event{Type: EventGroupFormed, Interest: interestKey})
		}
		for _, mem := range g.Members {
			if mem.ID == m.self.ID {
				continue
			}
			if !existed || !old.Has(mem.ID) {
				events = append(events, Event{Type: EventMemberJoined, Interest: interestKey, Member: mem.ID})
			}
		}
	}
	// Left / dissolved.
	for interestKey, old := range m.groups {
		g, still := next[interestKey]
		for _, mem := range old.Members {
			if mem.ID == m.self.ID {
				continue
			}
			if !still || !g.Has(mem.ID) {
				events = append(events, Event{Type: EventMemberLeft, Interest: interestKey, Member: mem.ID})
			}
		}
		if !still {
			events = append(events, Event{Type: EventGroupDissolved, Interest: interestKey})
		}
	}
	sortEvents(events)
	m.groups = next
	m.snapValid = true
	m.lastSemGen = semGen
	m.lastTerms = append(m.lastTerms[:0], terms...)
	m.lastNearby = append(m.lastNearby[:0], nearby...)

	// Notify in subscription order: collecting callbacks in map order
	// would fan events out in a different order each run.
	subIDs := make([]int, 0, len(m.subs))
	for id := range m.subs {
		subIDs = append(subIDs, id)
	}
	sort.Ints(subIDs)
	subs := make([]func(Event), 0, len(subIDs))
	for _, id := range subIDs {
		subs = append(subs, m.subs[id])
	}
	m.mu.Unlock()
	for _, fn := range subs {
		for _, ev := range events {
			fn(ev)
		}
	}
	m.mu.Lock()
	return events
}

// UpdatesSkipped reports how many Update calls were answered from the
// snapshot fingerprint without re-running discovery.
func (m *Manager) UpdatesSkipped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.skipped
}

// equalTerms reports element-wise equality of two term lists.
func equalTerms(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalMembers reports element-wise equality of two neighbor
// snapshots, interests included. Order-sensitive on purpose: callers
// hand in deterministically ordered snapshots, and a conservative
// mismatch merely costs one rebuild.
func equalMembers(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Device != b[i].Device || !equalTerms(a[i].Interests, b[i].Interests) {
			return false
		}
	}
	return true
}

// Groups returns the current groups sorted by interest.
func (m *Manager) Groups() []Group {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Group, 0, len(m.groups))
	for _, g := range m.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interest < out[j].Interest })
	return out
}

// Group returns one group by interest term (canonicalized).
func (m *Manager) Group(term string) (Group, bool) {
	c := m.sem.Canon(term)
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[c]
	return g, ok
}

// MembersOf returns the member IDs in an interest group.
func (m *Manager) MembersOf(term string) []ids.MemberID {
	g, ok := m.Group(term)
	if !ok {
		return nil
	}
	return g.MemberIDs()
}

// sortEvents orders events deterministically: by interest, then type
// (formed, joined, left, dissolved), then member.
func sortEvents(events []Event) {
	rank := map[EventType]int{
		EventGroupFormed:    0,
		EventMemberJoined:   1,
		EventMemberLeft:     2,
		EventGroupDissolved: 3,
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Interest != events[j].Interest {
			return events[i].Interest < events[j].Interest
		}
		if rank[events[i].Type] != rank[events[j].Type] {
			return rank[events[i].Type] < rank[events[j].Type]
		}
		return events[i].Member < events[j].Member
	})
}
