package core

// Tests for the snapshot-fingerprint skip: an Update whose inputs are
// identical to the previous one must not re-run discovery, while every
// input that can change the answer — neighbor set, interest edits,
// manual join/leave, taught semantics — must force a rebuild.

import (
	"testing"

	"repro/internal/interest"
)

func TestManagerSkipsIdenticalSnapshot(t *testing.T) {
	m := newMgr()
	nearby := []Member{member("bob", "football"), member("carol", "music")}
	if events := m.Update(nearby); len(events) == 0 {
		t.Fatal("first update must emit events")
	}
	if got := m.UpdatesSkipped(); got != 0 {
		t.Fatalf("UpdatesSkipped after first update = %d", got)
	}

	for i := 0; i < 3; i++ {
		if events := m.Update(nearby); events != nil {
			t.Fatalf("identical snapshot %d emitted events: %+v", i, events)
		}
	}
	if got := m.UpdatesSkipped(); got != 3 {
		t.Fatalf("UpdatesSkipped = %d, want 3", got)
	}
	// The group state is still fully queryable after skipped rounds.
	if len(m.Groups()) != 2 {
		t.Fatalf("groups = %+v", m.Groups())
	}
	if ms := m.MembersOf("football"); len(ms) != 2 {
		t.Fatalf("MembersOf(football) = %v", ms)
	}
}

func TestManagerRebuildsOnNeighborChange(t *testing.T) {
	m := newMgr()
	nearby := []Member{member("bob", "football")}
	m.Update(nearby)
	m.Update(nearby) // skipped

	// Same member, new interest: the fingerprint covers interests too.
	changed := []Member{member("bob", "football", "music")}
	events := m.Update(changed)
	if eventCount(events, EventMemberJoined) != 1 {
		t.Fatalf("interest change not detected: %+v", events)
	}
	if got := m.UpdatesSkipped(); got != 1 {
		t.Fatalf("UpdatesSkipped = %d, want 1", got)
	}
}

func TestManagerRebuildsOnLocalEdits(t *testing.T) {
	m := newMgr()
	nearby := []Member{member("bob", "football"), member("carol", "chess")}
	m.Update(nearby)
	m.Update(nearby) // skipped

	// Manual join flows through the effective term list, so the
	// fingerprint catches it without a dedicated invalidation hook.
	m.JoinManually("chess")
	events := m.Update(nearby)
	if eventCount(events, EventGroupFormed) != 1 {
		t.Fatalf("manual join did not rebuild: %+v", events)
	}

	m.Update(nearby) // skipped again under the new fingerprint
	m.LeaveManually("football")
	events = m.Update(nearby)
	if eventCount(events, EventGroupDissolved) != 1 {
		t.Fatalf("manual leave did not rebuild: %+v", events)
	}

	m.Update(nearby)
	m.SetInterests([]string{"chess"})
	if m.Update(nearby) == nil && len(m.Groups()) == 0 {
		t.Fatal("SetInterests did not rebuild")
	}
	if got := m.UpdatesSkipped(); got != 3 {
		t.Fatalf("UpdatesSkipped = %d, want 3", got)
	}
}

func TestManagerRebuildsOnTaughtSemantics(t *testing.T) {
	sem := interest.NewSemantics()
	m := NewManager(member("alice", "football"), sem)
	nearby := []Member{member("bob", "soccer")}
	if events := m.Update(nearby); len(events) != 0 {
		t.Fatalf("unrelated terms grouped: %+v", events)
	}
	m.Update(nearby) // skipped

	// Teaching an equivalence changes discovery's output for the very
	// same snapshot, so the semantics generation is part of the
	// fingerprint.
	sem.Teach("football", "soccer")
	events := m.Update(nearby)
	if eventCount(events, EventGroupFormed) != 1 || eventCount(events, EventMemberJoined) != 1 {
		t.Fatalf("taught semantics did not rebuild: %+v", events)
	}
	if got := m.UpdatesSkipped(); got != 1 {
		t.Fatalf("UpdatesSkipped = %d, want 1", got)
	}

	// Re-teaching the same fact is a no-op union: no generation bump,
	// so the next identical update is skipped again.
	sem.Teach("soccer", "football")
	if events := m.Update(nearby); events != nil {
		t.Fatalf("no-op teach forced a rebuild: %+v", events)
	}
	if got := m.UpdatesSkipped(); got != 2 {
		t.Fatalf("UpdatesSkipped = %d, want 2", got)
	}
}
