package core

import (
	"testing"

	"repro/internal/interest"
)

func newMgr() *Manager {
	return NewManager(member("alice", "football", "music"), nil)
}

func eventCount(events []Event, typ EventType) int {
	n := 0
	for _, ev := range events {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

func TestManagerFirstUpdateFormsGroups(t *testing.T) {
	m := newMgr()
	events := m.Update([]Member{member("bob", "football")})
	if eventCount(events, EventGroupFormed) != 1 || eventCount(events, EventMemberJoined) != 1 {
		t.Fatalf("events = %+v", events)
	}
	groups := m.Groups()
	if len(groups) != 1 || groups[0].Interest != "football" {
		t.Fatalf("groups = %+v", groups)
	}
	ms := m.MembersOf("football")
	if len(ms) != 2 || ms[0] != "alice" || ms[1] != "bob" {
		t.Fatalf("MembersOf = %v", ms)
	}
}

func TestManagerMemberLeavesDissolvesGroup(t *testing.T) {
	m := newMgr()
	m.Update([]Member{member("bob", "football")})
	events := m.Update(nil)
	if eventCount(events, EventMemberLeft) != 1 || eventCount(events, EventGroupDissolved) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if len(m.Groups()) != 0 {
		t.Fatal("group should be gone")
	}
	if m.MembersOf("football") != nil {
		t.Fatal("MembersOf on dissolved group should be nil")
	}
}

func TestManagerIncrementalJoinLeave(t *testing.T) {
	m := newMgr()
	m.Update([]Member{member("bob", "football")})
	events := m.Update([]Member{member("bob", "football"), member("carol", "football")})
	if eventCount(events, EventGroupFormed) != 0 {
		t.Fatal("group should not re-form")
	}
	if eventCount(events, EventMemberJoined) != 1 || events[0].Member != "carol" && events[len(events)-1].Member != "carol" {
		t.Fatalf("events = %+v", events)
	}
	events = m.Update([]Member{member("carol", "football")})
	if eventCount(events, EventMemberLeft) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if eventCount(events, EventGroupDissolved) != 0 {
		t.Fatal("group still has carol; must not dissolve")
	}
}

func TestManagerNoChangeNoEvents(t *testing.T) {
	m := newMgr()
	snapshot := []Member{member("bob", "football")}
	m.Update(snapshot)
	if events := m.Update(snapshot); len(events) != 0 {
		t.Fatalf("steady state emitted events: %+v", events)
	}
}

func TestManagerManualJoin(t *testing.T) {
	m := newMgr()
	// carol's group: alice has no "chess" interest.
	events := m.Update([]Member{member("carol", "chess")})
	if len(events) != 0 {
		t.Fatalf("no shared interest, but events = %+v", events)
	}
	m.JoinManually("chess")
	events = m.Update([]Member{member("carol", "chess")})
	if eventCount(events, EventGroupFormed) != 1 {
		t.Fatalf("manual join should form group: %+v", events)
	}
	if got := m.MembersOf("chess"); len(got) != 2 {
		t.Fatalf("MembersOf(chess) = %v", got)
	}
}

func TestManagerManualLeave(t *testing.T) {
	m := newMgr()
	m.Update([]Member{member("bob", "football")})
	m.LeaveManually("football")
	events := m.Update([]Member{member("bob", "football")})
	if eventCount(events, EventGroupDissolved) != 1 {
		t.Fatalf("manual leave should dissolve: %+v", events)
	}
	// Rejoin restores.
	m.JoinManually("football")
	events = m.Update([]Member{member("bob", "football")})
	if eventCount(events, EventGroupFormed) != 1 {
		t.Fatalf("rejoin should re-form: %+v", events)
	}
}

func TestManagerAdoptInterest(t *testing.T) {
	m := newMgr()
	m.AdoptInterest("Chess")
	self := m.Self()
	found := false
	for _, term := range self.Interests {
		if term == "chess" {
			found = true
		}
	}
	if !found {
		t.Fatalf("interests = %v, want chess adopted", self.Interests)
	}
	m.AdoptInterest("chess") // idempotent
	if len(m.Self().Interests) != 3 {
		t.Fatalf("interests = %v", m.Self().Interests)
	}
	m.AdoptInterest("  ") // no-op
	if len(m.Self().Interests) != 3 {
		t.Fatal("blank adopt changed interests")
	}
}

func TestManagerSetInterests(t *testing.T) {
	m := newMgr()
	m.Update([]Member{member("bob", "football")})
	m.SetInterests([]string{"chess"})
	events := m.Update([]Member{member("bob", "football")})
	if eventCount(events, EventGroupDissolved) != 1 {
		t.Fatalf("dropping the interest should dissolve its group: %+v", events)
	}
}

func TestManagerSubscribe(t *testing.T) {
	m := newMgr()
	var got []Event
	cancel := m.Subscribe(func(ev Event) { got = append(got, ev) })
	m.Update([]Member{member("bob", "football")})
	if len(got) != 2 {
		t.Fatalf("callback got %d events, want 2", len(got))
	}
	cancel()
	m.Update(nil)
	if len(got) != 2 {
		t.Fatal("callback fired after cancel")
	}
}

func TestManagerSubscriberMayQueryManager(t *testing.T) {
	m := newMgr()
	var groupsSeen int
	m.Subscribe(func(ev Event) {
		groupsSeen = len(m.Groups()) // must not deadlock
	})
	m.Update([]Member{member("bob", "football")})
	if groupsSeen != 1 {
		t.Fatalf("subscriber saw %d groups", groupsSeen)
	}
}

func TestManagerSemantics(t *testing.T) {
	sem := interest.NewSemantics()
	sem.Teach("biking", "cycling")
	m := NewManager(member("alice", "biking"), sem)
	events := m.Update([]Member{member("bob", "cycling")})
	if eventCount(events, EventGroupFormed) != 1 {
		t.Fatalf("semantics should merge: %+v", events)
	}
	if _, ok := m.Group("cycling"); !ok {
		t.Fatal("Group lookup should canonicalize through semantics")
	}
}

func TestManagerGroupLookupMiss(t *testing.T) {
	m := newMgr()
	if _, ok := m.Group("nothing"); ok {
		t.Fatal("missing group reported present")
	}
}

func TestManagerManualJoinBlankIgnored(t *testing.T) {
	m := newMgr()
	m.JoinManually("   ")
	m.LeaveManually("")
	if events := m.Update(nil); len(events) != 0 {
		t.Fatalf("blank manual ops caused events: %+v", events)
	}
}

func TestEventTypeString(t *testing.T) {
	for _, tt := range []struct {
		typ  EventType
		want string
	}{
		{EventGroupFormed, "group-formed"},
		{EventGroupDissolved, "group-dissolved"},
		{EventMemberJoined, "member-joined"},
		{EventMemberLeft, "member-left"},
		{EventType(0), "unknown"},
	} {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	m := NewManager(member("alice", "a", "b"), nil)
	events := m.Update([]Member{member("bob", "a", "b")})
	// Per interest: formed before joined; interests alphabetical.
	if len(events) != 4 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Interest != "a" || events[0].Type != EventGroupFormed ||
		events[1].Type != EventMemberJoined ||
		events[2].Interest != "b" || events[2].Type != EventGroupFormed {
		t.Fatalf("ordering wrong: %+v", events)
	}
}
