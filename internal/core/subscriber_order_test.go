package core

import (
	"testing"
)

// TestSubscribersNotifiedInSubscriptionOrder is a regression test: the
// event fan-out used to collect callbacks by ranging over the
// subscriber map, so two handlers saw the same events in a different
// interleaving each run. Callbacks must fire in subscription order.
func TestSubscribersNotifiedInSubscriptionOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		m := newMgr()
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			m.Subscribe(func(Event) { order = append(order, i) })
		}
		events := m.Update([]Member{member("bob", "football")})
		if len(events) == 0 {
			t.Fatal("no events; fan-out untested")
		}
		if len(order) != 8*len(events) {
			t.Fatalf("trial %d: %d callback firings, want %d", trial, len(order), 8*len(events))
		}
		// Each subscriber receives all events before the next
		// subscriber runs, in subscription order.
		for i, got := range order {
			if want := i / len(events); got != want {
				t.Fatalf("trial %d: firing %d came from subscriber %d, want %d (full order %v)",
					trial, i, got, want, order)
			}
		}
	}
}
