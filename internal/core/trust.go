package core

import "fmt"

// TrustLevel is the privacy tier a viewer holds toward a profile owner
// (§5.1): "the social networking middleware impose a concept of trust
// levels and determine the authority for accessing different available
// features depending upon the trust levels."
type TrustLevel int

// Trust tiers, weakest first.
const (
	// TrustNone: a stranger — may only see the interest groups and who
	// is in them.
	TrustNone TrustLevel = iota + 1
	// TrustMember: a fellow social-network member — may additionally
	// view/comment profiles, see trusted-friends lists and exchange
	// messages.
	TrustMember
	// TrustFriend: an accepted trusted friend — may additionally see
	// and transfer shared content.
	TrustFriend
)

// String implements fmt.Stringer.
func (l TrustLevel) String() string {
	switch l {
	case TrustNone:
		return "none"
	case TrustMember:
		return "member"
	case TrustFriend:
		return "trusted-friend"
	default:
		return fmt.Sprintf("trustlevel(%d)", int(l))
	}
}

// Permission names a gated capability of the reference application.
type Permission int

// The capabilities Table 7 exposes, in roughly increasing sensitivity.
const (
	PermViewGroups Permission = iota + 1
	PermViewMembers
	PermViewProfile
	PermCommentProfile
	PermSendMessage
	PermViewTrustedList
	PermViewShared
	PermFetchShared
)

// String implements fmt.Stringer.
func (p Permission) String() string {
	switch p {
	case PermViewGroups:
		return "view-groups"
	case PermViewMembers:
		return "view-members"
	case PermViewProfile:
		return "view-profile"
	case PermCommentProfile:
		return "comment-profile"
	case PermSendMessage:
		return "send-message"
	case PermViewTrustedList:
		return "view-trusted-list"
	case PermViewShared:
		return "view-shared"
	case PermFetchShared:
		return "fetch-shared"
	default:
		return fmt.Sprintf("permission(%d)", int(p))
	}
}

// minLevel maps each permission to the weakest level that holds it.
var minLevel = map[Permission]TrustLevel{
	PermViewGroups:      TrustNone,
	PermViewMembers:     TrustNone,
	PermViewProfile:     TrustMember,
	PermCommentProfile:  TrustMember,
	PermSendMessage:     TrustMember,
	PermViewTrustedList: TrustMember,
	PermViewShared:      TrustFriend,
	PermFetchShared:     TrustFriend,
}

// Allows reports whether the level grants the permission.
func (l TrustLevel) Allows(p Permission) bool {
	min, ok := minLevel[p]
	if !ok {
		return false
	}
	return l >= min
}

// LevelFor computes the viewer's level toward an owner: trusted friends
// get TrustFriend, any authenticated member gets TrustMember, everyone
// else TrustNone.
func LevelFor(isMember, isTrustedFriend bool) TrustLevel {
	switch {
	case isTrustedFriend:
		return TrustFriend
	case isMember:
		return TrustMember
	default:
		return TrustNone
	}
}
