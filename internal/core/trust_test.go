package core

import (
	"strings"
	"testing"
)

func TestTrustMatrix(t *testing.T) {
	// §5.1: "non trusted users can view or see only the interest groups
	// and members of different groups. Trusted users are allowed to
	// see/transfer the shared files, comment profiles etc."
	tests := []struct {
		level TrustLevel
		perm  Permission
		want  bool
	}{
		{TrustNone, PermViewGroups, true},
		{TrustNone, PermViewMembers, true},
		{TrustNone, PermViewProfile, false},
		{TrustNone, PermCommentProfile, false},
		{TrustNone, PermSendMessage, false},
		{TrustNone, PermViewShared, false},
		{TrustMember, PermViewGroups, true},
		{TrustMember, PermViewProfile, true},
		{TrustMember, PermCommentProfile, true},
		{TrustMember, PermSendMessage, true},
		{TrustMember, PermViewTrustedList, true},
		{TrustMember, PermViewShared, false},
		{TrustMember, PermFetchShared, false},
		{TrustFriend, PermViewShared, true},
		{TrustFriend, PermFetchShared, true},
		{TrustFriend, PermViewProfile, true},
	}
	for _, tt := range tests {
		if got := tt.level.Allows(tt.perm); got != tt.want {
			t.Errorf("%v.Allows(%v) = %v, want %v", tt.level, tt.perm, got, tt.want)
		}
	}
}

func TestTrustMonotonic(t *testing.T) {
	// A higher level never loses a permission a lower level has.
	perms := []Permission{
		PermViewGroups, PermViewMembers, PermViewProfile, PermCommentProfile,
		PermSendMessage, PermViewTrustedList, PermViewShared, PermFetchShared,
	}
	levels := []TrustLevel{TrustNone, TrustMember, TrustFriend}
	for i := 1; i < len(levels); i++ {
		for _, p := range perms {
			if levels[i-1].Allows(p) && !levels[i].Allows(p) {
				t.Errorf("%v allows %v but %v does not", levels[i-1], p, levels[i])
			}
		}
	}
}

func TestLevelFor(t *testing.T) {
	if LevelFor(false, false) != TrustNone {
		t.Error("stranger should be TrustNone")
	}
	if LevelFor(true, false) != TrustMember {
		t.Error("member should be TrustMember")
	}
	if LevelFor(true, true) != TrustFriend {
		t.Error("trusted friend should be TrustFriend")
	}
	if LevelFor(false, true) != TrustFriend {
		t.Error("trust wins even if membership flag is stale")
	}
}

func TestUnknownPermissionDenied(t *testing.T) {
	if TrustFriend.Allows(Permission(99)) {
		t.Fatal("unknown permission should be denied")
	}
}

func TestTrustStrings(t *testing.T) {
	for _, l := range []TrustLevel{TrustNone, TrustMember, TrustFriend} {
		if s := l.String(); s == "" || strings.HasPrefix(s, "trustlevel(") {
			t.Errorf("missing String for level %d", int(l))
		}
	}
	if !strings.HasPrefix(TrustLevel(42).String(), "trustlevel(") {
		t.Error("unknown level String wrong")
	}
	perms := []Permission{
		PermViewGroups, PermViewMembers, PermViewProfile, PermCommentProfile,
		PermSendMessage, PermViewTrustedList, PermViewShared, PermFetchShared,
	}
	seen := map[string]bool{}
	for _, p := range perms {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "permission(") {
			t.Errorf("missing String for permission %d", int(p))
		}
		if seen[s] {
			t.Errorf("duplicate permission string %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Permission(42).String(), "permission(") {
		t.Error("unknown permission String wrong")
	}
}
