package des

import (
	"context"
	"time"

	"repro/internal/vtime"
)

// Clock returns a vtime.Clock driven by the scheduler's virtual time.
// Sleeping on it parks the caller until the runner pops the deadline
// event; no real time passes beyond the runner's settle overhead. Hand
// it to radio.NewEnvironment via radio.WithClock and the entire stack
// above — mobility, fault windows, robust-call deadlines, breakers,
// daemon loops — rides virtual time with no further changes: that is
// the Clock half of the engine seam.
func (s *Scheduler) Clock() vtime.Clock { return desClock{s: s} }

type desClock struct {
	s *Scheduler
}

// timerHome spreads timer events across shards without any caller
// input: each timer's home is a mix of its sequence draw.
func (s *Scheduler) timerHome(seq uint64) uint64 {
	return splitmix64(seq ^ 0x7465722d686f6d65) // "ter-home"
}

// Now implements vtime.Clock on the virtual instant.
func (c desClock) Now() time.Time { return c.s.Now() }

// Sleep implements vtime.Clock: it schedules a wake event at now+d and
// parks until the runner delivers it. Stop releases parked sleepers.
func (c desClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	seq := c.s.extSeq.Add(1)
	release := func() { close(done) }
	c.s.schedule(d, c.s.timerHome(seq), seq, nil, release)
	<-done
}

// After implements vtime.Clock. The returned channel has capacity 1
// and receives the virtual fire time; a raw select on it is an
// untracked wake, which the runner's settle window absorbs.
func (c desClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.s.Now()
		return ch
	}
	seq := c.s.extSeq.Add(1)
	release := func() {
		select {
		case ch <- c.s.Now():
		default:
		}
	}
	c.s.schedule(d, c.s.timerHome(seq), seq, nil, release)
	return ch
}

// SleepCtx is Sleep with cancellation: it returns ctx.Err immediately
// when the context is done first. The abandoned wake event still fires
// (or is released at Stop) into its buffered channel, so nothing
// leaks.
func (s *Scheduler) SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	done := make(chan struct{}, 1)
	seq := s.extSeq.Add(1)
	release := func() {
		select {
		case done <- struct{}{}:
		default:
		}
	}
	s.schedule(d, s.timerHome(seq), seq, nil, release)
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var _ vtime.Clock = desClock{}
