// Package des is the sharded discrete-event simulation core: virtual
// time advances by popping a priority event queue instead of sleeping,
// so a modeled hour costs whatever its events cost and nothing more.
// It is the engine that takes the netsim substrate from the ~2k-device
// ceiling of goroutine-per-connection pumps and real timers to
// 10k–50k-device sweeps (ROADMAP "discrete-event core").
//
// # Model
//
// An event is a closure scheduled at a virtual instant and homed on a
// 64-bit entity key (a device, a connection end, a timer). Events are
// sharded by home — shard = home mod nshards — and each shard keeps its
// own priority queue. Execution proceeds in windows: the scheduler
// finds the earliest pending instant T across all shards, sets the
// virtual clock to T, and runs every event at T. Within a window,
// shards execute their events in parallel between barriers — a
// persistent worker pool (default GOMAXPROCS, see SetWorkers) shares
// the per-pass shard batches, so the sweep uses every core; events an
// event schedules at or before T land in a follow-up pass of the same
// window, so causality at one instant is a deterministic fixpoint, not
// a race. The trace hash is folded in global key order before a pass
// executes, so it can never observe worker interleaving: determinism
// depends only on event keys, proven by the sequential-vs-parallel
// identical-trace tests.
//
// # Determinism
//
// Every event carries a key (time, tiebreak, home, seq) and all
// ordering — per-shard pop order and the canonical trace — uses that
// key alone, never the shard index, so one seed produces the same
// execution with 1, 4 or 16 shards. The tiebreak is splitmix64 of the
// scheduler seed with the event's home and sequence, which decorrelates
// equal-time events without giving any fixed home priority. Events
// scheduled from inside an event derive their sequence from the parent
// event's key and a per-parent child counter — a pure function of the
// cascade, so replays are byte-for-byte (TraceHash). Events scheduled
// from outside any event (live goroutines in integrated mode) draw
// from a global counter and are deterministic only as far as their
// callers are; the differential suite in internal/simtest holds the
// integrated engine to counter- and membership-level equivalence with
// the goroutine engine instead.
package des

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is a sharded discrete-event scheduler. Create one with
// NewScheduler, drive it either synchronously (Run, for pure event
// workloads) or in the background (Start/Stop, for integrated mode
// where live goroutines block on its Clock), and read the replay
// evidence from TraceHash/EventsExecuted.
type Scheduler struct {
	seed   uint64
	shards []*shard
	base   time.Time

	// nowNS is the current virtual instant in nanoseconds since base;
	// read lock-free by Clock.Now on every caller.
	nowNS atomic.Int64

	// pending counts queued events across all shards; extSeq numbers
	// events scheduled from outside any event context.
	pending atomic.Int64
	extSeq  atomic.Uint64

	// activity is the quiescence counter the background runner settles
	// on: every schedule, execution batch and wake bumps it, and the
	// runner only advances virtual time after it has stayed still
	// through a yield-and-wait window (see settle).
	activity atomic.Uint64

	// kick (capacity 1) nudges the background runner out of its idle
	// wait when an event is scheduled or Stop is called.
	kick chan struct{}

	// trace is the FNV-1a fold of every executed event's key in
	// canonical order; executed counts them. Only the runner writes
	// them (runMu), so reads are only exact between runs/windows.
	trace    atomic.Uint64
	executed atomic.Uint64

	// runMu serializes window execution: Run and the Start runner must
	// not interleave.
	runMu sync.Mutex

	// workers is how many OS-schedulable executors share each pass's
	// shard batches (default GOMAXPROCS); jobs feeds the persistent
	// pool, live only while a run loop holds runMu. The pool is pure
	// execution fan-out: the trace is folded in global key order
	// *before* a pass runs, so worker interleaving can never reach it.
	workers int
	jobs    chan poolJob
	poolWG  sync.WaitGroup

	stopMu  sync.Mutex
	stopped bool
	stopCh  chan struct{}
	doneCh  chan struct{}
}

// shard is one home-partitioned event queue.
type shard struct {
	mu sync.Mutex
	q  eventHeap
}

// event is one scheduled closure. The key (at, tie, home, seq) is the
// total execution order; fn runs at virtual instant at. release, when
// set, marks a clock wake (timer fire) that Stop must still deliver so
// no goroutine stays parked on a dead scheduler.
type event struct {
	at   int64
	tie  uint64
	home uint64
	seq  uint64
	fn   func(ctx *Ctx)
	// release unblocks the event's waiter without running fn; nil for
	// ordinary events.
	release func()
}

// less is the total event order: time, then seeded tiebreak, then
// (home, seq) as the final disambiguator. The shard index never
// participates, which is what makes the trace shard-count-invariant.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.tie != o.tie {
		return e.tie < o.tie
	}
	if e.home != o.home {
		return e.home < o.home
	}
	return e.seq < o.seq
}

type eventHeap []*event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].less(h[j]) }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Ctx is the execution context handed to every event. Scheduling
// through it derives the child's sequence from this event's key, so
// cascades replay byte-for-byte; scheduling through the Scheduler
// draws from the global counter instead.
type Ctx struct {
	s      *Scheduler
	home   uint64
	seq    uint64
	childN uint64
}

// Scheduler returns the scheduler this event runs on.
func (c *Ctx) Scheduler() *Scheduler { return c.s }

// At schedules fn after d (clamped to now) with a sequence derived
// from this event: child i of event (home, seq) always gets the same
// key, whatever the shard count.
func (c *Ctx) At(d time.Duration, home uint64, fn func(ctx *Ctx)) {
	c.childN++
	seq := splitmix64((c.seq ^ splitmix64(c.home)) + c.childN)
	c.s.schedule(d, home, seq, fn, nil)
}

// NewScheduler returns a scheduler with the given seed and shard
// count (floored at 1). The virtual epoch is a fixed instant so two
// schedulers with one seed agree on every timestamp.
func NewScheduler(seed int64, shards int) *Scheduler {
	if shards < 1 {
		shards = 1
	}
	s := &Scheduler{
		seed:    splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15),
		shards:  make([]*shard, shards),
		base:    time.Unix(1_000_000_000, 0).UTC(),
		kick:    make(chan struct{}, 1),
		workers: runtime.GOMAXPROCS(0),
	}
	for i := range s.shards {
		s.shards[i] = &shard{}
	}
	s.trace.Store(fnvOffset)
	return s
}

// Shards reports the shard count.
func (s *Scheduler) Shards() int { return len(s.shards) }

// SetWorkers sets how many executors (the calling run loop plus n-1
// pool goroutines) share each pass's shard batches; n < 1 is floored
// to 1, which runs every batch inline on the run loop. Call it before
// Run/RunUntil/Start — the pool is sized when a run loop begins.
// Worker count never affects the trace hash, only wall-clock.
func (s *Scheduler) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
}

// Workers reports the configured executor count.
func (s *Scheduler) Workers() int { return s.workers }

// poolJob asks one pool worker to join a pass's batch claim loop; wg
// is the pass barrier the worker signals when the claim loop is dry.
type poolJob struct {
	run func()
	wg  *sync.WaitGroup
}

// startPool brings up the persistent worker pool (workers-1 goroutines;
// the run loop itself is the last executor). Caller holds runMu.
func (s *Scheduler) startPool() {
	if s.workers <= 1 || s.jobs != nil {
		return
	}
	s.jobs = make(chan poolJob, s.workers)
	for i := 0; i < s.workers-1; i++ {
		s.poolWG.Add(1)
		go func() {
			defer s.poolWG.Done()
			for job := range s.jobs {
				job.run()
				job.wg.Done()
			}
		}()
	}
}

// stopPool tears the pool down and waits for the workers to exit, so
// a run loop never leaks goroutines past its return. Caller holds
// runMu; passes never straddle this (executeBarrier waits for every
// job it issued).
func (s *Scheduler) stopPool() {
	if s.jobs == nil {
		return
	}
	close(s.jobs)
	s.poolWG.Wait()
	s.jobs = nil
}

// panicCell captures the first panic raised by any batch executor so
// the pass barrier still completes — a panicking event must not wedge
// the other shards' workers — and the run loop can rethrow it after
// the barrier with normal panic semantics.
type panicCell struct {
	mu  sync.Mutex
	val any
	set bool
}

// capture is deferred around each batch; it records the first panic
// and swallows it so the executor can signal the barrier.
func (p *panicCell) capture() {
	if r := recover(); r != nil {
		p.mu.Lock()
		if !p.set {
			p.val, p.set = r, true
		}
		p.mu.Unlock()
	}
}

// rethrow re-raises the captured panic on the run loop, if any.
func (p *panicCell) rethrow() {
	if p.set {
		panic(p.val)
	}
}

// Now returns the current virtual instant.
func (s *Scheduler) Now() time.Time { return s.base.Add(time.Duration(s.nowNS.Load())) }

// NowNS returns the current virtual instant in nanoseconds since the
// virtual epoch.
func (s *Scheduler) NowNS() int64 { return s.nowNS.Load() }

// At schedules fn after d (clamped to now) on the given home, with a
// globally drawn sequence. Use Ctx.At from inside events when replay
// determinism of the cascade matters.
func (s *Scheduler) At(d time.Duration, home uint64, fn func(ctx *Ctx)) {
	s.schedule(d, home, s.extSeq.Add(1), fn, nil)
}

// schedule enqueues one event; release is non-nil for clock wakes.
func (s *Scheduler) schedule(d time.Duration, home, seq uint64, fn func(ctx *Ctx), release func()) {
	if d < 0 {
		d = 0
	}
	at := s.nowNS.Load() + int64(d)
	e := &event{
		at:      at,
		tie:     splitmix64(s.seed ^ splitmix64(home)*0x9e3779b97f4a7c15 ^ seq),
		home:    home,
		seq:     seq,
		fn:      fn,
		release: release,
	}
	sh := s.shards[home%uint64(len(s.shards))]
	sh.mu.Lock()
	heap.Push(&sh.q, e)
	sh.mu.Unlock()
	s.pending.Add(1)
	s.Bump()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Bump records external activity for the quiescence heuristic. The
// netsim integration calls it on operations the scheduler cannot see
// (queue admissions, channel deliveries) so the background runner
// keeps virtual time still while live goroutines are mid-operation.
func (s *Scheduler) Bump() { s.activity.Add(1) }

// Pending reports how many events are queued.
func (s *Scheduler) Pending() int { return int(s.pending.Load()) }

// EventsExecuted reports how many events have run.
func (s *Scheduler) EventsExecuted() uint64 { return s.executed.Load() }

// TraceHash is the FNV-1a fold of every executed event's key in
// canonical (globally sorted) order. Two runs from one seed — at any
// shard count — must produce the same hash for pure event cascades;
// the determinism suite pins exactly that.
func (s *Scheduler) TraceHash() uint64 { return s.trace.Load() }

// Run drains the queue synchronously: windows execute until no events
// remain. It is the pure-DES entry point; do not mix with Start.
func (s *Scheduler) Run() {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.startPool()
	defer s.stopPool()
	for s.pending.Load() > 0 {
		s.runWindow()
	}
}

// RunUntil drains the queue up to and including virtual instant
// (base + d); later events stay queued and virtual time parks at the
// horizon, so a workload with self-rescheduling events (heartbeats)
// still terminates.
func (s *Scheduler) RunUntil(d time.Duration) {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	s.startPool()
	defer s.stopPool()
	horizon := int64(d)
	for s.pending.Load() > 0 {
		next, ok := s.peekNext()
		if !ok || next > horizon {
			break
		}
		s.runWindow()
	}
	if s.nowNS.Load() < horizon {
		s.nowNS.Store(horizon)
	}
}

// peekNext reports the earliest pending instant across shards.
func (s *Scheduler) peekNext() (int64, bool) {
	next, ok := int64(0), false
	for _, sh := range s.shards {
		sh.mu.Lock()
		if len(sh.q) > 0 && (!ok || sh.q[0].at < next) {
			next, ok = sh.q[0].at, true
		}
		sh.mu.Unlock()
	}
	return next, ok
}

// runWindow advances virtual time to the earliest pending instant and
// executes every event at it, in passes: each pass pops the instant's
// events from all shards, folds them into the trace in global key
// order, then executes them shard-parallel with a barrier at the end.
// Events scheduled during a pass at (or clamped to) the same instant
// run in a later pass of the same window.
func (s *Scheduler) runWindow() {
	t, ok := s.peekNext()
	if !ok {
		return
	}
	s.nowNS.Store(t)
	for {
		batches := s.collectAt(t)
		if len(batches) == 0 {
			return
		}
		s.foldTrace(batches)
		s.executeBarrier(batches)
	}
}

// collectAt pops every event scheduled at instant t, one ordered batch
// per shard (only non-empty batches are returned).
func (s *Scheduler) collectAt(t int64) [][]*event {
	var batches [][]*event
	popped := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		var batch []*event
		for len(sh.q) > 0 && sh.q[0].at == t {
			batch = append(batch, heap.Pop(&sh.q).(*event))
		}
		sh.mu.Unlock()
		if len(batch) > 0 {
			popped += len(batch)
			batches = append(batches, batch)
		}
	}
	if popped > 0 {
		s.pending.Add(int64(-popped))
	}
	return batches
}

// foldTrace merges the pass's per-shard batches (each already in key
// order) into the canonical global order and folds their keys into the
// trace hash. The merge ignores which shard a batch came from — only
// the key decides — so the hash is shard-count-invariant.
func (s *Scheduler) foldTrace(batches [][]*event) {
	idx := make([]int, len(batches))
	h := s.trace.Load()
	total := 0
	for {
		best := -1
		for i, batch := range batches {
			if idx[i] >= len(batch) {
				continue
			}
			if best < 0 || batch[idx[i]].less(batches[best][idx[best]]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := batches[best][idx[best]]
		idx[best]++
		total++
		h = fnv1a(h, uint64(e.at))
		h = fnv1a(h, e.tie)
		h = fnv1a(h, e.home)
		h = fnv1a(h, e.seq)
	}
	s.trace.Store(h)
	s.executed.Add(uint64(total))
	s.activity.Add(uint64(total))
}

// executeBarrier runs the pass's batches across the worker pool and
// waits for all of them: the cross-shard synchronization barrier. The
// run loop and up to workers-1 pool workers each pull the next
// unclaimed batch from a shared counter until none remain, so load
// balances when batches outnumber workers and idle workers cost
// nothing when they don't. A single-batch pass — or a workers=1 /
// poolless scheduler — runs inline, byte-for-byte the sequential
// semantics. A panicking event is captured so every executor still
// reaches the barrier, then rethrown on the run loop.
func (s *Scheduler) executeBarrier(batches [][]*event) {
	var pan panicCell
	if len(batches) == 1 || s.jobs == nil {
		for _, batch := range batches {
			s.runBatch(batch, &pan)
		}
		pan.rethrow()
		return
	}
	var next atomic.Int64
	claim := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(batches) {
				return
			}
			s.runBatch(batches[i], &pan)
		}
	}
	helpers := len(batches) - 1
	if m := s.workers - 1; helpers > m {
		helpers = m
	}
	var wg sync.WaitGroup
	wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		s.jobs <- poolJob{run: claim, wg: &wg}
	}
	claim()
	wg.Wait()
	pan.rethrow()
}

// runBatch executes one shard batch in key order; a panic skips the
// batch's remaining events and is parked in pan for the run loop.
func (s *Scheduler) runBatch(batch []*event, pan *panicCell) {
	defer pan.capture()
	for _, e := range batch {
		ctx := &Ctx{s: s, home: e.home, seq: e.seq}
		if e.fn != nil {
			e.fn(ctx)
		} else if e.release != nil {
			e.release()
		}
	}
}

// drainReleases pops every queued event and runs the release hooks
// (clock wakes) so no goroutine stays parked on a stopped scheduler;
// ordinary event closures are dropped unrun.
func (s *Scheduler) drainReleases() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		q := sh.q
		sh.q = nil
		sh.mu.Unlock()
		s.pending.Add(int64(-len(q)))
		for _, e := range q {
			if e.release != nil {
				e.release()
			}
		}
	}
}

// fnv1a constants and fold (64-bit).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv1a(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// splitmix64 is the finalizer from Vigna's splitmix64 generator — the
// same mixer the faults plane uses for its pure draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
