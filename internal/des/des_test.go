package des

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// seedCascade schedules a deterministic event cascade: nroots root
// events, each of which fans out to children on other homes, to a
// bounded depth, with every delay, home and fan-out a pure function of
// a state word threaded through the closures. It is the pure-DES
// workload the replay guarantee is claimed for.
func seedCascade(s *Scheduler, nroots, depth int) {
	var grow func(ctx *Ctx, state uint64, depth int)
	grow = func(ctx *Ctx, state uint64, depth int) {
		if depth <= 0 {
			return
		}
		fan := int(state%3) + 1
		for i := 0; i < fan; i++ {
			st := splitmix64(state + uint64(i))
			delay := time.Duration(st%5_000) * time.Microsecond // 0..5ms incl. 0: same-window cascades
			home := st >> 32
			ctx.At(delay, home, func(ctx *Ctx) { grow(ctx, st, depth-1) })
		}
	}
	for r := 0; r < nroots; r++ {
		st := splitmix64(uint64(r) * 0x517cc1b727220a95)
		home := st >> 32
		d := depth
		s.At(time.Duration(r%7)*time.Millisecond, home, func(ctx *Ctx) { grow(ctx, st, d) })
	}
}

// runCascade builds, seeds and drains one scheduler, returning its
// trace hash and executed-event count.
func runCascade(seed int64, shards, nroots, depth int) (uint64, uint64) {
	s := NewScheduler(seed, shards)
	seedCascade(s, nroots, depth)
	s.Run()
	return s.TraceHash(), s.EventsExecuted()
}

// TestTraceHashReplaysAcrossShardCounts is the determinism satellite:
// one seed must produce an identical event trace hash at 1, 4 and 16
// shards — the shard index never participates in event ordering — and
// re-running any shard count must replay the hash byte-for-byte.
func TestTraceHashReplaysAcrossShardCounts(t *testing.T) {
	const nroots, depth = 40, 5
	for _, seed := range []int64{1, 42, 99991} {
		h1, n1 := runCascade(seed, 1, nroots, depth)
		if n1 == 0 {
			t.Fatalf("seed %d: cascade executed no events", seed)
		}
		for _, shards := range []int{1, 4, 16} {
			h, n := runCascade(seed, shards, nroots, depth)
			if h != h1 || n != n1 {
				t.Errorf("seed %d: shards=%d trace (hash %#x, %d events) != shards=1 trace (hash %#x, %d events)",
					seed, shards, h, n, h1, n1)
			}
			// Same seed, same shard count, run again: byte-for-byte replay.
			h2, n2 := runCascade(seed, shards, nroots, depth)
			if h2 != h || n2 != n {
				t.Errorf("seed %d shards=%d: replay diverged: %#x/%d vs %#x/%d", seed, shards, h2, n2, h, n)
			}
		}
	}
}

// TestTraceHashSeedSensitive: different seeds must produce different
// tie-breaks and therefore different traces — if they did not, the
// splitmix64 tie-break would not actually be seeded.
func TestTraceHashSeedSensitive(t *testing.T) {
	h1, _ := runCascade(7, 4, 30, 4)
	h2, _ := runCascade(8, 4, 30, 4)
	if h1 == h2 {
		t.Fatalf("seeds 7 and 8 produced the same trace hash %#x", h1)
	}
}

// TestSameInstantCascadeRunsToFixpoint: an event that schedules work
// at zero delay must see that work run in the same window (a later
// pass), with virtual time not advancing in between.
func TestSameInstantCascadeRunsToFixpoint(t *testing.T) {
	s := NewScheduler(1, 4)
	var order []int
	var mu sync.Mutex
	var at1, at2 int64
	s.At(time.Second, 1, func(ctx *Ctx) {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		at1 = ctx.Scheduler().NowNS()
		ctx.At(0, 2, func(ctx *Ctx) {
			mu.Lock()
			order = append(order, 2)
			mu.Unlock()
			at2 = ctx.Scheduler().NowNS()
		})
	})
	s.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("execution order = %v, want [1 2]", order)
	}
	if at1 != at2 {
		t.Fatalf("zero-delay child ran at %d, parent at %d: same-instant cascade left the window", at2, at1)
	}
	if at1 != int64(time.Second) {
		t.Fatalf("window ran at %d, want %d", at1, int64(time.Second))
	}
}

// TestPastSchedulingClamps: negative delays clamp to the current
// instant instead of scheduling into the past.
func TestPastSchedulingClamps(t *testing.T) {
	s := NewScheduler(1, 2)
	ran := false
	s.At(time.Second, 1, func(ctx *Ctx) {
		ctx.At(-time.Hour, 2, func(ctx *Ctx) {
			ran = true
			if got := ctx.Scheduler().NowNS(); got != int64(time.Second) {
				t.Errorf("past-scheduled event ran at %d, want clamp to %d", got, int64(time.Second))
			}
		})
	})
	s.Run()
	if !ran {
		t.Fatal("clamped event never ran")
	}
}

// TestRunUntilParksAtHorizon: a self-rescheduling heartbeat must not
// keep RunUntil alive past its horizon, and virtual time must finish
// exactly at the horizon.
func TestRunUntilParksAtHorizon(t *testing.T) {
	s := NewScheduler(1, 2)
	var beats atomic.Int64
	var heartbeat func(ctx *Ctx)
	heartbeat = func(ctx *Ctx) {
		beats.Add(1)
		ctx.At(time.Second, 1, heartbeat)
	}
	s.At(time.Second, 1, heartbeat)
	s.RunUntil(10 * time.Second)
	if got := beats.Load(); got != 10 {
		t.Fatalf("heartbeat ran %d times inside a 10s horizon, want 10", got)
	}
	if got := s.NowNS(); got != int64(10*time.Second) {
		t.Fatalf("virtual time parked at %d, want the 10s horizon", got)
	}
	if s.Pending() == 0 {
		t.Fatal("the next heartbeat should still be queued past the horizon")
	}
}

// TestClockSleepAdvancesVirtualTime: with the background runner on, a
// Sleep must return having consumed virtual — not real — time.
func TestClockSleepAdvancesVirtualTime(t *testing.T) {
	s := NewScheduler(1, 4)
	s.Start()
	defer s.Stop()
	clock := s.Clock()
	start := clock.Now()
	realStart := time.Now()
	clock.Sleep(10 * time.Hour)
	if got := clock.Now().Sub(start); got < 10*time.Hour {
		t.Fatalf("virtual elapsed %v, want >= 10h", got)
	}
	if real := time.Since(realStart); real > 5*time.Second {
		t.Fatalf("a 10h virtual sleep took %v of real time", real)
	}
}

// TestClockConcurrentSleepersShareWindows: sleepers parked for the
// same duration from the same frozen instant wake together, and the
// runner keeps ordering among different deadlines.
func TestClockConcurrentSleepersShareWindows(t *testing.T) {
	s := NewScheduler(1, 4)
	s.Start()
	defer s.Stop()
	clock := s.Clock()
	const n = 32
	woke := make(chan time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		d := time.Duration(1+i%4) * time.Minute
		wg.Add(1)
		go func() {
			defer wg.Done()
			before := clock.Now()
			clock.Sleep(d)
			woke <- clock.Now().Sub(before)
		}()
	}
	wg.Wait()
	close(woke)
	for got := range woke {
		if got < time.Minute || got > 10*time.Minute {
			t.Fatalf("sleeper woke after %v, want within [1m, 10m]", got)
		}
	}
}

// TestClockAfterDeliversVirtualFireTime: After's channel carries the
// virtual instant of the fire.
func TestClockAfterDeliversVirtualFireTime(t *testing.T) {
	s := NewScheduler(1, 2)
	s.Start()
	defer s.Stop()
	clock := s.Clock()
	ch := clock.After(time.Hour)
	fired := <-ch
	if got := fired.Sub(s.base); got < time.Hour {
		t.Fatalf("After fired at virtual +%v, want >= 1h", got)
	}
}

// TestSleepCtxCancel: a canceled context unparks SleepCtx immediately.
func TestSleepCtxCancel(t *testing.T) {
	s := NewScheduler(1, 2)
	// No runner: time never advances, so only cancellation can unpark.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.SleepCtx(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled SleepCtx returned nil")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled SleepCtx never returned")
	}
	s.Stop()
}

// TestStopReleasesParkedSleepers: stopping the scheduler must unpark
// every goroutine blocked in Sleep, or integrated-mode teardown leaks.
func TestStopReleasesParkedSleepers(t *testing.T) {
	s := NewScheduler(1, 4)
	// No Start: nothing will ever fire these timers.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Clock().Sleep(time.Hour)
		}()
	}
	// Let the sleepers register before stopping.
	for s.Pending() < 8 {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left sleepers parked")
	}
}

// TestStartStopIdempotent: double Start and double Stop are safe, and
// a stopped scheduler stays stopped.
func TestStartStopIdempotent(t *testing.T) {
	s := NewScheduler(1, 2)
	s.Start()
	s.Start()
	s.Stop()
	s.Stop()
	s.Start() // after Stop: must be a no-op, not a resurrection
	s.Stop()
}

// TestWindowBatchingCollapsesSharedDeadlines: n sleepers sharing one
// deadline produce one window (one distinct execution instant), which
// is the property that makes wall-clock cost scale with event count,
// not device count times timer granularity.
func TestWindowBatchingCollapsesSharedDeadlines(t *testing.T) {
	s := NewScheduler(1, 8)
	const n = 1000
	var instants sync.Map
	for i := 0; i < n; i++ {
		s.At(time.Second, uint64(i), func(ctx *Ctx) {
			instants.Store(ctx.Scheduler().NowNS(), true)
		})
	}
	s.Run()
	count := 0
	instants.Range(func(_, _ any) bool { count++; return true })
	if count != 1 {
		t.Fatalf("%d sleepers with one deadline executed across %d instants, want 1", n, count)
	}
	if got := s.EventsExecuted(); got != n {
		t.Fatalf("executed %d events, want %d", got, n)
	}
}
