package des

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain arms the goroutine-leak checker over the whole package: a
// run loop (Run, RunUntil or the Start runner) that leaks its worker
// pool, or a Stop that leaves clock waiters parked, fails the package.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
