package des

import (
	"runtime"
	"time"
)

// This file is the integrated-mode runner: a background goroutine that
// advances virtual time only when the live goroutines riding the
// scheduler's Clock have gone quiet. Pure event workloads never need
// it — they call Run — but a full deployment (daemons, servers,
// clients) blocks real goroutines on Clock timers and on the netsim
// DES engine's queues, and something must decide "everyone is waiting
// for time now" before popping the next window.
//
// Quiescence is a heuristic, detected at the scheduler boundary: every
// schedule, timer wake and instrumented transport operation bumps the
// activity counter, and the runner advances only after the counter has
// stayed still through a few scheduler yields plus one short real-time
// wait (settleQuantum). A goroutine that was just woken by an event
// gets the CPU during the yields (this is also what keeps the check
// cheap: on an idle system the Gosched round trip is sub-microsecond),
// runs to its next blocking point, and any operation it performs on
// the way bumps the counter and restarts the wait. The residual race —
// a goroutine computing for longer than the settle window without
// touching the scheduler or the transport — can only skew virtual
// timestamps, never corrupt state: events scheduled "in the past" are
// clamped to the current instant, exactly as if the caller were slow
// in real life. The differential suite therefore compares engines on
// time-independent observables (delivered bytes, fault counters, group
// membership), and the byte-for-byte trace guarantee is claimed for
// pure event cascades only (see the package comment).
//
// settleQuantum trades advance latency against advance safety: the
// runner burns one such real quiet window per executed... window. The
// wait is a spin of scheduler yields bounded by a monotonic deadline,
// NOT a timer sleep: sub-millisecond time.Sleep calls cost hundreds of
// microseconds in the runtime's timer machinery, and a large sweep
// executes hundreds of thousands of windows — a 50µs timer sleep per
// window turned a 10k-device sweep into minutes. The spin yields the
// CPU to any woken goroutine the whole time, so it is as safe as the
// sleep for detecting their activity and an order of magnitude
// cheaper.
const (
	settleQuantum = 10 * time.Microsecond
	settleYields  = 4
	// settleRounds caps how many times a changing activity counter can
	// restart the quiet wait before the runner advances anyway. Under
	// heavy staggered throughput (thousands of drivers mid-transport-op
	// at once) a global quiet moment may never come — and that is
	// exactly the regime where advancing early is safe: the goroutines
	// restarting the wait are inside scheduler-visible operations whose
	// events clamp to the current instant, so the only cost is virtual
	// timestamp skew. The dangerous case — a goroutine computing
	// silently between operations — looks quiet and is not affected by
	// the cap at all.
	settleRounds = 2
)

// Start launches the background runner. It is the integrated-mode
// counterpart of Run; call Stop to halt it and release every parked
// clock waiter. Start after the deployment's goroutines exist or
// before — the runner only moves time when nothing else is runnable.
func (s *Scheduler) Start() {
	s.stopMu.Lock()
	defer s.stopMu.Unlock()
	if s.stopCh != nil || s.stopped {
		return
	}
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	go s.run(s.stopCh, s.doneCh)
}

// Stop halts the runner, waits for it to exit, and fires the release
// hook of every still-queued clock wake so no goroutine stays parked
// on a dead scheduler. Ordinary events are discarded. Stop the
// deployment (which unblocks its goroutines through conn teardown)
// before stopping its scheduler.
func (s *Scheduler) Stop() {
	s.stopMu.Lock()
	if s.stopped {
		s.stopMu.Unlock()
		return
	}
	s.stopped = true
	stopCh, doneCh := s.stopCh, s.doneCh
	s.stopMu.Unlock()
	if stopCh != nil {
		close(stopCh)
		select {
		case s.kick <- struct{}{}:
		default:
		}
		<-doneCh
	}
	s.drainReleases()
}

// run is the runner loop: wait for events, settle, execute one window.
// It owns the worker pool for its lifetime so integrated-mode windows
// get the same multi-core batch execution as Run.
func (s *Scheduler) run(stopCh chan struct{}, doneCh chan struct{}) {
	defer close(doneCh)
	s.runMu.Lock()
	s.startPool()
	s.runMu.Unlock()
	defer func() {
		s.runMu.Lock()
		s.stopPool()
		s.runMu.Unlock()
	}()
	for {
		select {
		case <-stopCh:
			return
		default:
		}
		if s.pending.Load() == 0 {
			select {
			case <-stopCh:
				return
			case <-s.kick:
				continue
			}
		}
		if !s.settle(stopCh) {
			return
		}
		s.runMu.Lock()
		s.runWindow()
		s.runMu.Unlock()
	}
}

// settle blocks until the activity counter survives a full quiet
// window — settleYields scheduler yields and one settleQuantum of real
// time — unchanged. It returns false when the scheduler is stopping.
//
//phvet:ignore walltime the settle wait is the one sanctioned real-time primitive in the DES core: it measures "are the live goroutines still running", which is a property of the host scheduler, not of virtual time. See DESIGN.md "Discrete-event core".
func (s *Scheduler) settle(stopCh chan struct{}) bool {
	for round := 0; ; round++ {
		select {
		case <-stopCh:
			return false
		default:
		}
		before := s.activity.Load()
		for i := 0; i < settleYields; i++ {
			runtime.Gosched()
		}
		if s.activity.Load() != before {
			if round >= settleRounds {
				return true // advance through the churn; see settleRounds
			}
			continue
		}
		// Quiet through the yields: hold the line for one real
		// settleQuantum, still yielding, so a goroutine that was woken
		// but not yet scheduled gets its chance to run and bump.
		//phvet:ignore walltime see the function comment: real-time quiet window for host-scheduler quiescence.
		deadline := time.Now().Add(settleQuantum)
		quiet := true
		//phvet:ignore walltime bounded spin on the same quiet window.
		for time.Now().Before(deadline) {
			runtime.Gosched()
			if s.activity.Load() != before {
				quiet = false
				break
			}
		}
		if quiet && s.activity.Load() == before {
			return true
		}
	}
}
