package des

import (
	"sync/atomic"
	"testing"
	"time"
)

// runCascadeWorkers is runCascade with an explicit executor count.
func runCascadeWorkers(seed int64, shards, workers, nroots, depth int) (uint64, uint64) {
	s := NewScheduler(seed, shards)
	s.SetWorkers(workers)
	seedCascade(s, nroots, depth)
	s.Run()
	return s.TraceHash(), s.EventsExecuted()
}

// TestWorkersTraceInvariant is the tentpole determinism proof: one
// seed must produce an identical trace hash across {1,4,16} shards ×
// {1,4,16} workers — worker interleaving must never reach the trace,
// because the pass is folded in global key order before it executes.
// Run under -race this also proves the claim-loop barrier is sound.
func TestWorkersTraceInvariant(t *testing.T) {
	const nroots, depth = 40, 5
	for _, seed := range []int64{3, 1337} {
		h1, n1 := runCascadeWorkers(seed, 1, 1, nroots, depth)
		if n1 == 0 {
			t.Fatalf("seed %d: cascade executed no events", seed)
		}
		for _, shards := range []int{1, 4, 16} {
			for _, workers := range []int{1, 4, 16} {
				h, n := runCascadeWorkers(seed, shards, workers, nroots, depth)
				if h != h1 || n != n1 {
					t.Errorf("seed %d: shards=%d workers=%d trace (%#x, %d events) != sequential (%#x, %d events)",
						seed, shards, workers, h, n, h1, n1)
				}
			}
		}
	}
}

// TestWorkersExceedShards: more workers than shards (and than batches)
// must neither deadlock the barrier nor change the trace — surplus
// workers simply find the claim counter exhausted.
func TestWorkersExceedShards(t *testing.T) {
	hSeq, nSeq := runCascadeWorkers(11, 2, 1, 30, 4)
	hPar, nPar := runCascadeWorkers(11, 2, 16, 30, 4)
	if hPar != hSeq || nPar != nSeq {
		t.Fatalf("workers=16 over 2 shards: trace %#x/%d != sequential %#x/%d", hPar, nPar, hSeq, nSeq)
	}
}

// TestSetWorkersFloorsAtOne: SetWorkers(0) and negative counts mean
// "inline", not a dead scheduler.
func TestSetWorkersFloorsAtOne(t *testing.T) {
	s := NewScheduler(1, 4)
	s.SetWorkers(0)
	if got := s.Workers(); got != 1 {
		t.Fatalf("SetWorkers(0) left Workers()=%d, want 1", got)
	}
	ran := false
	s.At(time.Second, 1, func(ctx *Ctx) { ran = true })
	s.Run()
	if !ran {
		t.Fatal("workers=1 scheduler executed nothing")
	}
}

// TestPanickingEventDoesNotWedgeBarrier: an event that panics mid-pass
// must not wedge the cross-shard barrier — every other shard's batch
// still completes, the panic resurfaces on the Run caller (normal
// panic semantics), the pool is torn down (the package leak checker
// enforces that), and the scheduler still drains a later workload.
func TestPanickingEventDoesNotWedgeBarrier(t *testing.T) {
	s := NewScheduler(5, 8)
	s.SetWorkers(4)
	var ran atomic.Int64
	const n = 64
	for i := 0; i < n; i++ {
		i := i
		s.At(time.Second, uint64(i), func(ctx *Ctx) {
			if i == 13 {
				panic("boom")
			}
			ran.Add(1)
		})
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic from an event did not surface on Run")
			} else if r != "boom" {
				t.Errorf("Run surfaced %v, want the event's panic value", r)
			}
		}()
		s.Run()
	}()
	// The panicking shard's batch stops at the panic; every other
	// shard's events at the instant still execute.
	if got := ran.Load(); got < n-n/8 {
		t.Fatalf("only %d/%d non-panicking events ran: the barrier wedged sibling batches", got, n-1)
	}
	// The scheduler survives: a fresh workload drains normally.
	after := false
	s.At(time.Minute, 99, func(ctx *Ctx) { after = true })
	s.Run()
	if !after {
		t.Fatal("scheduler unusable after a panicking event")
	}
}
