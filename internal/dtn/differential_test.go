package dtn

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mobility"
)

// Differential convergence suite: the DTN engine is held to two
// independently-computed oracles.
//
//   - In a connected world (every pair within radio range), store-
//     carry-forward must degenerate to single-hop fan-out: every
//     message is delivered on the first contact sweep, exactly as a
//     direct send would.
//   - In a partitioned world, the analytic reachability oracle —
//     connected components of the static radio graph — decides
//     delivery exactly: everything inside a component arrives, nothing
//     crosses a gap.

// clusteredPositions places n devices in k well-separated clusters;
// intra-cluster distances stay under Bluetooth range (10 m), clusters
// sit 50 m apart.
func clusteredPositions(n, k int) [][2]float64 {
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		c := i % k
		row := i / k
		out[i] = [2]float64{float64(c) * 50, float64(row%5) * 1.5}
	}
	return out
}

// connectedPositions packs n devices into a 6x6 m box: diameter ~8.5 m,
// so the world is a clique under the 10 m Bluetooth range.
func connectedPositions(n int) [][2]float64 {
	out := make([][2]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		out[i] = [2]float64{rng.Float64() * 6, rng.Float64() * 6}
	}
	return out
}

// TestDifferentialConnectedEqualsFanout: at n=200 in a clique world,
// one contact sweep must deliver every message — byte-for-byte what a
// single-hop fan-out send would produce. Epidemic and social must both
// meet the oracle (direct contact needs no relay decision).
func TestDifferentialConnectedEqualsFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("200-node differential world; skipped in -short mode")
	}
	t.Parallel()
	const n = 200
	const msgs = 50
	for _, strat := range []Strategy{Epidemic, Social} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{Strategy: strat, CopyBudget: 4, TTLRounds: 8, Fanout: 4}
			w := newTestWorld(t, connectedPositions(n), worldOpts{cfg: cfg, seed: 11})
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			rng := rand.New(rand.NewSource(11))
			type sent struct {
				id  string
				dst int
			}
			var oracle []sent // single-hop fan-out delivers all of these
			for k := 0; k < msgs; k++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				id, err := w.nodes[src].Send(w.devs[dst], []byte(fmt.Sprintf("c%d", k)))
				if err != nil {
					t.Fatal(err)
				}
				oracle = append(oracle, sent{id, dst})
			}
			w.sweep(ctx)
			for _, s := range oracle {
				if !w.nodes[s.dst].Consumed(s.id) {
					t.Errorf("connected world: message %s not delivered in one sweep (oracle: single-hop fan-out delivers all)", s.id)
				}
			}
			assertBalanced(t, w)
		})
	}
}

// TestDifferentialPartitionedReachability: the clustered world's
// delivery set must equal the analytic oracle exactly — same-cluster
// messages all arrive (multi-hop inside the cluster), cross-cluster
// messages never do, and their copies stay in custody or expire, never
// silently vanish.
func TestDifferentialPartitionedReachability(t *testing.T) {
	t.Parallel()
	for _, useDES := range []bool{false, true} {
		useDES := useDES
		name := "goroutine"
		if useDES {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			const n = 30
			const k = 3
			cfg := Config{Strategy: Epidemic, CopyBudget: 8, TTLRounds: 32}
			w := newTestWorld(t, clusteredPositions(n, k), worldOpts{cfg: cfg, seed: 23, useDES: useDES})
			ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
			defer cancel()

			rng := rand.New(rand.NewSource(23))
			type sent struct {
				id       string
				src, dst int
			}
			var all []sent
			for kk := 0; kk < 20; kk++ {
				src := rng.Intn(n)
				dst := (src + 1 + rng.Intn(n-1)) % n
				id, err := w.nodes[src].Send(w.devs[dst], []byte(fmt.Sprintf("p%d", kk)))
				if err != nil {
					t.Fatal(err)
				}
				all = append(all, sent{id, src, dst})
			}
			// Enough sweeps for any intra-cluster multi-hop path (cluster
			// rows are a 5-deep chain at most).
			for r := 0; r < 10; r++ {
				w.sweep(ctx)
			}
			for _, s := range all {
				reachable := s.src%k == s.dst%k
				got := w.nodes[s.dst].Consumed(s.id)
				if reachable && !got {
					t.Errorf("oracle says reachable, DTN did not deliver: %s (%d→%d)", s.id, s.src, s.dst)
				}
				if !reachable && got {
					t.Errorf("oracle says unreachable, DTN delivered anyway: %s (%d→%d)", s.id, s.src, s.dst)
				}
			}
			// Undeliverable custody must be accounted, not lost: every
			// node's counters still balance.
			assertBalanced(t, w)
		})
	}
}

// TestDifferentialHealedPartitionDelivers: a world that starts
// partitioned and then heals (a courier cluster moves into range) must
// deliver the stranded messages — custody carried across the gap in
// time, not just space.
func TestDifferentialHealedPartitionDelivers(t *testing.T) {
	t.Parallel()
	// Two clusters 50 m apart; node 2 is the future courier sitting in
	// cluster A.
	pos := [][2]float64{{0, 0}, {2, 0}, {4, 0}, {50, 0}, {52, 0}}
	cfg := Config{Strategy: Epidemic, CopyBudget: 8, TTLRounds: 32}
	w := newTestWorld(t, pos, worldOpts{cfg: cfg, seed: 31})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	id, err := w.nodes[0].Send(w.devs[4], []byte("cross the gap"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		w.sweep(ctx)
	}
	if w.nodes[4].Consumed(id) {
		t.Fatal("message crossed an open partition")
	}
	// The courier walks to cluster B: the world heals through mobility.
	if err := w.env.SetModel(w.devs[2], mobility.Static{At: geo.Pt(46, 0)}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ {
		w.sweep(ctx)
	}
	if !w.nodes[4].Consumed(id) {
		t.Fatalf("stranded message not delivered after the partition healed: %+v", w.nodes[4].Stats())
	}
	assertBalanced(t, w)
}
