package dtn

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// The fuzzers hold the DTN codec to the community codec's never-panic
// discipline. Seeds start from valid frames plus the exact damage the
// chaos fault plane inflicts (faults.Mangle: bit flips, truncation,
// insertion, zeroed spans).

func dtnMangledCorpus() [][]byte {
	var out [][]byte
	for _, frame := range dtnFrames() {
		for seed := uint64(0); seed < 8; seed++ {
			out = append(out, faults.Mangle(seed, frame))
		}
		if len(frame) > 12 {
			out = append(out, frame[:len(frame)-9])
			out = append(out, frame[:len(frame)/2])
			out = append(out, frame[:3])
		}
	}
	return out
}

func FuzzUnmarshalOffer(f *testing.F) {
	for _, m := range dtnMangledCorpus() {
		f.Add(m)
	}
	f.Add([]byte{})
	f.Add([]byte{frameMagic, frameVersion, kindOffer})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalOffer(data)
		if err != nil {
			return
		}
		out, err := UnmarshalOffer(MarshalOffer(in))
		if err != nil {
			t.Fatalf("re-decode of valid offer failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("offer round trip changed: %+v -> %+v", in, out)
		}
	})
}

func FuzzUnmarshalWant(f *testing.F) {
	for _, m := range dtnMangledCorpus() {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalWant(data)
		if err != nil {
			return
		}
		out, err := UnmarshalWant(MarshalWant(in))
		if err != nil {
			t.Fatalf("re-decode of valid want failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("want round trip changed: %+v -> %+v", in, out)
		}
	})
}

func FuzzUnmarshalBundles(f *testing.F) {
	for _, m := range dtnMangledCorpus() {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalBundles(data)
		if err != nil {
			return
		}
		reenc, err := UnmarshalBundles(MarshalBundles(in))
		if err != nil {
			t.Fatalf("re-decode of valid bundles failed: %v", err)
		}
		if len(reenc.Bundles) != len(in.Bundles) {
			t.Fatalf("bundles round trip changed length: %d -> %d", len(in.Bundles), len(reenc.Bundles))
		}
	})
}

func FuzzUnmarshalDTNAck(f *testing.F) {
	for _, m := range dtnMangledCorpus() {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalAck(data)
		if err != nil {
			return
		}
		out, err := UnmarshalAck(MarshalAck(in))
		if err != nil {
			t.Fatalf("re-decode of valid ack failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("ack round trip changed: %+v -> %+v", in, out)
		}
	})
}
