package dtn

import (
	"testing"

	"repro/internal/testutil"
)

func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
