// Package dtn is the store-carry-forward delivery plane: multi-hop
// addressed messages that survive disconnection, churn and partitions.
//
// The paper's proximity SNS only ever talks single-hop within radio
// range, so sparse mobility (a bus line at night, a campus between
// classes) simply loses messages. Here a device accepts *custody* of an
// addressed bundle, buffers it across disconnection under an explicit
// TTL and a bounded buffer-occupancy policy, and forwards it on contact
// under one of two relay strategies: SocialDTN-style epidemic
// spray-and-wait with per-message copy budgets, or a GROUPS-NET-style
// social rule that prefers relays sharing interest-group encounters
// with the destination (fed by internal/core group views).
//
// Like internal/gossip, a Node is clockless and externally driven:
// Round(ctx) executes one contact round and nothing runs on a timer, so
// the same node runs identically on the goroutine and DES transport
// engines and replays byte-for-byte under seeded faults (TraceDigest).
package dtn

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// Port is the listener port every DTN node binds, next to the
// daemon/community/gossip ports in the device's port namespace.
const Port = "dtn"

// Errors reported by the custody API.
var (
	// ErrDown reports an operation on a crashed (down) node.
	ErrDown = errors.New("dtn: node is down")
	// ErrPayload reports a payload over the wire cap.
	ErrPayload = errors.New("dtn: payload too large")
)

// Config tunes the delivery plane. The zero value is normalized to the
// defaults below.
type Config struct {
	// Strategy is the relay decision rule (default Epidemic).
	Strategy Strategy
	// Eviction is the buffer-occupancy policy (default EvictOldest).
	Eviction EvictionPolicy
	// CopyBudget is a fresh bundle's spray budget L: the total number
	// of custodied copies the source allows in the network.
	CopyBudget int
	// BufferCap bounds the relay buffer in bundles. The source outbox
	// (locally originated, not yet acked) is not counted: a source
	// retains its own messages until a delivered-ack or TTL expiry.
	BufferCap int
	// TTLRounds is the default lifetime of a bundle in custody rounds;
	// every custodian decrements it once per Round and never forwards
	// an expired bundle.
	TTLRounds int
	// Fanout caps non-destination contacts per round. Neighbors that
	// are destinations of held bundles are always contacted.
	Fanout int
	// VaccineCap bounds the delivered-ids sample piggybacked on each
	// contact (the anti-packets that purge dead copies).
	VaccineCap int
}

func (c Config) withDefaults() Config {
	if c.CopyBudget <= 0 {
		c.CopyBudget = 8
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 64
	}
	if c.TTLRounds <= 0 {
		c.TTLRounds = 64
	}
	if c.TTLRounds > 1<<20 {
		c.TTLRounds = 1 << 20
	}
	if c.Fanout <= 0 {
		c.Fanout = 8
	}
	if c.VaccineCap <= 0 {
		c.VaccineCap = 256
	}
	if c.VaccineCap > maxWireIDs {
		c.VaccineCap = maxWireIDs
	}
	return c
}

// Stats counts one node's custody activity. All counters are
// monotonically increasing except Buffered, a gauge sampled at snapshot
// time. The custody identity
//
//	Accepted == Delivered + Expired + Evicted + Transferred + Purged +
//	            CrashDropped + Buffered
//
// holds for every node at every quiescent point (and therefore for
// fleet sums via Add); the property suite asserts it on both engines.
type Stats struct {
	Rounds       uint64 // Round calls
	Originated   uint64 // locally submitted messages
	Accepted     uint64 // custody acceptances (originated + received + consumed)
	Delivered    uint64 // bundles consumed as the destination
	Expired      uint64 // bundles dropped by TTL
	Evicted      uint64 // bundles dropped by buffer policy
	Transferred  uint64 // custody handed over (last-copy or direct delivery)
	Purged       uint64 // bundles dropped by a delivered-ack vaccine
	CrashDropped uint64 // relay bundles lost to a crash-restart
	Rejected     uint64 // custody refused: buffer full, incoming was the victim
	Duplicates   uint64 // bundles offered or shipped that were already held/delivered
	Buffered     uint64 // gauge: bundles currently under custody (outbox + relay buffer)

	OffersSent     uint64 // contacts initiated (OFFER frames sent)
	OffersServed   uint64 // contacts served (OFFER frames handled)
	CopiesSent     uint64 // bundle replicas shipped on the wire
	CopiesReceived uint64 // bundle replicas stored into the relay buffer
	ExchangeErrors uint64 // contacts that failed (dial/send/recv)
	FramesIn       uint64 // well-formed frames served
	FramesRejected uint64 // frames that failed decode
}

// Add accumulates other into s; Buffered sums as a fleet-wide gauge.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.Originated += other.Originated
	s.Accepted += other.Accepted
	s.Delivered += other.Delivered
	s.Expired += other.Expired
	s.Evicted += other.Evicted
	s.Transferred += other.Transferred
	s.Purged += other.Purged
	s.CrashDropped += other.CrashDropped
	s.Rejected += other.Rejected
	s.Duplicates += other.Duplicates
	s.Buffered += other.Buffered
	s.OffersSent += other.OffersSent
	s.OffersServed += other.OffersServed
	s.CopiesSent += other.CopiesSent
	s.CopiesReceived += other.CopiesReceived
	s.ExchangeErrors += other.ExchangeErrors
	s.FramesIn += other.FramesIn
	s.FramesRejected += other.FramesRejected
}

// CustodyBalanced reports whether the custody identity holds.
func (s Stats) CustodyBalanced() bool {
	return s.Accepted == s.Delivered+s.Expired+s.Evicted+s.Transferred+
		s.Purged+s.CrashDropped+s.Buffered
}

// Message is one delivered payload as the destination application sees
// it: the bundle identity, the source device, the payload, and the
// destination's local round at consumption time.
type Message struct {
	ID      string
	Src     ids.DeviceID
	Payload []byte
	Round   uint64
}

// Params wires a Node into a device.
type Params struct {
	Device ids.DeviceID
	// Neighbors supplies the current radio neighborhood — contacts only
	// ever happen with devices actually in range.
	Neighbors func() []ids.DeviceID
	// Groups supplies the device's current interest-group view (may be
	// nil; the social strategy then never relays beyond direct
	// delivery). The node folds every snapshot into its encounter
	// memory, which is what social utility is computed from.
	Groups func() []core.Group
	Net    *netsim.Network
	// Tech defaults to Bluetooth, the thesis's proximity technology.
	Tech radio.Technology
	Seed int64
	Config
}

// Node is one device's store-carry-forward engine. It is driven
// externally: Round(ctx) executes one contact round; Start installs
// the listener that serves the passive side of contacts.
type Node struct {
	dev       ids.DeviceID
	neighbors func() []ids.DeviceID
	groups    func() []core.Group
	net       *netsim.Network
	tech      radio.Technology
	cfg       Config

	mu             sync.Mutex
	outbox         map[string]*bundleState // locally originated custody
	buffer         map[string]*bundleState // relayed custody (volatile)
	met            map[ids.DeviceID]map[string]struct{}
	delivered      map[string]struct{}
	deliveredOrder []string
	inbox          []Message
	consumed       map[string]struct{}
	seq            uint64
	enqSeq         uint64
	round          uint64
	down           bool
	trace          uint64
	stats          Stats

	lis     *netsim.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// NewNode builds a node; call Start to begin serving contacts.
func NewNode(p Params) (*Node, error) {
	if p.Device == "" {
		return nil, errors.New("dtn: missing device")
	}
	if p.Neighbors == nil || p.Net == nil {
		return nil, errors.New("dtn: missing Neighbors or Net")
	}
	if p.Tech == radio.TechNone {
		p.Tech = radio.Bluetooth
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.Device))
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		dev:       p.Device,
		neighbors: p.Neighbors,
		groups:    p.Groups,
		net:       p.Net,
		tech:      p.Tech,
		cfg:       p.Config.withDefaults(),
		outbox:    make(map[string]*bundleState),
		buffer:    make(map[string]*bundleState),
		met:       make(map[ids.DeviceID]map[string]struct{}),
		delivered: make(map[string]struct{}),
		consumed:  make(map[string]struct{}),
		trace:     mix64(uint64(p.Seed) ^ h.Sum64()),
		ctx:       ctx,
		cancel:    cancel,
	}
	return n, nil
}

// mix64 is the splitmix64 finalizer; it seeds the trace digest so
// different seeds produce different (but internally replayable) traces.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Start binds the DTN port and serves inbound contacts until Stop.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("dtn: already started")
	}
	n.started = true
	n.mu.Unlock()
	lis, err := n.net.Listen(n.dev, Port)
	if err != nil {
		return err
	}
	n.lis = lis
	n.wg.Add(1)
	go n.acceptLoop(lis)
	return nil
}

// Stop closes the listener, cancels in-flight contacts and waits for
// every handler goroutine (the leak checker holds us to that).
func (n *Node) Stop() {
	n.cancel()
	if n.lis != nil {
		n.lis.Close()
	}
	n.wg.Wait()
}

func (n *Node) acceptLoop(lis *netsim.Listener) {
	defer n.wg.Done()
	for {
		conn, err := lis.Accept(n.ctx)
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.serve(conn)
	}
}

// --- trace ---

// noteLocked folds one custody event into the replay digest. Every
// state transition notes itself, so two runs with the same seed must
// make byte-for-byte identical custody decisions to agree. Callers
// hold n.mu.
func (n *Node) noteLocked(action, id string, peer ids.DeviceID, a, b uint64) {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], n.trace)
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(action))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(id))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(peer))
	_, _ = h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], a)
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], b)
	_, _ = h.Write(buf[:])
	n.trace = h.Sum64()
}

// TraceDigest returns the accumulated custody-event digest. Under the
// sequential chaos driver it is a byte-for-byte replay witness: same
// seed, same digest.
func (n *Node) TraceDigest() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.trace
}

// --- custody state helpers (callers hold n.mu) ---

func (n *Node) heldLocked(id string) bool {
	if _, ok := n.outbox[id]; ok {
		return true
	}
	_, ok := n.buffer[id]
	return ok
}

func (n *Node) lookupLocked(id string) *bundleState {
	if bs, ok := n.outbox[id]; ok {
		return bs
	}
	return n.buffer[id]
}

func (n *Node) removeLocked(id string) {
	delete(n.outbox, id)
	delete(n.buffer, id)
}

func (n *Node) isDeliveredLocked(id string) bool {
	_, ok := n.delivered[id]
	return ok
}

func (n *Node) recordDeliveredLocked(id string) {
	if _, ok := n.delivered[id]; ok {
		return
	}
	n.delivered[id] = struct{}{}
	n.deliveredOrder = append(n.deliveredOrder, id)
}

// vaccineLocked samples the most recently learned delivered ids for
// piggybacking on a contact.
func (n *Node) vaccineLocked() []string {
	tail := n.deliveredOrder
	if len(tail) > n.cfg.VaccineCap {
		tail = tail[len(tail)-n.cfg.VaccineCap:]
	}
	return append([]string(nil), tail...)
}

// applyVaccineLocked records delivered ids learned from a peer and
// purges any matching custody.
func (n *Node) applyVaccineLocked(list []string, peer ids.DeviceID) {
	for _, id := range list {
		if id == "" || n.isDeliveredLocked(id) {
			continue
		}
		n.recordDeliveredLocked(id)
		if n.heldLocked(id) {
			n.removeLocked(id)
			n.stats.Purged++
			n.noteLocked("purge", id, peer, 0, 0)
		}
	}
}

// heldSortedLocked snapshots all custody in enqueue order.
func (n *Node) heldSortedLocked() []*bundleState {
	out := make([]*bundleState, 0, len(n.outbox)+len(n.buffer))
	for _, bs := range n.outbox {
		out = append(out, bs)
	}
	for _, bs := range n.buffer {
		out = append(out, bs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].enq < out[j].enq })
	return out
}

// expireLocked ages every held bundle by one round and drops the
// expired, in deterministic enqueue order.
func (n *Node) expireLocked() {
	for _, bs := range n.heldSortedLocked() {
		bs.b.TTL--
		if bs.b.TTL == 0 {
			n.removeLocked(bs.b.ID)
			n.stats.Expired++
			n.noteLocked("expire", bs.b.ID, "", 0, 0)
		}
	}
}

// --- submitting ---

// Send submits an addressed message under the default TTL and returns
// its bundle id. The source keeps custody (outside the bounded relay
// buffer) until a delivered-ack or expiry, so a relay crash-restart
// can never permanently lose an unexpired message.
func (n *Node) Send(dst ids.DeviceID, payload []byte) (string, error) {
	return n.SendTTL(dst, payload, 0)
}

// SendTTL submits an addressed message with an explicit TTL in rounds
// (0 means the configured default).
func (n *Node) SendTTL(dst ids.DeviceID, payload []byte, ttl int) (string, error) {
	if dst == "" {
		return "", errors.New("dtn: missing destination")
	}
	if len(payload) > maxWirePayload {
		return "", ErrPayload
	}
	if ttl <= 0 || ttl > 1<<20 {
		ttl = n.cfg.TTLRounds
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return "", ErrDown
	}
	n.seq++
	id := string(n.dev) + "#" + strconv.FormatUint(n.seq, 10)
	n.stats.Originated++
	n.stats.Accepted++
	if dst == n.dev {
		n.stats.Delivered++
		n.inbox = append(n.inbox, Message{ID: id, Src: n.dev, Payload: append([]byte(nil), payload...), Round: n.round})
		n.consumed[id] = struct{}{}
		n.recordDeliveredLocked(id)
		n.noteLocked("dlv", id, n.dev, uint64(ttl), 0)
		return id, nil
	}
	n.enqSeq++
	n.outbox[id] = &bundleState{
		b: Bundle{
			ID:      id,
			Src:     n.dev,
			Dst:     dst,
			TTL:     uint32(ttl),
			Payload: append([]byte(nil), payload...),
		},
		enq:    n.enqSeq,
		copies: n.cfg.CopyBudget,
	}
	n.noteLocked("orig", id, dst, uint64(ttl), uint64(n.cfg.CopyBudget))
	return id, nil
}

// --- active side ---

// Round executes one contact round: age TTLs, refresh the encounter
// memory from the group view, and run the offer/want/bundles/ack
// handshake with the selected neighbors. Neighbors holding one of our
// destinations are always contacted; the rest fill up to Fanout slots
// in sorted order.
func (n *Node) Round(ctx context.Context) {
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.round++
	n.stats.Rounds++
	n.expireLocked()
	n.mu.Unlock()
	if n.groups != nil {
		gs := n.groups()
		n.mu.Lock()
		n.absorbGroupsLocked(gs)
		n.mu.Unlock()
	}
	neigh := append([]ids.DeviceID(nil), n.neighbors()...)
	sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
	n.mu.Lock()
	dsts := make(map[ids.DeviceID]bool)
	for _, bs := range n.outbox {
		dsts[bs.b.Dst] = true
	}
	for _, bs := range n.buffer {
		dsts[bs.b.Dst] = true
	}
	n.mu.Unlock()
	var targets []ids.DeviceID
	for _, dev := range neigh {
		if dev != n.dev && dsts[dev] {
			targets = append(targets, dev)
		}
	}
	for _, dev := range neigh {
		if len(targets) >= n.cfg.Fanout {
			break
		}
		if dev == n.dev || dsts[dev] {
			continue
		}
		targets = append(targets, dev)
	}
	for _, dev := range targets {
		n.exchange(ctx, dev)
	}
}

// buildOfferLocked snapshots the strategy-eligible custody as offer
// summaries, oldest first.
func (n *Node) buildOfferLocked(peer ids.DeviceID) []Summary {
	var sums []Summary
	for _, bs := range n.heldSortedLocked() {
		if !n.offerEligibleLocked(bs, peer) {
			continue
		}
		sums = append(sums, Summary{
			ID:      bs.b.ID,
			Dst:     bs.b.Dst,
			TTL:     bs.b.TTL,
			Utility: uint32(n.utilityLocked(bs.b.Dst)),
		})
		if len(sums) == maxWireSummaries {
			break
		}
	}
	return sums
}

func (n *Node) noteExchangeError(peer ids.DeviceID) {
	n.mu.Lock()
	n.stats.ExchangeErrors++
	n.noteLocked("err", "", peer, 0, 0)
	n.mu.Unlock()
}

// pendingXfer is one shipped bundle awaiting the closing ack.
type pendingXfer struct {
	id       string
	retained int
	direct   bool
}

// exchange runs one initiator-side contact with peer. Custody only
// changes on the closing ack: a failed contact leaves every local copy
// in place.
func (n *Node) exchange(ctx context.Context, peer ids.DeviceID) {
	n.mu.Lock()
	sums := n.buildOfferLocked(peer)
	if len(sums) == 0 {
		n.mu.Unlock()
		return
	}
	frame := MarshalOffer(FrameOffer{From: n.dev, Summaries: sums, Delivered: n.vaccineLocked()})
	n.stats.OffersSent++
	n.mu.Unlock()
	conn, err := n.net.Dial(ctx, n.dev, peer, n.tech, Port)
	if err != nil {
		n.noteExchangeError(peer)
		return
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(frame); err != nil {
		n.noteExchangeError(peer)
		return
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		n.noteExchangeError(peer)
		return
	}
	want, err := UnmarshalWant(resp)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		n.noteExchangeError(peer)
		return
	}
	n.mu.Lock()
	n.applyVaccineLocked(want.Delivered, peer)
	var out []Bundle
	var plan []pendingXfer
	seen := make(map[string]bool, len(want.Want))
	for _, id := range want.Want {
		if seen[id] {
			continue
		}
		seen[id] = true
		bs := n.lookupLocked(id)
		if bs == nil {
			// Purged by the vaccine above, or never offered.
			continue
		}
		give, retained := n.allocateCopiesLocked(bs, peer)
		out = append(out, Bundle{
			ID:      bs.b.ID,
			Src:     bs.b.Src,
			Dst:     bs.b.Dst,
			TTL:     bs.b.TTL,
			Copies:  uint32(give),
			Payload: bs.b.Payload,
		})
		plan = append(plan, pendingXfer{id: id, retained: retained, direct: bs.b.Dst == peer})
		if len(out) == maxWireBundles {
			break
		}
	}
	bf := MarshalBundles(FrameBundles{From: n.dev, Bundles: out})
	n.stats.CopiesSent += uint64(len(out))
	n.mu.Unlock()
	if err := conn.Send(bf); err != nil {
		n.noteExchangeError(peer)
		return
	}
	ackData, err := conn.Recv(ctx)
	if err != nil {
		n.noteExchangeError(peer)
		return
	}
	ack, err := UnmarshalAck(ackData)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		n.noteExchangeError(peer)
		return
	}
	accepted := make(map[string]bool, len(ack.Accepted))
	for _, id := range ack.Accepted {
		accepted[id] = true
	}
	n.mu.Lock()
	for _, px := range plan {
		if !accepted[px.id] {
			continue
		}
		bs := n.lookupLocked(px.id)
		if bs == nil {
			continue
		}
		if px.retained == 0 {
			n.removeLocked(px.id)
			n.stats.Transferred++
			if px.direct {
				// The destination took it: seed the vaccine here so
				// the ack propagates backward along the spray paths.
				n.recordDeliveredLocked(px.id)
			}
			n.noteLocked("xfer", px.id, peer, 0, 0)
		} else {
			bs.copies = px.retained
			n.noteLocked("split", px.id, peer, uint64(px.retained), 0)
		}
	}
	n.mu.Unlock()
}

// --- passive side ---

func (n *Node) serve(conn *netsim.Conn) {
	defer n.wg.Done()
	defer func() { _ = conn.Close() }()
	data, err := conn.Recv(n.ctx)
	if err != nil {
		return
	}
	kind, err := FrameKind(data)
	if err != nil || kind != kindOffer {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	offer, err := UnmarshalOffer(data)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	if n.down {
		n.mu.Unlock()
		return
	}
	n.stats.FramesIn++
	n.stats.OffersServed++
	n.applyVaccineLocked(offer.Delivered, offer.From)
	var want []string
	seen := make(map[string]bool, len(offer.Summaries))
	for _, s := range offer.Summaries {
		if s.ID == "" || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		if n.heldLocked(s.ID) || n.isDeliveredLocked(s.ID) {
			n.stats.Duplicates++
			continue
		}
		if n.wantLocked(s) {
			want = append(want, s.ID)
		}
	}
	reply := MarshalWant(FrameWant{Want: want, Delivered: n.vaccineLocked()})
	n.mu.Unlock()
	if err := conn.Send(reply); err != nil {
		return
	}
	data2, err := conn.Recv(n.ctx)
	if err != nil {
		return
	}
	bf, err := UnmarshalBundles(data2)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.stats.FramesIn++
	var accepted []string
	for i := range bf.Bundles {
		if n.acceptLocked(&bf.Bundles[i], bf.From) {
			accepted = append(accepted, bf.Bundles[i].ID)
		}
	}
	ackFrame := MarshalAck(FrameAck{Accepted: accepted})
	n.mu.Unlock()
	_ = conn.Send(ackFrame)
}

// acceptLocked takes custody of one shipped bundle (or consumes it as
// the destination). It reports whether the sender should release its
// side of the transfer.
func (n *Node) acceptLocked(b *Bundle, from ids.DeviceID) bool {
	if b.ID == "" || b.Dst == "" || b.Copies == 0 || b.TTL == 0 {
		return false
	}
	if b.Dst == n.dev {
		if _, ok := n.consumed[b.ID]; ok {
			// Already consumed: still ack so the sender purges.
			n.stats.Duplicates++
			return true
		}
		n.stats.Accepted++
		n.stats.Delivered++
		n.inbox = append(n.inbox, Message{ID: b.ID, Src: b.Src, Payload: append([]byte(nil), b.Payload...), Round: n.round})
		n.consumed[b.ID] = struct{}{}
		n.recordDeliveredLocked(b.ID)
		n.noteLocked("dlv", b.ID, from, uint64(b.TTL), 0)
		return true
	}
	if n.heldLocked(b.ID) || n.isDeliveredLocked(b.ID) {
		n.stats.Duplicates++
		return false
	}
	n.enqSeq++
	bs := &bundleState{
		b: Bundle{
			ID:      b.ID,
			Src:     b.Src,
			Dst:     b.Dst,
			TTL:     b.TTL,
			Payload: append([]byte(nil), b.Payload...),
		},
		enq:    n.enqSeq,
		copies: int(b.Copies),
	}
	for len(n.buffer) >= n.cfg.BufferCap {
		victim, isIncoming := n.evictVictimLocked(bs)
		if isIncoming {
			n.stats.Rejected++
			n.noteLocked("rej", b.ID, from, 0, 0)
			return false
		}
		delete(n.buffer, victim)
		n.stats.Evicted++
		n.noteLocked("evict", victim, from, 0, 0)
	}
	n.buffer[b.ID] = bs
	n.stats.Accepted++
	n.stats.CopiesReceived++
	n.noteLocked("acc", b.ID, from, uint64(b.TTL), uint64(b.Copies))
	return true
}

// --- crash-restart ---

// SetDown marks the node crashed (true) or restored (false). While
// down, Round is a no-op, Send fails, and inbound contacts are
// dropped — matching the fault plane, which folds crash windows into
// link visibility.
func (n *Node) SetDown(down bool) {
	n.mu.Lock()
	n.down = down
	n.mu.Unlock()
}

// DropVolatile models the restart after a crash: the relay buffer and
// the encounter memory are volatile and lost. The source outbox, the
// consumed inbox and the delivered log survive (application storage) —
// that retention is what makes post-heal delivery of every unexpired
// message provable.
func (n *Node) DropVolatile() {
	n.mu.Lock()
	defer n.mu.Unlock()
	dropped := uint64(len(n.buffer))
	n.stats.CrashDropped += dropped
	n.buffer = make(map[string]*bundleState)
	n.met = make(map[ids.DeviceID]map[string]struct{})
	n.noteLocked("crash", "", "", dropped, 0)
}

// --- observers ---

// Stats snapshots the node's counters; Buffered is sampled live.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.Buffered = uint64(len(n.outbox) + len(n.buffer))
	return s
}

// Received snapshots the messages consumed as destination, in arrival
// order.
func (n *Node) Received() []Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Message, len(n.inbox))
	copy(out, n.inbox)
	return out
}

// Consumed reports whether this node has delivered the bundle to its
// local application.
func (n *Node) Consumed(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.consumed[id]
	return ok
}

// KnowsDelivered reports whether the node has learned (locally or via
// vaccine) that the bundle was delivered.
func (n *Node) KnowsDelivered(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isDeliveredLocked(id)
}

// Holding snapshots the ids currently under custody, sorted.
func (n *Node) Holding() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.outbox)+len(n.buffer))
	for id := range n.outbox {
		out = append(out, id)
	}
	for id := range n.buffer {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Round count for drivers.
func (n *Node) RoundCount() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.round
}
