package dtn

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// testWorld builds a static world of DTN nodes at explicit positions
// (meters; Bluetooth range is 10) on either transport engine and
// returns the started nodes in device order.
type testWorld struct {
	env   *radio.Environment
	net   *netsim.Network
	nodes []*Node
	devs  []ids.DeviceID
}

type worldOpts struct {
	cfg    Config
	seed   int64
	useDES bool
	// groups supplies per-node group views (may be nil).
	groups func(i int, devs []ids.DeviceID) func() []core.Group
}

func newTestWorld(t *testing.T, pos [][2]float64, o worldOpts) *testWorld {
	t.Helper()
	if o.seed == 0 {
		o.seed = 42
	}
	var sched *des.Scheduler
	envOpts := []radio.Option{radio.WithScale(vtime.NewScale(1e-6))}
	if o.useDES {
		sched = des.NewScheduler(o.seed, 4)
		envOpts = append(envOpts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(envOpts...)
	w := &testWorld{env: env}
	for i := range pos {
		dev := ids.DeviceIDf("dev-%03d", i)
		w.devs = append(w.devs, dev)
		if err := env.Add(dev, mobility.Static{At: geo.Pt(pos[i][0], pos[i][1])}, radio.Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	if o.useDES {
		w.net = netsim.NewDES(env, o.seed, sched)
		sched.Start()
		t.Cleanup(sched.Stop)
	} else {
		w.net = netsim.New(env, o.seed)
	}
	t.Cleanup(w.net.Close)
	for i := range pos {
		dev := w.devs[i]
		var groups func() []core.Group
		if o.groups != nil {
			groups = o.groups(i, w.devs)
		}
		node, err := NewNode(Params{
			Device:    dev,
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Groups:    groups,
			Net:       w.net,
			Seed:      o.seed,
			Config:    o.cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		w.nodes = append(w.nodes, node)
	}
	return w
}

// sweep drives one sequential round on every node.
func (w *testWorld) sweep(ctx context.Context) {
	for _, n := range w.nodes {
		n.Round(ctx)
	}
}

// copiesOf is a white-box probe of a node's local copy budget for one
// bundle (0 when not held).
func (n *Node) copiesOf(id string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if bs := n.lookupLocked(id); bs != nil {
		return bs.copies
	}
	return 0
}

// assertBalanced fails the test when any node's custody identity is
// violated.
func assertBalanced(t *testing.T, w *testWorld) {
	t.Helper()
	for i, n := range w.nodes {
		if s := n.Stats(); !s.CustodyBalanced() {
			t.Fatalf("node %d custody unbalanced: %+v", i, s)
		}
	}
}

// lineWorld is three devices in a chain: 0—1 and 1—2 are in Bluetooth
// range, 0—2 is not. Multi-hop is the only path.
func lineWorld() [][2]float64 {
	return [][2]float64{{0, 0}, {8, 0}, {16, 0}}
}

func TestDirectDeliveryOneRound(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, [][2]float64{{0, 0}, {5, 0}}, worldOpts{})
	ctx := context.Background()
	payload := []byte("hello across the room")
	id, err := w.nodes[0].Send(w.devs[1], payload)
	if err != nil {
		t.Fatal(err)
	}
	w.sweep(ctx)
	if !w.nodes[1].Consumed(id) {
		t.Fatal("bundle not delivered after one round of direct contact")
	}
	got := w.nodes[1].Received()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, payload) || got[0].Src != w.devs[0] {
		t.Fatalf("received = %+v, want one message with original payload", got)
	}
	src := w.nodes[0].Stats()
	if src.Transferred != 1 || src.CopiesSent != 1 || src.Buffered != 0 {
		t.Fatalf("source stats after direct delivery: %+v", src)
	}
	dst := w.nodes[1].Stats()
	if dst.Delivered != 1 || dst.Accepted != 1 {
		t.Fatalf("destination stats after direct delivery: %+v", dst)
	}
	assertBalanced(t, w)
}

func TestMultiHopLineDelivery(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, lineWorld(), worldOpts{})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[2], []byte("two hops"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4 && !w.nodes[2].Consumed(id); r++ {
		w.sweep(ctx)
	}
	if !w.nodes[2].Consumed(id) {
		t.Fatal("bundle did not cross the partition via the relay")
	}
	if relay := w.nodes[1].Stats(); relay.Accepted == 0 {
		t.Fatalf("relay never took custody: %+v", relay)
	}
	assertBalanced(t, w)
}

// TestEpidemicBudgetConserved pins binary spray-and-wait: one source
// round over three reachable relays splits an 8-copy budget 4/2/1 and
// retains the last copy; the fleet-wide copy total never exceeds the
// budget.
func TestEpidemicBudgetConserved(t *testing.T) {
	t.Parallel()
	// Star: relays are in range of the source only; the destination
	// (index 4) is unreachable by everyone.
	pos := [][2]float64{{0, 0}, {9, 0}, {-9, 0}, {0, 9}, {100, 100}}
	w := newTestWorld(t, pos, worldOpts{cfg: Config{CopyBudget: 8}})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[4], []byte("sprayed"))
	if err != nil {
		t.Fatal(err)
	}
	w.nodes[0].Round(ctx)
	total := 0
	for _, n := range w.nodes {
		total += n.copiesOf(id)
	}
	if total != 8 {
		t.Fatalf("fleet copy total = %d, want the full budget 8", total)
	}
	if got := w.nodes[0].copiesOf(id); got != 1 {
		t.Fatalf("source retained %d copies, want 1 after three binary splits", got)
	}
	// The last copy is direct-delivery only: another source round over
	// the same relays must not move it.
	w.nodes[0].Round(ctx)
	if got := w.nodes[0].copiesOf(id); got != 1 {
		t.Fatalf("source last copy moved: %d", got)
	}
	assertBalanced(t, w)
}

// TestEpidemicLastCopyWaitsForDestination pins the "wait" half of
// spray-and-wait: a single-copy epidemic bundle never leaves the
// source except to its destination.
func TestEpidemicLastCopyWaitsForDestination(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, lineWorld(), worldOpts{cfg: Config{CopyBudget: 1}})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[2], []byte("stuck"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		w.sweep(ctx)
	}
	if w.nodes[2].Consumed(id) {
		t.Fatal("single epidemic copy crossed a partition it cannot reach")
	}
	if got := w.nodes[0].copiesOf(id); got != 1 {
		t.Fatalf("source lost its last copy: %d", got)
	}
	if relay := w.nodes[1].Stats(); relay.CopiesReceived != 0 {
		t.Fatalf("relay took custody of a waiting last copy: %+v", relay)
	}
	assertBalanced(t, w)
}

// socialGroups gives node i a group view declaring shared interests
// with specific other devices.
func socialGroups(shares map[int][]int, interest string) func(i int, devs []ids.DeviceID) func() []core.Group {
	return func(i int, devs []ids.DeviceID) func() []core.Group {
		peers := shares[i]
		if len(peers) == 0 {
			return func() []core.Group { return nil }
		}
		return func() []core.Group {
			members := []core.Member{{Device: devs[i]}}
			for _, j := range peers {
				members = append(members, core.Member{Device: devs[j]})
			}
			return []core.Group{{Interest: interest, Members: members}}
		}
	}
}

// TestSocialHandoffClimbsGradient: under the social strategy a last
// copy is handed over (full custody transfer) to a strictly better
// relay — here the middle node shares a group with the destination —
// and then delivered, where epidemic spray-and-wait provably stalls
// (see TestEpidemicLastCopyWaitsForDestination).
func TestSocialHandoffClimbsGradient(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, lineWorld(), worldOpts{
		cfg:    Config{Strategy: Social, CopyBudget: 1},
		groups: socialGroups(map[int][]int{1: {2}}, "chess"),
	})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[2], []byte("uphill"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4 && !w.nodes[2].Consumed(id); r++ {
		w.sweep(ctx)
	}
	if !w.nodes[2].Consumed(id) {
		t.Fatal("social handoff did not deliver across the partition")
	}
	src := w.nodes[0].Stats()
	if src.Transferred != 1 || src.Buffered != 0 {
		t.Fatalf("source did not hand custody over: %+v", src)
	}
	assertBalanced(t, w)
}

// TestSocialRefusesWorseRelay: a peer with no better social utility
// toward the destination declines custody entirely.
func TestSocialRefusesWorseRelay(t *testing.T) {
	t.Parallel()
	// The SOURCE shares a group with the destination; the relay shares
	// nothing, so its utility (0) never exceeds the source's (1).
	w := newTestWorld(t, lineWorld(), worldOpts{
		cfg:    Config{Strategy: Social, CopyBudget: 4},
		groups: socialGroups(map[int][]int{0: {2}}, "biking"),
	})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[2], []byte("hold on"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		w.sweep(ctx)
	}
	if relay := w.nodes[1].Stats(); relay.CopiesReceived != 0 {
		t.Fatalf("worse relay accepted custody: %+v", relay)
	}
	if got := w.nodes[0].copiesOf(id); got != 4 {
		t.Fatalf("source budget changed without a transfer: %d", got)
	}
	assertBalanced(t, w)
}

// TestVaccinePurgesSprayCopies: once the destination consumes a
// bundle, the delivered-ack anti-packet flows backward on the next
// contact and purges the source's leftover copies.
func TestVaccinePurgesSprayCopies(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, lineWorld(), worldOpts{cfg: Config{CopyBudget: 4}})
	ctx := context.Background()
	id, err := w.nodes[0].Send(w.devs[2], []byte("vaccinate"))
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4 && (!w.nodes[2].Consumed(id) || w.nodes[0].copiesOf(id) > 0); r++ {
		w.sweep(ctx)
	}
	if !w.nodes[2].Consumed(id) {
		t.Fatal("bundle not delivered")
	}
	if w.nodes[0].copiesOf(id) != 0 {
		t.Fatal("source still holds copies after the delivered-ack came back")
	}
	if src := w.nodes[0].Stats(); src.Purged == 0 {
		t.Fatalf("source never purged: %+v", src)
	}
	if !w.nodes[0].KnowsDelivered(id) {
		t.Fatal("source never learned of the delivery")
	}
	assertBalanced(t, w)
}

// TestTTLExpiresBeforeForwarding: a TTL-1 bundle dies in the source's
// next round before any offer goes out — an expired message is never
// forwarded.
func TestTTLExpiresBeforeForwarding(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, [][2]float64{{0, 0}, {5, 0}}, worldOpts{})
	ctx := context.Background()
	id, err := w.nodes[0].SendTTL(w.devs[1], []byte("short lived"), 1)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		w.sweep(ctx)
	}
	if w.nodes[1].Consumed(id) {
		t.Fatal("expired bundle was forwarded and delivered")
	}
	src := w.nodes[0].Stats()
	if src.Expired != 1 || src.OffersSent != 0 || src.Buffered != 0 {
		t.Fatalf("source stats after expiry: %+v", src)
	}
	if peer := w.nodes[1].Stats(); peer.OffersServed != 0 {
		t.Fatalf("peer served an offer for an expired bundle: %+v", peer)
	}
	assertBalanced(t, w)
}

// TestCrashRestartDropsVolatileOnly: a restart loses the relay buffer
// (counted as CrashDropped) but keeps the source outbox, the inbox and
// the delivered log.
func TestCrashRestartDropsVolatileOnly(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, lineWorld(), worldOpts{cfg: Config{CopyBudget: 4}})
	ctx := context.Background()
	// Park a relayed bundle on the middle node (destination stays out
	// of range of the source).
	relayed, err := w.nodes[0].Send(w.devs[2], []byte("in transit"))
	if err != nil {
		t.Fatal(err)
	}
	w.nodes[0].Round(ctx)
	if w.nodes[1].copiesOf(relayed) == 0 {
		t.Fatal("relay never took custody")
	}
	// Give the relay its own outbox message too.
	own, err := w.nodes[1].Send(w.devs[0], []byte("mine"))
	if err != nil {
		t.Fatal(err)
	}
	w.nodes[1].SetDown(true)
	w.nodes[1].DropVolatile()
	w.nodes[1].SetDown(false)
	if w.nodes[1].copiesOf(relayed) != 0 {
		t.Fatal("relay buffer survived the crash")
	}
	if w.nodes[1].copiesOf(own) == 0 {
		t.Fatal("source outbox did not survive the crash")
	}
	s := w.nodes[1].Stats()
	if s.CrashDropped != 1 {
		t.Fatalf("CrashDropped = %d, want 1", s.CrashDropped)
	}
	assertBalanced(t, w)
	// The source still holds copies, so post-heal rounds re-deliver
	// the relayed bundle end to end.
	for r := 0; r < 6 && !w.nodes[2].Consumed(relayed); r++ {
		w.sweep(ctx)
	}
	if !w.nodes[2].Consumed(relayed) {
		t.Fatal("bundle lost to the crash despite source retention")
	}
}

// TestDownNodeRefusesWork: while down, Round is a no-op, Send fails
// and inbound contacts die.
func TestDownNodeRefusesWork(t *testing.T) {
	t.Parallel()
	w := newTestWorld(t, [][2]float64{{0, 0}, {5, 0}}, worldOpts{})
	ctx := context.Background()
	w.nodes[1].SetDown(true)
	if _, err := w.nodes[1].Send(w.devs[0], []byte("x")); err != ErrDown {
		t.Fatalf("Send on a down node: err = %v, want ErrDown", err)
	}
	id, err := w.nodes[0].Send(w.devs[1], []byte("to the dead"))
	if err != nil {
		t.Fatal(err)
	}
	w.sweep(ctx)
	if w.nodes[1].Consumed(id) {
		t.Fatal("down node consumed a bundle")
	}
	if down := w.nodes[1].Stats(); down.Rounds != 0 {
		t.Fatalf("down node executed a round: %+v", down)
	}
	w.nodes[1].SetDown(false)
	w.sweep(ctx)
	if !w.nodes[1].Consumed(id) {
		t.Fatal("bundle not delivered after the node came back")
	}
	assertBalanced(t, w)
}

// driveReplay runs a fixed workload and returns the per-node trace
// digests.
func driveReplay(t *testing.T, seed int64, useDES bool) []uint64 {
	t.Helper()
	pos := [][2]float64{{0, 0}, {8, 0}, {16, 0}, {8, 8}}
	w := newTestWorld(t, pos, worldOpts{cfg: Config{CopyBudget: 4, TTLRounds: 6}, seed: seed})
	ctx := context.Background()
	if _, err := w.nodes[0].Send(w.devs[2], []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.nodes[3].Send(w.devs[0], []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.nodes[1].Send(w.devs[3], []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		w.sweep(ctx)
	}
	out := make([]uint64, len(w.nodes))
	for i, n := range w.nodes {
		out[i] = n.TraceDigest()
	}
	return out
}

// TestReplayDigestDeterministic: the same seed replays the same
// custody trace byte for byte; a different seed does not.
func TestReplayDigestDeterministic(t *testing.T) {
	t.Parallel()
	a := driveReplay(t, 7, false)
	b := driveReplay(t, 7, false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d trace diverged across identical runs: %x vs %x", i, a[i], b[i])
		}
	}
	c := driveReplay(t, 8, false)
	if a[0] == c[0] {
		t.Fatal("different seeds produced identical trace digests")
	}
}

// TestDESEngineParity: the node never sleeps or reads clocks, so the
// same fault-free workload behind netsim.NewDES must produce the same
// custody traces as the goroutine engine, not just the same outcome.
func TestDESEngineParity(t *testing.T) {
	t.Parallel()
	gr := driveReplay(t, 7, false)
	ds := driveReplay(t, 7, true)
	for i := range gr {
		if gr[i] != ds[i] {
			t.Fatalf("node %d trace differs across engines: goroutine %x, des %x", i, gr[i], ds[i])
		}
	}
}
