package dtn

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// Property: no expired message is ever forwarded. We run a busy world
// with short TTLs and assert, after every round on every node, that
// nothing held has TTL 0 and that every frame that reached a peer
// carried TTL >= 1 (the codec rejects TTL 0, so a violation would
// surface as FramesRejected or a held zero-TTL bundle).
func TestPropertyExpiredNeverForwarded(t *testing.T) {
	t.Parallel()
	pos := [][2]float64{{0, 0}, {8, 0}, {16, 0}, {8, 8}, {16, 8}}
	cfg := Config{Strategy: Epidemic, CopyBudget: 4, TTLRounds: 2, BufferCap: 8}
	w := newTestWorld(t, pos, worldOpts{cfg: cfg, seed: 7})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for r := 0; r < 12; r++ {
		// Keep injecting fresh traffic so relays always hold a mix of
		// fresh and near-expiry bundles.
		if r%2 == 0 {
			src := w.nodes[r%len(w.nodes)]
			dst := w.devs[(r+3)%len(w.devs)]
			if _, err := src.Send(dst, []byte(fmt.Sprintf("m%d", r))); err != nil {
				t.Fatal(err)
			}
		}
		w.sweep(ctx)
		for i, n := range w.nodes {
			n.mu.Lock()
			for id, bs := range n.buffer {
				if bs.b.TTL == 0 {
					n.mu.Unlock()
					t.Fatalf("round %d: node %d holds expired bundle %s", r, i, id)
				}
			}
			for id, bs := range n.outbox {
				if bs.b.TTL == 0 {
					n.mu.Unlock()
					t.Fatalf("round %d: node %d outbox holds expired bundle %s", r, i, id)
				}
			}
			rej := n.stats.FramesRejected
			n.mu.Unlock()
			if rej != 0 {
				t.Fatalf("round %d: node %d rejected %d frames (zero-TTL on wire?)", r, i, rej)
			}
		}
	}
	assertBalanced(t, w)
}

// Property: eviction is deterministic — two worlds driven identically
// from the same seed evict the same victims in the same order, for
// every eviction policy, witnessed by equal per-node trace digests.
func TestPropertyEvictionDeterministic(t *testing.T) {
	t.Parallel()
	policies := []EvictionPolicy{EvictOldest, EvictLargest, EvictSocialTail}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			t.Parallel()
			run := func() ([]uint64, uint64) {
				pos := [][2]float64{{0, 0}, {8, 0}, {16, 0}, {8, 8}}
				cfg := Config{Strategy: Epidemic, Eviction: pol, CopyBudget: 4, TTLRounds: 16, BufferCap: 2}
				w := newTestWorld(t, pos, worldOpts{cfg: cfg, seed: 99})
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				var evicted uint64
				for r := 0; r < 10; r++ {
					src := w.nodes[0]
					// Vary payload size so drop-largest has real work.
					payload := make([]byte, 16+(r*13)%64)
					if _, err := src.Send(w.devs[2], payload); err != nil {
						t.Fatal(err)
					}
					w.sweep(ctx)
				}
				digests := make([]uint64, len(w.nodes))
				for i, n := range w.nodes {
					digests[i] = n.TraceDigest()
					evicted += n.Stats().Evicted
				}
				assertBalanced(t, w)
				return digests, evicted
			}
			d1, e1 := run()
			d2, e2 := run()
			if e1 != e2 {
				t.Fatalf("eviction count diverged: %d vs %d", e1, e2)
			}
			for i := range d1 {
				if d1[i] != d2[i] {
					t.Fatalf("node %d trace digest diverged: %#x vs %#x", i, d1[i], d2[i])
				}
			}
			if pol != EvictOldest && e1 == 0 {
				t.Logf("note: no evictions under %s in this workload", pol)
			}
		})
	}
}

// Property: custody counters balance on every node at every point we
// can observe, across both engines, in a busy world with churn-like
// traffic. Accepted == Delivered + Expired + Evicted + Transferred +
// Purged + CrashDropped + Buffered.
func TestPropertyCustodyBalance(t *testing.T) {
	t.Parallel()
	for _, useDES := range []bool{false, true} {
		useDES := useDES
		name := "goroutine"
		if useDES {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pos := [][2]float64{{0, 0}, {8, 0}, {16, 0}, {8, 8}, {16, 8}, {24, 0}}
			cfg := Config{Strategy: Epidemic, CopyBudget: 4, TTLRounds: 4, BufferCap: 3}
			w := newTestWorld(t, pos, worldOpts{cfg: cfg, seed: 1234, useDES: useDES})
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for r := 0; r < 14; r++ {
				src := w.nodes[r%len(w.nodes)]
				dst := w.devs[(r+2)%len(w.devs)]
				if _, err := src.Send(dst, []byte(fmt.Sprintf("p%d", r))); err != nil {
					t.Fatal(err)
				}
				// Crash a relay mid-run: volatile custody must be accounted,
				// not leaked.
				if r == 6 {
					w.nodes[1].DropVolatile()
				}
				w.sweep(ctx)
				for i := range w.nodes {
					if s := w.nodes[i].Stats(); !s.CustodyBalanced() {
						t.Fatalf("round %d node %d custody unbalanced: %+v", r, i, s)
					}
				}
			}
		})
	}
}

// Property: delivered IDs are a subset of originated IDs and no
// message is consumed twice (end-to-end dedupe), even under spray.
func TestPropertyNoDuplicateConsumption(t *testing.T) {
	t.Parallel()
	pos := [][2]float64{{0, 0}, {8, 0}, {16, 0}, {8, 8}}
	cfg := Config{Strategy: Epidemic, CopyBudget: 8, TTLRounds: 12}
	w := newTestWorld(t, pos, worldOpts{cfg: cfg, seed: 5})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sent := map[string]bool{}
	for r := 0; r < 10; r++ {
		if r < 4 {
			if _, err := w.nodes[0].Send(w.devs[2], []byte(fmt.Sprintf("u%d", r))); err != nil {
				t.Fatal(err)
			}
		}
		w.sweep(ctx)
	}
	got := w.nodes[2].Received()
	ids := map[string]int{}
	for _, m := range got {
		ids[m.ID]++
		sent[m.ID] = true
	}
	var dup []string
	for id, c := range ids {
		if c > 1 {
			dup = append(dup, id)
		}
	}
	sort.Strings(dup)
	if len(dup) != 0 {
		t.Fatalf("messages consumed more than once: %v", dup)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d of 4 messages in connected world", len(got))
	}
}
