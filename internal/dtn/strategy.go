package dtn

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ids"
)

// Strategy selects the relay decision rule applied at every contact.
type Strategy uint8

const (
	// Epidemic is binary spray-and-wait: a custodian holding more than
	// one copy of a bundle hands half its budget to any peer that lacks
	// the bundle; a custodian down to its last copy only delivers
	// directly to the destination.
	Epidemic Strategy = iota
	// Social is the GROUPS-NET-style rule: a peer takes custody only
	// when it is the destination or a strictly better relay — its
	// social utility toward the destination (shared interest-group
	// encounters, fed by internal/core group views) exceeds the
	// current custodian's. A custodian down to its last copy hands
	// custody over entirely, so single copies climb the social
	// gradient instead of waiting for a direct meeting.
	Social
)

// String names the strategy for test output and bench legs.
func (s Strategy) String() string {
	switch s {
	case Social:
		return "social"
	default:
		return "epidemic"
	}
}

// EvictionPolicy selects the victim when the relay buffer is full. All
// three policies are total orders (ties broken by enqueue order, then
// bundle id), so eviction is deterministic under identical seeds on
// both engines. Locally originated bundles live in the source outbox
// and are never evicted — a source retains its message until a
// delivered-ack or TTL expiry.
type EvictionPolicy uint8

const (
	// EvictOldest drops the bundle that has been buffered longest.
	EvictOldest EvictionPolicy = iota
	// EvictLargest drops the bundle with the largest payload.
	EvictLargest
	// EvictSocialTail drops the bundle whose destination the custodian
	// has the least social utility toward.
	EvictSocialTail
)

// String names the policy for test output.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictLargest:
		return "drop-largest"
	case EvictSocialTail:
		return "drop-social-tail"
	default:
		return "drop-oldest"
	}
}

// maxMetInterests bounds the per-device encounter memory feeding social
// utility.
const maxMetInterests = 64

// bundleState is one bundle under custody plus its local bookkeeping:
// the enqueue sequence (eviction tie-breaker and offer order) and the
// local copy budget.
type bundleState struct {
	b      Bundle
	enq    uint64
	copies int
}

// utilityLocked is the social utility of this custodian toward dst: the
// number of distinct interest groups it has co-appeared in with dst
// across its encounter history. Callers hold n.mu.
func (n *Node) utilityLocked(dst ids.DeviceID) int {
	return len(n.met[dst])
}

// absorbGroupsLocked folds a group-view snapshot into the encounter
// memory: for every group the local device is in, remember the shared
// interest against each co-member's device. The memory is what makes
// the social strategy predictive — a courier that has met the campus
// chess group keeps routing chess traffic toward it after moving on.
// Callers hold n.mu.
func (n *Node) absorbGroupsLocked(groups []core.Group) {
	for _, g := range groups {
		for _, m := range g.Members {
			if m.Device == "" || m.Device == n.dev {
				continue
			}
			set := n.met[m.Device]
			if set == nil {
				set = make(map[string]struct{}, 4)
				n.met[m.Device] = set
			}
			if len(set) < maxMetInterests {
				set[g.Interest] = struct{}{}
			}
		}
	}
}

// offerEligibleLocked reports whether a buffered bundle rides the next
// OFFER to peer. Direct delivery is always offered; beyond that the
// epidemic strategy only offers bundles it can still split, while the
// social strategy offers everything and lets the responder's utility
// comparison filter. Callers hold n.mu.
func (n *Node) offerEligibleLocked(bs *bundleState, peer ids.DeviceID) bool {
	if bs.b.Dst == peer {
		return true
	}
	if n.cfg.Strategy == Epidemic {
		return bs.copies > 1
	}
	return true
}

// wantLocked is the responder's custody decision for one offered
// summary. Callers hold n.mu; duplicates and delivered bundles are
// filtered by the caller.
func (n *Node) wantLocked(s Summary) bool {
	if s.Dst == n.dev {
		return true
	}
	if n.cfg.Strategy == Epidemic {
		return true
	}
	return n.utilityLocked(s.Dst) > int(s.Utility)
}

// allocateCopiesLocked decides the copy budget shipped to peer for one
// wanted bundle and the budget retained locally. Direct delivery ships
// everything; a splittable budget is halved (binary spray); a social
// last copy is handed over entirely (custody transfer). retained == 0
// means the local copy is released once the transfer is acked.
// Callers hold n.mu.
func (n *Node) allocateCopiesLocked(bs *bundleState, peer ids.DeviceID) (give, retained int) {
	if bs.b.Dst == peer {
		return bs.copies, 0
	}
	if bs.copies > 1 {
		return bs.copies / 2, bs.copies - bs.copies/2
	}
	// Last copy: only the social strategy offers it to a non-destination,
	// and then it is a full custody handoff.
	return 1, 0
}

// evictVictimLocked picks the eviction victim among the relay buffer
// plus the incoming candidate under the configured policy. It returns
// the victim id and whether the victim is the incoming bundle itself
// (meaning custody is refused instead). Callers hold n.mu and
// guarantee the buffer is at capacity.
func (n *Node) evictVictimLocked(incoming *bundleState) (string, bool) {
	cands := make([]*bundleState, 0, len(n.buffer)+1)
	for _, bs := range n.buffer {
		cands = append(cands, bs)
	}
	cands = append(cands, incoming)
	worse := func(a, b *bundleState) bool {
		switch n.cfg.Eviction {
		case EvictLargest:
			if len(a.b.Payload) != len(b.b.Payload) {
				return len(a.b.Payload) > len(b.b.Payload)
			}
		case EvictSocialTail:
			ua, ub := n.utilityLocked(a.b.Dst), n.utilityLocked(b.b.Dst)
			if ua != ub {
				return ua < ub
			}
		}
		if a.enq != b.enq {
			return a.enq < b.enq
		}
		return a.b.ID < b.b.ID
	}
	sort.Slice(cands, func(i, j int) bool { return worse(cands[i], cands[j]) })
	victim := cands[0]
	return victim.b.ID, victim == incoming
}
