package dtn

import (
	"encoding/binary"
	"errors"
	"hash/fnv"

	"repro/internal/ids"
)

// Wire format. Every DTN frame is
//
//	magic(1) version(1) kind(1) body... checksum(8)
//
// where the checksum is FNV-64a over magic..body, little-endian — the
// same sealed-frame discipline as the gossip and community codecs. The
// body is built from uvarints and length-prefixed strings. Decoding is
// strict: the checksum must match, every length must fit the declared
// caps, and the body must be consumed exactly — anything else is an
// error, never a panic. The fuzz suite holds the codec to that under
// faults.Mangle-style corruption (bit flips, truncation, insertion).
//
// A contact is a four-frame handshake: the initiator OFFERs bundle
// summaries (plus a delivered-ids vaccine sample), the responder
// replies WANT with the subset it takes custody of (plus its own
// vaccine sample), the initiator ships the BUNDLES with allocated copy
// budgets, and the responder closes with ACK naming what it accepted —
// so both sides are fully settled when the initiator's Round returns.

const (
	frameMagic   = 0x64 // 'd'
	frameVersion = 1

	kindOffer   = 1
	kindWant    = 2
	kindBundles = 3
	kindAck     = 4

	maxWireString    = 4096
	maxWireSummaries = 4096
	maxWireIDs       = 4096
	maxWireBundles   = 1024
	maxWirePayload   = 1 << 16
	maxWireTTL       = 1 << 30
	maxWireCopies    = 1 << 20
	maxWireUtility   = 1 << 30
)

// Frame kind tags for stats and tests.
const (
	KindOffer   = kindOffer
	KindWant    = kindWant
	KindBundles = kindBundles
	KindAck     = kindAck
)

// ErrBadFrame reports any malformed DTN frame: short, wrong
// magic/version/kind, checksum mismatch, over-cap length, or trailing
// garbage.
var ErrBadFrame = errors.New("dtn: bad frame")

// Summary advertises one buffered bundle in an OFFER: its identity,
// destination, remaining TTL in rounds, and the offering custodian's
// social utility toward the destination (zero under the epidemic
// strategy). The responder compares Utility against its own to decide
// whether it is a strictly better relay.
type Summary struct {
	ID      string
	Dst     ids.DeviceID
	TTL     uint32
	Utility uint32
}

// Bundle is one addressed message under custody as it rides the wire:
// identity (source-scoped), source, destination, remaining TTL in
// rounds, the copy budget allocated to the receiving custodian, and the
// payload.
type Bundle struct {
	ID      string
	Src     ids.DeviceID
	Dst     ids.DeviceID
	TTL     uint32
	Copies  uint32
	Payload []byte
}

// FrameOffer opens a contact: the initiator's eligible bundle
// summaries plus a bounded sample of bundle ids it knows were
// delivered (the anti-packet vaccine that lets custodians purge dead
// copies).
type FrameOffer struct {
	From      ids.DeviceID
	Summaries []Summary
	Delivered []string
}

// FrameWant answers an OFFER: the ids the responder takes custody of,
// plus its own delivered-ids vaccine sample for the initiator.
type FrameWant struct {
	Want      []string
	Delivered []string
}

// FrameBundles ships the wanted bundles with their allocated copy
// budgets.
type FrameBundles struct {
	From    ids.DeviceID
	Bundles []Bundle
}

// FrameAck closes a contact: the ids the responder actually accepted
// custody of (stored, or consumed as destination). The initiator only
// splits or releases its local copies for acked ids, so a lost ack
// never loses custody.
type FrameAck struct {
	Accepted []string
}

// --- encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendIDs(b []byte, ss []string) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func sealFrame(body []byte) []byte {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return binary.LittleEndian.AppendUint64(body, h.Sum64())
}

func frameHeader(kind byte) []byte {
	return []byte{frameMagic, frameVersion, kind}
}

// MarshalOffer encodes a contact-opening offer frame.
func MarshalOffer(f FrameOffer) []byte {
	b := frameHeader(kindOffer)
	b = appendString(b, string(f.From))
	b = binary.AppendUvarint(b, uint64(len(f.Summaries)))
	for _, s := range f.Summaries {
		b = appendString(b, s.ID)
		b = appendString(b, string(s.Dst))
		b = binary.AppendUvarint(b, uint64(s.TTL))
		b = binary.AppendUvarint(b, uint64(s.Utility))
	}
	b = appendIDs(b, f.Delivered)
	return sealFrame(b)
}

// MarshalWant encodes an offer answer frame.
func MarshalWant(f FrameWant) []byte {
	b := frameHeader(kindWant)
	b = appendIDs(b, f.Want)
	b = appendIDs(b, f.Delivered)
	return sealFrame(b)
}

// MarshalBundles encodes a bundle transfer frame.
func MarshalBundles(f FrameBundles) []byte {
	b := frameHeader(kindBundles)
	b = appendString(b, string(f.From))
	b = binary.AppendUvarint(b, uint64(len(f.Bundles)))
	for _, bl := range f.Bundles {
		b = appendString(b, bl.ID)
		b = appendString(b, string(bl.Src))
		b = appendString(b, string(bl.Dst))
		b = binary.AppendUvarint(b, uint64(bl.TTL))
		b = binary.AppendUvarint(b, uint64(bl.Copies))
		b = appendBytes(b, bl.Payload)
	}
	return sealFrame(b)
}

// MarshalAck encodes a contact-closing acceptance frame.
func MarshalAck(f FrameAck) []byte {
	b := frameHeader(kindAck)
	b = appendIDs(b, f.Accepted)
	return sealFrame(b)
}

// --- decoding ---

type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrBadFrame
	}
	r.off += n
	return v, nil
}

func (r *wireReader) str(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || r.off+int(n) > len(r.b) {
		return "", ErrBadFrame
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *wireReader) bytes(maxLen int) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) || r.off+int(n) > len(r.b) {
		return nil, ErrBadFrame
	}
	p := append([]byte(nil), r.b[r.off:r.off+int(n)]...)
	r.off += int(n)
	return p, nil
}

func (r *wireReader) idList(maxN int) ([]string, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxN) {
		return nil, ErrBadFrame
	}
	if n == 0 {
		return nil, nil
	}
	// Cap the pre-allocation: a mangled count still has to be backed
	// by actual bytes before it grows the slice.
	out := make([]string, 0, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		s, err := r.str(maxWireString)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (r *wireReader) finish() error {
	if r.off != len(r.b) {
		return ErrBadFrame
	}
	return nil
}

// openFrame validates magic/version/kind and the trailing checksum and
// returns a reader positioned at the body.
func openFrame(data []byte, kind byte) (*wireReader, error) {
	if len(data) < 3+8 {
		return nil, ErrBadFrame
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(body)
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return nil, ErrBadFrame
	}
	if body[0] != frameMagic || body[1] != frameVersion || body[2] != kind {
		return nil, ErrBadFrame
	}
	return &wireReader{b: body, off: 3}, nil
}

// FrameKind peeks at a sealed frame's kind without validating the body.
// It still verifies the checksum, so a mangled kind byte is rejected
// rather than misrouted.
func FrameKind(data []byte) (byte, error) {
	if len(data) < 3+8 {
		return 0, ErrBadFrame
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(body)
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return 0, ErrBadFrame
	}
	if body[0] != frameMagic || body[1] != frameVersion {
		return 0, ErrBadFrame
	}
	k := body[2]
	if k < kindOffer || k > kindAck {
		return 0, ErrBadFrame
	}
	return k, nil
}

// UnmarshalOffer decodes a contact-opening offer frame.
func UnmarshalOffer(data []byte) (FrameOffer, error) {
	var f FrameOffer
	r, err := openFrame(data, kindOffer)
	if err != nil {
		return f, err
	}
	from, err := r.str(maxWireString)
	if err != nil {
		return f, err
	}
	n, err := r.uvarint()
	if err != nil {
		return f, err
	}
	if n > maxWireSummaries {
		return f, ErrBadFrame
	}
	var sums []Summary
	if n > 0 {
		sums = make([]Summary, 0, min(int(n), 64))
	}
	for i := uint64(0); i < n; i++ {
		id, err := r.str(maxWireString)
		if err != nil {
			return f, err
		}
		dst, err := r.str(maxWireString)
		if err != nil {
			return f, err
		}
		ttl, err := r.uvarint()
		if err != nil {
			return f, err
		}
		util, err := r.uvarint()
		if err != nil {
			return f, err
		}
		if ttl == 0 || ttl > maxWireTTL || util > maxWireUtility {
			return f, ErrBadFrame
		}
		sums = append(sums, Summary{ID: id, Dst: ids.DeviceID(dst), TTL: uint32(ttl), Utility: uint32(util)})
	}
	delivered, err := r.idList(maxWireIDs)
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.From = ids.DeviceID(from)
	f.Summaries = sums
	f.Delivered = delivered
	return f, nil
}

// UnmarshalWant decodes an offer answer frame.
func UnmarshalWant(data []byte) (FrameWant, error) {
	var f FrameWant
	r, err := openFrame(data, kindWant)
	if err != nil {
		return f, err
	}
	want, err := r.idList(maxWireIDs)
	if err != nil {
		return f, err
	}
	delivered, err := r.idList(maxWireIDs)
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.Want = want
	f.Delivered = delivered
	return f, nil
}

// UnmarshalBundles decodes a bundle transfer frame.
func UnmarshalBundles(data []byte) (FrameBundles, error) {
	var f FrameBundles
	r, err := openFrame(data, kindBundles)
	if err != nil {
		return f, err
	}
	from, err := r.str(maxWireString)
	if err != nil {
		return f, err
	}
	n, err := r.uvarint()
	if err != nil {
		return f, err
	}
	if n > maxWireBundles {
		return f, ErrBadFrame
	}
	var bundles []Bundle
	if n > 0 {
		bundles = make([]Bundle, 0, min(int(n), 64))
	}
	for i := uint64(0); i < n; i++ {
		id, err := r.str(maxWireString)
		if err != nil {
			return f, err
		}
		src, err := r.str(maxWireString)
		if err != nil {
			return f, err
		}
		dst, err := r.str(maxWireString)
		if err != nil {
			return f, err
		}
		ttl, err := r.uvarint()
		if err != nil {
			return f, err
		}
		copies, err := r.uvarint()
		if err != nil {
			return f, err
		}
		if ttl == 0 || ttl > maxWireTTL || copies == 0 || copies > maxWireCopies {
			return f, ErrBadFrame
		}
		payload, err := r.bytes(maxWirePayload)
		if err != nil {
			return f, err
		}
		bundles = append(bundles, Bundle{
			ID:      id,
			Src:     ids.DeviceID(src),
			Dst:     ids.DeviceID(dst),
			TTL:     uint32(ttl),
			Copies:  uint32(copies),
			Payload: payload,
		})
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.From = ids.DeviceID(from)
	f.Bundles = bundles
	return f, nil
}

// UnmarshalAck decodes a contact-closing acceptance frame.
func UnmarshalAck(data []byte) (FrameAck, error) {
	var f FrameAck
	r, err := openFrame(data, kindAck)
	if err != nil {
		return f, err
	}
	acc, err := r.idList(maxWireIDs)
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.Accepted = acc
	return f, nil
}
