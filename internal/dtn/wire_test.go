package dtn

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
)

func sampleSummaries() []Summary {
	return []Summary{
		{ID: "dev-a#1", Dst: "dev-z", TTL: 12, Utility: 3},
		{ID: "dev-b#7", Dst: "dev-y", TTL: 1, Utility: 0},
	}
}

func sampleBundles() []Bundle {
	return []Bundle{
		{ID: "dev-a#1", Src: "dev-a", Dst: "dev-z", TTL: 12, Copies: 4, Payload: []byte("carry me")},
		{ID: "dev-b#7", Src: "dev-b", Dst: "dev-y", TTL: 1, Copies: 1, Payload: nil},
	}
}

func TestWireRoundTrip(t *testing.T) {
	t.Parallel()
	offer := FrameOffer{From: "dev-a", Summaries: sampleSummaries(), Delivered: []string{"dev-c#2", "dev-d#9"}}
	gotOffer, err := UnmarshalOffer(MarshalOffer(offer))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offer, gotOffer) {
		t.Fatalf("offer round trip changed: %+v -> %+v", offer, gotOffer)
	}

	want := FrameWant{Want: []string{"dev-a#1"}, Delivered: []string{"dev-c#2"}}
	gotWant, err := UnmarshalWant(MarshalWant(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, gotWant) {
		t.Fatalf("want round trip changed: %+v -> %+v", want, gotWant)
	}

	bundles := FrameBundles{From: "dev-a", Bundles: sampleBundles()}
	gotBundles, err := UnmarshalBundles(MarshalBundles(bundles))
	if err != nil {
		t.Fatal(err)
	}
	// A nil payload decodes as empty; normalize before comparing.
	if len(bundles.Bundles[1].Payload) == 0 && len(gotBundles.Bundles[1].Payload) == 0 {
		gotBundles.Bundles[1].Payload = bundles.Bundles[1].Payload
	}
	if !reflect.DeepEqual(bundles, gotBundles) {
		t.Fatalf("bundles round trip changed: %+v -> %+v", bundles, gotBundles)
	}

	ack := FrameAck{Accepted: []string{"dev-a#1", "dev-b#7"}}
	gotAck, err := UnmarshalAck(MarshalAck(ack))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ack, gotAck) {
		t.Fatalf("ack round trip changed: %+v -> %+v", ack, gotAck)
	}

	empty := FrameOffer{From: "dev-a"}
	gotEmpty, err := UnmarshalOffer(MarshalOffer(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, gotEmpty) {
		t.Fatalf("empty offer round trip changed: %+v -> %+v", empty, gotEmpty)
	}
}

func TestFrameKind(t *testing.T) {
	t.Parallel()
	cases := []struct {
		frame []byte
		kind  byte
	}{
		{MarshalOffer(FrameOffer{From: "a"}), kindOffer},
		{MarshalWant(FrameWant{}), kindWant},
		{MarshalBundles(FrameBundles{From: "a"}), kindBundles},
		{MarshalAck(FrameAck{}), kindAck},
	}
	for _, c := range cases {
		k, err := FrameKind(c.frame)
		if err != nil || k != c.kind {
			t.Fatalf("FrameKind = %d, %v, want %d", k, err, c.kind)
		}
	}
	if _, err := FrameKind(nil); !errors.Is(err, ErrBadFrame) {
		t.Fatal("FrameKind accepted nil")
	}
	// A flipped kind byte breaks the checksum and must be rejected, not
	// misrouted.
	f := MarshalOffer(FrameOffer{From: "a"})
	f[2] = kindAck
	if _, err := FrameKind(f); !errors.Is(err, ErrBadFrame) {
		t.Fatal("FrameKind accepted a frame with a mangled kind byte")
	}
}

func TestWireRejectsBadFrames(t *testing.T) {
	t.Parallel()
	valid := MarshalOffer(FrameOffer{From: "dev-a", Summaries: sampleSummaries()})
	bad := [][]byte{
		nil,
		{},
		valid[:10],
		valid[:len(valid)-1],
		append(append([]byte(nil), valid...), 0x00),
	}
	wrongMagic := append([]byte(nil), valid...)
	wrongMagic[0] = 0x67
	bad = append(bad, wrongMagic)
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[1] = 9
	bad = append(bad, wrongVersion)
	for i, b := range bad {
		if _, err := UnmarshalOffer(b); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d: bad frame accepted (err=%v)", i, err)
		}
	}
	// A zero-TTL summary must not decode: expired bundles never ride
	// the wire, and the codec enforces it.
	zeroTTL := FrameOffer{From: "dev-a", Summaries: []Summary{{ID: "x#1", Dst: "y", TTL: 0}}}
	if _, err := UnmarshalOffer(MarshalOffer(zeroTTL)); !errors.Is(err, ErrBadFrame) {
		t.Fatal("zero-TTL summary decoded")
	}
	zeroCopies := FrameBundles{From: "a", Bundles: []Bundle{{ID: "x#1", Src: "a", Dst: "y", TTL: 3, Copies: 0}}}
	if _, err := UnmarshalBundles(MarshalBundles(zeroCopies)); !errors.Is(err, ErrBadFrame) {
		t.Fatal("zero-copies bundle decoded")
	}
}

func dtnFrames() [][]byte {
	return [][]byte{
		MarshalOffer(FrameOffer{From: "dev-a", Summaries: sampleSummaries(), Delivered: []string{"dev-c#2"}}),
		MarshalWant(FrameWant{Want: []string{"dev-a#1"}, Delivered: []string{"dev-c#2"}}),
		MarshalBundles(FrameBundles{From: "dev-a", Bundles: sampleBundles()}),
		MarshalAck(FrameAck{Accepted: []string{"dev-a#1"}}),
	}
}

func dtnDecoders() []func([]byte) error {
	return []func([]byte) error{
		func(b []byte) error { _, err := UnmarshalOffer(b); return err },
		func(b []byte) error { _, err := UnmarshalWant(b); return err },
		func(b []byte) error { _, err := UnmarshalBundles(b); return err },
		func(b []byte) error { _, err := UnmarshalAck(b); return err },
	}
}

// TestCodecRejectsMangledFrames holds every decoder to the never-panic
// discipline under the exact damage the chaos fault plane inflicts.
func TestCodecRejectsMangledFrames(t *testing.T) {
	t.Parallel()
	for _, frame := range dtnFrames() {
		for seed := uint64(0); seed < 200; seed++ {
			mangled := faults.Mangle(seed, frame)
			if string(mangled) == string(frame) {
				continue
			}
			for _, dec := range dtnDecoders() {
				if err := dec(mangled); err != nil && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("seed %d: unexpected error type %v", seed, err)
				}
			}
		}
	}
}

// TestCorruptionCorpus replays the committed corruption corpus under
// testdata: every file must decode without panic, and anything that
// decodes must be a structurally valid frame (the corpus pins codec
// behavior across refactors).
func TestCorruptionCorpus(t *testing.T) {
	t.Parallel()
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corruption corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("corruption corpus empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, dec := range dtnDecoders() {
			if err := dec(data); err != nil && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s: unexpected error %v", e.Name(), err)
			}
		}
	}
}
