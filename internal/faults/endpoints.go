package faults

import (
	"time"

	"repro/internal/ids"
)

// Endpoint fault defaults, in modeled time.
const (
	// defaultStallFor comfortably exceeds any call deadline, so a stalled
	// session looks wedged rather than merely slow.
	defaultStallFor   = 5 * time.Minute
	defaultSlowFactor = 8.0
	defaultSlowWindow = 2 * time.Second
)

// EndpointProfile describes end-host faults — the gray failures a link
// model cannot express. A stalled session accepts requests but
// withholds its replies: the connection stays up, dials to the device
// keep succeeding, and only the serving direction goes dark. A slow
// device serves every byte at a multiple of its normal service time.
// Both are drawn purely from (seed, device, sequence), like every
// other fate in this package.
type EndpointProfile struct {
	// StallRate is the probability in [0, 1] that one accepted serving
	// session is stalled. The draw is per (server, peer, connection
	// sequence): a fresh re-dial to the same device draws a fresh fate,
	// which is exactly what makes hedged second attempts effective.
	StallRate float64
	// StallFor is how long each outbound message on a stalled session is
	// withheld (default 5m — wedged for any practical call deadline).
	StallFor time.Duration
	// SlowRate is the probability in [0, 1] that a device serves at
	// SlowFactor for one Window.
	SlowRate float64
	// SlowFactor multiplies the PHY service time of a slow device
	// (default 8).
	SlowFactor float64
	// Window is the modeled width of one slow interval (default 2s).
	Window time.Duration
}

func (ep EndpointProfile) inert() bool { return ep.StallRate == 0 && ep.SlowRate == 0 }

// StallWindow wedges a device's serving side for a modeled interval:
// every message it sends on an affected session is withheld while the
// window holds. The window carries its own interval and, like
// partitions, is independent of the plan's active window.
type StallWindow struct {
	Device ids.DeviceID
	// The stall holds while Start <= elapsed < End.
	Start, End time.Duration
}

// CrashWindow removes a device from the world for a modeled interval:
// its links sever, dials to it fail, and inquiries cannot see it. The
// window's End is the restart — the device comes back with its state
// intact and must be rediscovered.
type CrashWindow struct {
	Device ids.DeviceID
	// The crash holds while Start <= elapsed < End.
	Start, End time.Duration
}

// SetEndpoints installs the endpoint fault profile.
func (p *Plan) SetEndpoints(ep EndpointProfile) *Plan {
	if ep.StallFor <= 0 {
		ep.StallFor = defaultStallFor
	}
	if ep.SlowFactor <= 0 {
		ep.SlowFactor = defaultSlowFactor
	}
	if ep.Window <= 0 {
		ep.Window = defaultSlowWindow
	}
	p.endpoints = ep
	return p
}

// AddStall schedules a whole-device stall window.
func (p *Plan) AddStall(w StallWindow) *Plan {
	p.stalls = append(p.stalls, w)
	return p
}

// AddCrash schedules a crash–restart window for a device.
func (p *Plan) AddCrash(w CrashWindow) *Plan {
	p.crashes = append(p.crashes, w)
	return p
}

// AffectsEndpoints reports whether the plan can stall or slow an
// endpoint at all, so conn pumps may skip the per-message queries on
// fault-free runs.
func (p *Plan) AffectsEndpoints() bool {
	return p != nil && (!p.endpoints.inert() || len(p.stalls) > 0)
}

// SessionStalled reports, purely from the seed and the session
// identity, whether the serving side of one session is stalled: the
// device is inside a scheduled stall window, or the per-session
// StallRate draw came up stalled. server is the device whose replies
// are withheld; peer and connSeq identify the session on the directed
// (peer→server dial) pair.
func (p *Plan) SessionStalled(server, peer ids.DeviceID, connSeq uint64, elapsed time.Duration) bool {
	if p == nil {
		return false
	}
	for _, w := range p.stalls {
		if w.Device == server && elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	if p.endpoints.StallRate <= 0 || !p.active(elapsed) {
		return false
	}
	return unit(p.drawHash(kindStall, server, peer, connSeq)) < p.endpoints.StallRate
}

// StallDelay is the pump-facing form of SessionStalled: the modeled
// duration one outbound message from server is withheld, zero when the
// session is healthy. Withheld messages are counted and traced.
func (p *Plan) StallDelay(server, peer ids.DeviceID, connSeq, msgSeq uint64, elapsed time.Duration) time.Duration {
	if !p.SessionStalled(server, peer, connSeq, elapsed) {
		return 0
	}
	d := p.endpoints.StallFor
	if d <= 0 {
		d = defaultStallFor
	}
	p.counters.messagesStalled.Add(1)
	p.traceMu.Lock()
	if len(p.trace) >= maxTraceEvents {
		p.traceDropped++
	} else {
		p.trace = append(p.trace, Event{Kind: EventStall, From: server, To: peer, ConnSeq: connSeq, MsgSeq: msgSeq})
	}
	p.traceMu.Unlock()
	return d
}

// ServeScale is the service-time multiplier for a device: 1 when
// healthy, SlowFactor while the per-window slow draw holds.
func (p *Plan) ServeScale(dev ids.DeviceID, elapsed time.Duration) float64 {
	if p == nil || p.endpoints.SlowRate <= 0 || !p.active(elapsed) {
		return 1
	}
	window := uint64(elapsed / p.endpoints.Window)
	if unit(p.drawHash(kindSlow, dev, dev, window)) < p.endpoints.SlowRate {
		p.counters.slowTransfers.Add(1)
		return p.endpoints.SlowFactor
	}
	return 1
}

// Crashed reports whether a device is inside a scheduled crash window.
// Crashed devices are folded into LinkDown and Visible, so dials,
// sweeps, broadcasts and inquiries all agree the device is gone.
func (p *Plan) Crashed(dev ids.DeviceID, elapsed time.Duration) bool {
	if p == nil {
		return false
	}
	for _, w := range p.crashes {
		if w.Device == dev && elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	return false
}
