package faults

import (
	"testing"
	"time"

	"repro/internal/radio"
)

func TestSessionStalledIsDeterministic(t *testing.T) {
	a := New(42).SetEndpoints(EndpointProfile{StallRate: 0.5})
	b := New(42).SetEndpoints(EndpointProfile{StallRate: 0.5})
	stalled := 0
	for seq := uint64(1); seq <= 200; seq++ {
		got := a.SessionStalled("srv", "cli", seq, time.Second)
		if got != b.SessionStalled("srv", "cli", seq, time.Second) {
			t.Fatalf("same seed disagreed on session %d", seq)
		}
		if got {
			stalled++
		}
	}
	if stalled < 60 || stalled > 140 {
		t.Fatalf("stall rate 0.5 hit %d/200 sessions", stalled)
	}
	// A fresh connection sequence redraws the fate: with 200 draws at
	// rate 0.5 both outcomes must occur, which is what a hedged re-dial
	// relies on.
	if stalled == 0 || stalled == 200 {
		t.Fatalf("per-session draw is degenerate: %d/200", stalled)
	}
}

func TestStallWindowWedgesDevice(t *testing.T) {
	p := New(1).AddStall(StallWindow{Device: "sick", Start: time.Second, End: 3 * time.Second})
	if p.SessionStalled("sick", "cli", 1, 0) {
		t.Fatal("stalled before window start")
	}
	if !p.SessionStalled("sick", "cli", 1, 2*time.Second) {
		t.Fatal("not stalled inside window")
	}
	if p.SessionStalled("sick", "cli", 7, 3*time.Second) {
		t.Fatal("stalled at window end")
	}
	if p.SessionStalled("healthy", "cli", 1, 2*time.Second) {
		t.Fatal("window leaked onto another device")
	}
	if !p.AffectsEndpoints() {
		t.Fatal("stall window must arm the endpoint fast-path gate")
	}
}

func TestStallDelayCountsAndTraces(t *testing.T) {
	p := New(1).AddStall(StallWindow{Device: "sick", End: time.Minute})
	if d := p.StallDelay("sick", "cli", 1, 3, time.Second); d != defaultStallFor {
		t.Fatalf("StallDelay = %v, want default %v", d, defaultStallFor)
	}
	if d := p.StallDelay("other", "cli", 1, 3, time.Second); d != 0 {
		t.Fatalf("healthy device delayed %v", d)
	}
	c := p.Counters()
	if c.MessagesStalled != 1 {
		t.Fatalf("MessagesStalled = %d, want 1", c.MessagesStalled)
	}
	evs := p.Events()
	if len(evs) != 1 || evs[0].Kind != EventStall || evs[0].From != "sick" || evs[0].MsgSeq != 3 {
		t.Fatalf("trace = %+v, want one stall event for sick/3", evs)
	}
}

func TestServeScaleSlowWindows(t *testing.T) {
	p := New(9).SetEndpoints(EndpointProfile{SlowRate: 0.5, SlowFactor: 4})
	slow := 0
	for w := 0; w < 100; w++ {
		elapsed := time.Duration(w) * defaultSlowWindow
		f := p.ServeScale("dev", elapsed)
		switch f {
		case 1:
		case 4:
			slow++
		default:
			t.Fatalf("ServeScale = %v, want 1 or 4", f)
		}
		if f != p.ServeScale("dev", elapsed) {
			t.Fatal("ServeScale not stable within a window")
		}
	}
	if slow < 20 || slow > 80 {
		t.Fatalf("slow rate 0.5 hit %d/100 windows", slow)
	}
	if p.Counters().SlowTransfers == 0 {
		t.Fatal("slow transfers not counted")
	}
	if p.ServeScale("dev", 0) != 1 && New(9).ServeScale("dev", 0) != p.ServeScale("dev", 0) {
		t.Fatal("ServeScale not deterministic")
	}
}

func TestCrashWindowSeversEverything(t *testing.T) {
	p := New(5).AddCrash(CrashWindow{Device: "down", Start: time.Second, End: 3 * time.Second})
	if !p.SeversLinks() {
		t.Fatal("crash windows must arm SeversLinks")
	}
	mid := 2 * time.Second
	if !p.Crashed("down", mid) {
		t.Fatal("not crashed inside window")
	}
	if p.Crashed("down", 3*time.Second) {
		t.Fatal("still crashed at restart")
	}
	if !p.LinkDown("down", "other", mid) || !p.LinkDown("other", "down", mid) {
		t.Fatal("links of a crashed device must be down in both orders")
	}
	if p.LinkDown("a", "b", mid) {
		t.Fatal("crash leaked onto an unrelated link")
	}
	if p.Visible("other", "down", radio.Bluetooth, mid) {
		t.Fatal("crashed device visible to inquiry")
	}
	if p.Visible("down", "other", radio.Bluetooth, mid) {
		t.Fatal("crashed querier sees neighbors")
	}
	if !p.Visible("other", "down", radio.Bluetooth, 3*time.Second) {
		t.Fatal("restarted device still invisible")
	}
	if p.Counters().CrashDenials == 0 {
		t.Fatal("crash denials not counted")
	}
}

func TestEndpointProfileSurvivesHeal(t *testing.T) {
	// The probabilistic endpoint profile obeys the plan's active window;
	// scheduled stall/crash windows carry their own intervals.
	p := New(3).
		SetEndpoints(EndpointProfile{StallRate: 1}).
		SetActiveWindow(10 * time.Second).
		AddStall(StallWindow{Device: "sick", Start: 0, End: time.Hour})
	if !p.SessionStalled("any", "cli", 1, time.Second) {
		t.Fatal("rate-1 stall inactive inside active window")
	}
	if p.SessionStalled("any", "cli", 1, 11*time.Second) {
		t.Fatal("probabilistic stall survived the active window")
	}
	if !p.SessionStalled("sick", "cli", 1, 11*time.Second) {
		t.Fatal("scheduled stall must carry its own interval")
	}
}
