// Package faults is the seeded, deterministic fault-injection plane
// for the radio/transport substrate. A Plan describes a hostile link
// layer — per-message loss (modeled as retransmissions on the reliable
// link, with a reset when the budget runs out), payload corruption,
// extra latency and jitter, bandwidth throttling, flapping links,
// healing partitions, and inquiry misses on the radio side — plus the
// end-host faults in endpoints.go (stalled sessions, slow devices,
// crash–restart schedules) — and every
// decision it makes is a pure function of (seed, fault kind, link,
// sequence numbers). There is no shared random-number state: two runs
// with the same seed and the same application behaviour draw the same
// fates for the same messages regardless of goroutine interleaving,
// which is what makes seeded chaos scenarios replayable.
//
// A Plan is wired into the substrate at two points:
//
//   - netsim.Network.SetFaults(plan) injects the transport faults
//     (Conn pumps consult MessageFate/ScaleTransfer, linkUp consults
//     LinkDown);
//   - radio.Environment.SetInquiryFaults(plan) injects the discovery
//     faults (Neighbors queries are filtered through Visible).
//
// Configure a Plan fully before installing it; it must not be mutated
// afterwards. The query methods are safe for concurrent use.
package faults

import (
	"bytes"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/radio"
)

// Default knobs, in modeled time.
const (
	defaultMaxRetransmits = 3
	defaultFlapWindow     = 2 * time.Second
	defaultRadioWindow    = 2 * time.Second

	// maxTraceEvents bounds the in-memory event trace; past it, events
	// are still counted but not recorded.
	maxTraceEvents = 16384
)

// LinkProfile describes the transport-level faults applied to every
// message on every connection while the plan is active.
type LinkProfile struct {
	// Loss is the per-transmission-attempt probability in [0, 1] that a
	// message must be retransmitted. Each retransmission charges the
	// full PHY transfer time again; after MaxRetransmits failed
	// attempts the link resets with ErrLinkLost, which is what drives
	// RobustConn failover.
	Loss float64
	// MaxRetransmits caps retransmission attempts per message
	// (default 3 when Loss > 0).
	MaxRetransmits int
	// Corrupt is the per-message probability in [0, 1] that the
	// delivered payload is mangled (bit flips, truncation, insertion).
	// The wire codec must reject such frames without panicking.
	Corrupt float64
	// ExtraLatency is a fixed additional modeled delay per message.
	ExtraLatency time.Duration
	// Jitter adds a uniformly drawn delay in [0, Jitter) per message.
	Jitter time.Duration
	// BandwidthFactor multiplies the PHY transfer time; 0 or 1 leaves
	// it unchanged, 2 halves the effective bandwidth.
	BandwidthFactor float64
	// FlapRate is the probability in [0, 1] that a link is down during
	// any given FlapWindow — mid-stream flaps that heal by themselves.
	FlapRate float64
	// FlapWindow is the modeled width of one flap interval
	// (default 2s).
	FlapWindow time.Duration
}

// inert reports whether the profile changes nothing on the message
// path, so the zero-rate fast paths can skip all hashing.
func (lp LinkProfile) inert() bool {
	return lp.Loss == 0 && lp.Corrupt == 0 && lp.ExtraLatency == 0 &&
		lp.Jitter == 0
}

// RadioProfile describes the discovery-level faults: inquiry scans
// missing devices that are really in range.
type RadioProfile struct {
	// Miss is the probability in [0, 1] that a given neighbor is
	// invisible to a given querier for one Window.
	Miss float64
	// Asymmetry is the probability in [0, 1] that visibility between a
	// pair is one-directional for one Window (A sees B, B misses A).
	Asymmetry float64
	// Window is the modeled width of one visibility interval
	// (default 2s).
	Window time.Duration
}

func (rp RadioProfile) inert() bool { return rp.Miss == 0 && rp.Asymmetry == 0 }

// PartitionWindow severs all links between two device groups for a
// modeled time interval, healing at End. Partitions are independent of
// the plan's active window.
type PartitionWindow struct {
	GroupA, GroupB []ids.DeviceID
	// The partition holds while Start <= elapsed < End.
	Start, End time.Duration
}

type partition struct {
	a, b       map[ids.DeviceID]bool
	start, end time.Duration
}

func (p partition) severs(x, y ids.DeviceID, elapsed time.Duration) bool {
	if elapsed < p.start || elapsed >= p.end {
		return false
	}
	return (p.a[x] && p.b[y]) || (p.a[y] && p.b[x])
}

// EventKind labels one traced fault decision.
type EventKind uint8

// Trace event kinds.
const (
	// EventRetransmit: a message needed one or more retransmissions.
	EventRetransmit EventKind = iota
	// EventReset: a message exhausted its retransmission budget and the
	// link was severed.
	EventReset
	// EventCorrupt: a delivered payload was mangled.
	EventCorrupt
	// EventStall: a reply was withheld by a stalled serving session.
	EventStall
)

func (k EventKind) String() string {
	switch k {
	case EventRetransmit:
		return "retransmit"
	case EventReset:
		return "reset"
	case EventCorrupt:
		return "corrupt"
	case EventStall:
		return "stall"
	default:
		return "unknown"
	}
}

// Event is one traced fault decision, keyed by the message it applied
// to. Because fates are pure functions of the key, replaying a seed
// with the same application behaviour reproduces the identical event
// set, independent of goroutine interleaving.
type Event struct {
	Kind     EventKind
	From, To ids.DeviceID
	ConnSeq  uint64
	MsgSeq   uint64
	// Count carries the retransmission count for EventRetransmit.
	Count int
}

// Counters are monotonic totals of the plan's activity.
type Counters struct {
	// MessagesLost counts lost transmission attempts (each one charged
	// as a retransmission).
	MessagesLost uint64
	// LinkResets counts messages that exhausted the retransmission
	// budget, severing their connection.
	LinkResets uint64
	// MessagesCorrupted counts payloads mangled in flight.
	MessagesCorrupted uint64
	// MessagesDelayed counts messages given extra latency or jitter.
	MessagesDelayed uint64
	// FlapsObserved counts LinkDown queries answered "down" by a flap
	// window (observation count, not distinct flaps).
	FlapsObserved uint64
	// InquiriesMissed counts Visible queries answered "invisible".
	InquiriesMissed uint64
	// MessagesStalled counts replies withheld by stalled serving
	// sessions.
	MessagesStalled uint64
	// SlowTransfers counts PHY charges inflated by a slow-device window.
	SlowTransfers uint64
	// CrashDenials counts link and inquiry queries answered "gone"
	// because a device was inside a crash window (observation count).
	CrashDenials uint64
}

// Plan is a fully deterministic fault schedule. Build one with New and
// the Set/Add configurators, install it, and never mutate it again.
type Plan struct {
	seed      uint64
	link      LinkProfile
	radio     RadioProfile
	endpoints EndpointProfile
	until     time.Duration // 0 = active forever
	parts     []partition
	stalls    []StallWindow
	crashes   []CrashWindow

	counters planCounters

	traceMu      sync.Mutex
	trace        []Event
	traceDropped uint64
}

// New returns an empty plan (no faults) for a seed.
func New(seed int64) *Plan {
	return &Plan{seed: uint64(seed)}
}

// SetLink installs the transport fault profile.
func (p *Plan) SetLink(lp LinkProfile) *Plan {
	if lp.MaxRetransmits <= 0 {
		lp.MaxRetransmits = defaultMaxRetransmits
	}
	if lp.FlapWindow <= 0 {
		lp.FlapWindow = defaultFlapWindow
	}
	p.link = lp
	return p
}

// SetRadio installs the discovery fault profile.
func (p *Plan) SetRadio(rp RadioProfile) *Plan {
	if rp.Window <= 0 {
		rp.Window = defaultRadioWindow
	}
	p.radio = rp
	return p
}

// SetActiveWindow deactivates the link and radio profiles once the
// modeled elapsed time reaches until — the "faults heal" switch. Zero
// means active forever. Partition windows carry their own intervals
// and are not affected.
func (p *Plan) SetActiveWindow(until time.Duration) *Plan {
	p.until = until
	return p
}

// AddPartition schedules a healing partition between two device groups.
func (p *Plan) AddPartition(w PartitionWindow) *Plan {
	part := partition{
		a:     make(map[ids.DeviceID]bool, len(w.GroupA)),
		b:     make(map[ids.DeviceID]bool, len(w.GroupB)),
		start: w.Start,
		end:   w.End,
	}
	for _, d := range w.GroupA {
		part.a[d] = true
	}
	for _, d := range w.GroupB {
		part.b[d] = true
	}
	p.parts = append(p.parts, part)
	return p
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return int64(p.seed) }

func (p *Plan) active(elapsed time.Duration) bool {
	return p.until == 0 || elapsed < p.until
}

// --- Deterministic draws -------------------------------------------------

// Fault kinds feeding the hash, so independent decisions about the same
// message decorrelate.
const (
	kindLoss uint64 = iota + 1
	kindCorrupt
	kindJitter
	kindFlap
	kindMiss
	kindAsym
	kindStall
	kindSlow
)

// mix64 is the splitmix64 finalizer: a cheap, well-distributed bijection
// on 64-bit words. Every fault decision is mix64 over a fold of its
// inputs — pure, stateless, detrand-clean.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// foldString folds a string into a running hash (FNV-1a step).
func foldString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// drawHash computes the decision word for one (kind, link, indices)
// tuple.
func (p *Plan) drawHash(kind uint64, a, b ids.DeviceID, idx ...uint64) uint64 {
	h := uint64(14695981039346656037) ^ p.seed
	h = mix64(h ^ kind)
	h = foldString(h, string(a))
	h = mix64(h)
	h = foldString(h, string(b))
	h = mix64(h)
	for _, n := range idx {
		h = mix64(h ^ n)
	}
	return h
}

// unit maps a hash word to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// --- Transport queries (netsim) ------------------------------------------

// Fate is what the plan does to one message on the wire.
type Fate struct {
	// Retransmits is the number of extra PHY transfer charges before
	// the message gets through.
	Retransmits int
	// Reset severs the connection with ErrLinkLost instead of
	// delivering (the retransmission budget ran out).
	Reset bool
	// Corrupt mangles the delivered payload.
	Corrupt bool
	// Delay is extra modeled latency applied before delivery.
	Delay time.Duration
}

// MessageFate decides, purely from the seed and the message's identity,
// what happens to one message: how many retransmissions it needs,
// whether the link resets, whether the payload is corrupted, and how
// much extra latency it sees. connSeq identifies the connection on the
// directed (from, to) pair; msgSeq is the message's 1-based index on
// that connection end.
func (p *Plan) MessageFate(from, to ids.DeviceID, connSeq, msgSeq uint64, elapsed time.Duration) Fate {
	if p == nil || p.link.inert() || !p.active(elapsed) {
		return Fate{}
	}
	var fate Fate
	lp := p.link
	if lp.Loss > 0 {
		attempt := 0
		for ; attempt <= lp.MaxRetransmits; attempt++ {
			if unit(p.drawHash(kindLoss, from, to, connSeq, msgSeq, uint64(attempt))) >= lp.Loss {
				break
			}
		}
		if attempt > lp.MaxRetransmits {
			fate.Retransmits = lp.MaxRetransmits
			fate.Reset = true
		} else {
			fate.Retransmits = attempt
		}
	}
	if !fate.Reset {
		if lp.Corrupt > 0 && unit(p.drawHash(kindCorrupt, from, to, connSeq, msgSeq)) < lp.Corrupt {
			fate.Corrupt = true
		}
		if lp.ExtraLatency > 0 || lp.Jitter > 0 {
			fate.Delay = lp.ExtraLatency
			if lp.Jitter > 0 {
				fate.Delay += time.Duration(unit(p.drawHash(kindJitter, from, to, connSeq, msgSeq)) * float64(lp.Jitter))
			}
		}
	}
	p.recordFate(from, to, connSeq, msgSeq, fate)
	return fate
}

// recordFate updates counters and the bounded trace.
func (p *Plan) recordFate(from, to ids.DeviceID, connSeq, msgSeq uint64, fate Fate) {
	if fate.Retransmits > 0 {
		p.counters.messagesLost.Add(uint64(fate.Retransmits))
	}
	if fate.Reset {
		p.counters.linkResets.Add(1)
	}
	if fate.Corrupt {
		p.counters.messagesCorrupted.Add(1)
	}
	if fate.Delay > 0 {
		p.counters.messagesDelayed.Add(1)
	}
	if fate.Retransmits == 0 && !fate.Reset && !fate.Corrupt {
		return
	}
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	add := func(ev Event) {
		if len(p.trace) >= maxTraceEvents {
			p.traceDropped++
			return
		}
		p.trace = append(p.trace, ev)
	}
	if fate.Retransmits > 0 {
		add(Event{Kind: EventRetransmit, From: from, To: to, ConnSeq: connSeq, MsgSeq: msgSeq, Count: fate.Retransmits})
	}
	if fate.Reset {
		add(Event{Kind: EventReset, From: from, To: to, ConnSeq: connSeq, MsgSeq: msgSeq})
	}
	if fate.Corrupt {
		add(Event{Kind: EventCorrupt, From: from, To: to, ConnSeq: connSeq, MsgSeq: msgSeq})
	}
}

// ScaleTransfer applies the bandwidth throttle to one PHY transfer
// charge.
func (p *Plan) ScaleTransfer(d time.Duration, elapsed time.Duration) time.Duration {
	if p == nil {
		return d
	}
	f := p.link.BandwidthFactor
	if f <= 0 || f == 1 || !p.active(elapsed) {
		return d
	}
	return time.Duration(float64(d) * f)
}

// SeversLinks reports whether the plan can ever sever a link — any
// partition window scheduled or a positive flap rate. When false,
// LinkDown is constantly false, so hot paths (broadcast fan-out, link
// sweeps) may skip the per-pair check entirely; this is what keeps a
// zero-rate plan's overhead off the fault-free fast path.
func (p *Plan) SeversLinks() bool {
	return p != nil && (len(p.parts) > 0 || len(p.crashes) > 0 || p.link.FlapRate > 0)
}

// LinkDown reports whether the plan severs the (a, b) link right now:
// either a scheduled partition window covers it, or the link is in a
// down flap window. Pure function of (seed, pair, window index), so
// every observer — dials, pumps, the shared sweeper — agrees.
func (p *Plan) LinkDown(a, b ids.DeviceID, elapsed time.Duration) bool {
	if p == nil {
		return false
	}
	if p.Crashed(a, elapsed) || p.Crashed(b, elapsed) {
		p.counters.crashDenials.Add(1)
		return true
	}
	for _, part := range p.parts {
		if part.severs(a, b, elapsed) {
			p.counters.flapsObserved.Add(1)
			return true
		}
	}
	if p.link.FlapRate <= 0 || !p.active(elapsed) {
		return false
	}
	if a > b {
		a, b = b, a
	}
	window := uint64(elapsed / p.link.FlapWindow)
	if unit(p.drawHash(kindFlap, a, b, window)) < p.link.FlapRate {
		p.counters.flapsObserved.Add(1)
		return true
	}
	return false
}

// --- Discovery queries (radio) -------------------------------------------

// Visible reports whether an inquiry by querier sees target at the
// given modeled elapsed time. It implements radio.InquiryFaults.
// Misses are drawn per (querier, target, technology, window);
// asymmetric visibility blocks one direction of a pair per window.
func (p *Plan) Visible(querier, target ids.DeviceID, tech radio.Technology, elapsed time.Duration) bool {
	if p == nil {
		return true
	}
	if p.Crashed(querier, elapsed) || p.Crashed(target, elapsed) {
		p.counters.crashDenials.Add(1)
		return false
	}
	if p.radio.inert() || !p.active(elapsed) {
		return true
	}
	rp := p.radio
	window := uint64(elapsed / rp.Window)
	if rp.Miss > 0 && unit(p.drawHash(kindMiss, querier, target, uint64(tech), window)) < rp.Miss {
		p.counters.inquiriesMissed.Add(1)
		return false
	}
	if rp.Asymmetry > 0 {
		a, b := querier, target
		if a > b {
			a, b = b, a
		}
		h := p.drawHash(kindAsym, a, b, uint64(tech), window)
		if unit(h) < rp.Asymmetry {
			// The pair is asymmetric this window; one hash bit picks the
			// blind direction.
			blindIsLower := h&(1<<60) != 0
			if blindIsLower == (querier == a) {
				p.counters.inquiriesMissed.Add(1)
				return false
			}
		}
	}
	return true
}

// --- Corruption ----------------------------------------------------------

// Corrupt returns a deterministically mangled copy of a payload, keyed
// by the message identity.
func (p *Plan) Corrupt(payload []byte, from, to ids.DeviceID, connSeq, msgSeq uint64) []byte {
	return Mangle(p.drawHash(kindCorrupt, from, to, connSeq, msgSeq, 0xc0ffee), payload)
}

// Mangle deterministically corrupts a copy of data using only the given
// hash word: bit flips, truncation, byte insertion, or a zeroed span,
// chosen and placed by successive mixes of the seed. It never returns
// data unchanged unless data is empty, and it never panics — it is also
// the generator behind the wire codec's corruption fuzz corpus.
func Mangle(seed uint64, data []byte) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	h := mix64(seed)
	switch h % 4 {
	case 0: // flip 1–3 bits
		n := int(mix64(h+1)%3) + 1
		for i := 0; i < n; i++ {
			w := mix64(h + 2 + uint64(i))
			out[w%uint64(len(out))] ^= 1 << (w >> 32 % 8)
		}
		if bytes.Equal(out, data) { // two flips cancelled each other
			out[0] ^= 1
		}
	case 1: // truncate (mod < len, so the copy always shrinks)
		out = out[:mix64(h+1)%uint64(len(out))]
	case 2: // insert a byte
		w := mix64(h + 1)
		pos := int(w % uint64(len(out)+1))
		out = append(out[:pos], append([]byte{byte(w >> 8)}, out[pos:]...)...)
	default: // zero a span
		w := mix64(h + 1)
		start := int(w % uint64(len(out)))
		span := int(w>>16%8) + 1
		changed := false
		for i := start; i < len(out) && i < start+span; i++ {
			if out[i] != 0 {
				changed = true
			}
			out[i] = 0
		}
		if !changed { // span was already zero; guarantee a difference
			out[start] ^= 0xff
		}
	}
	return out
}

// --- Reporting -----------------------------------------------------------

type planCounters struct {
	messagesLost      atomic.Uint64
	linkResets        atomic.Uint64
	messagesCorrupted atomic.Uint64
	messagesDelayed   atomic.Uint64
	flapsObserved     atomic.Uint64
	inquiriesMissed   atomic.Uint64
	messagesStalled   atomic.Uint64
	slowTransfers     atomic.Uint64
	crashDenials      atomic.Uint64
}

// Counters returns a snapshot of the plan's activity totals.
func (p *Plan) Counters() Counters {
	return Counters{
		MessagesLost:      p.counters.messagesLost.Load(),
		LinkResets:        p.counters.linkResets.Load(),
		MessagesCorrupted: p.counters.messagesCorrupted.Load(),
		MessagesDelayed:   p.counters.messagesDelayed.Load(),
		FlapsObserved:     p.counters.flapsObserved.Load(),
		InquiriesMissed:   p.counters.inquiriesMissed.Load(),
		MessagesStalled:   p.counters.messagesStalled.Load(),
		SlowTransfers:     p.counters.slowTransfers.Load(),
		CrashDenials:      p.counters.crashDenials.Load(),
	}
}

// Events returns the traced fault decisions in canonical order
// (link, connection, message, kind) — the replayable event trace two
// same-seed runs must agree on byte-for-byte.
func (p *Plan) Events() []Event {
	p.traceMu.Lock()
	out := append([]Event(nil), p.trace...)
	p.traceMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.ConnSeq != b.ConnSeq {
			return a.ConnSeq < b.ConnSeq
		}
		if a.MsgSeq != b.MsgSeq {
			return a.MsgSeq < b.MsgSeq
		}
		return a.Kind < b.Kind
	})
	return out
}

// EventsDropped reports how many events the bounded trace discarded.
func (p *Plan) EventsDropped() uint64 {
	p.traceMu.Lock()
	defer p.traceMu.Unlock()
	return p.traceDropped
}
