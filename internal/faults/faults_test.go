package faults

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/radio"
)

const (
	devA = ids.DeviceID("dev-a")
	devB = ids.DeviceID("dev-b")
	devC = ids.DeviceID("dev-c")
)

// Two plans with the same seed must answer every query identically:
// determinism is the package's contract.
func TestDrawsArePureFunctionsOfSeed(t *testing.T) {
	mk := func(seed int64) *Plan {
		return New(seed).
			SetLink(LinkProfile{Loss: 0.3, Corrupt: 0.2, Jitter: 40 * time.Millisecond, FlapRate: 0.2}).
			SetRadio(RadioProfile{Miss: 0.25, Asymmetry: 0.2})
	}
	p1, p2 := mk(42), mk(42)
	other := mk(43)

	same, diff := 0, 0
	for conn := uint64(1); conn <= 4; conn++ {
		for msg := uint64(1); msg <= 200; msg++ {
			f1 := p1.MessageFate(devA, devB, conn, msg, 0)
			f2 := p2.MessageFate(devA, devB, conn, msg, 0)
			if f1 != f2 {
				t.Fatalf("fate diverged for conn=%d msg=%d: %+v vs %+v", conn, msg, f1, f2)
			}
			if f1 != (other.MessageFate(devA, devB, conn, msg, 0)) {
				diff++
			} else {
				same++
			}
		}
	}
	if diff == 0 {
		t.Fatalf("different seeds produced identical fates for all %d messages", same+diff)
	}

	for w := 0; w < 100; w++ {
		elapsed := time.Duration(w) * time.Second
		if p1.LinkDown(devA, devB, elapsed) != p2.LinkDown(devA, devB, elapsed) {
			t.Fatalf("LinkDown diverged at %v", elapsed)
		}
		if p1.Visible(devA, devB, radio.Bluetooth, elapsed) != p2.Visible(devA, devB, radio.Bluetooth, elapsed) {
			t.Fatalf("Visible diverged at %v", elapsed)
		}
	}

	// Call-order independence: answers must not depend on query history.
	fresh := mk(42)
	_ = fresh.MessageFate(devB, devC, 9, 9, 0) // unrelated query first
	if got, want := fresh.MessageFate(devA, devB, 1, 1, 0), mk(42).MessageFate(devA, devB, 1, 1, 0); got != want {
		t.Fatalf("fate depends on query history: %+v vs %+v", got, want)
	}
}

// A zero plan must be inert: no fates, no downs, full visibility, no
// counters, no trace.
func TestZeroPlanIsInert(t *testing.T) {
	p := New(7).SetLink(LinkProfile{}).SetRadio(RadioProfile{})
	for msg := uint64(1); msg <= 100; msg++ {
		if f := p.MessageFate(devA, devB, 1, msg, 0); f != (Fate{}) {
			t.Fatalf("zero plan produced fate %+v", f)
		}
	}
	if p.LinkDown(devA, devB, time.Minute) {
		t.Fatal("zero plan severed a link")
	}
	if !p.Visible(devA, devB, radio.Bluetooth, time.Minute) {
		t.Fatal("zero plan hid a neighbor")
	}
	if d := p.ScaleTransfer(time.Second, 0); d != time.Second {
		t.Fatalf("zero plan scaled transfer to %v", d)
	}
	if c := p.Counters(); c != (Counters{}) {
		t.Fatalf("zero plan counted activity: %+v", c)
	}
	if evs := p.Events(); len(evs) != 0 {
		t.Fatalf("zero plan traced %d events", len(evs))
	}

	// A nil plan behaves the same on every query path.
	var nilPlan *Plan
	if f := nilPlan.MessageFate(devA, devB, 1, 1, 0); f != (Fate{}) {
		t.Fatalf("nil plan produced fate %+v", f)
	}
	if nilPlan.LinkDown(devA, devB, 0) || !nilPlan.Visible(devA, devB, radio.WLAN, 0) {
		t.Fatal("nil plan injected faults")
	}
	if d := nilPlan.ScaleTransfer(time.Second, 0); d != time.Second {
		t.Fatalf("nil plan scaled transfer to %v", d)
	}
}

// The active window heals the link and radio profiles at the deadline.
func TestActiveWindowHeals(t *testing.T) {
	p := New(11).
		SetLink(LinkProfile{Loss: 0.9, Corrupt: 0.9, FlapRate: 0.9}).
		SetRadio(RadioProfile{Miss: 0.9}).
		SetActiveWindow(10 * time.Second)

	sawFault := false
	for msg := uint64(1); msg <= 50; msg++ {
		f := p.MessageFate(devA, devB, 1, msg, 5*time.Second)
		if f.Retransmits > 0 || f.Corrupt || f.Reset {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("90% loss produced no faults inside the active window")
	}
	for msg := uint64(100); msg <= 150; msg++ {
		if f := p.MessageFate(devA, devB, 1, msg, 11*time.Second); f != (Fate{}) {
			t.Fatalf("fate %+v after the active window", f)
		}
	}
	healedDown, healedHidden := false, false
	for w := 0; w < 50; w++ {
		at := 10*time.Second + time.Duration(w)*time.Second
		if p.LinkDown(devA, devB, at) {
			healedDown = true
		}
		if !p.Visible(devA, devB, radio.Bluetooth, at) {
			healedHidden = true
		}
	}
	if healedDown || healedHidden {
		t.Fatalf("faults persist after the active window: down=%v hidden=%v", healedDown, healedHidden)
	}
}

// Partitions sever exactly their groups exactly within their window,
// independent of the plan's active window.
func TestPartitionWindow(t *testing.T) {
	p := New(3).
		SetActiveWindow(1 * time.Second). // partitions must ignore this
		AddPartition(PartitionWindow{
			GroupA: []ids.DeviceID{devA},
			GroupB: []ids.DeviceID{devB},
			Start:  10 * time.Second,
			End:    20 * time.Second,
		})
	cases := []struct {
		a, b    ids.DeviceID
		elapsed time.Duration
		down    bool
	}{
		{devA, devB, 9 * time.Second, false},
		{devA, devB, 10 * time.Second, true},
		{devB, devA, 15 * time.Second, true}, // symmetric
		{devA, devB, 20 * time.Second, false},
		{devA, devC, 15 * time.Second, false}, // not in the groups
		{devB, devC, 15 * time.Second, false},
	}
	for _, c := range cases {
		if got := p.LinkDown(c.a, c.b, c.elapsed); got != c.down {
			t.Errorf("LinkDown(%s, %s, %v) = %v, want %v", c.a, c.b, c.elapsed, got, c.down)
		}
	}
}

// Loss rates must shape the retransmission distribution: higher loss,
// more retransmits, and resets appear once the budget can run out.
func TestLossDistribution(t *testing.T) {
	const msgs = 5000
	count := func(loss float64) (retrans, resets int) {
		p := New(99).SetLink(LinkProfile{Loss: loss, MaxRetransmits: 2})
		for msg := uint64(1); msg <= msgs; msg++ {
			f := p.MessageFate(devA, devB, 1, msg, 0)
			retrans += f.Retransmits
			if f.Reset {
				resets++
			}
		}
		return retrans, resets
	}
	lowR, lowResets := count(0.05)
	highR, highResets := count(0.6)
	if highR <= lowR {
		t.Fatalf("retransmits did not grow with loss: %d (60%%) <= %d (5%%)", highR, lowR)
	}
	// At 60% loss with budget 2, P(reset) = 0.6^3 = 21.6%.
	if highResets < msgs/10 {
		t.Fatalf("60%% loss produced only %d resets over %d messages", highResets, msgs)
	}
	if lowResets > msgs/100 {
		t.Fatalf("5%% loss produced %d resets over %d messages", lowResets, msgs)
	}
}

// Asymmetric visibility: when a pair is asymmetric in a window, exactly
// one direction is blind.
func TestAsymmetricVisibility(t *testing.T) {
	p := New(5).SetRadio(RadioProfile{Asymmetry: 0.5})
	asymmetric, symmetric := 0, 0
	for w := 0; w < 200; w++ {
		elapsed := time.Duration(w) * defaultRadioWindow
		ab := p.Visible(devA, devB, radio.Bluetooth, elapsed)
		ba := p.Visible(devB, devA, radio.Bluetooth, elapsed)
		if ab != ba {
			asymmetric++
		} else {
			symmetric++
			if !ab {
				t.Fatalf("window %d: both directions blind with Miss=0", w)
			}
		}
	}
	if asymmetric == 0 || symmetric == 0 {
		t.Fatalf("expected a mix of windows, got %d asymmetric / %d symmetric", asymmetric, symmetric)
	}
}

// Mangle must always change a non-empty payload, never panic, and be a
// pure function of its seed.
func TestMangle(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte("hello"),
		bytes.Repeat([]byte{0}, 16), // all zeros: the zero-span mode must still change it
		bytes.Repeat([]byte("frame\x1ffield"), 20),
	}
	for _, data := range payloads {
		for seed := uint64(0); seed < 500; seed++ {
			m1 := Mangle(seed, data)
			m2 := Mangle(seed, data)
			if !bytes.Equal(m1, m2) {
				t.Fatalf("Mangle(%d) not deterministic", seed)
			}
			if bytes.Equal(m1, data) {
				t.Fatalf("Mangle(%d) left %q unchanged", seed, data)
			}
		}
	}
	if got := Mangle(1, nil); len(got) != 0 {
		t.Fatalf("Mangle of empty payload returned %q", got)
	}
}

// The trace is the replay contract: same seed + same message set =
// identical sorted events, regardless of the order fates were drawn in.
func TestTraceReplaysByteForByte(t *testing.T) {
	run := func(order []int) []Event {
		p := New(21).SetLink(LinkProfile{Loss: 0.4, Corrupt: 0.3, MaxRetransmits: 2})
		var wg sync.WaitGroup
		for _, shard := range order {
			shard := shard
			wg.Add(1)
			go func() {
				defer wg.Done()
				for msg := uint64(1); msg <= 300; msg++ {
					from, to := devA, devB
					if shard%2 == 1 {
						from, to = devB, devA
					}
					p.MessageFate(from, to, uint64(shard), msg, 0)
				}
			}()
		}
		wg.Wait()
		return p.Events()
	}
	a := run([]int{0, 1, 2, 3})
	b := run([]int{3, 2, 1, 0}) // different spawn order, concurrent draws
	if len(a) == 0 {
		t.Fatal("no events traced at 40% loss")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("traces diverged: %d vs %d events", len(a), len(b))
	}
}

// The trace is bounded; overflow is counted, not stored.
func TestTraceBounded(t *testing.T) {
	p := New(77).SetLink(LinkProfile{Loss: 0.99, MaxRetransmits: 1})
	for msg := uint64(1); msg <= maxTraceEvents+5000; msg++ {
		p.MessageFate(devA, devB, 1, msg, 0)
	}
	if got := len(p.Events()); got > maxTraceEvents {
		t.Fatalf("trace grew to %d events (cap %d)", got, maxTraceEvents)
	}
	if p.EventsDropped() == 0 {
		t.Fatal("overflow not counted")
	}
}

// Bandwidth throttling scales transfer charges while active.
func TestScaleTransfer(t *testing.T) {
	p := New(1).SetLink(LinkProfile{BandwidthFactor: 2}).SetActiveWindow(10 * time.Second)
	if got := p.ScaleTransfer(time.Second, 0); got != 2*time.Second {
		t.Fatalf("ScaleTransfer = %v, want 2s", got)
	}
	if got := p.ScaleTransfer(time.Second, 11*time.Second); got != time.Second {
		t.Fatalf("ScaleTransfer after heal = %v, want 1s", got)
	}
}
