// Package geo provides the minimal 2-D geometry the radio environment
// needs: points in meters, vectors, distances and rectangular regions.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in meters on the simulation plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Vec is shorthand for Vector{DX: dx, DY: dy}.
func Vec(dx, dy float64) Vector { return Vector{DX: dx, DY: dy} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// DistanceTo returns the Euclidean distance between p and q in meters.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Vector is a displacement in meters.
type Vector struct {
	DX, DY float64
}

// Length returns the vector's magnitude.
func (v Vector) Length() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v multiplied by k.
func (v Vector) Scale(k float64) Vector { return Vector{v.DX * k, v.DY * k} }

// Unit returns the unit vector in v's direction, or the zero vector if v
// has zero length.
func (v Vector) Unit() Vector {
	l := v.Length()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle; Min is the lower-left corner and
// Max the upper-right.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.Min.X), r.Max.X),
		Y: math.Min(math.Max(p.Y, r.Min.Y), r.Max.Y),
	}
}

// Width returns the rectangle's horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the rectangle's vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}
