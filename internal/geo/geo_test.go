package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 1}, Point{1, 1}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.DistanceTo(tt.q); !almostEqual(got, tt.want) {
				t.Fatalf("DistanceTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	prop := func(ax, ay, bx, by int16) bool {
		p := Point{float64(ax), float64(ay)}
		q := Point{float64(bx), float64(by)}
		return almostEqual(p.DistanceTo(q), q.DistanceTo(p))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSub(t *testing.T) {
	p := Point{1, 2}
	v := Vector{3, -1}
	q := p.Add(v)
	if q != (Point{4, 1}) {
		t.Fatalf("Add = %v", q)
	}
	if got := q.Sub(p); got != v {
		t.Fatalf("Sub = %v, want %v", got, v)
	}
}

func TestVectorUnit(t *testing.T) {
	v := Vector{3, 4}
	u := v.Unit()
	if !almostEqual(u.Length(), 1) {
		t.Fatalf("unit length = %v", u.Length())
	}
	if zero := (Vector{}).Unit(); zero != (Vector{}) {
		t.Fatalf("zero Unit = %v, want zero vector", zero)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2}.Scale(3)
	if v != (Vector{3, -6}) {
		t.Fatalf("Scale = %v", v)
	}
}

func TestRectContainsClamp(t *testing.T) {
	r := NewRect(Point{10, 10}, Point{0, 0}) // corners in any order
	if !r.Contains(Point{5, 5}) {
		t.Error("center should be contained")
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("boundary should be contained")
	}
	if r.Contains(Point{-1, 5}) {
		t.Error("outside point should not be contained")
	}
	if got := r.Clamp(Point{-5, 20}); got != (Point{0, 10}) {
		t.Fatalf("Clamp = %v, want (0, 10)", got)
	}
}

func TestRectClampAlwaysInsideProperty(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{100, 50})
	prop := func(x, y int16) bool {
		return r.Contains(r.Clamp(Point{float64(x), float64(y)}))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectDimensions(t *testing.T) {
	r := NewRect(Point{1, 2}, Point{5, 10})
	if r.Width() != 4 || r.Height() != 8 {
		t.Fatalf("dims = %v x %v", r.Width(), r.Height())
	}
	if got := r.Center(); got != (Point{3, 6}) {
		t.Fatalf("Center = %v", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.25, -2}).String(); got != "(1.2, -2.0)" && got != "(1.3, -2.0)" {
		t.Fatalf("String = %q", got)
	}
}
