// Package gossip implements epidemic dissemination of profile/interest
// records: greedy push rumor mongering with per-rumor hot counters and
// bloom-filter "have" digests, periodic pairwise anti-entropy
// reconciliation, and social-graph-biased peer sampling (CyclonSN-style
// view shuffling weighted toward shared-interest peers). It is an
// alternative group-discovery engine next to the request/response
// fan-out in internal/community: both feed core.Manager, and the
// differential suite proves their views converge to the same oracle.
//
// The design follows the PeerSim newscasting exemplars (greedy rumor
// with bloom_false_positive, ae.* anti-entropy knobs, CyclonSN social
// peer sampling) referenced in SNIPPETS.md.
package gossip

import (
	"hash/fnv"
	"math"
)

// Bloom is a fixed-size bloom filter over record keys (member|epoch).
// It is the "have" digest exchanged on the wire: a responder's bloom
// lets the initiator skip pushing records the responder already holds,
// and an anti-entropy pair exchanges blooms to compute both delta
// directions. False positives only suppress a redundant push (the
// record still spreads through other pairs and through anti-entropy);
// false negatives never occur, so reconciliation never loses a record.
// The salt perturbs the hash pair, so a key's probe positions differ
// between filters built with different salts. Senders salt each digest
// from their seeded rng: a false positive that suppresses a record in
// one exchange is re-drawn in the next, so no record can be suppressed
// forever — the convergence argument needs only that FP draws are
// independent across exchanges, not that they never happen.
type Bloom struct {
	bits  []byte
	nbits uint32
	k     uint8
	count uint32
	salt  uint64
}

// Bloom sizing limits. Decode enforces them too, so a mangled frame
// cannot make a peer allocate unbounded filter memory.
const (
	bloomMaxBits = 1 << 24
	bloomMaxK    = 32
)

// NewBloom sizes a filter for n expected elements at false-positive
// rate p using the textbook optimum m = -n ln p / (ln 2)^2 and
// k = m/n ln 2. n and p are clamped to sane minima so tiny or empty
// sets still produce a valid filter. salt perturbs the hash positions
// (see the type comment).
func NewBloom(n int, p float64, salt uint64) *Bloom {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	ln2 := math.Ln2
	m := math.Ceil(-float64(n) * math.Log(p) / (ln2 * ln2))
	if m < 16 {
		m = 16
	}
	if m > bloomMaxBits {
		m = bloomMaxBits
	}
	// Round m up to a power of two: the double-hashing step h2 is
	// forced odd, and odd is coprime with 2^x, so every probe sequence
	// cycles through all m positions. With arbitrary m a shared factor
	// between h2 and m collapses the k probes onto a handful of bits
	// and the false-positive rate blows past the configured p.
	pow2 := float64(16)
	for pow2 < m {
		pow2 *= 2
	}
	m = pow2
	k := int(math.Round(m / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	if k > bloomMaxK {
		k = bloomMaxK
	}
	nbits := uint32(m)
	return &Bloom{
		bits:  make([]byte, (nbits+7)/8),
		nbits: nbits,
		k:     uint8(k),
		salt:  salt,
	}
}

// bloomHash derives the double-hashing pair (h1, h2) from one FNV-64a
// pass over the salt and key: h1 is the low half, h2 the high half
// forced odd so the probe sequence h1 + i*h2 walks distinct offsets.
func bloomHash(salt uint64, key string) (h1, h2 uint32) {
	h := fnv.New64a()
	var sb [8]byte
	for i := range sb {
		sb[i] = byte(salt >> (8 * i))
	}
	_, _ = h.Write(sb[:])
	_, _ = h.Write([]byte(key))
	s := h.Sum64()
	h1 = uint32(s)
	h2 = uint32(s>>32) | 1
	return h1, h2
}

// Add inserts a key.
func (b *Bloom) Add(key string) {
	h1, h2 := bloomHash(b.salt, key)
	for i := uint32(0); i < uint32(b.k); i++ {
		idx := (h1 + i*h2) % b.nbits
		b.bits[idx>>3] |= 1 << (idx & 7)
	}
	b.count++
}

// Has reports whether the key may be in the set (definitely-absent on
// false; maybe-present on true).
func (b *Bloom) Has(key string) bool {
	if b == nil || b.nbits == 0 {
		return false
	}
	h1, h2 := bloomHash(b.salt, key)
	for i := uint32(0); i < uint32(b.k); i++ {
		idx := (h1 + i*h2) % b.nbits
		if b.bits[idx>>3]&(1<<(idx&7)) == 0 {
			return false
		}
	}
	return true
}

// Salt returns the filter's hash salt.
func (b *Bloom) Salt() uint64 {
	if b == nil {
		return 0
	}
	return b.salt
}

// Count returns the number of Add calls.
func (b *Bloom) Count() int {
	if b == nil {
		return 0
	}
	return int(b.count)
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int {
	if b == nil {
		return 0
	}
	return int(b.nbits)
}

// K returns the number of probe positions per key.
func (b *Bloom) K() int {
	if b == nil {
		return 0
	}
	return int(b.k)
}
