package gossip

import (
	"fmt"
	"testing"

	"repro/internal/ids"
)

// TestBloomProperty pins the filter against a brute-force set oracle
// across seeded element sets: zero false negatives ever, and a
// false-positive rate within 2x of the configured bloom_false_positive
// (the PeerSim exemplar's knob). Keys are drawn from the same
// member|epoch shape real digests hold.
func TestBloomProperty(t *testing.T) {
	t.Parallel()
	const probes = 20000
	for _, tc := range []struct {
		n int
		p float64
	}{
		{1, 0.01},
		{8, 0.01},
		{64, 0.01},
		{500, 0.01},
		{2000, 0.01},
		{64, 0.001},
		{500, 0.001},
		{64, 0.05},
		{500, 0.05},
	} {
		tc := tc
		t.Run(fmt.Sprintf("n=%d/p=%g", tc.n, tc.p), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 4; seed++ {
				b := NewBloom(tc.n, tc.p, mix64(seed))
				oracle := make(map[string]bool, tc.n)
				for i := 0; i < tc.n; i++ {
					key := Record{
						Member: memberKeyForTest(seed, i),
						Epoch:  uint64(i % 7),
					}.Key()
					b.Add(key)
					oracle[key] = true
				}
				// Zero false negatives: everything inserted must test
				// present.
				for key := range oracle {
					if !b.Has(key) {
						t.Fatalf("false negative for %q (n=%d p=%g seed=%d)", key, tc.n, tc.p, seed)
					}
				}
				// False-positive rate over keys the oracle proves
				// absent.
				fp := 0
				tested := 0
				for i := 0; i < probes; i++ {
					key := Record{
						Member: memberKeyForTest(seed+1000, i+1<<20),
						Epoch:  uint64(i%7) + 100,
					}.Key()
					if oracle[key] {
						continue
					}
					tested++
					if b.Has(key) {
						fp++
					}
				}
				rate := float64(fp) / float64(tested)
				if rate > 2*tc.p {
					t.Fatalf("false-positive rate %.4f exceeds 2x configured %.4f (n=%d seed=%d, %d/%d)",
						rate, tc.p, tc.n, seed, fp, tested)
				}
			}
		})
	}
}

func memberKeyForTest(seed uint64, i int) ids.MemberID {
	return ids.MemberID(fmt.Sprintf("member-%x-%d", mix64(seed^uint64(i)), i))
}

// TestBloomSaltIndependence checks that two filters over the same set
// with different salts disagree on their false positives — the
// property the anti-entropy convergence argument rests on (an FP in
// one exchange is re-drawn in the next).
func TestBloomSaltIndependence(t *testing.T) {
	t.Parallel()
	const n = 200
	build := func(salt uint64) *Bloom {
		b := NewBloom(n, 0.05, salt)
		for i := 0; i < n; i++ {
			b.Add(fmt.Sprintf("k-%d", i))
		}
		return b
	}
	a, bb := build(1), build(2)
	bothFP := 0
	eitherFP := 0
	for i := 0; i < 50000; i++ {
		key := fmt.Sprintf("absent-%d", i)
		fa, fb := a.Has(key), bb.Has(key)
		if fa || fb {
			eitherFP++
		}
		if fa && fb {
			bothFP++
		}
	}
	if eitherFP == 0 {
		t.Skip("no false positives drawn at all")
	}
	// Independent draws at rate p should coincide at roughly p^2; if
	// the salt did nothing they would coincide at p. Allow generous
	// slack: coincidences must be well under half the singles.
	if bothFP*4 > eitherFP {
		t.Fatalf("salted filters share too many false positives: both=%d either=%d", bothFP, eitherFP)
	}
}

// TestBloomZeroValue pins nil/empty behavior: a nil filter claims
// nothing, so a missing digest never suppresses a push.
func TestBloomZeroValue(t *testing.T) {
	t.Parallel()
	var b *Bloom
	if b.Has("anything") {
		t.Fatal("nil bloom claims membership")
	}
	if b.Count() != 0 || b.Bits() != 0 || b.K() != 0 || b.Salt() != 0 {
		t.Fatal("nil bloom reports non-zero shape")
	}
}

// TestBloomWireRoundTrip proves a decoded filter answers exactly like
// the original, bit for bit, salt included.
func TestBloomWireRoundTrip(t *testing.T) {
	t.Parallel()
	b := NewBloom(64, 0.01, 0xfeed)
	keys := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("rt-%d", i)
		keys = append(keys, k)
		b.Add(k)
	}
	frame := MarshalDigest(FrameDigest{From: "dev", Bloom: b})
	dec, err := UnmarshalDigest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Bloom == nil {
		t.Fatal("bloom lost in round trip")
	}
	if dec.Bloom.Bits() != b.Bits() || dec.Bloom.K() != b.K() || dec.Bloom.Count() != b.Count() || dec.Bloom.Salt() != b.Salt() {
		t.Fatalf("shape changed: %d/%d/%d/%d -> %d/%d/%d/%d",
			b.Bits(), b.K(), b.Count(), b.Salt(), dec.Bloom.Bits(), dec.Bloom.K(), dec.Bloom.Count(), dec.Bloom.Salt())
	}
	for _, k := range keys {
		if !dec.Bloom.Has(k) {
			t.Fatalf("decoded bloom lost key %q", k)
		}
	}
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if b.Has(k) != dec.Bloom.Has(k) {
			t.Fatalf("decoded bloom disagrees on %q", k)
		}
	}
}
