package gossip_test

// Differential convergence oracle: the epidemic engine and the
// request/response fan-out engine are two implementations of one
// observable — a member's proximity-scoped group view. This suite
// builds full community stacks (daemon, server, client, gossip node)
// through scenario.Builder, drives both engines to quiescence in a
// fault-free world, and requires every member's gossip view to
// DeepEqual its fan-out client view AND the analytic oracle
// (core.DiscoverGroups over true radio neighborhoods and live profile
// stores). Each scenario then mutates live profiles across several
// epochs — every epoch is a fresh case: bumped store epochs must
// become fresh rumors, supersede stale records, and re-converge.
//
// The matrix alternates the goroutine and discrete-event transports
// and three topologies (dense mesh, partitioned clusters with a
// bridge node, a multi-hop chain), following the discipline of
// internal/netsim/differential_test.go.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/gossip"
	"repro/internal/ids"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// Suite size: smallScenarios × epochsPerScenario epoch-cases plus the
// two large single-epoch worlds. The floor is pinned by
// TestDifferentialCaseFloor.
const (
	diffSmallScenarios    = 34
	diffEpochsPerScenario = 3
	diffLargeCases        = 2
	diffCaseFloor         = 100
	diffMaxRounds         = 60
)

// diffView is a canonical group view: interest → sorted member IDs.
type diffView map[string][]string

func canonicalGroups(groups []core.Group) diffView {
	out := make(diffView, len(groups))
	for _, g := range groups {
		ms := make([]string, 0, len(g.Members))
		for _, m := range g.Members {
			ms = append(ms, string(m.ID))
		}
		sort.Strings(ms)
		out[g.Interest] = ms
	}
	return out
}

// diffOracle computes the fault-free truth for one member:
// DiscoverGroups over its actual radio neighbors with everyone's
// interests read from the live profile stores.
func diffOracle(dep *scenario.Deployment, m ids.MemberID, byDevice map[ids.DeviceID]ids.MemberID) (diffView, error) {
	self, err := diffLiveMember(dep, m)
	if err != nil {
		return nil, err
	}
	var nearby []core.Member
	for _, dev := range dep.Env.Neighbors(self.Device, radio.Bluetooth) {
		other, ok := byDevice[dev]
		if !ok {
			continue
		}
		om, err := diffLiveMember(dep, other)
		if err != nil {
			return nil, err
		}
		nearby = append(nearby, om)
	}
	return canonicalGroups(core.DiscoverGroups(self, nearby, nil)), nil
}

func diffLiveMember(dep *scenario.Deployment, m ids.MemberID) (core.Member, error) {
	peer := dep.MustPeer(m)
	p, err := peer.Store.ActiveProfile()
	if err != nil {
		return core.Member{}, err
	}
	return core.Member{Device: peer.Daemon.Device(), ID: m, Interests: p.Interests}, nil
}

// diffPos places member i of n in one of three topologies:
//
//	layout 0 — dense mesh: a tight grid, everyone in Bluetooth range
//	           of everyone;
//	layout 1 — two clusters 15 m apart (cross-cluster links are out of
//	           the 10 m Bluetooth range) joined by one bridge device
//	           that reaches both: gossip carries records multi-hop,
//	           but views stay proximity-scoped;
//	layout 2 — a chain with 6 m spacing: each device reaches only its
//	           immediate neighbors, so every view differs.
func diffPos(layout, i, n int) geo.Point {
	switch layout {
	case 1:
		if i == n-1 {
			return geo.Pt(27.5, 20) // the bridge
		}
		cx := 20.0
		if i%2 == 1 {
			cx = 35.0
		}
		// Spread each cluster's members on a small radius-2 arc.
		step := float64(i/2) * 0.7
		return geo.Pt(cx+2-0.1*step, 18+step)
	case 2:
		return geo.Pt(10+6*float64(i), 20)
	default:
		// A 0.4 m grid: even 200 devices span under 8 m corner to
		// corner, inside everyone's Bluetooth range.
		return geo.Pt(20+0.4*float64(i%10), 20+0.4*float64(i/10))
	}
}

// diffInterests assigns member i a deterministic subset of the pool,
// varied by scenario index so group structure differs per scenario.
func diffInterests(scn, i int) []string {
	pool := []string{"football", "biking", "music", "chess", "cinema"}
	out := []string{pool[(i+scn)%len(pool)]}
	if i%2 == 0 {
		out = append(out, pool[(2*i+scn)%len(pool)])
	}
	return out
}

// buildDiffWorld assembles a gossip-enabled deployment.
func buildDiffWorld(t *testing.T, scn, n, layout int, seed int64, des bool, cfg gossip.Config) (*scenario.Deployment, []ids.MemberID, map[ids.DeviceID]ids.MemberID) {
	t.Helper()
	b := scenario.NewBuilder().
		WithSeed(seed).
		WithScale(vtime.NewScale(1e-6)).
		WithGossip(cfg)
	if des {
		b.WithDES(4)
	}
	for i := 0; i < n; i++ {
		b.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("m%03d", i)),
			Position:  diffPos(layout, i, n),
			Interests: diffInterests(scn, i),
		})
	}
	dep, err := b.Build()
	if err != nil {
		t.Fatalf("building world: %v", err)
	}
	t.Cleanup(dep.Stop)
	members := dep.Members()
	byDevice := make(map[ids.DeviceID]ids.MemberID, len(members))
	for _, m := range members {
		byDevice[dep.MustPeer(m).Daemon.Device()] = m
	}
	return dep, members, byDevice
}

// convergeCase drives both engines until every probed member's client
// view and gossip view equal the oracle in the same sweep, or the
// round budget runs out. probe nil means probe everyone.
func convergeCase(ctx context.Context, t *testing.T, dep *scenario.Deployment, members, probe []ids.MemberID, byDevice map[ids.DeviceID]ids.MemberID) bool {
	t.Helper()
	if probe == nil {
		probe = members
	}
	for round := 0; round < diffMaxRounds; round++ {
		for _, m := range probe {
			peer := dep.MustPeer(m)
			if err := peer.Daemon.RefreshNow(ctx); err != nil {
				t.Fatalf("refresh %s: %v", m, err)
			}
			if _, err := peer.Client.RefreshGroups(ctx); err != nil {
				t.Fatalf("refresh groups %s: %v", m, err)
			}
		}
		for _, m := range members {
			dep.MustPeer(m).Gossip.Round(ctx)
		}
		converged := true
		for _, m := range probe {
			want, err := diffOracle(dep, m, byDevice)
			if err != nil {
				t.Fatalf("oracle %s: %v", m, err)
			}
			peer := dep.MustPeer(m)
			if !reflect.DeepEqual(canonicalGroups(peer.Client.Groups()), want) {
				converged = false
				break
			}
			peer.Gossip.Refresh()
			if !reflect.DeepEqual(canonicalGroups(peer.Gossip.Groups()), want) {
				converged = false
				break
			}
		}
		if converged {
			return true
		}
	}
	// Report one divergent member for the failure message.
	for _, m := range probe {
		want, _ := diffOracle(dep, m, byDevice)
		peer := dep.MustPeer(m)
		cv := canonicalGroups(peer.Client.Groups())
		gv := canonicalGroups(peer.Gossip.Groups())
		if !reflect.DeepEqual(cv, want) || !reflect.DeepEqual(gv, want) {
			t.Errorf("member %s diverged after %d rounds:\n  oracle: %v\n  client: %v\n  gossip: %v",
				m, diffMaxRounds, want, cv, gv)
			return false
		}
	}
	return false
}

// TestDifferentialConvergence is the small-world matrix: 34 scenarios
// alternating transports and topologies, each converged across 3
// profile epochs — 102 cases.
func TestDifferentialConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is long; skipped in -short mode")
	}
	for scn := 0; scn < diffSmallScenarios; scn++ {
		scn := scn
		layout := scn % 3
		n := 4 + (scn%4)*2 // 4, 6, 8, 10
		des := scn%2 == 1
		engine := "go"
		if des {
			engine = "des"
		}
		name := fmt.Sprintf("scn-%02d-%s-layout%d-n%d", scn, engine, layout, n)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			dep, members, byDevice := buildDiffWorld(t, scn, n, layout, 1000+int64(scn)*131, des, gossip.Config{})
			ctx := context.Background()
			for epoch := 0; epoch < diffEpochsPerScenario; epoch++ {
				if epoch > 0 {
					// Mutate a rotating third of the members: the store
					// epoch bumps, the next refreshSelf re-hots the
					// record, and both engines must chase the new truth.
					for i, m := range members {
						if i%3 == epoch%3 {
							if err := dep.MustPeer(m).Store.AddInterest(m, fmt.Sprintf("epoch-%d", epoch)); err != nil {
								t.Fatalf("mutating %s: %v", m, err)
							}
						}
					}
				}
				if !convergeCase(ctx, t, dep, members, nil, byDevice) {
					t.Fatalf("epoch case %d did not converge", epoch)
				}
			}
		})
	}
}

// TestDifferentialConvergenceLarge runs the two big single-epoch
// worlds (n=100 goroutine, n=200 DES — the issue's n ≤ 200 ceiling).
// Gossip views are verified for every member; the O(n²)-cost fan-out
// comparison probes a spread subset, which transitively pins the rest
// through the shared oracle.
func TestDifferentialConvergenceLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is long; skipped in -short mode")
	}
	cases := []struct {
		name string
		n    int
		des  bool
	}{
		{"go-n100", 100, false},
		{"des-n200", 200, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Fanout 3 spreads rumors in O(log4 n) rounds — the round
			// count, not the per-round push volume, dominates the big
			// worlds' wall time.
			dep, members, byDevice := buildDiffWorld(t, 50, tc.n, 0, 9000+int64(tc.n), tc.des, gossip.Config{Fanout: 3})
			probe := make([]ids.MemberID, 0, 12)
			for i := 0; i < len(members) && len(probe) < 12; i += len(members)/12 + 1 {
				probe = append(probe, members[i])
			}
			ctx := context.Background()
			if !convergeCase(ctx, t, dep, members, probe, byDevice) {
				t.Fatal("large world did not converge")
			}
			// Beyond the probed clients: every member's gossip view must
			// reach its oracle. The probe set converging first does not
			// imply the stragglers have — keep driving rounds until the
			// whole deployment agrees.
			for round := 0; ; round++ {
				var diverged ids.MemberID
				var got, want diffView
				for _, m := range members {
					w, err := diffOracle(dep, m, byDevice)
					if err != nil {
						t.Fatal(err)
					}
					peer := dep.MustPeer(m)
					peer.Gossip.Refresh()
					if g := canonicalGroups(peer.Gossip.Groups()); !reflect.DeepEqual(g, w) {
						diverged, got, want = m, g, w
						break
					}
				}
				if diverged == "" {
					break
				}
				if round >= diffMaxRounds {
					t.Fatalf("member %s gossip view still diverged after %d extra rounds:\n  got  %v\n  want %v",
						diverged, round, got, want)
				}
				for _, m := range members {
					dep.MustPeer(m).Gossip.Round(ctx)
				}
			}
		})
	}
}

// TestDifferentialCaseFloor pins the suite size the issue requires:
// at least 100 scenario×epoch cases.
func TestDifferentialCaseFloor(t *testing.T) {
	total := diffSmallScenarios*diffEpochsPerScenario + diffLargeCases
	if total < diffCaseFloor {
		t.Fatalf("differential suite has %d cases, need >= %d", total, diffCaseFloor)
	}
}
