package gossip

import (
	"reflect"
	"testing"

	"repro/internal/faults"
)

// The fuzzers hold the gossip codec to the community codec's
// never-panic discipline. Seeds start from valid frames plus the exact
// damage the chaos fault plane inflicts (faults.Mangle: bit flips,
// truncation, insertion, zeroed spans), with extra seeds that mangle
// only the bloom payload region — the length-prefixed filter is the
// most structured part of the frame and the easiest to overrun.

func gossipMangledCorpus(frames ...[]byte) [][]byte {
	var out [][]byte
	for _, frame := range frames {
		for seed := uint64(0); seed < 8; seed++ {
			out = append(out, faults.Mangle(seed, frame))
		}
		// Truncations that cut into the bloom bits and the checksum.
		if len(frame) > 12 {
			out = append(out, frame[:len(frame)-9])
			out = append(out, frame[:len(frame)/2])
			out = append(out, frame[:3])
		}
	}
	return out
}

func fuzzFrames() [][]byte {
	return [][]byte{
		MarshalRumor(FrameRumor{From: "dev-a", Records: sampleRecords(), View: sampleView()}),
		MarshalAck(FrameAck{KnownMask: []byte{0x05}, Bloom: sampleBloom(), View: sampleView()}),
		MarshalDigest(FrameDigest{From: "dev-b", Bloom: sampleBloom(), View: sampleView()}),
		MarshalDelta(FrameDelta{From: "dev-c", Records: sampleRecords(), Bloom: sampleBloom()}),
		MarshalDigest(FrameDigest{From: "dev-e", Bloom: NewBloom(2000, 0.001, 42)}),
	}
}

func FuzzUnmarshalRumor(f *testing.F) {
	for _, m := range gossipMangledCorpus(fuzzFrames()...) {
		f.Add(m)
	}
	f.Add([]byte{})
	f.Add([]byte{frameMagic, frameVersion, kindRumor})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalRumor(data)
		if err != nil {
			return
		}
		out, err := UnmarshalRumor(MarshalRumor(in))
		if err != nil {
			t.Fatalf("re-decode of valid rumor failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("rumor round trip changed: %+v -> %+v", in, out)
		}
	})
}

func FuzzUnmarshalAck(f *testing.F) {
	for _, m := range gossipMangledCorpus(fuzzFrames()...) {
		f.Add(m)
	}
	f.Add([]byte{frameMagic, frameVersion, kindAck, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalAck(data)
		if err != nil {
			return
		}
		out, err := UnmarshalAck(MarshalAck(in))
		if err != nil {
			t.Fatalf("re-decode of valid ack failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("ack round trip changed: %+v -> %+v", in, out)
		}
	})
}

func FuzzUnmarshalDigest(f *testing.F) {
	for _, m := range gossipMangledCorpus(fuzzFrames()...) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalDigest(data)
		if err != nil {
			return
		}
		out, err := UnmarshalDigest(MarshalDigest(in))
		if err != nil {
			t.Fatalf("re-decode of valid digest failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("digest round trip changed: %+v -> %+v", in, out)
		}
		// A decoded bloom must be usable, not just structurally valid.
		if in.Bloom != nil {
			_ = in.Bloom.Has("probe")
		}
	})
}

func FuzzUnmarshalDelta(f *testing.F) {
	for _, m := range gossipMangledCorpus(fuzzFrames()...) {
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := UnmarshalDelta(data)
		if err != nil {
			return
		}
		out, err := UnmarshalDelta(MarshalDelta(in))
		if err != nil {
			t.Fatalf("re-decode of valid delta failed: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("delta round trip changed: %+v -> %+v", in, out)
		}
	})
}
