package gossip

import (
	"context"
	"errors"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/interest"
	"repro/internal/netsim"
	"repro/internal/radio"
)

// Port is the listener port every gossip node binds. It lives next to
// the daemon/community service ports in the device's port namespace.
const Port = "gossip"

// Config tunes the epidemic. The zero value is normalized to the
// defaults below (mirroring the PeerSim exemplar knobs: greedy rumor
// mongering, bloom_false_positive 0.01, periodic anti-entropy,
// CyclonSN shuffle).
type Config struct {
	// Fanout is how many rumor pushes a node attempts per round.
	Fanout int
	// HotCount is a fresh rumor's initial hot counter; each push the
	// receiver already knew decays it by one, and at zero the node
	// stops pushing the rumor (greedy feedback-counter mongering).
	HotCount int
	// BloomFP is the configured false-positive rate of "have" digests.
	BloomFP float64
	// AEEvery runs one anti-entropy exchange every AEEvery-th round.
	AEEvery int
	// ViewSize caps the peer-sampling view.
	ViewSize int
	// Shuffle is how many view entries ride on each frame.
	Shuffle int
	// DisableRumors suppresses the push phase entirely — convergence
	// then rests on anti-entropy alone (the chaos suite uses this to
	// prove the anti-entropy guarantee in isolation).
	DisableRumors bool
	// DisableAntiEntropy suppresses the periodic reconciliation.
	DisableAntiEntropy bool
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 1
	}
	if c.HotCount <= 0 {
		c.HotCount = 2
	}
	if c.BloomFP <= 0 || c.BloomFP >= 1 {
		c.BloomFP = 0.01
	}
	if c.AEEvery <= 0 {
		c.AEEvery = 4
	}
	if c.ViewSize <= 0 {
		c.ViewSize = 16
	}
	if c.Shuffle <= 0 {
		c.Shuffle = 4
	}
	return c
}

// Stats counts one node's gossip activity. All counters are
// monotonically increasing; Add folds another node's counters in, so a
// deployment can report fleet totals.
type Stats struct {
	Rounds           uint64 // Round calls
	PushesSent       uint64 // rumor frames pushed
	PushesSkipped    uint64 // pushes skipped because the cached digest covered every hot rumor
	PushErrors       uint64 // rumor exchanges that failed (dial/send/recv)
	RumorRecordsSent uint64 // records carried by pushed rumor frames
	RumorsDied       uint64 // hot counters that decayed to zero
	RecordsLearned   uint64 // fresh records applied (any source)
	AERuns           uint64 // anti-entropy exchanges initiated
	AEErrors         uint64 // anti-entropy exchanges that failed
	AERecordsPulled  uint64 // records learned from anti-entropy replies
	AERecordsPushed  uint64 // records sent in closing anti-entropy deltas
	FramesIn         uint64 // well-formed frames served
	FramesRejected   uint64 // frames that failed decode
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.PushesSent += other.PushesSent
	s.PushesSkipped += other.PushesSkipped
	s.PushErrors += other.PushErrors
	s.RumorRecordsSent += other.RumorRecordsSent
	s.RumorsDied += other.RumorsDied
	s.RecordsLearned += other.RecordsLearned
	s.AERuns += other.AERuns
	s.AEErrors += other.AEErrors
	s.AERecordsPulled += other.AERecordsPulled
	s.AERecordsPushed += other.AERecordsPushed
	s.FramesIn += other.FramesIn
	s.FramesRejected += other.FramesRejected
}

// Params wires a Node into a device.
type Params struct {
	Device ids.DeviceID
	Member ids.MemberID
	// Self supplies the local record (interests + store epoch) at the
	// top of every round; Member/Device are overwritten by the node.
	// The scenario wiring reads the live profile store, so an interest
	// edit bumps the epoch and becomes a fresh rumor automatically.
	Self func() Record
	// Neighbors supplies the current radio neighborhood — gossip only
	// ever dials devices that are actually in range, and group views
	// are intersected with this set (proximity groups, not global
	// membership).
	Neighbors func() []ids.DeviceID
	Net       *netsim.Network
	// Tech defaults to Bluetooth, the thesis's proximity technology.
	Tech radio.Technology
	// Sem is the shared taught-synonym layer; may be nil, and must
	// match the fan-out client's so both engines canon the same way.
	Sem  *interest.Semantics
	Seed int64
	Config
}

// Node is one device's gossip engine. It is driven externally:
// Round(ctx) executes one gossip round (rumor pushes, then possibly an
// anti-entropy exchange); nothing runs on a timer, which keeps the
// schedule deterministic under the sequential chaos driver and makes
// the node engine-agnostic (goroutine and DES transports both just
// call Round). Start installs the listener that serves the passive
// side.
type Node struct {
	dev       ids.DeviceID
	member    ids.MemberID
	self      func() Record
	neighbors func() []ids.DeviceID
	net       *netsim.Network
	tech      radio.Technology
	cfg       Config
	mgr       *core.Manager

	mu       sync.Mutex
	records  map[ids.MemberID]Record
	byDevice map[ids.DeviceID]ids.MemberID
	hot      map[ids.MemberID]int
	peerHave map[ids.DeviceID]*Bloom
	view     []ViewEntry
	rngState uint64
	round    uint64
	version  uint64
	stats    Stats

	lis     *netsim.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// NewNode builds a node; call Start to begin serving.
func NewNode(p Params) (*Node, error) {
	if p.Device == "" || p.Member == "" {
		return nil, errors.New("gossip: missing device or member")
	}
	if p.Self == nil || p.Neighbors == nil || p.Net == nil {
		return nil, errors.New("gossip: missing Self, Neighbors or Net")
	}
	if p.Tech == radio.TechNone {
		p.Tech = radio.Bluetooth
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.Device))
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		dev:       p.Device,
		member:    p.Member,
		self:      p.Self,
		neighbors: p.Neighbors,
		net:       p.Net,
		tech:      p.Tech,
		cfg:       p.Config.withDefaults(),
		mgr: core.NewManager(core.Member{
			Device: p.Device,
			ID:     p.Member,
		}, p.Sem),
		records:  make(map[ids.MemberID]Record),
		byDevice: make(map[ids.DeviceID]ids.MemberID),
		hot:      make(map[ids.MemberID]int),
		peerHave: make(map[ids.DeviceID]*Bloom),
		rngState: mix64(uint64(p.Seed) ^ h.Sum64()),
		ctx:      ctx,
		cancel:   cancel,
	}
	return n, nil
}

// Start binds the gossip port and serves inbound exchanges until Stop.
func (n *Node) Start() error {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return errors.New("gossip: already started")
	}
	n.started = true
	n.mu.Unlock()
	lis, err := n.net.Listen(n.dev, Port)
	if err != nil {
		return err
	}
	n.lis = lis
	n.wg.Add(1)
	go n.acceptLoop(lis)
	return nil
}

// Stop closes the listener, cancels in-flight exchanges and waits for
// every handler goroutine (the leak checker holds us to that).
func (n *Node) Stop() {
	n.cancel()
	if n.lis != nil {
		n.lis.Close()
	}
	n.wg.Wait()
}

func (n *Node) acceptLoop(lis *netsim.Listener) {
	defer n.wg.Done()
	for {
		conn, err := lis.Accept(n.ctx)
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.serve(conn)
	}
}

// --- record state ---

// applyLocked folds one remote record in; it reports true when the
// record was fresh (unknown member or newer epoch). Fresh records
// re-enter the hot set — the relay half of rumor mongering. Records
// claiming the local member identity are ignored: only the local store
// authors those.
func (n *Node) applyLocked(rec Record) bool {
	if rec.Member == "" || rec.Device == "" || rec.Member == n.member {
		return false
	}
	if cur, ok := n.records[rec.Member]; ok && rec.Epoch <= cur.Epoch {
		return false
	}
	n.records[rec.Member] = rec
	n.byDevice[rec.Device] = rec.Member
	n.hot[rec.Member] = n.cfg.HotCount
	n.version++
	n.stats.RecordsLearned++
	return true
}

// refreshSelf pulls the local record from the supplier; an epoch bump
// (interest edit, profile change) re-hots the self rumor.
func (n *Node) refreshSelf() {
	rec := n.self()
	rec.Member, rec.Device = n.member, n.dev
	n.mu.Lock()
	cur, ok := n.records[n.member]
	if !ok || rec.Epoch > cur.Epoch {
		n.records[n.member] = rec
		n.byDevice[n.dev] = n.member
		n.hot[n.member] = n.cfg.HotCount
		n.version++
	}
	n.mu.Unlock()
}

// decayHotLocked applies redundant-push feedback for one record; the
// epoch guard keeps a stale ack from decaying a rumor that was re-hotted
// by a newer epoch meanwhile.
func (n *Node) decayHotLocked(rec Record) {
	cur, ok := n.records[rec.Member]
	if !ok || cur.Epoch != rec.Epoch {
		return
	}
	h, ok := n.hot[rec.Member]
	if !ok {
		return
	}
	h--
	if h <= 0 {
		delete(n.hot, rec.Member)
		n.stats.RumorsDied++
		return
	}
	n.hot[rec.Member] = h
}

// hotRecordsLocked snapshots the hot set sorted by member.
func (n *Node) hotRecordsLocked() []Record {
	if len(n.hot) == 0 {
		return nil
	}
	out := make([]Record, 0, len(n.hot))
	for m := range n.hot {
		if rec, ok := n.records[m]; ok {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

// buildBloomLocked digests the full record set under a fresh rng salt.
func (n *Node) buildBloomLocked() *Bloom {
	b := NewBloom(len(n.records), n.cfg.BloomFP, n.nextRand())
	for _, rec := range n.records {
		b.Add(rec.Key())
	}
	return b
}

// missingLocked returns the records a peer's digest does not cover,
// sorted by member.
func (n *Node) missingLocked(have *Bloom) []Record {
	var out []Record
	for _, rec := range n.records {
		if !have.Has(rec.Key()) {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

func maskBit(mask []byte, i int) bool {
	if i>>3 >= len(mask) {
		return false
	}
	return mask[i>>3]&(1<<(i&7)) != 0
}

// --- active side ---

// Round executes one gossip round: refresh the local record, push hot
// rumors to socially sampled partners, and every AEEvery-th round run
// one anti-entropy reconciliation with a uniformly drawn neighbor.
func (n *Node) Round(ctx context.Context) {
	n.refreshSelf()
	n.mu.Lock()
	n.round++
	r := n.round
	n.stats.Rounds++
	n.mu.Unlock()
	neigh := append([]ids.DeviceID(nil), n.neighbors()...)
	sort.Slice(neigh, func(i, j int) bool { return neigh[i] < neigh[j] })
	if len(neigh) > 0 {
		if !n.cfg.DisableRumors {
			n.pushRumors(ctx, neigh)
		}
		if !n.cfg.DisableAntiEntropy && r%uint64(n.cfg.AEEvery) == 0 {
			n.antiEntropy(ctx, neigh)
		}
	}
	n.mu.Lock()
	n.ageView()
	n.mu.Unlock()
}

func (n *Node) pushRumors(ctx context.Context, neigh []ids.DeviceID) {
	n.mu.Lock()
	hotRecs := n.hotRecordsLocked()
	n.mu.Unlock()
	if len(hotRecs) == 0 {
		return
	}
	used := make(map[ids.DeviceID]bool, n.cfg.Fanout)
	for i := 0; i < n.cfg.Fanout; i++ {
		n.mu.Lock()
		partner := n.pickPartner(neigh, used)
		var fresh []Record
		if partner != "" {
			have := n.peerHave[partner]
			for _, rec := range hotRecs {
				if !have.Has(rec.Key()) {
					fresh = append(fresh, rec)
				}
			}
			if len(fresh) == 0 {
				n.stats.PushesSkipped++
			}
		}
		n.mu.Unlock()
		if partner == "" {
			return
		}
		used[partner] = true
		if len(fresh) == 0 {
			continue
		}
		n.exchangeRumor(ctx, partner, fresh)
	}
}

func (n *Node) exchangeRumor(ctx context.Context, partner ids.DeviceID, fresh []Record) {
	n.mu.Lock()
	frame := MarshalRumor(FrameRumor{From: n.dev, Records: fresh, View: n.viewSample()})
	n.mu.Unlock()
	conn, err := n.net.Dial(ctx, n.dev, partner, n.tech, Port)
	if err != nil {
		n.notePushError(partner)
		return
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(frame); err != nil {
		n.notePushError(partner)
		return
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		n.notePushError(partner)
		return
	}
	ack, err := UnmarshalAck(resp)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.stats.PushesSent++
	n.stats.RumorRecordsSent += uint64(len(fresh))
	for i, rec := range fresh {
		if maskBit(ack.KnownMask, i) {
			n.decayHotLocked(rec)
		}
	}
	if ack.Bloom != nil {
		n.peerHave[partner] = ack.Bloom
	}
	n.mergeView(ack.View, "", "")
	n.mu.Unlock()
}

// notePushError records a failed exchange and drops the partner's
// cached digest — after an error we no longer know what they have.
func (n *Node) notePushError(partner ids.DeviceID) {
	n.mu.Lock()
	n.stats.PushErrors++
	delete(n.peerHave, partner)
	n.mu.Unlock()
}

// antiEntropy runs one push-pull reconciliation: send our digest, pull
// the partner's missing records (plus their digest), push back what
// they lack, and wait for their closing ack so the exchange is fully
// applied on both sides before the round returns.
func (n *Node) antiEntropy(ctx context.Context, neigh []ids.DeviceID) {
	n.mu.Lock()
	partner := n.pickUniform(neigh)
	var frame []byte
	if partner != "" {
		frame = MarshalDigest(FrameDigest{From: n.dev, Bloom: n.buildBloomLocked(), View: n.viewSample()})
	}
	n.mu.Unlock()
	if partner == "" {
		return
	}
	fail := func() {
		n.mu.Lock()
		n.stats.AEErrors++
		delete(n.peerHave, partner)
		n.mu.Unlock()
	}
	conn, err := n.net.Dial(ctx, n.dev, partner, n.tech, Port)
	if err != nil {
		fail()
		return
	}
	defer func() { _ = conn.Close() }()
	if err := conn.Send(frame); err != nil {
		fail()
		return
	}
	resp, err := conn.Recv(ctx)
	if err != nil {
		fail()
		return
	}
	delta, err := UnmarshalDelta(resp)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		fail()
		return
	}
	n.mu.Lock()
	pulled := uint64(0)
	for _, rec := range delta.Records {
		if n.applyLocked(rec) {
			pulled++
		}
	}
	var back []Record
	if delta.Bloom != nil {
		back = n.missingLocked(delta.Bloom)
		n.peerHave[partner] = delta.Bloom
	}
	closing := MarshalDelta(FrameDelta{From: n.dev, Records: back})
	n.stats.AERuns++
	n.stats.AERecordsPulled += pulled
	n.stats.AERecordsPushed += uint64(len(back))
	n.mu.Unlock()
	if err := conn.Send(closing); err != nil {
		fail()
		return
	}
	// The final ack guarantees the partner applied the closing delta
	// before this round completes (the sequential chaos driver relies
	// on rounds being fully settled when Round returns).
	if _, err := conn.Recv(ctx); err != nil {
		fail()
	}
}

// --- passive side ---

func (n *Node) serve(conn *netsim.Conn) {
	defer n.wg.Done()
	defer func() { _ = conn.Close() }()
	data, err := conn.Recv(n.ctx)
	if err != nil {
		return
	}
	kind, err := FrameKind(data)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	switch kind {
	case kindRumor:
		n.serveRumor(conn, data)
	case kindDigest:
		n.serveDigest(conn, data)
	default:
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
	}
}

func (n *Node) serveRumor(conn *netsim.Conn, data []byte) {
	f, err := UnmarshalRumor(data)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.stats.FramesIn++
	mask := make([]byte, (len(f.Records)+7)/8)
	for i, rec := range f.Records {
		if !n.applyLocked(rec) {
			mask[i>>3] |= 1 << (i & 7)
		}
	}
	n.mergeView(f.View, "", "")
	ack := MarshalAck(FrameAck{KnownMask: mask, Bloom: n.buildBloomLocked(), View: n.viewSample()})
	n.mu.Unlock()
	_ = conn.Send(ack)
}

func (n *Node) serveDigest(conn *netsim.Conn, data []byte) {
	f, err := UnmarshalDigest(data)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.stats.FramesIn++
	if f.Bloom != nil && f.From != "" {
		n.peerHave[f.From] = f.Bloom
	}
	n.mergeView(f.View, "", "")
	fresh := n.missingLocked(f.Bloom)
	reply := MarshalDelta(FrameDelta{From: n.dev, Records: fresh, Bloom: n.buildBloomLocked()})
	n.mu.Unlock()
	if err := conn.Send(reply); err != nil {
		return
	}
	data2, err := conn.Recv(n.ctx)
	if err != nil {
		return
	}
	closing, err := UnmarshalDelta(data2)
	if err != nil {
		n.mu.Lock()
		n.stats.FramesRejected++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	for _, rec := range closing.Records {
		n.applyLocked(rec)
	}
	done := MarshalAck(FrameAck{})
	n.mu.Unlock()
	_ = conn.Send(done)
}

// --- views ---

// Refresh recomputes the group view from the gossiped records
// intersected with the current radio neighborhood and returns the
// resulting membership events. Groups stay proximity-scoped: a record
// learned transitively only counts while its device is in range, which
// is exactly the fan-out engine's (and the oracle's) semantics.
func (n *Node) Refresh() []core.Event {
	n.refreshSelf()
	neigh := n.neighbors()
	n.mu.Lock()
	self := n.records[n.member]
	nearby := make([]core.Member, 0, len(neigh))
	for _, dev := range neigh {
		if dev == n.dev {
			continue
		}
		m, ok := n.byDevice[dev]
		if !ok {
			continue
		}
		rec, ok := n.records[m]
		if !ok || rec.Device != dev {
			continue
		}
		nearby = append(nearby, core.Member{
			Device:    rec.Device,
			ID:        rec.Member,
			Interests: append([]string(nil), rec.Interests...),
		})
	}
	n.mu.Unlock()
	sort.Slice(nearby, func(i, j int) bool { return nearby[i].ID < nearby[j].ID })
	n.mgr.SetInterests(self.Interests)
	return n.mgr.Update(nearby)
}

// Groups returns the current group view (call Refresh first).
func (n *Node) Groups() []core.Group { return n.mgr.Groups() }

// Version is a monotonic counter of record-state changes; a stable
// fleet-wide sum across rounds means the epidemic has quiesced.
func (n *Node) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Records snapshots the known records sorted by member.
func (n *Node) Records() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Record, 0, len(n.records))
	for _, rec := range n.records {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Member < out[j].Member })
	return out
}

// HasRecord reports whether the node knows a record for the device at
// at least the given epoch.
func (n *Node) HasRecord(dev ids.DeviceID, epoch uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.byDevice[dev]
	if !ok {
		return false
	}
	rec, ok := n.records[m]
	return ok && rec.Device == dev && rec.Epoch >= epoch
}
