package gossip

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// testWorld builds a static all-in-range world of n gossip nodes on
// the goroutine engine and returns the started nodes in device order.
type testWorld struct {
	env   *radio.Environment
	net   *netsim.Network
	nodes []*Node
}

func newTestWorld(t *testing.T, n int, cfg Config, interests func(i int) []string, epochs []uint64) *testWorld {
	t.Helper()
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-6)))
	net := netsim.New(env, 1)
	t.Cleanup(net.Close)
	w := &testWorld{env: env, net: net}
	for i := 0; i < n; i++ {
		dev := ids.DeviceIDf("dev-%03d", i)
		// A tight circle well inside Bluetooth range.
		at := geo.Pt(float64(i%10)*0.5, float64(i/10)*0.5)
		if err := env.Add(dev, mobility.Static{At: at}, radio.Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		dev := ids.DeviceIDf("dev-%03d", i)
		node, err := NewNode(Params{
			Device: dev,
			Member: ids.MemberID(fmt.Sprintf("m-%03d", i)),
			Self: func() Record {
				return Record{Epoch: epochs[i], Interests: interests(i)}
			},
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Net:       net,
			Seed:      42,
			Config:    cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		w.nodes = append(w.nodes, node)
	}
	return w
}

// sweep drives one sequential round on every node.
func (w *testWorld) sweep(ctx context.Context) {
	for _, n := range w.nodes {
		n.Round(ctx)
	}
}

// converged reports whether every node knows every other node's
// current record.
func (w *testWorld) converged(epochs []uint64) bool {
	for _, n := range w.nodes {
		for j := range w.nodes {
			if !n.HasRecord(ids.DeviceIDf("dev-%03d", j), epochs[j]) {
				return false
			}
		}
	}
	return true
}

func flatInterests(terms ...string) func(int) []string {
	return func(int) []string { return terms }
}

// TestGossipSpreadsRecords proves the epidemic basics: rumor pushes
// alone (anti-entropy off) spread every record to every node in a
// bounded number of rounds.
func TestGossipSpreadsRecords(t *testing.T) {
	t.Parallel()
	const n = 8
	epochs := make([]uint64, n)
	for i := range epochs {
		epochs[i] = 1
	}
	w := newTestWorld(t, n, Config{DisableAntiEntropy: true, HotCount: 3}, flatInterests("football"), epochs)
	ctx := context.Background()
	for r := 0; r < 40 && !w.converged(epochs); r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("rumor mongering did not converge in 40 rounds")
	}
}

// TestAntiEntropyAloneConverges proves the reconciliation guarantee in
// isolation: with rumor pushes disabled entirely, periodic digest
// exchange still reaches full convergence.
func TestAntiEntropyAloneConverges(t *testing.T) {
	t.Parallel()
	const n = 6
	epochs := make([]uint64, n)
	for i := range epochs {
		epochs[i] = 1
	}
	w := newTestWorld(t, n, Config{DisableRumors: true, AEEvery: 1}, flatInterests("biking"), epochs)
	ctx := context.Background()
	for r := 0; r < 60 && !w.converged(epochs); r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("anti-entropy alone did not converge in 60 rounds")
	}
	for _, node := range w.nodes {
		s := node.Stats()
		if s.PushesSent != 0 {
			t.Fatalf("rumor push ran with DisableRumors: %+v", s)
		}
		if s.AERuns == 0 {
			t.Fatalf("no anti-entropy exchanges ran: %+v", s)
		}
	}
}

// TestRumorsDieAndPushesStop pins the greedy feedback counter: once
// the world has converged and acks report every push redundant, hot
// counters decay to zero and rumor traffic stops entirely (skipped or
// no-op rounds), instead of pushing the same records forever.
func TestRumorsDieAndPushesStop(t *testing.T) {
	t.Parallel()
	const n = 5
	epochs := make([]uint64, n)
	for i := range epochs {
		epochs[i] = 1
	}
	w := newTestWorld(t, n, Config{DisableAntiEntropy: true, HotCount: 2}, flatInterests("chess"), epochs)
	ctx := context.Background()
	for r := 0; r < 60; r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("did not converge")
	}
	// Quiescence: another sweep sends no rumor frames at all.
	var before, after uint64
	for _, node := range w.nodes {
		before += node.Stats().PushesSent
	}
	w.sweep(ctx)
	for _, node := range w.nodes {
		after += node.Stats().PushesSent
		if node.Stats().RumorsDied == 0 {
			t.Fatalf("node never decayed a rumor: %+v", node.Stats())
		}
	}
	if after != before {
		t.Fatalf("converged world still pushes rumors: %d -> %d", before, after)
	}
}

// TestEpochSupersedes proves a re-advertised profile (bumped epoch)
// re-enters the hot set and replaces the stale record everywhere.
func TestEpochSupersedes(t *testing.T) {
	t.Parallel()
	const n = 4
	epochs := make([]uint64, n)
	for i := range epochs {
		epochs[i] = 1
	}
	w := newTestWorld(t, n, Config{HotCount: 3, AEEvery: 2}, flatInterests("music"), epochs)
	ctx := context.Background()
	for r := 0; r < 40 && !w.converged(epochs); r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("initial convergence failed")
	}
	// Node 2 edits its profile: epoch bumps, record goes hot again.
	epochs[2] = 9
	for r := 0; r < 40 && !w.converged(epochs); r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("epoch bump did not propagate")
	}
	for _, node := range w.nodes {
		for _, rec := range node.Records() {
			if rec.Device == "dev-002" && rec.Epoch != 9 {
				t.Fatalf("stale epoch survived: %+v", rec)
			}
		}
	}
}

// TestGroupViewMatchesOracle proves the engine's group views equal
// DiscoverGroups over the true world state once records converged.
func TestGroupViewMatchesOracle(t *testing.T) {
	t.Parallel()
	const n = 6
	epochs := make([]uint64, n)
	for i := range epochs {
		epochs[i] = 1
	}
	interests := func(i int) []string {
		if i%2 == 0 {
			return []string{"football", "music"}
		}
		return []string{"music"}
	}
	w := newTestWorld(t, n, Config{}, interests, epochs)
	ctx := context.Background()
	for r := 0; r < 40 && !w.converged(epochs); r++ {
		w.sweep(ctx)
	}
	if !w.converged(epochs) {
		t.Fatal("did not converge")
	}
	for i, node := range w.nodes {
		node.Refresh()
		groups := node.Groups()
		want := map[string]int{"music": n}
		if i%2 == 0 {
			want["football"] = n/2 + n%2
		}
		if len(groups) != len(want) {
			t.Fatalf("node %d groups = %+v, want interests %v", i, groups, want)
		}
		for _, g := range groups {
			if len(g.Members) != want[g.Interest] {
				t.Fatalf("node %d group %q has %d members, want %d", i, g.Interest, len(g.Members), want[g.Interest])
			}
		}
	}
}

// TestDESEngineGossip re-runs the spread test on the discrete-event
// transport: the node never sleeps or reads clocks, so the same code
// must converge identically behind netsim.NewDES.
func TestDESEngineGossip(t *testing.T) {
	t.Parallel()
	const n = 8
	sched := des.NewScheduler(7, 4)
	env := radio.NewEnvironment(radio.WithScale(vtime.NewScale(1e-6)), radio.WithClock(sched.Clock()))
	for i := 0; i < n; i++ {
		if err := env.Add(ids.DeviceIDf("des-%03d", i), mobility.Static{At: geo.Pt(float64(i)*0.4, 0)}, radio.Bluetooth); err != nil {
			t.Fatal(err)
		}
	}
	net := netsim.NewDES(env, 7, sched)
	sched.Start()
	t.Cleanup(sched.Stop)
	t.Cleanup(net.Close)
	var nodes []*Node
	for i := 0; i < n; i++ {
		dev := ids.DeviceIDf("des-%03d", i)
		node, err := NewNode(Params{
			Device:    dev,
			Member:    ids.MemberID(fmt.Sprintf("dm-%03d", i)),
			Self:      func() Record { return Record{Epoch: 1, Interests: []string{"football"}} },
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Net:       net,
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes = append(nodes, node)
	}
	ctx := context.Background()
	for r := 0; r < 40; r++ {
		for _, node := range nodes {
			node.Round(ctx)
		}
		done := true
		for _, node := range nodes {
			for j := 0; j < n; j++ {
				if !node.HasRecord(ids.DeviceIDf("des-%03d", j), 1) {
					done = false
				}
			}
		}
		if done {
			return
		}
	}
	t.Fatal("gossip did not converge on the DES engine in 40 rounds")
}
