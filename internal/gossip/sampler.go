package gossip

import (
	"sort"

	"repro/internal/ids"
)

// CyclonSN-style peer sampling. The node keeps a small aged view of
// peer descriptors; every gossip frame piggybacks a view sample (self
// at age 0 plus a seeded subset), the receiver merges it, and entries
// age one round per Round. Partner selection for rumor pushes draws
// from the current radio neighbors weighted by social proximity:
// shared interests with the locally known record dominate, with a
// small bonus for peers present in the view (recently heard about).
// Anti-entropy partners are drawn uniformly instead — the convergence
// guarantee must not depend on the social bias, or a neighbor sharing
// no interests could be starved of reconciliation.

// mix64 is the splitmix64 finalizer, the same draw primitive the fault
// plane uses: every rng step is a pure function of the evolving state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextRand advances the node's seeded rng. Callers hold n.mu.
func (n *Node) nextRand() uint64 {
	n.rngState++
	return mix64(n.rngState)
}

// sharedInterests counts terms present in both lists.
func sharedInterests(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	shared := 0
	for _, t := range b {
		if set[t] {
			shared++
		}
	}
	return shared
}

// partnerWeight scores one candidate neighbor. Callers hold n.mu.
func (n *Node) partnerWeight(dev ids.DeviceID, selfInterests []string) uint64 {
	w := uint64(1)
	if m, ok := n.byDevice[dev]; ok {
		if rec, ok := n.records[m]; ok && rec.Device == dev {
			w += 2 * uint64(sharedInterests(selfInterests, rec.Interests))
		}
	}
	for i := range n.view {
		if n.view[i].Device == dev {
			w++
			break
		}
	}
	return w
}

// pickPartner draws one neighbor, socially weighted, excluding already
// used partners. neigh must be sorted so the weighted walk is
// deterministic. Returns "" when no candidate remains. Callers hold
// n.mu.
func (n *Node) pickPartner(neigh []ids.DeviceID, used map[ids.DeviceID]bool) ids.DeviceID {
	selfInterests := n.records[n.member].Interests
	var total uint64
	weights := make([]uint64, len(neigh))
	for i, dev := range neigh {
		if dev == n.dev || used[dev] {
			continue
		}
		w := n.partnerWeight(dev, selfInterests)
		weights[i] = w
		total += w
	}
	if total == 0 {
		return ""
	}
	draw := n.nextRand() % total
	for i, dev := range neigh {
		if weights[i] == 0 {
			continue
		}
		if draw < weights[i] {
			return dev
		}
		draw -= weights[i]
	}
	return ""
}

// pickUniform draws one neighbor uniformly (the anti-entropy partner).
// Callers hold n.mu.
func (n *Node) pickUniform(neigh []ids.DeviceID) ids.DeviceID {
	cands := make([]ids.DeviceID, 0, len(neigh))
	for _, dev := range neigh {
		if dev != n.dev {
			cands = append(cands, dev)
		}
	}
	if len(cands) == 0 {
		return ""
	}
	return cands[n.nextRand()%uint64(len(cands))]
}

// viewSample builds the shuffle payload: self at age 0 plus up to
// Shuffle-1 seeded picks from the view. Callers hold n.mu.
func (n *Node) viewSample() []ViewEntry {
	out := make([]ViewEntry, 0, n.cfg.Shuffle)
	out = append(out, ViewEntry{Device: n.dev, Member: n.member, Age: 0})
	if len(n.view) == 0 || n.cfg.Shuffle <= 1 {
		return out
	}
	idx := make([]int, len(n.view))
	for i := range idx {
		idx[i] = i
	}
	// Seeded Fisher-Yates over indices; take the head.
	for i := len(idx) - 1; i > 0; i-- {
		j := int(n.nextRand() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	take := n.cfg.Shuffle - 1
	if take > len(idx) {
		take = len(idx)
	}
	for _, i := range idx[:take] {
		out = append(out, n.view[i])
	}
	return out
}

// mergeView folds a received sample into the view: the sender itself
// enters at age 0, incoming entries keep their age, duplicates keep the
// youngest descriptor, and the view is trimmed oldest-first to
// ViewSize. Callers hold n.mu.
func (n *Node) mergeView(sample []ViewEntry, from ids.DeviceID, fromMember ids.MemberID) {
	byDev := make(map[ids.DeviceID]ViewEntry, len(n.view)+len(sample)+1)
	for _, e := range n.view {
		byDev[e.Device] = e
	}
	add := func(e ViewEntry) {
		if e.Device == "" || e.Device == n.dev {
			return
		}
		if cur, ok := byDev[e.Device]; !ok || e.Age < cur.Age {
			byDev[e.Device] = e
		}
	}
	for _, e := range sample {
		add(e)
	}
	if from != "" {
		add(ViewEntry{Device: from, Member: fromMember, Age: 0})
	}
	merged := make([]ViewEntry, 0, len(byDev))
	for _, e := range byDev {
		merged = append(merged, e)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Age != merged[j].Age {
			return merged[i].Age < merged[j].Age
		}
		return merged[i].Device < merged[j].Device
	})
	if len(merged) > n.cfg.ViewSize {
		merged = merged[:n.cfg.ViewSize]
	}
	n.view = merged
}

// ageView ages every entry one shuffle round. Callers hold n.mu.
func (n *Node) ageView() {
	for i := range n.view {
		if n.view[i].Age < 1<<20 {
			n.view[i].Age++
		}
	}
}
