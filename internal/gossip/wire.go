package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/ids"
)

// Wire format. Every gossip frame is
//
//	magic(1) version(1) kind(1) body... checksum(8)
//
// where the checksum is FNV-64a over magic..body, little-endian. The
// body is built from uvarints and length-prefixed strings. Decoding is
// strict: the checksum must match, every length must fit the declared
// caps, and the body must be consumed exactly — anything else is an
// error, never a panic. The fuzz suite holds the codec to that under
// faults.Mangle-style corruption (bit flips, truncation, insertion).

const (
	frameMagic   = 0x67 // 'g'
	frameVersion = 1

	kindRumor  = 1
	kindAck    = 2
	kindDigest = 3
	kindDelta  = 4

	maxWireString    = 4096
	maxWireRecords   = 8192
	maxWireInterests = 256
	maxWireView      = 256
	maxWireMask      = 1024
)

// Frame kind tags for stats and tests.
const (
	KindRumor  = kindRumor
	KindAck    = kindAck
	KindDigest = kindDigest
	KindDelta  = kindDelta
)

var (
	// ErrBadFrame reports any malformed gossip frame: short, wrong
	// magic/version/kind, checksum mismatch, over-cap length, or
	// trailing garbage.
	ErrBadFrame = errors.New("gossip: bad frame")
)

// Record is one epoch-versioned member profile as it rides the wire: a
// member identity, the device carrying it, the store epoch at capture
// time (PR 4's wire-visible mutation counter — newer epoch supersedes),
// and the advertised interests.
type Record struct {
	Member    ids.MemberID
	Device    ids.DeviceID
	Epoch     uint64
	Interests []string
}

// Key is the record's identity in "have" digests: member|epoch. A
// re-advertised profile (new epoch) is a new rumor with a fresh key, so
// stale blooms never suppress fresh state.
func (r Record) Key() string {
	return string(r.Member) + "|" + fmt.Sprintf("%x", r.Epoch)
}

// ViewEntry is one peer descriptor in the CyclonSN-style sampling view:
// the device to dial, the member it carries, and the entry's age in
// shuffle rounds (older entries are evicted first).
type ViewEntry struct {
	Device ids.DeviceID
	Member ids.MemberID
	Age    uint32
}

// FrameRumor is a rumor push: the sender's hot records the receiver's
// cached digest did not cover, plus a view sample for shuffling.
type FrameRumor struct {
	From    ids.DeviceID
	Records []Record
	View    []ViewEntry
}

// FrameAck answers a rumor push. KnownMask has bit i set when pushed
// record i was already known (the feedback that decays hot counters),
// Bloom is the responder's current "have" digest (cached by the
// initiator to skip future no-op pushes), View is the shuffle reply.
type FrameAck struct {
	KnownMask []byte
	Bloom     *Bloom
	View      []ViewEntry
}

// FrameDigest opens an anti-entropy exchange: the initiator's full
// "have" digest and a view sample.
type FrameDigest struct {
	From  ids.DeviceID
	Bloom *Bloom
	View  []ViewEntry
}

// FrameDelta carries reconciliation records. The responder's delta also
// carries its own bloom so the initiator can compute the reverse delta;
// the initiator's closing delta carries no bloom.
type FrameDelta struct {
	From    ids.DeviceID
	Records []Record
	Bloom   *Bloom
}

// --- encoding ---

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendRecord(b []byte, r Record) []byte {
	b = appendString(b, string(r.Member))
	b = appendString(b, string(r.Device))
	b = binary.AppendUvarint(b, r.Epoch)
	b = binary.AppendUvarint(b, uint64(len(r.Interests)))
	for _, it := range r.Interests {
		b = appendString(b, it)
	}
	return b
}

func appendRecords(b []byte, rs []Record) []byte {
	b = binary.AppendUvarint(b, uint64(len(rs)))
	for _, r := range rs {
		b = appendRecord(b, r)
	}
	return b
}

func appendView(b []byte, v []ViewEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, e := range v {
		b = appendString(b, string(e.Device))
		b = appendString(b, string(e.Member))
		b = binary.AppendUvarint(b, uint64(e.Age))
	}
	return b
}

func appendBloom(b []byte, f *Bloom) []byte {
	if f == nil || f.nbits == 0 {
		return binary.AppendUvarint(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(f.nbits))
	b = binary.AppendUvarint(b, uint64(f.k))
	b = binary.AppendUvarint(b, uint64(f.count))
	b = binary.AppendUvarint(b, f.salt)
	return append(b, f.bits...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func sealFrame(body []byte) []byte {
	h := fnv.New64a()
	_, _ = h.Write(body)
	return binary.LittleEndian.AppendUint64(body, h.Sum64())
}

func frameHeader(kind byte) []byte {
	return []byte{frameMagic, frameVersion, kind}
}

// MarshalRumor encodes a rumor push frame.
func MarshalRumor(f FrameRumor) []byte {
	b := frameHeader(kindRumor)
	b = appendString(b, string(f.From))
	b = appendRecords(b, f.Records)
	b = appendView(b, f.View)
	return sealFrame(b)
}

// MarshalAck encodes a rumor acknowledgement frame.
func MarshalAck(f FrameAck) []byte {
	b := frameHeader(kindAck)
	b = appendBytes(b, f.KnownMask)
	b = appendBloom(b, f.Bloom)
	b = appendView(b, f.View)
	return sealFrame(b)
}

// MarshalDigest encodes an anti-entropy digest frame.
func MarshalDigest(f FrameDigest) []byte {
	b := frameHeader(kindDigest)
	b = appendString(b, string(f.From))
	b = appendBloom(b, f.Bloom)
	b = appendView(b, f.View)
	return sealFrame(b)
}

// MarshalDelta encodes an anti-entropy delta frame.
func MarshalDelta(f FrameDelta) []byte {
	b := frameHeader(kindDelta)
	b = appendString(b, string(f.From))
	b = appendRecords(b, f.Records)
	b = appendBloom(b, f.Bloom)
	return sealFrame(b)
}

// --- decoding ---

type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, ErrBadFrame
	}
	r.off += n
	return v, nil
}

func (r *wireReader) str(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || r.off+int(n) > len(r.b) {
		return "", ErrBadFrame
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *wireReader) bytes(maxLen int) ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(maxLen) || r.off+int(n) > len(r.b) {
		return nil, ErrBadFrame
	}
	p := append([]byte(nil), r.b[r.off:r.off+int(n)]...)
	r.off += int(n)
	return p, nil
}

func (r *wireReader) record() (Record, error) {
	var rec Record
	m, err := r.str(maxWireString)
	if err != nil {
		return rec, err
	}
	d, err := r.str(maxWireString)
	if err != nil {
		return rec, err
	}
	epoch, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	n, err := r.uvarint()
	if err != nil {
		return rec, err
	}
	if n > maxWireInterests {
		return rec, ErrBadFrame
	}
	var interests []string
	if n > 0 {
		interests = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			it, err := r.str(maxWireString)
			if err != nil {
				return rec, err
			}
			interests = append(interests, it)
		}
	}
	rec.Member = ids.MemberID(m)
	rec.Device = ids.DeviceID(d)
	rec.Epoch = epoch
	rec.Interests = interests
	return rec, nil
}

func (r *wireReader) records() ([]Record, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxWireRecords {
		return nil, ErrBadFrame
	}
	if n == 0 {
		return nil, nil
	}
	// Cap the pre-allocation: a mangled count still has to be backed
	// by actual bytes before it grows the slice.
	recs := make([]Record, 0, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		rec, err := r.record()
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func (r *wireReader) view() ([]ViewEntry, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxWireView {
		return nil, ErrBadFrame
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]ViewEntry, 0, min(int(n), 64))
	for i := uint64(0); i < n; i++ {
		dev, err := r.str(maxWireString)
		if err != nil {
			return nil, err
		}
		mem, err := r.str(maxWireString)
		if err != nil {
			return nil, err
		}
		age, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if age > 1<<30 {
			return nil, ErrBadFrame
		}
		out = append(out, ViewEntry{Device: ids.DeviceID(dev), Member: ids.MemberID(mem), Age: uint32(age)})
	}
	return out, nil
}

func (r *wireReader) bloom() (*Bloom, error) {
	nbits, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nbits == 0 {
		return nil, nil
	}
	if nbits > bloomMaxBits {
		return nil, ErrBadFrame
	}
	k, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if k < 1 || k > bloomMaxK {
		return nil, ErrBadFrame
	}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > 1<<32-1 {
		return nil, ErrBadFrame
	}
	salt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nbytes := int((nbits + 7) / 8)
	if r.off+nbytes > len(r.b) {
		return nil, ErrBadFrame
	}
	bits := append([]byte(nil), r.b[r.off:r.off+nbytes]...)
	r.off += nbytes
	return &Bloom{bits: bits, nbits: uint32(nbits), k: uint8(k), count: uint32(count), salt: salt}, nil
}

// openFrame validates magic/version/kind and the trailing checksum and
// returns a reader positioned at the body.
func openFrame(data []byte, kind byte) (*wireReader, error) {
	if len(data) < 3+8 {
		return nil, ErrBadFrame
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(body)
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return nil, ErrBadFrame
	}
	if body[0] != frameMagic || body[1] != frameVersion || body[2] != kind {
		return nil, ErrBadFrame
	}
	return &wireReader{b: body, off: 3}, nil
}

func (r *wireReader) finish() error {
	if r.off != len(r.b) {
		return ErrBadFrame
	}
	return nil
}

// FrameKind peeks at a sealed frame's kind without validating the body.
// It still verifies the checksum, so a mangled kind byte is rejected
// rather than misrouted.
func FrameKind(data []byte) (byte, error) {
	if len(data) < 3+8 {
		return 0, ErrBadFrame
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	_, _ = h.Write(body)
	if binary.LittleEndian.Uint64(sum) != h.Sum64() {
		return 0, ErrBadFrame
	}
	if body[0] != frameMagic || body[1] != frameVersion {
		return 0, ErrBadFrame
	}
	k := body[2]
	if k < kindRumor || k > kindDelta {
		return 0, ErrBadFrame
	}
	return k, nil
}

// UnmarshalRumor decodes a rumor push frame.
func UnmarshalRumor(data []byte) (FrameRumor, error) {
	var f FrameRumor
	r, err := openFrame(data, kindRumor)
	if err != nil {
		return f, err
	}
	from, err := r.str(maxWireString)
	if err != nil {
		return f, err
	}
	recs, err := r.records()
	if err != nil {
		return f, err
	}
	view, err := r.view()
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.From = ids.DeviceID(from)
	f.Records = recs
	f.View = view
	return f, nil
}

// UnmarshalAck decodes a rumor acknowledgement frame.
func UnmarshalAck(data []byte) (FrameAck, error) {
	var f FrameAck
	r, err := openFrame(data, kindAck)
	if err != nil {
		return f, err
	}
	mask, err := r.bytes(maxWireMask)
	if err != nil {
		return f, err
	}
	bloom, err := r.bloom()
	if err != nil {
		return f, err
	}
	view, err := r.view()
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.KnownMask = mask
	f.Bloom = bloom
	f.View = view
	return f, nil
}

// UnmarshalDigest decodes an anti-entropy digest frame.
func UnmarshalDigest(data []byte) (FrameDigest, error) {
	var f FrameDigest
	r, err := openFrame(data, kindDigest)
	if err != nil {
		return f, err
	}
	from, err := r.str(maxWireString)
	if err != nil {
		return f, err
	}
	bloom, err := r.bloom()
	if err != nil {
		return f, err
	}
	view, err := r.view()
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.From = ids.DeviceID(from)
	f.Bloom = bloom
	f.View = view
	return f, nil
}

// UnmarshalDelta decodes an anti-entropy delta frame.
func UnmarshalDelta(data []byte) (FrameDelta, error) {
	var f FrameDelta
	r, err := openFrame(data, kindDelta)
	if err != nil {
		return f, err
	}
	from, err := r.str(maxWireString)
	if err != nil {
		return f, err
	}
	recs, err := r.records()
	if err != nil {
		return f, err
	}
	bloom, err := r.bloom()
	if err != nil {
		return f, err
	}
	if err := r.finish(); err != nil {
		return f, err
	}
	f.From = ids.DeviceID(from)
	f.Records = recs
	f.Bloom = bloom
	return f, nil
}
