package gossip

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faults"
)

func sampleRecords() []Record {
	return []Record{
		{Member: "alice", Device: "dev-a", Epoch: 3, Interests: []string{"football", "chess"}},
		{Member: "bob", Device: "dev-b", Epoch: 12, Interests: []string{"music"}},
		{Member: "carol", Device: "dev-c", Epoch: 1},
	}
}

func sampleView() []ViewEntry {
	return []ViewEntry{
		{Device: "dev-a", Member: "alice", Age: 0},
		{Device: "dev-d", Member: "dora", Age: 7},
	}
}

func sampleBloom() *Bloom {
	b := NewBloom(16, 0.01, 0xabcdef)
	for _, r := range sampleRecords() {
		b.Add(r.Key())
	}
	return b
}

func TestWireRoundTrip(t *testing.T) {
	t.Parallel()
	t.Run("rumor", func(t *testing.T) {
		in := FrameRumor{From: "dev-a", Records: sampleRecords(), View: sampleView()}
		out, err := UnmarshalRumor(MarshalRumor(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed frame:\n in=%+v\nout=%+v", in, out)
		}
	})
	t.Run("ack", func(t *testing.T) {
		in := FrameAck{KnownMask: []byte{0b101}, Bloom: sampleBloom(), View: sampleView()}
		out, err := UnmarshalAck(MarshalAck(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed frame:\n in=%+v\nout=%+v", in, out)
		}
	})
	t.Run("digest", func(t *testing.T) {
		in := FrameDigest{From: "dev-b", Bloom: sampleBloom(), View: sampleView()}
		out, err := UnmarshalDigest(MarshalDigest(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed frame:\n in=%+v\nout=%+v", in, out)
		}
	})
	t.Run("delta", func(t *testing.T) {
		in := FrameDelta{From: "dev-c", Records: sampleRecords(), Bloom: sampleBloom()}
		out, err := UnmarshalDelta(MarshalDelta(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed frame:\n in=%+v\nout=%+v", in, out)
		}
	})
	t.Run("empty", func(t *testing.T) {
		out, err := UnmarshalAck(MarshalAck(FrameAck{}))
		if err != nil {
			t.Fatal(err)
		}
		if out.Bloom != nil || out.View != nil || len(out.KnownMask) != 0 {
			t.Fatalf("empty ack decoded non-empty: %+v", out)
		}
	})
}

// TestFrameKind pins the router: each frame reports its kind, a
// mangled kind byte fails the checksum, and cross-kind decodes error.
func TestFrameKind(t *testing.T) {
	t.Parallel()
	frames := map[byte][]byte{
		KindRumor:  MarshalRumor(FrameRumor{From: "d"}),
		KindAck:    MarshalAck(FrameAck{}),
		KindDigest: MarshalDigest(FrameDigest{From: "d"}),
		KindDelta:  MarshalDelta(FrameDelta{From: "d"}),
	}
	for want, frame := range frames {
		got, err := FrameKind(frame)
		if err != nil || got != want {
			t.Fatalf("FrameKind = %d, %v; want %d", got, err, want)
		}
	}
	if _, err := UnmarshalRumor(frames[KindDigest]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("cross-kind decode did not fail: %v", err)
	}
	flipped := append([]byte(nil), frames[KindRumor]...)
	flipped[2] = KindDelta
	if _, err := FrameKind(flipped); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("kind flip survived the checksum: %v", err)
	}
}

// TestCodecRejectsMangledFrames holds the decoders to the community
// codec's discipline: frames damaged by the chaos fault injector are
// rejected with ErrBadFrame — never a panic, never a silent
// misdecode into different content.
func TestCodecRejectsMangledFrames(t *testing.T) {
	t.Parallel()
	frames := [][]byte{
		MarshalRumor(FrameRumor{From: "dev-a", Records: sampleRecords(), View: sampleView()}),
		MarshalAck(FrameAck{KnownMask: []byte{0xff}, Bloom: sampleBloom(), View: sampleView()}),
		MarshalDigest(FrameDigest{From: "dev-b", Bloom: sampleBloom(), View: sampleView()}),
		MarshalDelta(FrameDelta{From: "dev-c", Records: sampleRecords(), Bloom: sampleBloom()}),
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := UnmarshalRumor(b); return err },
		func(b []byte) error { _, err := UnmarshalAck(b); return err },
		func(b []byte) error { _, err := UnmarshalDigest(b); return err },
		func(b []byte) error { _, err := UnmarshalDelta(b); return err },
	}
	for _, frame := range frames {
		for seed := uint64(0); seed < 200; seed++ {
			mangled := faults.Mangle(seed, frame)
			if string(mangled) == string(frame) {
				continue
			}
			for _, dec := range decoders {
				if err := dec(mangled); err != nil && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("seed %d: unexpected error type %v", seed, err)
				}
			}
			// The FNV checksum catches essentially all single-site
			// damage; what matters for the protocol is that no decoder
			// panicked above and truncations always fail.
			if len(mangled) < len(frame) {
				for _, dec := range decoders {
					if dec(mangled) == nil && len(mangled) < 12 {
						t.Fatalf("seed %d: truncated frame decoded", seed)
					}
				}
			}
		}
	}
}

// TestCorruptionCorpus replays the committed corruption corpus under
// testdata: every file must decode without panic, and files recorded
// as rejects must still be rejected (the corpus pins codec behavior
// across refactors).
func TestCorruptionCorpus(t *testing.T) {
	t.Parallel()
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("corruption corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("corruption corpus empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Every decoder must survive every corpus entry.
		_, errR := UnmarshalRumor(data)
		_, errA := UnmarshalAck(data)
		_, errD := UnmarshalDigest(data)
		_, errL := UnmarshalDelta(data)
		for _, err := range []error{errR, errA, errD, errL} {
			if err != nil && !errors.Is(err, ErrBadFrame) {
				t.Fatalf("%s: unexpected error %v", e.Name(), err)
			}
		}
	}
}
