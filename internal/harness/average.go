package harness

import (
	"fmt"
	"time"
)

// averageRows averages per-operation durations across repeated trials
// of the same column. All trials must describe the same column.
func averageRows(trials []Table8Row) (Table8Row, error) {
	if len(trials) == 0 {
		return Table8Row{}, fmt.Errorf("harness: no trials to average")
	}
	out := trials[0]
	var search, join, list, prof time.Duration
	for _, tr := range trials {
		if tr.SocialNetwork != out.SocialNetwork || tr.AccessedThrough != out.AccessedThrough {
			return Table8Row{}, fmt.Errorf("harness: mixed columns in average: %q vs %q",
				tr.SocialNetwork, out.SocialNetwork)
		}
		search += tr.Search
		join += tr.Join
		list += tr.MemberList
		prof += tr.Profile
	}
	n := time.Duration(len(trials))
	out.Search = search / n
	out.Join = join / n
	out.MemberList = list / n
	out.Profile = prof / n
	return out, nil
}

// RunTable8Averaged repeats the whole Table 8 experiment `trials` times
// and returns per-column averages, mirroring the thesis's "average time
// was calculated" methodology.
func RunTable8Averaged(opts Table8Options, trials int) ([]Table8Row, error) {
	if trials < 1 {
		trials = 1
	}
	perColumn := make([][]Table8Row, 0)
	for t := 0; t < trials; t++ {
		rows, err := RunTable8(opts)
		if err != nil {
			return nil, fmt.Errorf("harness: trial %d: %w", t+1, err)
		}
		if len(perColumn) == 0 {
			perColumn = make([][]Table8Row, len(rows))
		}
		if len(rows) != len(perColumn) {
			return nil, fmt.Errorf("harness: trial %d returned %d rows, want %d", t+1, len(rows), len(perColumn))
		}
		for i, r := range rows {
			perColumn[i] = append(perColumn[i], r)
		}
	}
	out := make([]Table8Row, 0, len(perColumn))
	for _, col := range perColumn {
		avg, err := averageRows(col)
		if err != nil {
			return nil, err
		}
		out = append(out, avg)
	}
	return out, nil
}
