package harness

import (
	"fmt"
	"time"

	"repro/internal/simtest"
)

// ChaosConfig parameterizes a chaos sweep for reporting.
type ChaosConfig struct {
	// Scenarios is how many seeded combinations to run (default 12 —
	// the test suite runs the full 50+, the CLI a digest).
	Scenarios int
	// Seed is the base seed of the matrix (default 1, matching the
	// committed test suite).
	Seed int64
	// Endpoint switches to the endpoint-fault matrix (stalled and
	// crashing peers with resilience enabled) instead of the link-fault
	// matrix.
	Endpoint bool
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Scenarios <= 0 {
		c.Scenarios = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RunChaos executes a slice of the seeded chaos matrix and returns the
// per-scenario results for reporting.
func RunChaos(cfg ChaosConfig) ([]*simtest.Result, error) {
	cfg = cfg.withDefaults()
	scenarios := simtest.Matrix(cfg.Scenarios, cfg.Seed)
	if cfg.Endpoint {
		scenarios = simtest.EndpointMatrix(cfg.Scenarios, cfg.Seed)
	}
	out := make([]*simtest.Result, 0, len(scenarios))
	for _, sc := range scenarios {
		res, err := simtest.Run(sc)
		if err != nil {
			return nil, fmt.Errorf("harness: chaos scenario %s: %w", sc.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatChaos renders chaos results as a table: the fault mix, how the
// traffic degraded, and how recovery went.
func FormatChaos(results []*simtest.Result) string {
	header := []string{"Scenario", "Calls", "Errors", "Lost", "Stalled", "Resets", "Crash den", "Shed", "Breaker", "Hedges", "Cache hits", "Max wall", "Reconverged"}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		reconv := fmt.Sprintf("round %d", r.RoundsToReconverge)
		if !r.Reconverged {
			reconv = "NO"
		}
		rows = append(rows, []string{
			r.Scenario.Name,
			fmt.Sprintf("%d", r.Calls),
			fmt.Sprintf("%d", r.CallErrors),
			fmt.Sprintf("%d", r.Faults.MessagesLost),
			fmt.Sprintf("%d", r.Faults.MessagesStalled),
			fmt.Sprintf("%d", r.Faults.LinkResets),
			fmt.Sprintf("%d", r.Faults.CrashDenials),
			fmt.Sprintf("%d", r.Server.Shed),
			fmt.Sprintf("%d", r.Client.BreakerOpens),
			fmt.Sprintf("%d", r.Client.HedgesLaunched),
			fmt.Sprintf("%d", r.Client.CacheHits),
			r.MaxCallWall.Round(time.Millisecond).String(),
			reconv,
		})
	}
	return FormatTable(header, rows)
}
