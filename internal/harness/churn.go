package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// ChurnPoint measures group stability for one peer speed: how often the
// observer's dynamic groups change as peers move faster. This probes
// the thesis's "instantaneous social network" property — the faster the
// neighborhood moves, the shorter-lived its groups.
type ChurnPoint struct {
	// SpeedMps is the peers' walking speed in meters per second.
	SpeedMps float64
	// Duration is the modeled observation window.
	Duration time.Duration
	// Events counts group-membership changes observed.
	Events int
	// EventsPerMinute normalizes events over the window.
	EventsPerMinute float64
}

// ChurnConfig parameterizes the churn experiment.
type ChurnConfig struct {
	// Scale is the latency scale (default 1e-2).
	Scale vtime.Scale
	// Peers walking around the observer (default 6).
	Peers int
	// Region side in meters (default 40: a courtyard around a 10 m
	// Bluetooth cell, so peers cross in and out).
	RegionSide float64
	// Window is the modeled observation time per speed (default 3 min).
	Window time.Duration
	// Seed fixes the trajectories.
	Seed int64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Scale.Factor() == 1 {
		c.Scale = vtime.NewScale(1e-2)
	}
	if c.Peers <= 0 {
		c.Peers = 6
	}
	if c.RegionSide <= 0 {
		c.RegionSide = 40
	}
	if c.Window <= 0 {
		c.Window = 3 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 2008
	}
	return c
}

// RunChurn measures group churn at each peer speed.
func RunChurn(cfg ChurnConfig, speeds []float64) ([]ChurnPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]ChurnPoint, 0, len(speeds))
	for _, speed := range speeds {
		point, err := runChurnPoint(cfg, speed)
		if err != nil {
			return nil, fmt.Errorf("harness: churn at %.1f m/s: %w", speed, err)
		}
		out = append(out, point)
	}
	return out, nil
}

func runChurnPoint(cfg ChurnConfig, speed float64) (ChurnPoint, error) {
	if speed < 0 {
		return ChurnPoint{}, fmt.Errorf("negative speed")
	}
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(cfg.RegionSide, cfg.RegionSide))
	builder := scenario.NewBuilder().WithScale(cfg.Scale).WithSeed(cfg.Seed)
	builder.AddPeer(scenario.PeerSpec{
		Member:    "observer",
		Position:  region.Center(),
		Interests: []string{"football"},
	})
	for i := 0; i < cfg.Peers; i++ {
		var model mobility.Model
		if speed == 0 {
			// Static peers scattered across the region.
			model = mobility.Static{At: geo.Pt(
				region.Min.X+float64(i+1)*region.Width()/float64(cfg.Peers+1),
				region.Center().Y,
			)}
		} else {
			model = mobility.NewRandomWaypoint(region, speed, speed, 2*time.Second, cfg.Seed+int64(i))
		}
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("walker-%02d", i)),
			Mobility:  model,
			Interests: []string{"football"},
		})
	}
	d, err := builder.Build()
	if err != nil {
		return ChurnPoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	observer := d.MustPeer("observer")

	// Warm up: the initial group formation is not churn.
	if err := observer.Daemon.RefreshNow(ctx); err != nil {
		return ChurnPoint{}, err
	}
	if _, err := observer.Client.RefreshGroups(ctx); err != nil {
		return ChurnPoint{}, err
	}

	events := 0
	start := d.Env.Elapsed()
	for d.Env.Elapsed()-start < cfg.Window {
		if err := observer.Daemon.RefreshNow(ctx); err != nil {
			return ChurnPoint{}, err
		}
		evs, err := observer.Client.RefreshGroups(ctx)
		if err != nil {
			return ChurnPoint{}, err
		}
		for _, ev := range evs {
			if ev.Type == core.EventMemberJoined || ev.Type == core.EventMemberLeft {
				events++
			}
		}
	}
	window := d.Env.Elapsed() - start
	return ChurnPoint{
		SpeedMps:        speed,
		Duration:        window,
		Events:          events,
		EventsPerMinute: float64(events) / window.Minutes(),
	}, nil
}

// FormatChurn renders the series as a table.
func FormatChurn(points []ChurnPoint) string {
	header := []string{"Peer speed", "Window", "Membership events", "Events/min"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f m/s", p.SpeedMps),
			p.Duration.Round(time.Second).String(),
			fmt.Sprintf("%d", p.Events),
			fmt.Sprintf("%.1f", p.EventsPerMinute),
		})
	}
	return FormatTable(header, rows)
}
