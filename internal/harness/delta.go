package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// DeltaScalePoint is one row of the delta-synchronization experiment:
// one active client's group round against n neighbors, cold (empty
// cache, full interest lists on the wire) versus steady state (primed
// cache, NOT_MODIFIED answers and a skipped group rebuild).
type DeltaScalePoint struct {
	Devices int
	// Engine is "goroutine" or "des".
	Engine string
	// ColdWall / SteadyWall are the real wall cost of one full
	// RefreshGroups round in each regime.
	ColdWall   time.Duration
	SteadyWall time.Duration
	// ColdBytes / SteadyBytes are the payload bytes the round moved
	// through the transport.
	ColdBytes   uint64
	SteadyBytes uint64
	// Client is the active client's stats after both rounds: the steady
	// round must show one NotModified + CacheHit per neighbor.
	Client community.ClientStats
}

// WallSpeedup is ColdWall / SteadyWall.
func (p DeltaScalePoint) WallSpeedup() float64 {
	if p.SteadyWall <= 0 {
		return 0
	}
	return float64(p.ColdWall) / float64(p.SteadyWall)
}

// ByteRatio is ColdBytes / SteadyBytes.
func (p DeltaScalePoint) ByteRatio() float64 {
	if p.SteadyBytes == 0 {
		return 0
	}
	return float64(p.ColdBytes) / float64(p.SteadyBytes)
}

// deltaVocabulary models realistic member profiles: every peer carries
// deltaInterestsPerPeer terms drawn from it, so a cold round moves a
// full interest list per neighbor while a steady round moves only the
// fixed-size NOT_MODIFIED frame — the asymmetry the delta protocol
// exists for.
var deltaVocabulary = []string{
	"football", "ice-hockey", "progressive-rock", "classical-music",
	"mobile-photography", "trail-running", "board-games", "astronomy",
	"street-food", "travel-stories", "retro-computing", "gardening",
	"language-exchange", "film-festivals", "chess", "orienteering",
	"vintage-cameras", "stand-up-comedy", "urban-sketching", "sailing",
	"science-fiction", "craft-coffee", "karaoke-nights", "birdwatching",
}

const deltaInterestsPerPeer = 20

func deltaInterests(i int) []string {
	out := make([]string, deltaInterestsPerPeer)
	for k := range out {
		// Stride 5 is coprime with the 24-term vocabulary, so every
		// peer gets 20 distinct terms with heavy cross-peer overlap.
		out[k] = deltaVocabulary[(i+k*5)%len(deltaVocabulary)]
	}
	return dedupTerms(out)
}

func dedupTerms(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := terms[:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// DeltaScaleConfig parameterizes the sweep.
type DeltaScaleConfig struct {
	// Scale is the latency scale (default 1e-4).
	Scale vtime.Scale
	// DES runs the point on the discrete-event engine in integrated
	// mode — the measured client stays the blocking differential
	// oracle while the transport underneath it rides the scheduler —
	// the same engine flag the DTN, gossip and overload sweeps take.
	// Shards overrides the scheduler's shard count (default 8) and
	// Workers its executor count.
	DES     bool
	Shards  int
	Workers int
}

func (c DeltaScaleConfig) withDefaults() DeltaScaleConfig {
	if c.Scale.Factor() == 1 || c.Scale.Factor() == 0 {
		c.Scale = vtime.NewScale(1e-4)
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// RunDeltaScale measures cold-vs-steady group rounds at each neighbor
// count on the goroutine engine; RunDeltaScaleConfig is the full form.
func RunDeltaScale(scale vtime.Scale, deviceCounts []int) ([]DeltaScalePoint, error) {
	return RunDeltaScaleConfig(DeltaScaleConfig{Scale: scale}, deviceCounts)
}

// RunDeltaScaleConfig measures cold-vs-steady group rounds at each
// neighbor count. Peers stand on a tight grid inside one Bluetooth
// cell with overlapping multi-term profiles; only the active peer
// drives rounds, so the byte counters isolate a single client's
// traffic.
func RunDeltaScaleConfig(cfg DeltaScaleConfig, deviceCounts []int) ([]DeltaScalePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]DeltaScalePoint, 0, len(deviceCounts))
	for _, n := range deviceCounts {
		p, err := runDeltaPoint(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("harness: delta point %d: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func runDeltaPoint(cfg DeltaScaleConfig, peers int) (DeltaScalePoint, error) {
	if peers < 1 {
		return DeltaScalePoint{}, fmt.Errorf("need at least one peer")
	}
	builder := scenario.NewBuilder().WithScale(cfg.Scale).WithSeed(int64(peers))
	if cfg.DES {
		builder.WithDES(cfg.Shards)
		if cfg.Workers > 0 {
			builder.WithDESWorkers(cfg.Workers)
		}
	}
	side := 1 + peers/4
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%04d", i)),
			Position:  geo.Pt(float64(i%side)*0.01, float64(i/side)*0.01),
			Interests: deltaInterests(i),
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(0.005, 0.005),
		Interests: deltaInterests(0),
	})
	d, err := builder.Build()
	if err != nil {
		return DeltaScalePoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	active := d.MustPeer("active")
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		return DeltaScalePoint{}, err
	}

	point := DeltaScalePoint{Devices: peers, Engine: "goroutine"}
	if cfg.DES {
		point.Engine = "des"
	}
	round := func(wall *time.Duration, bytes *uint64) error {
		before := d.Net.Counters().BytesDelivered
		sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())
		if _, err := active.Client.RefreshGroups(ctx); err != nil {
			return err
		}
		*wall = sw.Elapsed()
		*bytes = d.Net.Counters().BytesDelivered - before
		return nil
	}
	if err := round(&point.ColdWall, &point.ColdBytes); err != nil {
		return DeltaScalePoint{}, err
	}
	if len(active.Client.Groups()) == 0 {
		return DeltaScalePoint{}, fmt.Errorf("cold round formed no groups at %d peers", peers)
	}
	if err := round(&point.SteadyWall, &point.SteadyBytes); err != nil {
		return DeltaScalePoint{}, err
	}
	point.Client = active.Client.Stats()
	return point, nil
}

// FormatDeltaScale renders the delta series as a table.
func FormatDeltaScale(points []DeltaScalePoint) string {
	header := []string{"Devices", "Engine", "Cold round", "Steady round", "Speedup",
		"Cold bytes", "Steady bytes", "Byte ratio", "NotMod", "Cache hits"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		engine := p.Engine
		if engine == "" {
			engine = "goroutine"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			engine,
			p.ColdWall.Round(10 * time.Microsecond).String(),
			p.SteadyWall.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%.1fx", p.WallSpeedup()),
			fmt.Sprintf("%d", p.ColdBytes),
			fmt.Sprintf("%d", p.SteadyBytes),
			fmt.Sprintf("%.1fx", p.ByteRatio()),
			fmt.Sprintf("%d", p.Client.NotModified),
			fmt.Sprintf("%d", p.Client.CacheHits),
		})
	}
	return FormatTable(header, rows)
}
