package harness

import (
	"testing"

	"repro/internal/vtime"
)

// TestDeltaScaleBothEngines runs one small delta point per engine and
// checks the protocol contract holds identically: the steady round
// answers NOT_MODIFIED per neighbor out of the cache and moves fewer
// bytes than the cold round. The DES row is the integrated mode the
// other sweeps use — the blocking client measured over the
// event-engine transport.
func TestDeltaScaleBothEngines(t *testing.T) {
	const peers = 12
	for _, useDES := range []bool{false, true} {
		cfg := DeltaScaleConfig{Scale: vtime.NewScale(1e-4), DES: useDES}
		points, err := RunDeltaScaleConfig(cfg, []int{peers})
		if err != nil {
			t.Fatalf("DES=%v: %v", useDES, err)
		}
		p := points[0]
		wantEngine := "goroutine"
		if useDES {
			wantEngine = "des"
		}
		if p.Engine != wantEngine {
			t.Errorf("engine = %q, want %q", p.Engine, wantEngine)
		}
		if p.ColdBytes <= p.SteadyBytes {
			t.Errorf("%s: cold round moved %d bytes, steady %d; delta sync is not engaging",
				p.Engine, p.ColdBytes, p.SteadyBytes)
		}
		if p.Client.NotModified == 0 || p.Client.CacheHits == 0 {
			t.Errorf("%s: steady round shows NotModified=%d CacheHits=%d, want both > 0",
				p.Engine, p.Client.NotModified, p.Client.CacheHits)
		}
	}
	if out := FormatDeltaScale(nil); out == "" {
		t.Error("FormatDeltaScale returned empty table")
	}
}
