package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/dtn"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file is the store-carry-forward delivery experiment: sparse
// mobility worlds where most device pairs never share a radio
// neighborhood and messages only cross the gaps by riding couriers.
// Two world shapes come from the paper's deployment settings:
//
//   - "bus": stops strung along a line, a handful of buses shuttling
//     the whole route — the classic rural-connectivity DTN topology.
//   - "campus": buildings on a grid with students walking circuits
//     between them — denser courier traffic, shorter gaps.
//
// Couriers move on a deterministic round-driven schedule (the harness
// teleports them between dwell points between contact rounds), so both
// transport engines see the identical contact sequence and runs replay
// from their seed. Each run measures the delivery ratio, the mean
// delivery latency in contact rounds, and the copies-per-delivered
// ratio — the committed BENCH_dtn.json claim is that the social
// (group-encounter) strategy delivers at a fraction of epidemic
// spray's copy cost, floored at 2x.

// DTNScalePoint is one measured run of one strategy in one world.
type DTNScalePoint struct {
	Devices int
	// World is "bus" or "campus".
	World string
	// Strategy is "epidemic" or "social".
	Strategy string
	// Engine is "goroutine" or "des".
	Engine string
	// Rounds is how many contact rounds were driven.
	Rounds int
	// Sent counts originated messages; Delivered how many reached
	// their destination before the run ended.
	Sent      int
	Delivered int
	// DeliveryRatio is Delivered/Sent.
	DeliveryRatio float64
	// MeanLatency is the mean rounds from origination to delivery,
	// over delivered messages.
	MeanLatency float64
	// CopiesSent counts every bundle copy that crossed a link;
	// CopiesPerDelivered is the headline cost figure.
	CopiesSent         uint64
	CopiesPerDelivered float64
	// Wall is the real wall-clock cost of the whole run.
	Wall time.Duration
	// Stats aggregates every node's custody counters.
	Stats dtn.Stats
}

// DTNScaleConfig parameterizes the sweep.
type DTNScaleConfig struct {
	// Seed drives placement, traffic and the per-node rngs.
	Seed int64
	// Rounds is the contact-round budget after warm-up (default 48).
	Rounds int
	// Warmup is how many courier tour rounds run before any traffic,
	// letting the social strategy's encounter memory prime (default:
	// one full tour).
	Warmup int
	// Messages is the originated message count (default max(8, n/8)).
	Messages int
	// Wave bounds concurrently driven devices per sweep (default 1024).
	Wave int
	// DES selects the discrete-event engine; Shards overrides its
	// shard count (default 8) and Workers its executor count.
	DES     bool
	Shards  int
	Workers int
	// DTN overrides the engine knobs; Strategy is set per mode.
	DTN dtn.Config
}

func (c DTNScaleConfig) withDefaults() DTNScaleConfig {
	if c.Rounds <= 0 {
		c.Rounds = 48
	}
	if c.Wave <= 0 {
		c.Wave = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// RunDTNScale measures both strategies in both worlds at each size.
func RunDTNScale(cfg DTNScaleConfig, deviceCounts []int) ([]DTNScalePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]DTNScalePoint, 0, 4*len(deviceCounts))
	for _, n := range deviceCounts {
		for _, world := range []string{"bus", "campus"} {
			for _, strat := range []string{"epidemic", "social"} {
				p, err := RunDTNScaleMode(cfg, n, world, strat)
				if err != nil {
					return nil, err
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// RunDTNScaleMode measures a single strategy in a single world shape
// at one size (for benchmarks that pin each case separately).
func RunDTNScaleMode(cfg DTNScaleConfig, n int, world, strategy string) (DTNScalePoint, error) {
	cfg = cfg.withDefaults()
	if n < 8 {
		return DTNScalePoint{}, fmt.Errorf("harness: dtn scale: need at least eight devices, got %d", n)
	}
	p, err := runDTNScalePoint(cfg, n, world, strategy)
	if err != nil {
		return DTNScalePoint{}, fmt.Errorf("harness: dtn scale %s/%s point %d: %w", world, strategy, n, err)
	}
	return p, nil
}

// dtnScaleWorld is one sparse mobility world: static residents grouped
// into communities at dwell points, couriers on a deterministic tour.
type dtnScaleWorld struct {
	env  *radio.Environment
	net  *netsim.Network
	devs []ids.DeviceID
	// community[i] is device i's home dwell point (-1 for couriers).
	community []int
	// stops[s] is dwell point s's origin.
	stops []geo.Point
	// couriers indexes the mobile devices; courier k's tour visits
	// stop (epoch*step + phase) mod len(stops).
	couriers []int
	phase    []int
	step     []int
	// dwell is rounds spent per stop before the next teleport.
	dwell int
	nodes []*dtn.Node
}

// dtnScaleGeometry lays out the world. Bus worlds put ~12 residents
// per stop with one bus per three stops; campus worlds put the same
// residents per building with one walking courier per building, on a
// grid. Stops are 60 m apart — far outside Bluetooth range, so
// couriers are the only inter-community path.
func dtnScaleGeometry(n int, world string, seed int64) (residentsPerStop, courierEvery int) {
	switch world {
	case "bus":
		return 12, 3
	default: // campus
		return 12, 1
	}
}

func buildDTNScaleWorld(cfg DTNScaleConfig, n int, world string, strategy string) (*dtnScaleWorld, *des.Scheduler, error) {
	seed := cfg.Seed + int64(n)
	residents, courierEvery := dtnScaleGeometry(n, world, seed)
	opts := []radio.Option{radio.WithScale(vtime.NewScale(1e-6))}
	var sched *des.Scheduler
	if cfg.DES {
		sched = des.NewScheduler(seed, cfg.Shards)
		if cfg.Workers > 0 {
			sched.SetWorkers(cfg.Workers)
		}
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)

	w := &dtnScaleWorld{env: env, dwell: 2}
	// Partition n into stops of `residents` plus one courier per
	// `courierEvery` stops.
	perBlock := residents*courierEvery + 1
	blocks := (n + perBlock - 1) / perBlock
	stops := blocks * courierEvery
	cols := int(math.Ceil(math.Sqrt(float64(stops))))
	const spacing = 60.0
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < stops; s++ {
		var at geo.Point
		if world == "bus" {
			at = geo.Pt(float64(s)*spacing, 0)
		} else {
			at = geo.Pt(float64(s%cols)*spacing, float64(s/cols)*spacing)
		}
		w.stops = append(w.stops, at)
	}
	placed := 0
	for s := 0; s < stops && placed < n; s++ {
		for r := 0; r < residents && placed < n; r++ {
			dev := ids.DeviceIDf("dev-%05d", placed)
			at := geo.Pt(w.stops[s].X+rng.Float64()*4, w.stops[s].Y+rng.Float64()*4)
			if err := env.Add(dev, mobility.Static{At: at}, radio.Bluetooth); err != nil {
				return nil, nil, err
			}
			w.devs = append(w.devs, dev)
			w.community = append(w.community, s)
			placed++
		}
		if (s+1)%courierEvery == 0 && placed < n {
			dev := ids.DeviceIDf("dev-%05d", placed)
			if err := env.Add(dev, mobility.Static{At: w.stops[s]}, radio.Bluetooth); err != nil {
				return nil, nil, err
			}
			w.devs = append(w.devs, dev)
			w.community = append(w.community, -1)
			w.couriers = append(w.couriers, placed)
			w.phase = append(w.phase, s)
			// Coprime-ish steps spread the tours; step 1 is the plain
			// shuttle.
			w.step = append(w.step, 1+len(w.couriers)%2)
			placed++
		}
	}
	if len(w.couriers) == 0 {
		return nil, nil, fmt.Errorf("world of %d devices produced no couriers", n)
	}

	if cfg.DES {
		w.net = netsim.NewDES(env, seed, sched)
		sched.Start()
	} else {
		w.net = netsim.New(env, seed)
	}

	strat := dtn.Epidemic
	if strategy == "social" {
		strat = dtn.Social
	}
	nodeCfg := cfg.DTN
	nodeCfg.Strategy = strat
	if nodeCfg.Fanout <= 0 {
		// A contact round must cover the whole dwell-point neighborhood
		// (residents plus any parked couriers); the default fanout of 8
		// would deterministically truncate the sorted neighbor list and
		// could exclude the courier — the only inter-community path.
		nodeCfg.Fanout = residents + 8
	}
	byDevice := make(map[ids.DeviceID]int, len(w.devs))
	for i, dev := range w.devs {
		byDevice[dev] = i
	}
	for i, dev := range w.devs {
		i, dev := i, dev
		node, err := dtn.NewNode(dtn.Params{
			Device:    dev,
			Neighbors: func() []ids.DeviceID { return env.Neighbors(dev, radio.Bluetooth) },
			Groups:    func() []core.Group { return w.groupsOf(i, byDevice) },
			Net:       w.net,
			Seed:      seed,
			Config:    nodeCfg,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := node.Start(); err != nil {
			return nil, nil, err
		}
		w.nodes = append(w.nodes, node)
	}
	return w, sched, nil
}

// groupsOf computes device i's current group view: its radio neighbors
// bucketed by home community. A resident sees its own community's
// group; a courier parked at a stop sees that stop's group — and
// absorbing it is how the social strategy learns which destinations
// the courier "meets", exactly the GROUPS-NET group-encounter signal.
func (w *dtnScaleWorld) groupsOf(i int, byDevice map[ids.DeviceID]int) []core.Group {
	neigh := w.env.Neighbors(w.devs[i], radio.Bluetooth)
	buckets := make(map[int][]core.Member)
	add := func(idx int) {
		c := w.community[idx]
		if c < 0 {
			return
		}
		buckets[c] = append(buckets[c], core.Member{
			Device: w.devs[idx],
			ID:     ids.MemberID(w.devs[idx]),
		})
	}
	add(i)
	for _, nd := range neigh {
		if idx, ok := byDevice[nd]; ok {
			add(idx)
		}
	}
	comms := make([]int, 0, len(buckets))
	for c := range buckets {
		comms = append(comms, c)
	}
	sort.Ints(comms)
	out := make([]core.Group, 0, len(buckets))
	for _, c := range comms {
		out = append(out, core.Group{
			Interest: fmt.Sprintf("community-%03d", c),
			Members:  buckets[c],
		})
	}
	return out
}

// tourCouriers teleports every courier to its scheduled stop for the
// given round. Mobility is round-driven and explicit, so the contact
// schedule is a pure function of the seed on either engine.
func (w *dtnScaleWorld) tourCouriers(round int) error {
	epoch := round / w.dwell
	for k, idx := range w.couriers {
		s := (w.phase[k] + epoch*w.step[k]) % len(w.stops)
		at := w.stops[s]
		if err := w.env.SetModel(w.devs[idx], mobility.Static{At: geo.Pt(at.X+1, at.Y+1)}); err != nil {
			return err
		}
	}
	return nil
}

// sweep drives one contact round on every node, at most cfg.Wave
// concurrently.
func (w *dtnScaleWorld) sweep(cfg DTNScaleConfig) {
	ctx := context.Background()
	workers := cfg.Wave
	if workers > len(w.nodes) {
		workers = len(w.nodes)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				w.nodes[i].Round(ctx)
			}
		}()
	}
	for i := range w.nodes {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

func (w *dtnScaleWorld) close() {
	for _, n := range w.nodes {
		n.Stop()
	}
	w.net.Close()
}

func runDTNScalePoint(cfg DTNScaleConfig, n int, world, strategy string) (DTNScalePoint, error) {
	w, sched, err := buildDTNScaleWorld(cfg, n, world, strategy)
	if err != nil {
		return DTNScalePoint{}, err
	}
	defer func() {
		w.close()
		if sched != nil {
			sched.Stop()
		}
	}()

	point := DTNScalePoint{Devices: n, World: world, Strategy: strategy, Engine: "goroutine"}
	if cfg.DES {
		point.Engine = "des"
	}
	sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())

	warmup := cfg.Warmup
	if warmup <= 0 {
		// One full courier tour: every courier has parked at every stop
		// at least once, so encounter memories cover the world.
		warmup = len(w.stops)*w.dwell + 2
	}
	round := 0
	for ; round < warmup; round++ {
		if err := w.tourCouriers(round); err != nil {
			return DTNScalePoint{}, err
		}
		w.sweep(cfg)
	}

	// Traffic: cross-community messages between residents. Same seed →
	// same (src, dst) pairs for every strategy, so the copy-cost ratio
	// compares strategies on identical work.
	msgs := cfg.Messages
	if msgs <= 0 {
		msgs = n / 8
		if msgs < 8 {
			msgs = 8
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x627573))
	var residents []int
	for i, c := range w.community {
		if c >= 0 {
			residents = append(residents, i)
		}
	}
	type sent struct {
		id    string
		dst   int
		round int
	}
	pending := make([]sent, 0, msgs)
	ttl := cfg.DTN.TTLRounds
	if ttl <= 0 {
		ttl = warmup + cfg.Rounds + 8
	}
	for k := 0; k < msgs; k++ {
		src := residents[rng.Intn(len(residents))]
		dst := residents[rng.Intn(len(residents))]
		for w.community[dst] == w.community[src] {
			dst = residents[rng.Intn(len(residents))]
		}
		id, err := w.nodes[src].SendTTL(w.devs[dst], []byte(fmt.Sprintf("bundle-%04d", k)), ttl)
		if err != nil {
			return DTNScalePoint{}, err
		}
		pending = append(pending, sent{id: id, dst: dst, round: round})
	}
	point.Sent = msgs

	var latencySum float64
	for budget := 0; budget < cfg.Rounds; budget++ {
		if err := w.tourCouriers(round); err != nil {
			return DTNScalePoint{}, err
		}
		w.sweep(cfg)
		round++
		remain := pending[:0]
		for _, s := range pending {
			if w.nodes[s.dst].Consumed(s.id) {
				point.Delivered++
				latencySum += float64(round - s.round)
				continue
			}
			remain = append(remain, s)
		}
		pending = remain
		if len(pending) == 0 {
			break
		}
	}
	point.Rounds = round
	point.Wall = sw.Elapsed()
	for _, node := range w.nodes {
		point.Stats.Add(node.Stats())
	}
	point.CopiesSent = point.Stats.CopiesSent
	if point.Sent > 0 {
		point.DeliveryRatio = float64(point.Delivered) / float64(point.Sent)
	}
	if point.Delivered > 0 {
		point.MeanLatency = latencySum / float64(point.Delivered)
		point.CopiesPerDelivered = float64(point.CopiesSent) / float64(point.Delivered)
	}
	if !point.Stats.CustodyBalanced() {
		return DTNScalePoint{}, fmt.Errorf("custody counters unbalanced: %+v", point.Stats)
	}
	return point, nil
}

// FormatDTNScale renders the series as a table.
func FormatDTNScale(points []DTNScalePoint) string {
	header := []string{"Devices", "World", "Strategy", "Engine", "Rounds", "Delivered", "Ratio", "MeanLatency", "Copies", "Copies/dlv", "Wall"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.World,
			p.Strategy,
			p.Engine,
			fmt.Sprintf("%d", p.Rounds),
			fmt.Sprintf("%d/%d", p.Delivered, p.Sent),
			fmt.Sprintf("%.2f", p.DeliveryRatio),
			fmt.Sprintf("%.1f", p.MeanLatency),
			fmt.Sprintf("%d", p.CopiesSent),
			fmt.Sprintf("%.1f", p.CopiesPerDelivered),
			p.Wall.Round(time.Millisecond).String(),
		})
	}
	return FormatTable(header, rows)
}
