package harness

import (
	"testing"
)

// TestDTNScaleStrategies runs both relay strategies in both sparse
// worlds on both engines at a small size: the social strategy must
// deliver everything (couriers learn destinations on the warm-up tour
// and direct-contact delivery closes each route), must never cost more
// copies per delivered message than epidemic spray, and every run's
// custody counters must balance (enforced inside the harness).
func TestDTNScaleStrategies(t *testing.T) {
	for _, des := range []bool{false, true} {
		for _, world := range []string{"bus", "campus"} {
			var epidemic, social DTNScalePoint
			for _, strat := range []string{"epidemic", "social"} {
				p, err := RunDTNScaleMode(DTNScaleConfig{Seed: 7, DES: des}, 80, world, strat)
				if err != nil {
					t.Fatalf("des=%v %s/%s: %v", des, world, strat, err)
				}
				if p.Sent == 0 {
					t.Fatalf("des=%v %s/%s: no traffic originated", des, world, strat)
				}
				if p.Delivered == 0 {
					t.Errorf("des=%v %s/%s: nothing delivered", des, world, strat)
				}
				if strat == "epidemic" {
					epidemic = p
				} else {
					social = p
				}
			}
			if social.DeliveryRatio < 1.0 {
				t.Errorf("des=%v %s: social delivery ratio %.2f, want 1.00 (%d/%d)",
					des, world, social.DeliveryRatio, social.Delivered, social.Sent)
			}
			if social.Delivered > 0 && epidemic.Delivered > 0 &&
				social.CopiesPerDelivered > epidemic.CopiesPerDelivered {
				t.Errorf("des=%v %s: social copies/delivered %.1f above epidemic %.1f",
					des, world, social.CopiesPerDelivered, epidemic.CopiesPerDelivered)
			}
		}
	}
}

// TestDTNScaleFormat smoke-tests the table renderer.
func TestDTNScaleFormat(t *testing.T) {
	p, err := RunDTNScaleMode(DTNScaleConfig{Seed: 3, Rounds: 16}, 40, "bus", "social")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatDTNScale([]DTNScalePoint{p})
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}
