package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file is the engine-scaling experiment: the same discovery sweep
// — every device runs an inquiry window, queries its neighborhood, and
// exchanges interest advertisements with a capped fan-out, then forms
// its groups — on the goroutine transport engine and on the
// discrete-event engine. On the goroutine engine every modeled duration
// is a (scaled) real timer wait, so wall-clock grows with device count
// times timer granularity; on the event engine shared deadlines
// collapse into windows and wall-clock grows with executed events,
// which is what lets one process push the sweep to 10k–50k devices.

// EngineScalePoint is one measured sweep at one world size.
type EngineScalePoint struct {
	Devices int
	// Engine is "goroutine" or "des".
	Engine string
	// Wall is the real wall-clock cost of the whole sweep.
	Wall time.Duration
	// Virtual is how much virtual (clock) time the sweep consumed.
	Virtual time.Duration
	// Events and EventsPerSec are the event engine's executed-event
	// count and throughput (zero on the goroutine engine).
	Events       uint64
	EventsPerSec float64
	// NsPerDeviceRound is Wall divided by device-rounds — the figure
	// whose growth (or flatness) is the scaling claim.
	NsPerDeviceRound float64
	// Groups totals the groups every device formed across rounds, and
	// Delivered the transport's delivered messages — evidence the sweep
	// actually exchanged interests rather than timing empty air.
	Groups    int
	Delivered uint64
}

// EngineScaleConfig parameterizes the sweep.
type EngineScaleConfig struct {
	// Scale is the modeled-to-real latency scale (default 1e-3).
	Scale vtime.Scale
	// Seed drives placement and interests.
	Seed int64
	// Rounds is how many discovery rounds each device runs (default 2).
	Rounds int
	// Fanout caps how many neighbors each device exchanges interests
	// with per round (default 3).
	Fanout int
	// Wave bounds concurrent device drivers (default 2048), so a 50k
	// sweep doesn't need 50k simultaneously running goroutines.
	Wave int
	// DES selects the discrete-event engine; Shards overrides its shard
	// count (default 8).
	DES    bool
	Shards int
}

func (c EngineScaleConfig) withDefaults() EngineScaleConfig {
	if c.Scale.Factor() == 1 || c.Scale.Factor() == 0 {
		c.Scale = vtime.NewScale(1e-3)
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.Wave <= 0 {
		c.Wave = 2048
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// engineScalePool is the interest vocabulary; small enough that groups
// form, large enough that not every pair shares one.
var engineScalePool = []string{"football", "biking", "music", "chess", "films", "news", "games", "food"}

func engineScaleInterests(i int) []string {
	out := []string{engineScalePool[i%len(engineScalePool)]}
	if second := engineScalePool[(i*5+3)%len(engineScalePool)]; second != out[0] {
		out = append(out, second)
	}
	return out
}

func engineScaleAd(dev ids.DeviceID, interests []string) []byte {
	return []byte("ad|" + string(dev) + "|" + strings.Join(interests, ","))
}

func engineScaleParse(payload []byte) ([]string, bool) {
	parts := strings.Split(string(payload), "|")
	if len(parts) != 3 || parts[0] != "ad" {
		return nil, false
	}
	return strings.Split(parts[2], ","), true
}

// RunEngineScale measures the discovery sweep at each world size.
func RunEngineScale(cfg EngineScaleConfig, deviceCounts []int) ([]EngineScalePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]EngineScalePoint, 0, len(deviceCounts))
	for _, n := range deviceCounts {
		if n < 1 {
			return nil, fmt.Errorf("harness: engine scale: need at least one device, got %d", n)
		}
		p, err := runEngineScalePoint(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("harness: engine scale point %d: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func runEngineScalePoint(cfg EngineScaleConfig, n int) (EngineScalePoint, error) {
	ctx := context.Background()
	seed := cfg.Seed + int64(n)
	opts := []radio.Option{radio.WithScale(cfg.Scale)}
	var sched *des.Scheduler
	if cfg.DES {
		sched = des.NewScheduler(seed, cfg.Shards)
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	devs, err := placeUniform(env, n, seed)
	if err != nil {
		return EngineScalePoint{}, err
	}
	var net *netsim.Network
	if cfg.DES {
		net = netsim.NewDES(env, seed, sched)
		sched.Start()
		defer sched.Stop()
	} else {
		net = netsim.New(env, seed)
	}
	defer net.Close()

	// Every device serves its interest advertisement on port "esd":
	// one accept loop per device, one short-lived handler per exchange.
	for i, dev := range devs {
		l, err := net.Listen(dev, "esd")
		if err != nil {
			return EngineScalePoint{}, err
		}
		ad := engineScaleAd(dev, engineScaleInterests(i))
		go func() {
			for {
				c, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(c *netsim.Conn) {
					defer func() { _ = c.Close() }()
					for {
						if _, err := c.Recv(ctx); err != nil {
							return
						}
						if c.Send(ad) != nil {
							return
						}
					}
				}(c)
			}
		}()
	}

	clock := env.Clock()
	inquiry := env.Scale().ToReal(env.PHY(radio.Bluetooth).InquiryDuration)
	var groupsTotal atomic.Int64
	virtStart := clock.Now()
	sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())

	for round := 0; round < cfg.Rounds; round++ {
		idx := make(chan int)
		var wg sync.WaitGroup
		workers := cfg.Wave
		if workers > n {
			workers = n
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					driveEngineScaleDevice(ctx, cfg, env, net, clock, inquiry, devs, i, &groupsTotal)
				}
			}()
		}
		for i := range devs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	wall := sw.Elapsed()
	point := EngineScalePoint{
		Devices:          n,
		Engine:           "goroutine",
		Wall:             wall,
		Virtual:          clock.Now().Sub(virtStart),
		NsPerDeviceRound: float64(wall.Nanoseconds()) / float64(n*cfg.Rounds),
		Groups:           int(groupsTotal.Load()),
		Delivered:        net.Counters().MessagesDelivered,
	}
	if cfg.DES {
		point.Engine = "des"
		point.Events = sched.EventsExecuted()
		if s := wall.Seconds(); s > 0 {
			point.EventsPerSec = float64(point.Events) / s
		}
	}
	return point, nil
}

// driveEngineScaleDevice runs one device's discovery round: inquiry
// window, neighborhood query, capped-fanout interest exchange, group
// formation.
func driveEngineScaleDevice(ctx context.Context, cfg EngineScaleConfig, env *radio.Environment, net *netsim.Network, clock vtime.Clock, inquiry time.Duration, devs []ids.DeviceID, i int, groupsTotal *atomic.Int64) {
	clock.Sleep(inquiry)
	dev := devs[i]
	// Pin the neighborhood query to an inquiry-sized epoch. The world is
	// static here, so the answer is the same at any instant — but on the
	// event engine every device wakes at its own virtual nanosecond, and
	// un-pinned queries would each rebuild the O(n) world snapshot
	// instead of sharing one per epoch (the radio package's query-epoch
	// rule; at 10k devices that rebuild is the whole sweep's cost).
	epoch := env.Elapsed().Truncate(env.PHY(radio.Bluetooth).InquiryDuration)
	neigh := env.NeighborsAt(dev, radio.Bluetooth, epoch)
	self := core.Member{Device: dev, ID: ids.MemberID(dev), Interests: engineScaleInterests(i)}
	var nearby []core.Member
	ad := engineScaleAd(dev, self.Interests)
	for j := 0; j < cfg.Fanout && j < len(neigh); j++ {
		c, err := net.Dial(ctx, dev, neigh[j], radio.Bluetooth, "esd")
		if err != nil {
			continue
		}
		if c.Send(ad) == nil {
			if msg, err := c.Recv(ctx); err == nil {
				if ints, ok := engineScaleParse(msg); ok {
					nearby = append(nearby, core.Member{Device: neigh[j], ID: ids.MemberID(neigh[j]), Interests: ints})
				}
			}
		}
		_ = c.Close()
	}
	groupsTotal.Add(int64(len(core.DiscoverGroups(self, nearby, nil))))
}

// FormatEngineScale renders the series as a table.
func FormatEngineScale(points []EngineScalePoint) string {
	header := []string{"Devices", "Engine", "Wall", "Virtual", "Events", "Events/s", "ns/dev-round", "Groups", "Delivered"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		events, eps := "-", "-"
		if p.Engine == "des" {
			events = fmt.Sprintf("%d", p.Events)
			eps = fmt.Sprintf("%.0f", p.EventsPerSec)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.Engine,
			p.Wall.Round(time.Millisecond).String(),
			p.Virtual.Round(time.Millisecond).String(),
			events,
			eps,
			fmt.Sprintf("%.0f", p.NsPerDeviceRound),
			fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%d", p.Delivered),
		})
	}
	return FormatTable(header, rows)
}
