package harness

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file is the engine-scaling experiment: the same discovery sweep
// — every device runs an inquiry window, queries its neighborhood, and
// exchanges interest advertisements with a capped fan-out, then forms
// its groups — on the goroutine transport engine and on the
// discrete-event engine. On the goroutine engine every modeled duration
// is a (scaled) real timer wait, so wall-clock grows with device count
// times timer granularity; on the event engine the workload drivers ARE
// events (esDriver): each device's round is a self-rescheduling cascade
// of DialEvent/SendEvent/RecvEvent/CloseEvent continuations, so the
// sweep spawns O(shards) goroutines instead of O(devices), shared
// deadlines collapse into windows, and the scheduler's worker pool
// executes the per-window shard batches on every core — which is what
// pushes the sweep from the goroutine engine's ~2k ceiling to 100k
// devices. The Wave-pool goroutine drivers survive behind
// DriverGoroutines as the differential oracle at n ≤ 200.

// EngineScalePoint is one measured sweep at one world size.
type EngineScalePoint struct {
	Devices int
	// Engine is "goroutine" (goroutine transport engine), "des" (event
	// drivers on the discrete-event engine) or "des-goro" (the oracle:
	// goroutine Wave-pool drivers on the discrete-event engine).
	Engine string
	// Workers is the event engine's executor count (0 on the goroutine
	// engine).
	Workers int
	// Wall is the real wall-clock cost of the whole sweep.
	Wall time.Duration
	// Virtual is how much virtual (clock) time the sweep consumed.
	Virtual time.Duration
	// Events and EventsPerSec are the event engine's executed-event
	// count and throughput (zero on the goroutine engine).
	Events       uint64
	EventsPerSec float64
	// NsPerDeviceRound is Wall divided by device-rounds — the figure
	// whose growth (or flatness) is the scaling claim.
	NsPerDeviceRound float64
	// Groups totals the groups every device formed across rounds, and
	// Delivered the transport's delivered messages — evidence the sweep
	// actually exchanged interests rather than timing empty air.
	Groups    int
	Delivered uint64
	// TraceHash is the scheduler's canonical event-trace fold after the
	// sweep (zero on the goroutine engine). For pure event drivers it
	// must be invariant across shard and worker counts — the harness
	// determinism tests pin exactly that.
	TraceHash uint64
}

// EngineScaleConfig parameterizes the sweep.
type EngineScaleConfig struct {
	// Scale is the modeled-to-real latency scale (default 1e-3).
	Scale vtime.Scale
	// Seed drives placement and interests.
	Seed int64
	// Rounds is how many discovery rounds each device runs (default 2).
	Rounds int
	// Fanout caps how many neighbors each device exchanges interests
	// with per round (default 3).
	Fanout int
	// Wave bounds concurrent device drivers on the goroutine-driver
	// paths only — the plain goroutine engine and the DriverGoroutines
	// oracle — where a sweep must not need 50k simultaneous goroutines
	// (default 2048). The DES path schedules drivers as events and
	// never reads it.
	Wave int
	// DES selects the discrete-event engine with event-native workload
	// drivers; Shards overrides its shard count (default 8) and Workers
	// its executor count (default GOMAXPROCS).
	DES     bool
	Shards  int
	Workers int
	// DriverGoroutines runs the Wave-pool goroutine drivers on the DES
	// engine (integrated mode) instead of event drivers — the
	// differential oracle the event cascade is held to at small n.
	DriverGoroutines bool
}

func (c EngineScaleConfig) withDefaults() EngineScaleConfig {
	if c.Scale.Factor() == 1 || c.Scale.Factor() == 0 {
		c.Scale = vtime.NewScale(1e-3)
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.Wave <= 0 {
		c.Wave = 2048
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// engineScalePool is the interest vocabulary; small enough that groups
// form, large enough that not every pair shares one.
var engineScalePool = []string{"football", "biking", "music", "chess", "films", "news", "games", "food"}

func engineScaleInterests(i int) []string {
	out := []string{engineScalePool[i%len(engineScalePool)]}
	if second := engineScalePool[(i*5+3)%len(engineScalePool)]; second != out[0] {
		out = append(out, second)
	}
	return out
}

func engineScaleAd(dev ids.DeviceID, interests []string) []byte {
	return []byte("ad|" + string(dev) + "|" + strings.Join(interests, ","))
}

func engineScaleParse(payload []byte) ([]string, bool) {
	parts := strings.Split(string(payload), "|")
	if len(parts) != 3 || parts[0] != "ad" {
		return nil, false
	}
	return strings.Split(parts[2], ","), true
}

// RunEngineScale measures the discovery sweep at each world size.
func RunEngineScale(cfg EngineScaleConfig, deviceCounts []int) ([]EngineScalePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]EngineScalePoint, 0, len(deviceCounts))
	for _, n := range deviceCounts {
		if n < 1 {
			return nil, fmt.Errorf("harness: engine scale: need at least one device, got %d", n)
		}
		p, err := runEngineScalePoint(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("harness: engine scale point %d: %w", n, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func runEngineScalePoint(cfg EngineScaleConfig, n int) (EngineScalePoint, error) {
	ctx := context.Background()
	seed := cfg.Seed + int64(n)
	opts := []radio.Option{radio.WithScale(cfg.Scale)}
	var sched *des.Scheduler
	if cfg.DES {
		sched = des.NewScheduler(seed, cfg.Shards)
		if cfg.Workers > 0 {
			sched.SetWorkers(cfg.Workers)
		}
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	devs, err := placeUniform(env, n, seed)
	if err != nil {
		return EngineScalePoint{}, err
	}
	var net *netsim.Network
	eventDrivers := cfg.DES && !cfg.DriverGoroutines
	if cfg.DES {
		net = netsim.NewDES(env, seed, sched)
		if !eventDrivers {
			// Goroutine drivers block on the scheduler's clock, so the
			// background runner must advance time; event drivers drain
			// synchronously with Run and never need it.
			sched.Start()
			defer sched.Stop()
		}
	} else {
		net = netsim.New(env, seed)
	}
	defer net.Close()

	// Every device serves its interest advertisement on port "esd". On
	// the goroutine-driver paths that is one accept loop per device plus
	// one short-lived handler goroutine per exchange; with event drivers
	// the listener's AcceptEvent handler arms a RecvEvent/SendEvent
	// serve chain instead, and no serving goroutine ever exists.
	for i, dev := range devs {
		l, err := net.Listen(dev, "esd")
		if err != nil {
			return EngineScalePoint{}, err
		}
		ad := engineScaleAd(dev, engineScaleInterests(i))
		if eventDrivers {
			srv := &esServer{ad: ad}
			l.AcceptEvent(srv.accept)
			continue
		}
		go func() {
			for {
				c, err := l.Accept(ctx)
				if err != nil {
					return
				}
				go func(c *netsim.Conn) {
					defer func() { _ = c.Close() }()
					for {
						if _, err := c.Recv(ctx); err != nil {
							return
						}
						if c.Send(ad) != nil {
							return
						}
					}
				}(c)
			}
		}()
	}

	clock := env.Clock()
	inquiry := env.Scale().ToReal(env.PHY(radio.Bluetooth).InquiryDuration)
	var groupsTotal atomic.Int64
	virtStart := clock.Now()
	sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())

	if eventDrivers {
		// Drivers as events: seed every device's first round (device
		// order, so the pre-run sequence draws replay), then drain the
		// cascade on the calling goroutine — the worker pool inside Run
		// is the only concurrency.
		for i := range devs {
			d := &esDriver{
				cfg: cfg, env: env, net: net,
				dev: devs[i], home: netsim.DeviceHome(devs[i]),
				inquiry: inquiry, groupsTotal: &groupsTotal,
				self: core.Member{Device: devs[i], ID: ids.MemberID(devs[i]), Interests: engineScaleInterests(i)},
			}
			d.ad = engineScaleAd(d.dev, d.self.Interests)
			sched.At(inquiry, d.home, d.startRound)
		}
		sched.Run()
	} else {
		for round := 0; round < cfg.Rounds; round++ {
			idx := make(chan int)
			var wg sync.WaitGroup
			workers := cfg.Wave
			if workers > n {
				workers = n
			}
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range idx {
						driveEngineScaleDevice(ctx, cfg, env, net, clock, inquiry, devs, i, &groupsTotal)
					}
				}()
			}
			for i := range devs {
				idx <- i
			}
			close(idx)
			wg.Wait()
		}
	}

	wall := sw.Elapsed()
	point := EngineScalePoint{
		Devices:          n,
		Engine:           "goroutine",
		Wall:             wall,
		Virtual:          clock.Now().Sub(virtStart),
		NsPerDeviceRound: float64(wall.Nanoseconds()) / float64(n*cfg.Rounds),
		Groups:           int(groupsTotal.Load()),
		Delivered:        net.Counters().MessagesDelivered,
	}
	if cfg.DES {
		point.Engine = "des"
		if cfg.DriverGoroutines {
			point.Engine = "des-goro"
		}
		point.Workers = sched.Workers()
		point.Events = sched.EventsExecuted()
		point.TraceHash = sched.TraceHash()
		if s := wall.Seconds(); s > 0 {
			point.EventsPerSec = float64(point.Events) / s
		}
	}
	return point, nil
}

// esServer is one device's event-mode advertisement service: the
// accept handler arms a recursive serve chain — receive an ad, answer
// with ours, wait for the next — that lives entirely in delivery
// events, replacing the accept-loop and per-exchange handler
// goroutines of the goroutine-driver paths.
type esServer struct {
	ad []byte
}

func (s *esServer) accept(ctx *des.Ctx, c *netsim.Conn) {
	s.serve(ctx, c)
}

func (s *esServer) serve(ctx *des.Ctx, c *netsim.Conn) {
	c.RecvEvent(ctx, func(ctx *des.Ctx, _ []byte, err error) {
		if err != nil {
			c.CloseEvent(ctx)
			return
		}
		if c.SendEvent(ctx, s.ad) != nil {
			c.CloseEvent(ctx)
			return
		}
		s.serve(ctx, c)
	})
}

// esDriver is one device's workload driver as an event cascade: the
// event-native translation of driveEngineScaleDevice, step for step —
// the inquiry window is a scheduled delay instead of a clock sleep,
// each capped-fanout exchange is a DialEvent → SendEvent → RecvEvent →
// CloseEvent continuation chain instead of four blocking calls, and
// the next round reschedules startRound. Every continuation runs on
// this device's home (dial completions, deliveries and teardowns are
// all scheduled there), so driver state needs no locks: events on one
// home are ordered, whatever the shard or worker count.
type esDriver struct {
	cfg         EngineScaleConfig
	env         *radio.Environment
	net         *netsim.Network
	dev         ids.DeviceID
	home        uint64
	inquiry     time.Duration
	groupsTotal *atomic.Int64
	self        core.Member
	ad          []byte

	round  int
	neigh  []ids.DeviceID
	j      int
	nearby []core.Member
}

// startRound fires after the device's inquiry window: neighborhood
// query (epoch-pinned, see driveEngineScaleDevice), then the exchange
// chain.
func (d *esDriver) startRound(ctx *des.Ctx) {
	epoch := d.env.Elapsed().Truncate(d.env.PHY(radio.Bluetooth).InquiryDuration)
	d.neigh = d.env.NeighborsAt(d.dev, radio.Bluetooth, epoch)
	d.nearby = d.nearby[:0]
	d.j = 0
	d.nextExchange(ctx)
}

// nextExchange dials the next capped-fanout neighbor, or finishes the
// round when the cap (or the neighborhood) is exhausted. Failures at
// any step skip to the next neighbor, exactly like the blocking
// driver.
func (d *esDriver) nextExchange(ctx *des.Ctx) {
	if d.j >= d.cfg.Fanout || d.j >= len(d.neigh) {
		d.finishRound(ctx)
		return
	}
	peer := d.neigh[d.j]
	d.j++
	d.net.DialEvent(ctx, d.dev, peer, radio.Bluetooth, "esd", func(ctx *des.Ctx, c *netsim.Conn, err error) {
		if err != nil {
			d.nextExchange(ctx)
			return
		}
		if c.SendEvent(ctx, d.ad) != nil {
			c.CloseEvent(ctx)
			d.nextExchange(ctx)
			return
		}
		c.RecvEvent(ctx, func(ctx *des.Ctx, msg []byte, err error) {
			if err == nil {
				if ints, ok := engineScaleParse(msg); ok {
					d.nearby = append(d.nearby, core.Member{Device: peer, ID: ids.MemberID(peer), Interests: ints})
				}
			}
			c.CloseEvent(ctx)
			d.nextExchange(ctx)
		})
	})
}

// finishRound forms the round's groups and schedules the next round's
// inquiry window, retiring the cascade after the last round.
func (d *esDriver) finishRound(ctx *des.Ctx) {
	d.groupsTotal.Add(int64(len(core.DiscoverGroups(d.self, d.nearby, nil))))
	d.round++
	if d.round < d.cfg.Rounds {
		ctx.At(d.inquiry, d.home, d.startRound)
	}
}

// driveEngineScaleDevice runs one device's discovery round: inquiry
// window, neighborhood query, capped-fanout interest exchange, group
// formation.
func driveEngineScaleDevice(ctx context.Context, cfg EngineScaleConfig, env *radio.Environment, net *netsim.Network, clock vtime.Clock, inquiry time.Duration, devs []ids.DeviceID, i int, groupsTotal *atomic.Int64) {
	clock.Sleep(inquiry)
	dev := devs[i]
	// Pin the neighborhood query to an inquiry-sized epoch. The world is
	// static here, so the answer is the same at any instant — but on the
	// event engine every device wakes at its own virtual nanosecond, and
	// un-pinned queries would each rebuild the O(n) world snapshot
	// instead of sharing one per epoch (the radio package's query-epoch
	// rule; at 10k devices that rebuild is the whole sweep's cost).
	epoch := env.Elapsed().Truncate(env.PHY(radio.Bluetooth).InquiryDuration)
	neigh := env.NeighborsAt(dev, radio.Bluetooth, epoch)
	self := core.Member{Device: dev, ID: ids.MemberID(dev), Interests: engineScaleInterests(i)}
	var nearby []core.Member
	ad := engineScaleAd(dev, self.Interests)
	for j := 0; j < cfg.Fanout && j < len(neigh); j++ {
		c, err := net.Dial(ctx, dev, neigh[j], radio.Bluetooth, "esd")
		if err != nil {
			continue
		}
		if c.Send(ad) == nil {
			if msg, err := c.Recv(ctx); err == nil {
				if ints, ok := engineScaleParse(msg); ok {
					nearby = append(nearby, core.Member{Device: neigh[j], ID: ids.MemberID(neigh[j]), Interests: ints})
				}
			}
		}
		_ = c.Close()
	}
	groupsTotal.Add(int64(len(core.DiscoverGroups(self, nearby, nil))))
}

// FormatEngineScale renders the series as a table.
func FormatEngineScale(points []EngineScalePoint) string {
	header := []string{"Devices", "Engine", "Workers", "Wall", "Virtual", "Events", "Events/s", "ns/dev-round", "Groups", "Delivered"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		events, eps, workers := "-", "-", "-"
		if p.Events > 0 {
			events = fmt.Sprintf("%d", p.Events)
			eps = fmt.Sprintf("%.0f", p.EventsPerSec)
		}
		if p.Workers > 0 {
			workers = fmt.Sprintf("%d", p.Workers)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.Engine,
			workers,
			p.Wall.Round(time.Millisecond).String(),
			p.Virtual.Round(time.Millisecond).String(),
			events,
			eps,
			fmt.Sprintf("%.0f", p.NsPerDeviceRound),
			fmt.Sprintf("%d", p.Groups),
			fmt.Sprintf("%d", p.Delivered),
		})
	}
	return FormatTable(header, rows)
}
