package harness

import (
	"testing"
)

// TestEngineScaleBothEngines runs the discovery sweep small on both
// engines and checks each produced real work: groups formed, messages
// delivered, and — on the event engine — a nonzero executed-event
// count with virtual time consumed.
func TestEngineScaleBothEngines(t *testing.T) {
	for _, des := range []bool{false, true} {
		name := "goroutine"
		if des {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			points, err := RunEngineScale(EngineScaleConfig{Seed: 7, DES: des, Rounds: 2}, []int{40})
			if err != nil {
				t.Fatal(err)
			}
			p := points[0]
			if p.Engine != name {
				t.Errorf("engine label %q, want %q", p.Engine, name)
			}
			if p.Groups == 0 {
				t.Error("sweep formed no groups")
			}
			if p.Delivered == 0 {
				t.Error("sweep delivered no messages")
			}
			if p.Virtual <= 0 {
				t.Error("sweep consumed no virtual time")
			}
			if des {
				if p.Events == 0 {
					t.Error("event engine executed no events")
				}
				if p.EventsPerSec <= 0 {
					t.Error("event engine reported no throughput")
				}
			}
		})
	}
}

// TestEngineScaleDESPushesPastGoroutineSizes is the scaled smoke: the
// event engine must complete a 1000-device sweep in test time — the
// regime the full benchmark (BenchmarkDESScaleDiscovery) extends to
// 10k–100k devices.
func TestEngineScaleDESPushesPastGoroutineSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled sweep skipped in -short mode")
	}
	points, err := RunEngineScale(EngineScaleConfig{Seed: 11, DES: true}, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Groups == 0 || p.Delivered == 0 {
		t.Errorf("1000-device DES sweep did no work: %+v", p)
	}
}

// TestEngineScaleEventDriversMatchOracles is the driver differential:
// at n ≤ 200 the event-driver sweep must form exactly the groups and
// deliver exactly the messages of BOTH goroutine-driver paths — the
// Wave pool on the goroutine engine and the Wave pool on the DES
// engine (DriverGoroutines, integrated mode). Groups and Delivered
// are timing-independent observables of the same protocol, so any
// divergence is an event-translation bug, not schedule noise.
func TestEngineScaleEventDriversMatchOracles(t *testing.T) {
	for _, n := range []int{40, 200} {
		run := func(cfg EngineScaleConfig) EngineScalePoint {
			t.Helper()
			points, err := RunEngineScale(cfg, []int{n})
			if err != nil {
				t.Fatal(err)
			}
			return points[0]
		}
		event := run(EngineScaleConfig{Seed: 7, DES: true})
		goro := run(EngineScaleConfig{Seed: 7})
		oracle := run(EngineScaleConfig{Seed: 7, DES: true, DriverGoroutines: true})
		if oracle.Engine != "des-goro" {
			t.Fatalf("oracle engine label %q, want des-goro", oracle.Engine)
		}
		for _, ref := range []EngineScalePoint{goro, oracle} {
			if event.Groups != ref.Groups || event.Delivered != ref.Delivered {
				t.Errorf("n=%d: event drivers (groups=%d delivered=%d) != %s drivers (groups=%d delivered=%d)",
					n, event.Groups, event.Delivered, ref.Engine, ref.Groups, ref.Delivered)
			}
		}
		if event.Groups == 0 || event.Delivered == 0 {
			t.Errorf("n=%d: differential compared empty sweeps: %+v", n, event)
		}
	}
}

// TestEngineScaleTraceInvariantAcrossShardsAndWorkers pins the
// tentpole determinism claim end to end: the full event-driver sweep —
// drivers, dials, deliveries, teardowns — must produce one trace hash
// (and identical Groups/Delivered/Events) across {1,4,16} shards ×
// {1,4} workers. Run under -race this is also the proof that parallel
// batch execution cannot leak into event ordering.
func TestEngineScaleTraceInvariantAcrossShardsAndWorkers(t *testing.T) {
	const n = 120
	var want EngineScalePoint
	first := true
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 4} {
			points, err := RunEngineScale(EngineScaleConfig{Seed: 13, DES: true, Shards: shards, Workers: workers}, []int{n})
			if err != nil {
				t.Fatal(err)
			}
			p := points[0]
			if p.TraceHash == 0 || p.Events == 0 {
				t.Fatalf("shards=%d workers=%d: sweep left no trace: %+v", shards, workers, p)
			}
			if first {
				want, first = p, false
				continue
			}
			if p.TraceHash != want.TraceHash || p.Events != want.Events ||
				p.Groups != want.Groups || p.Delivered != want.Delivered {
				t.Errorf("shards=%d workers=%d: trace %#x/%d events (groups=%d delivered=%d) != shards=1 workers=1 trace %#x/%d (groups=%d delivered=%d)",
					shards, workers, p.TraceHash, p.Events, p.Groups, p.Delivered,
					want.TraceHash, want.Events, want.Groups, want.Delivered)
			}
		}
	}
}
