package harness

import (
	"testing"
)

// TestEngineScaleBothEngines runs the discovery sweep small on both
// engines and checks each produced real work: groups formed, messages
// delivered, and — on the event engine — a nonzero executed-event
// count with virtual time consumed.
func TestEngineScaleBothEngines(t *testing.T) {
	for _, des := range []bool{false, true} {
		name := "goroutine"
		if des {
			name = "des"
		}
		t.Run(name, func(t *testing.T) {
			points, err := RunEngineScale(EngineScaleConfig{Seed: 7, DES: des, Rounds: 2}, []int{40})
			if err != nil {
				t.Fatal(err)
			}
			p := points[0]
			if p.Engine != name {
				t.Errorf("engine label %q, want %q", p.Engine, name)
			}
			if p.Groups == 0 {
				t.Error("sweep formed no groups")
			}
			if p.Delivered == 0 {
				t.Error("sweep delivered no messages")
			}
			if p.Virtual <= 0 {
				t.Error("sweep consumed no virtual time")
			}
			if des {
				if p.Events == 0 {
					t.Error("event engine executed no events")
				}
				if p.EventsPerSec <= 0 {
					t.Error("event engine reported no throughput")
				}
			}
		})
	}
}

// TestEngineScaleDESPushesPastGoroutineSizes is the scaled smoke: the
// event engine must complete a 1000-device sweep in test time — the
// regime the full benchmark (BenchmarkDESScaleDiscovery) extends to
// 10k–50k devices.
func TestEngineScaleDESPushesPastGoroutineSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled sweep skipped in -short mode")
	}
	points, err := RunEngineScale(EngineScaleConfig{Seed: 11, DES: true}, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Groups == 0 || p.Delivered == 0 {
		t.Errorf("1000-device DES sweep did no work: %+v", p)
	}
}
