package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/gossip"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file is the epidemic-dissemination scaling experiment: the same
// neighborhood-knowledge goal — every device holding the current
// interest record of every radio neighbor — reached two ways. The
// fan-out mode re-polls every neighbor's full record each round, the
// classic periodic re-advertisement. The gossip mode runs the
// internal/gossip engine: greedy rumor pushes that die under redundant
// acks, bloom digests that skip no-op pushes, and periodic
// anti-entropy. Fan-out covers the neighborhood in one round but pays
// the full neighborhood cost every round forever; gossip spends a few
// convergence rounds and then quiesces to amortized digest traffic.
// Each run therefore measures two figures: the rounds to convergence,
// and the steady wire bytes per round once converged — the committed
// BENCH_gossip.json claim is that the second is a fraction of
// fan-out's at a thousand devices and beyond.
//
// The world is a field of Bluetooth-scale proximity clusters (the
// paper's piconet communities): 16 devices per cluster, clusters far
// outside each other's radio range. That is the regime the epidemic
// engine serves — group state spreads and settles inside each
// neighborhood — and it is what lets the per-cluster rumor death and
// digest amortization show up as flat per-device steady cost while
// the fan-out baseline keeps re-shipping every neighbor's full record
// every round at any world size.

// GossipScalePoint is one measured run of one mode at one world size.
type GossipScalePoint struct {
	Devices int
	// Mode is "fanout" or "gossip".
	Mode string
	// Engine is "goroutine" or "des".
	Engine string
	// Rounds is how many sweeps were driven in total (convergence
	// phase plus the measured steady tail).
	Rounds int
	// ConvergedRound is the first 1-based round after which every
	// device held a current record for each of its radio neighbors.
	ConvergedRound int
	// Wall is the real wall-clock cost of the whole run.
	Wall time.Duration
	// ConvergeBytes is the payload bytes delivered up to and including
	// the converging round — the epidemic's one-time spreading cost.
	ConvergeBytes uint64
	// SteadyBytesPerRound is the delivered payload bytes per round
	// averaged over the measured tail after convergence — the figure
	// the benchmark floors pin.
	SteadyBytesPerRound float64
	// Bytes and Messages are the transport totals over the whole run.
	Bytes    uint64
	Messages uint64
	// Stats aggregates the gossip engine's counters (zero in fan-out
	// mode); PushesSkipped and RumorsDied rising while the steady
	// bytes stay low is the quiescence evidence.
	Stats gossip.Stats
}

// GossipScaleConfig parameterizes the sweep.
type GossipScaleConfig struct {
	// Seed drives placement, interests and the per-node gossip rngs.
	Seed int64
	// MaxRounds bounds the convergence phase (default 32).
	MaxRounds int
	// MeasureRounds is the steady tail measured after convergence
	// (default 4 — one full anti-entropy period at the default knobs).
	MeasureRounds int
	// Wave bounds concurrently driven devices per sweep (default 1024).
	Wave int
	// DES selects the discrete-event engine; Shards overrides its
	// shard count (default 8) and Workers its executor count (default
	// GOMAXPROCS).
	DES     bool
	Shards  int
	Workers int
	// Gossip overrides the engine knobs (zero = package defaults).
	Gossip gossip.Config
}

func (c GossipScaleConfig) withDefaults() GossipScaleConfig {
	if c.MaxRounds <= 0 {
		c.MaxRounds = 32
	}
	if c.MeasureRounds <= 0 {
		c.MeasureRounds = 4
	}
	if c.Wave <= 0 {
		c.Wave = 1024
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// RunGossipScale measures both modes at each world size.
func RunGossipScale(cfg GossipScaleConfig, deviceCounts []int) ([]GossipScalePoint, error) {
	cfg = cfg.withDefaults()
	out := make([]GossipScalePoint, 0, 2*len(deviceCounts))
	for _, n := range deviceCounts {
		for _, mode := range []string{"fanout", "gossip"} {
			p, err := RunGossipScaleMode(cfg, n, mode)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RunGossipScaleMode measures a single mode at one world size (for
// benchmarks that pin each mode as its own benchmark case).
func RunGossipScaleMode(cfg GossipScaleConfig, n int, mode string) (GossipScalePoint, error) {
	cfg = cfg.withDefaults()
	if n < 2 {
		return GossipScalePoint{}, fmt.Errorf("harness: gossip scale: need at least two devices, got %d", n)
	}
	p, err := runGossipScalePoint(cfg, n, mode)
	if err != nil {
		return GossipScalePoint{}, fmt.Errorf("harness: gossip scale %s point %d: %w", mode, n, err)
	}
	return p, nil
}

// gossipScaleWorld is one built world: transport, device list and the
// epoch-0 neighborhoods (the world is static, so every round shares
// the one snapshot).
type gossipScaleWorld struct {
	net   *netsim.Network
	devs  []ids.DeviceID
	neigh [][]ids.DeviceID
}

// gossipScaleDriver abstracts one mode over the two-phase measurement:
// sweep drives one round for every device, converged reports full
// neighborhood coverage, finish collects mode-specific counters.
type gossipScaleDriver interface {
	sweep()
	converged() bool
	finish(point *GossipScalePoint)
}

func runGossipScalePoint(cfg GossipScaleConfig, n int, mode string) (GossipScalePoint, error) {
	seed := cfg.Seed + int64(n)
	opts := []radio.Option{radio.WithScale(vtime.NewScale(1e-6))}
	var sched *des.Scheduler
	if cfg.DES {
		sched = des.NewScheduler(seed, cfg.Shards)
		if cfg.Workers > 0 {
			sched.SetWorkers(cfg.Workers)
		}
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	devs, err := placeGossipClusters(env, n, seed)
	if err != nil {
		return GossipScalePoint{}, err
	}
	var net *netsim.Network
	if cfg.DES {
		net = netsim.NewDES(env, seed, sched)
		sched.Start()
		defer sched.Stop()
	} else {
		net = netsim.New(env, seed)
	}
	defer net.Close()

	// Pin every neighborhood to the epoch-0 snapshot once: the world is
	// static, and per-round un-pinned queries would each rebuild the
	// O(n) world state (the radio package's query-epoch rule).
	w := &gossipScaleWorld{net: net, devs: devs, neigh: make([][]ids.DeviceID, n)}
	for i, dev := range devs {
		w.neigh[i] = env.NeighborsAt(dev, radio.Bluetooth, 0)
	}

	var drv gossipScaleDriver
	switch mode {
	case "fanout":
		drv, err = newGossipScaleFanout(cfg, w)
	case "gossip":
		drv, err = newGossipScaleGossip(cfg, w)
	default:
		err = fmt.Errorf("unknown mode %q", mode)
	}
	if err != nil {
		return GossipScalePoint{}, err
	}

	point := GossipScalePoint{Devices: n, Mode: mode, Engine: "goroutine"}
	if cfg.DES {
		point.Engine = "des"
	}
	sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())
	for round := 1; round <= cfg.MaxRounds; round++ {
		drv.sweep()
		point.Rounds = round
		if drv.converged() {
			point.ConvergedRound = round
			break
		}
	}
	if point.ConvergedRound == 0 {
		drv.finish(&point)
		return GossipScalePoint{}, fmt.Errorf("never converged in %d rounds", cfg.MaxRounds)
	}
	// A short settle phase before the measured tail: right at
	// convergence a few hot counters are still draining their last
	// redundant pushes; the steady figure is the state after the
	// feedback has killed them. Fan-out is round-invariant, so the
	// settle is a no-op for the baseline.
	for i := 0; i < gossipScaleSettleRounds; i++ {
		drv.sweep()
		point.Rounds++
	}
	point.ConvergeBytes = net.Counters().BytesDelivered
	for i := 0; i < cfg.MeasureRounds; i++ {
		drv.sweep()
		point.Rounds++
	}
	drv.finish(&point)
	point.Wall = sw.Elapsed()
	c := net.Counters()
	point.Bytes = c.BytesDelivered
	point.Messages = c.MessagesDelivered
	point.SteadyBytesPerRound = float64(point.Bytes-point.ConvergeBytes) / float64(cfg.MeasureRounds)
	return point, nil
}

// gossipScaleSettleRounds separates the converging round from the
// measured steady tail (see runGossipScalePoint).
const gossipScaleSettleRounds = 2

// placeGossipClusters lays n devices out as proximity clusters of 16:
// members jittered inside a 4 m box (everyone in Bluetooth range of
// the whole cluster), cluster origins 40 m apart on a grid (no
// cross-cluster radio path).
func placeGossipClusters(env *radio.Environment, n int, seed int64) ([]ids.DeviceID, error) {
	const clusterSize = 16
	const spacing = 40.0
	clusters := (n + clusterSize - 1) / clusterSize
	cols := int(math.Ceil(math.Sqrt(float64(clusters))))
	rng := rand.New(rand.NewSource(seed))
	devs := make([]ids.DeviceID, n)
	for i := range devs {
		devs[i] = ids.DeviceIDf("dev-%05d", i)
		c := i / clusterSize
		at := geo.Pt(
			float64(c%cols)*spacing+rng.Float64()*4,
			float64(c/cols)*spacing+rng.Float64()*4,
		)
		if err := env.Add(devs[i], mobility.Static{At: at}, radio.Bluetooth); err != nil {
			return nil, err
		}
	}
	return devs, nil
}

// gossipScaleRecord is device i's interest record; both modes ship the
// identical payload through the identical codec, so the byte curves
// compare dissemination strategies, not serialization tricks.
func gossipScaleRecord(devs []ids.DeviceID, i int) gossip.Record {
	return gossip.Record{
		Member:    ids.MemberID(devs[i]),
		Device:    devs[i],
		Epoch:     1,
		Interests: engineScaleInterests(i),
	}
}

// sweepWave runs fn(i) for every device with at most cfg.Wave drivers
// in flight.
func sweepWave(cfg GossipScaleConfig, n int, fn func(i int)) {
	workers := cfg.Wave
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// gossipScaleFanout is the baseline: every round, every device dials
// each radio neighbor and pulls its full record — the periodic
// re-advertisement fan-out. It covers the neighborhood in round one
// and pays the identical full cost every round after.
type gossipScaleFanout struct {
	cfg     GossipScaleConfig
	w       *gossipScaleWorld
	mu      sync.Mutex
	covered []map[ids.DeviceID]bool
}

func newGossipScaleFanout(cfg GossipScaleConfig, w *gossipScaleWorld) (*gossipScaleFanout, error) {
	ctx := context.Background()
	d := &gossipScaleFanout{cfg: cfg, w: w, covered: make([]map[ids.DeviceID]bool, len(w.devs))}
	for i := range d.covered {
		d.covered[i] = make(map[ids.DeviceID]bool, len(w.neigh[i]))
	}
	for i, dev := range w.devs {
		lis, err := w.net.Listen(dev, "adv")
		if err != nil {
			return nil, err
		}
		frame := gossip.MarshalDelta(gossip.FrameDelta{From: dev, Records: []gossip.Record{gossipScaleRecord(w.devs, i)}})
		go func() {
			for {
				c, err := lis.Accept(ctx)
				if err != nil {
					return
				}
				go func(c *netsim.Conn) {
					defer func() { _ = c.Close() }()
					for {
						if _, err := c.Recv(ctx); err != nil {
							return
						}
						if c.Send(frame) != nil {
							return
						}
					}
				}(c)
			}
		}()
	}
	return d, nil
}

func (d *gossipScaleFanout) sweep() {
	ctx := context.Background()
	sweepWave(d.cfg, len(d.w.devs), func(i int) {
		for _, peer := range d.w.neigh[i] {
			c, err := d.w.net.Dial(ctx, d.w.devs[i], peer, radio.Bluetooth, "adv")
			if err != nil {
				continue
			}
			if c.Send([]byte("pull")) == nil {
				if resp, err := c.Recv(ctx); err == nil {
					if delta, err := gossip.UnmarshalDelta(resp); err == nil && len(delta.Records) == 1 {
						d.mu.Lock()
						d.covered[i][delta.Records[0].Device] = true
						d.mu.Unlock()
					}
				}
			}
			_ = c.Close()
		}
	})
}

func (d *gossipScaleFanout) converged() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, want := range d.w.neigh {
		for _, peer := range want {
			if !d.covered[i][peer] {
				return false
			}
		}
	}
	return true
}

func (d *gossipScaleFanout) finish(*GossipScalePoint) {}

// gossipScaleGossip drives the epidemic engine.
type gossipScaleGossip struct {
	cfg   GossipScaleConfig
	w     *gossipScaleWorld
	nodes []*gossip.Node
}

func newGossipScaleGossip(cfg GossipScaleConfig, w *gossipScaleWorld) (*gossipScaleGossip, error) {
	d := &gossipScaleGossip{cfg: cfg, w: w, nodes: make([]*gossip.Node, len(w.devs))}
	for i, dev := range w.devs {
		i, dev := i, dev
		node, err := gossip.NewNode(gossip.Params{
			Device:    dev,
			Member:    ids.MemberID(dev),
			Self:      func() gossip.Record { return gossipScaleRecord(w.devs, i) },
			Neighbors: func() []ids.DeviceID { return w.neigh[i] },
			Net:       w.net,
			Seed:      cfg.Seed,
			Config:    cfg.Gossip,
		})
		if err != nil {
			return nil, err
		}
		if err := node.Start(); err != nil {
			return nil, err
		}
		d.nodes[i] = node
	}
	return d, nil
}

func (d *gossipScaleGossip) sweep() {
	ctx := context.Background()
	sweepWave(d.cfg, len(d.nodes), func(i int) { d.nodes[i].Round(ctx) })
}

func (d *gossipScaleGossip) converged() bool {
	for i, node := range d.nodes {
		for _, peer := range d.w.neigh[i] {
			if !node.HasRecord(peer, 1) {
				return false
			}
		}
	}
	return true
}

func (d *gossipScaleGossip) finish(point *GossipScalePoint) {
	for _, node := range d.nodes {
		point.Stats.Add(node.Stats())
		node.Stop()
	}
}

// FormatGossipScale renders the series as a table.
func FormatGossipScale(points []GossipScalePoint) string {
	header := []string{"Devices", "Mode", "Engine", "Converged@", "Wall", "ConvergeBytes", "SteadyBytes/round", "Msgs", "PushSkip", "RumorsDied"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.Mode,
			p.Engine,
			fmt.Sprintf("%d", p.ConvergedRound),
			p.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", p.ConvergeBytes),
			fmt.Sprintf("%.0f", p.SteadyBytesPerRound),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%d", p.Stats.PushesSkipped),
			fmt.Sprintf("%d", p.Stats.RumorsDied),
		})
	}
	return FormatTable(header, rows)
}
