package harness

import (
	"testing"
)

// TestGossipScaleModes runs both modes on both engines at a small
// size: the fan-out baseline must cover every neighborhood in round
// one, the epidemic must converge within the round budget, and both
// must actually move bytes.
func TestGossipScaleModes(t *testing.T) {
	for _, des := range []bool{false, true} {
		points, err := RunGossipScale(GossipScaleConfig{Seed: 7, DES: des}, []int{60})
		if err != nil {
			t.Fatalf("des=%v: %v", des, err)
		}
		if len(points) != 2 {
			t.Fatalf("des=%v: got %d points, want 2", des, len(points))
		}
		fanout, gsp := points[0], points[1]
		if fanout.Mode != "fanout" || gsp.Mode != "gossip" {
			t.Fatalf("des=%v: unexpected mode order: %+v", des, points)
		}
		if fanout.ConvergedRound != 1 {
			t.Errorf("des=%v: fan-out covered the neighborhood in round %d, want 1", des, fanout.ConvergedRound)
		}
		if gsp.ConvergedRound == 0 {
			t.Errorf("des=%v: gossip never converged", des)
		}
		if fanout.Bytes == 0 || gsp.Bytes == 0 {
			t.Errorf("des=%v: a mode moved no bytes: fanout=%d gossip=%d", des, fanout.Bytes, gsp.Bytes)
		}
		if gsp.Stats.PushesSent == 0 || gsp.Stats.AERuns == 0 {
			t.Errorf("des=%v: gossip engine idle: %+v", des, gsp.Stats)
		}
		// The headline claim at scale; it already holds in this small
		// world, where fan-out re-polls every neighbor's full record
		// each round while the converged epidemic has quiesced to
		// amortized anti-entropy digests.
		if gsp.SteadyBytesPerRound >= fanout.SteadyBytesPerRound {
			t.Errorf("des=%v: gossip steady bytes/round %.0f not below fan-out %.0f",
				des, gsp.SteadyBytesPerRound, fanout.SteadyBytesPerRound)
		}
	}
}

// TestGossipScaleFormat smoke-tests the table renderer.
func TestGossipScaleFormat(t *testing.T) {
	points, err := RunGossipScale(GossipScaleConfig{Seed: 3}, []int{24})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatGossipScale(points)
	if len(out) == 0 {
		t.Fatal("empty table")
	}
}
