// Package harness builds the experiment worlds and runs the thesis's
// evaluation: the ComLab testbed of Tables 4/5 and the timing
// comparison of Table 8 (search / join / member list / profile across
// Facebook and Hi5 on two handsets versus PeerHood Community over
// Bluetooth).
package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// TestbedMachine describes one machine of the thesis's Table 5.
type TestbedMachine struct {
	Name      string
	Device    ids.DeviceID
	Processor string
	MemoryMB  float64
	OS        string
	Position  geo.Point
}

// Testbed is the hardware environment of the reference implementation.
type Testbed struct {
	Machines []TestbedMachine
	// PeerHoodVersion and Compiler mirror Table 4.
	PeerHoodVersion string
	Compiler        string
}

// ComLabTestbed returns the test environment of Tables 4 and 5: two
// desktop PCs and an IBM ThinkPad T40, all within Bluetooth range in
// room 6604 (Appendix 1).
func ComLabTestbed() Testbed {
	return Testbed{
		PeerHoodVersion: "0.2",
		Compiler:        "GNU C++ 4.2.3-2ubuntu7",
		Machines: []TestbedMachine{
			{
				Name:      "Desktop PC1",
				Device:    "desktop-pc1",
				Processor: "AMD Athlon 64 3000+",
				MemoryMB:  1005.0,
				OS:        "Ubuntu 8.04 (hardy)",
				Position:  geo.Pt(0, 0),
			},
			{
				Name:      "Desktop PC2",
				Device:    "desktop-pc2",
				Processor: "Intel Pentium III 1200 MHz",
				MemoryMB:  757.5,
				OS:        "Ubuntu 8.04 (hardy)",
				Position:  geo.Pt(4, 0),
			},
			{
				Name:      "IBM ThinkPad T40",
				Device:    "thinkpad-t40",
				Processor: "Intel Pentium M 1600 MHz",
				MemoryMB:  1536,
				OS:        "Ubuntu 7.04 (feisty)",
				Position:  geo.Pt(2, 3),
			},
		},
	}
}

// BuildWorld places the testbed's machines in a fresh radio
// environment with Bluetooth radios (the thesis tested with Bluetooth
// only) and returns the environment and network.
func (tb Testbed) BuildWorld(scale vtime.Scale, seed int64) (*radio.Environment, *netsim.Network, error) {
	env := radio.NewEnvironment(radio.WithScale(scale))
	net := netsim.New(env, seed)
	for _, m := range tb.Machines {
		if err := env.Add(m.Device, mobility.Static{At: m.Position}, radio.Bluetooth); err != nil {
			return nil, nil, fmt.Errorf("harness: placing %s: %w", m.Name, err)
		}
	}
	return env, net, nil
}

// FormatDuration renders a modeled duration the way the thesis reports
// them: whole seconds.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.0f s", d.Seconds())
}

// FormatTable renders rows of cells as an aligned text table with a
// header row.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
