package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/radio"
	"repro/internal/snsbase"
	"repro/internal/vtime"
)

func TestComLabTestbedMatchesTable5(t *testing.T) {
	tb := ComLabTestbed()
	if len(tb.Machines) != 3 {
		t.Fatalf("machines = %d, want 3 (2 desktops + laptop)", len(tb.Machines))
	}
	if tb.PeerHoodVersion != "0.2" {
		t.Errorf("PeerHood version = %q, want 0.2 (Table 4)", tb.PeerHoodVersion)
	}
	names := map[string]bool{}
	for _, m := range tb.Machines {
		names[m.Name] = true
	}
	for _, want := range []string{"Desktop PC1", "Desktop PC2", "IBM ThinkPad T40"} {
		if !names[want] {
			t.Errorf("missing machine %q", want)
		}
	}
}

func TestBuildWorldAllInBluetoothRange(t *testing.T) {
	tb := ComLabTestbed()
	env, net, err := tb.BuildWorld(vtime.DefaultScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	devs := env.Devices()
	if len(devs) != 3 {
		t.Fatalf("devices = %v", devs)
	}
	// Room 6604: every machine must reach every other over Bluetooth.
	for _, a := range devs {
		for _, b := range devs {
			if a != b && !env.Reachable(a, b, radio.Bluetooth) {
				t.Fatalf("%s cannot reach %s over Bluetooth", a, b)
			}
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"A", "Long Header"}, [][]string{{"x", "y"}, {"longer", "z"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Long Header") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(11 * time.Second); got != "11 s" {
		t.Fatalf("FormatDuration = %q", got)
	}
	if got := FormatDuration(500 * time.Millisecond); got != "0 s" && got != "1 s" {
		t.Fatalf("FormatDuration = %q", got)
	}
}

// TestTable8SNSColumnShape runs one SNS column and checks it lands in
// the right regime (tens of seconds, search dominant).
func TestTable8SNSColumnShape(t *testing.T) {
	row, err := runSNSColumn(Table8Options{}.withDefaults(), snsbase.Facebook(), snsbase.NokiaN810())
	if err != nil {
		t.Fatal(err)
	}
	if row.Search < 20*time.Second || row.Search > 150*time.Second {
		t.Errorf("search = %v, want tens of seconds (paper: 58 s)", row.Search)
	}
	if row.Join <= 0 {
		t.Errorf("join = %v, want > 0 on an SNS (paper: 17 s)", row.Join)
	}
	if row.Total() < 40*time.Second {
		t.Errorf("total = %v, want ~minute-scale (paper: 94 s)", row.Total())
	}
}

// TestTable8PHCColumnShape runs the PeerHood column and checks the
// thesis's claims: join is zero, search ≈ one Bluetooth inquiry.
func TestTable8PHCColumnShape(t *testing.T) {
	row, err := RunPHCColumn(Table8Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Join > time.Second {
		t.Errorf("join = %v, want ~0 (already in the group)", row.Join)
	}
	// Search is dominated by the 10.24 s Bluetooth inquiry (paper: 11 s).
	if row.Search < 8*time.Second || row.Search > 30*time.Second {
		t.Errorf("search = %v, want ≈11 s", row.Search)
	}
	if row.Total() > 60*time.Second {
		t.Errorf("total = %v, want well under a minute (paper: 45 s)", row.Total())
	}
}

// TestTable8FullShape runs the whole table and verifies the paper's
// headline: PeerHood Community beats every SNS column.
func TestTable8FullShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 8 run in -short mode")
	}
	rows, err := RunTable8(Table8Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	phc := rows[4]
	if phc.SocialNetwork != "PeerHood Community" {
		t.Fatalf("last row = %+v, want PHC", phc)
	}
	for _, sns := range rows[:4] {
		if phc.Total() >= sns.Total() {
			t.Errorf("PHC total %v not faster than %s on %s (%v)",
				phc.Total(), sns.SocialNetwork, sns.AccessedThrough, sns.Total())
		}
		if sns.Join <= 0 {
			t.Errorf("%s join should cost time", sns.SocialNetwork)
		}
	}
	// Device ordering: N95 slower than N810 per site.
	if rows[0].Total() >= rows[1].Total() {
		t.Errorf("Facebook N810 (%v) should beat N95 (%v)", rows[0].Total(), rows[1].Total())
	}
	if rows[2].Total() >= rows[3].Total() {
		t.Errorf("Hi5 N810 (%v) should beat N95 (%v)", rows[2].Total(), rows[3].Total())
	}
	// Render the table for humans.
	out := FormatTable8(rows)
	for _, want := range []string{"SNS (Facebook)", "SNS (Hi5)", "PeerHood Community", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}

// TestTable8WarmCacheAblation: with the daemon pre-warmed, search
// collapses toward zero — the benefit of PeerHood's continuous
// background discovery.
func TestTable8WarmCacheAblation(t *testing.T) {
	cold, err := RunPHCColumn(Table8Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunPHCColumn(Table8Options{WarmCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Search >= cold.Search {
		t.Fatalf("warm search (%v) should beat cold search (%v)", warm.Search, cold.Search)
	}
	if warm.Search > 5*time.Second {
		t.Fatalf("warm search = %v, want small", warm.Search)
	}
}

func TestRunTable8AveragedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("averaged Table 8 in -short mode")
	}
	rows, err := RunTable8Averaged(Table8Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if rows[4].Join > time.Second {
		t.Fatalf("averaged PHC join = %v, want ~0", rows[4].Join)
	}
}

func TestAverageRowsValidation(t *testing.T) {
	if _, err := averageRows(nil); err == nil {
		t.Fatal("empty average accepted")
	}
	a := Table8Row{SocialNetwork: "A", Search: 10 * time.Second}
	b := Table8Row{SocialNetwork: "A", Search: 20 * time.Second}
	avg, err := averageRows([]Table8Row{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Search != 15*time.Second {
		t.Fatalf("avg search = %v, want 15s", avg.Search)
	}
	mixed := Table8Row{SocialNetwork: "B"}
	if _, err := averageRows([]Table8Row{a, mixed}); err == nil {
		t.Fatal("mixed columns accepted")
	}
}

// TestTable8TechnologyAblation runs the PeerHood column over each
// technology: WLAN's short scan beats Bluetooth's 10.24 s inquiry on
// search, while GPRS (bridged through the operator proxy) pays the
// highest per-operation latency.
func TestTable8TechnologyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("technology ablation in -short mode")
	}
	run := func(tech radio.Technology) Table8Row {
		t.Helper()
		row, err := RunPHCColumn(Table8Options{Technology: tech})
		if err != nil {
			t.Fatalf("%v column: %v", tech, err)
		}
		return row
	}
	bt := run(radio.Bluetooth)
	wlan := run(radio.WLAN)
	gprs := run(radio.GPRS)

	if wlan.Search >= bt.Search {
		t.Errorf("WLAN search (%v) should beat Bluetooth (%v): 2 s scan vs 10.24 s inquiry", wlan.Search, bt.Search)
	}
	if gprs.Profile <= bt.Profile {
		t.Errorf("GPRS profile view (%v) should cost more than Bluetooth (%v): double cellular hop", gprs.Profile, bt.Profile)
	}
	for _, row := range []Table8Row{bt, wlan, gprs} {
		if row.Join > time.Second {
			t.Errorf("join should stay ~0 on every technology, got %v", row.Join)
		}
	}
}

// TestDiscoveryScale runs the future-work scaling experiment: the
// inquiry dominates, and the post-inquiry gather cost grows with the
// neighborhood but stays a small fraction of the total.
func TestDiscoveryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment in -short mode")
	}
	points, err := RunDiscoveryScale(vtime.Scale{}, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Groups != 1 {
			t.Errorf("%d peers formed %d groups, want 1", p.Peers, p.Groups)
		}
		// The 10.24 s inquiry must dominate the search at every size.
		if p.Search < 10*time.Second {
			t.Errorf("%d peers: search %v below inquiry time", p.Peers, p.Search)
		}
		if p.Gather > p.Search/2 {
			t.Errorf("%d peers: gather %v should stay well under half of search %v", p.Peers, p.Gather, p.Search)
		}
	}
	// Gather cost must not shrink as the neighborhood grows (weak
	// monotonicity with slack for scheduling noise).
	if points[2].Gather+time.Second < points[0].Gather {
		t.Errorf("gather shrank with more peers: %v -> %v", points[0].Gather, points[2].Gather)
	}
	t.Logf("\n%s", FormatDiscoveryScale(points))
}

func TestDiscoveryScaleValidation(t *testing.T) {
	if _, err := RunDiscoveryScale(vtime.Scale{}, []int{0}); err == nil {
		t.Fatal("zero peers accepted")
	}
}

func TestFormatTable8CSV(t *testing.T) {
	rows := []Table8Row{{
		SocialNetwork:   "SNS (Facebook)",
		AccessedThrough: "Nokia N810",
		InterestGroup:   "England Football",
		Search:          58 * time.Second,
		Join:            17 * time.Second,
		MemberList:      8 * time.Second,
		Profile:         11 * time.Second,
	}}
	out := FormatTable8CSV(rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "social_network,") {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "SNS (Facebook),Nokia N810,England Football,58.0,17.0,8.0,11.0,94.0" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain = %q", got)
	}
	if got := csvEscape(`a,b"c`); got != `"a,b""c"` {
		t.Errorf("escaped = %q", got)
	}
}

// TestChurnGrowsWithSpeed: static peers produce a stable network;
// walkers churn it, and faster walkers churn it more (with slack, since
// random-waypoint paths are irregular).
func TestChurnGrowsWithSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("churn experiment in -short mode")
	}
	points, err := RunChurn(ChurnConfig{}, []float64{0, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	static, walking := points[0], points[1]
	if static.Events != 0 {
		t.Errorf("static peers churned %d times, want 0", static.Events)
	}
	if walking.Events == 0 {
		t.Errorf("walking peers produced no churn")
	}
	t.Logf("\n%s", FormatChurn(points))
}

func TestChurnValidation(t *testing.T) {
	if _, err := RunChurn(ChurnConfig{Window: time.Second, Peers: 1}, []float64{-1}); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestFormatSeriesTables(t *testing.T) {
	scaleOut := FormatDiscoveryScale([]ScalePoint{{Peers: 4, Search: 15 * time.Second, Gather: 5 * time.Second, Groups: 1}})
	for _, want := range []string{"Peers", "15.0 s", "5.0 s"} {
		if !strings.Contains(scaleOut, want) {
			t.Errorf("scale table missing %q:\n%s", want, scaleOut)
		}
	}
	churnOut := FormatChurn([]ChurnPoint{{SpeedMps: 1.5, Duration: 3 * time.Minute, Events: 30, EventsPerMinute: 10}})
	for _, want := range []string{"Peer speed", "1.5 m/s", "10.0"} {
		if !strings.Contains(churnOut, want) {
			t.Errorf("churn table missing %q:\n%s", want, churnOut)
		}
	}
}
