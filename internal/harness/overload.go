package harness

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/community"
	"repro/internal/des"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/peerhood"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// OverloadPoint is one row of the overload experiment: a neighborhood
// of Devices peers whose servers run with an explicit, small admission
// capacity, while a load generator offers Load× that capacity in raw
// sessions against one hot server. The point records how the server
// degraded (admitted / queued / shed, bounded queue depth) and what an
// innocent observer's steady group round cost while the hot peer was
// under fire.
type OverloadPoint struct {
	Devices  int
	Load     int
	Capacity int
	// Engine is "goroutine" or "des" (event-native load drivers on the
	// discrete-event engine).
	Engine string
	// SteadyRound is the slowest of the observer's measured steady
	// RefreshGroups rounds (real wall time) under offered load.
	SteadyRound time.Duration
	// Server is the hot server's admission accounting.
	Server community.ServerStats
	// ObserverDegraded is how many of the observer's fan-outs ran on
	// partial results.
	ObserverDegraded uint64
}

// OverloadConfig parameterizes the sweep.
type OverloadConfig struct {
	// Scale is the latency scale (default 1e-4).
	Scale vtime.Scale
	// Devices are the neighborhood sizes (default 100, 400, 1000).
	Devices []int
	// Loads are offered-session multiples of Capacity (default 1, 4, 10).
	Loads []int
	// Capacity is the hot server's MaxSessions (default 8 — small and
	// explicit, so overload is reachable without thousands of sessions).
	Capacity int
	// QueueDepth is the hot server's admission queue bound (default 16).
	QueueDepth int
	// Rounds is how many steady observer rounds each point measures
	// (default 3).
	Rounds int
	// DES runs the point on the discrete-event engine with the load
	// generator as event-native session cascades — the engine-scale
	// driver discipline: each offered session is a self-rescheduling
	// DialEvent/SendEvent/RecvEvent chain on the scheduler, so offered
	// load costs O(1) goroutines at any multiple. The measured observer
	// stays the blocking client (integrated mode), exactly as in the
	// DTN and gossip sweeps. Shards overrides the scheduler's shard
	// count (default 8) and Workers its executor count.
	DES     bool
	Shards  int
	Workers int
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Scale.Factor() == 1 || c.Scale.Factor() == 0 {
		c.Scale = vtime.NewScale(1e-4)
	}
	if len(c.Devices) == 0 {
		c.Devices = []int{100, 400, 1000}
	}
	if len(c.Loads) == 0 {
		c.Loads = []int{1, 4, 10}
	}
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	return c
}

// RunOverload runs the sweep and returns one point per (devices, load)
// pair.
func RunOverload(cfg OverloadConfig) ([]OverloadPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]OverloadPoint, 0, len(cfg.Devices)*len(cfg.Loads))
	for _, n := range cfg.Devices {
		for _, load := range cfg.Loads {
			p, err := runOverloadPoint(cfg, n, load)
			if err != nil {
				return nil, fmt.Errorf("harness: overload point %d×%d: %w", n, load, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// loadSettle is how long (real time) the load generator runs before the
// observer's measured rounds start, so admission reaches steady state.
const loadSettle = 50 * time.Millisecond

func runOverloadPoint(cfg OverloadConfig, peers, load int) (OverloadPoint, error) {
	if peers < 2 {
		return OverloadPoint{}, fmt.Errorf("need at least two peers")
	}
	builder := scenario.NewBuilder().WithScale(cfg.Scale).WithSeed(int64(peers)).
		WithServerOptions(community.ServerOptions{
			MaxSessions: cfg.Capacity,
			QueueDepth:  cfg.QueueDepth,
		})
	if cfg.DES {
		builder.WithDES(cfg.Shards)
		if cfg.Workers > 0 {
			builder.WithDESWorkers(cfg.Workers)
		}
	}
	side := 1 + peers/4
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%04d", i)),
			Position:  geo.Pt(float64(i%side)*0.01, float64(i/side)*0.01),
			Interests: []string{"football"},
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(0.005, 0.005),
		Interests: []string{"football"},
	})
	d, err := builder.Build()
	if err != nil {
		return OverloadPoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	active := d.MustPeer("active")
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		return OverloadPoint{}, err
	}
	// Warm round: the observer's persistent sessions are admitted while
	// the world is calm — established service survives the overload;
	// it is fresh arrivals that get queued and shed.
	if _, err := active.Client.RefreshGroups(ctx); err != nil {
		return OverloadPoint{}, err
	}

	hot := d.MustPeer("peer-0000")
	hotDev := hot.Daemon.Device()
	point := OverloadPoint{Devices: peers, Load: load, Capacity: cfg.Capacity, Engine: "goroutine"}
	if cfg.DES {
		point.Engine = "des"
	}

	// Load generator: load×capacity concurrent raw sessions against the
	// hot server, each pinging in a tight loop and re-dialing whenever
	// it is shed. Sourced from a handful of neighbor devices so no
	// single radio serializes the pressure. On the goroutine engine
	// each session is a goroutine; on the event engine each session is
	// an olSession event cascade.
	offered := load * cfg.Capacity
	gens := 4
	if peers < gens {
		gens = peers
	}
	var stopLoad func()
	ping := community.MarshalRequest(community.Request{Op: community.OpPing})
	if cfg.DES {
		stopLoad = startEventLoad(d, offered, gens, hotDev, ping)
	} else {
		loadCtx, cancelLoad := context.WithCancel(ctx)
		var wg sync.WaitGroup
		for i := 0; i < offered; i++ {
			src := d.MustPeer(ids.MemberID(fmt.Sprintf("peer-%04d", 1+i%gens))).Lib
			wg.Add(1)
			go func() {
				defer wg.Done()
				for loadCtx.Err() == nil {
					conn, err := src.Connect(loadCtx, hotDev, community.ServiceName)
					if err != nil {
						continue
					}
					for loadCtx.Err() == nil {
						if err := conn.Send(ping); err != nil {
							break
						}
						if _, err := conn.Recv(loadCtx); err != nil {
							break
						}
					}
					conn.Abort()
				}
			}()
		}
		stopLoad = func() {
			cancelLoad()
			wg.Wait()
		}
	}
	vtime.Real().Sleep(loadSettle)

	// Measured steady rounds while the hot peer is under fire.
	for r := 0; r < cfg.Rounds; r++ {
		sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())
		if _, err := active.Client.RefreshGroups(ctx); err != nil {
			stopLoad()
			return OverloadPoint{}, err
		}
		if wall := sw.Elapsed(); wall > point.SteadyRound {
			point.SteadyRound = wall
		}
	}
	stopLoad()

	point.Server = hot.Server.Stats()
	point.ObserverDegraded = active.Client.Stats().FanoutsDegraded
	return point, nil
}

// olRedialDelay is the modeled pause before a shed or failed session
// dials again — the event-engine stand-in for the goroutine loop's
// natural re-dial latency.
const olRedialDelay = 20 * time.Millisecond

// olSession is one offered load session as an event cascade — the
// event-native translation of the goroutine load generator's
// dial/ping/redial loop, in the engine-scale driver discipline: every
// step is a DialEvent/SendEvent/RecvEvent continuation scheduled on
// the session's home, so offered load needs no goroutines however
// large the multiple. A session that is shed (error at any step)
// schedules its re-dial after olRedialDelay instead of recursing
// inside the same event.
type olSession struct {
	net   *netsim.Network
	src   ids.DeviceID
	hot   ids.DeviceID
	home  uint64
	port  string
	ping  []byte
	retry time.Duration
	stop  *atomic.Bool
	done  *sync.WaitGroup
}

// run dials the hot server; retirement (stop flag) is checked at every
// continuation so stopEventLoad's Wait returns once in-flight
// exchanges drain.
func (s *olSession) run(ctx *des.Ctx) {
	if s.stop.Load() {
		s.done.Done()
		return
	}
	s.net.DialEvent(ctx, s.src, s.hot, radio.Bluetooth, s.port, func(ctx *des.Ctx, c *netsim.Conn, err error) {
		if err != nil {
			s.later(ctx)
			return
		}
		s.exchange(ctx, c)
	})
}

// later schedules the next dial attempt; synchronous dial failures
// must not recurse inside the calling event.
func (s *olSession) later(ctx *des.Ctx) {
	if s.stop.Load() {
		s.done.Done()
		return
	}
	ctx.At(s.retry, s.home, s.run)
}

// exchange is the ping loop: send, await the reply in a parked
// RecvEvent, repeat until the server sheds the session.
func (s *olSession) exchange(ctx *des.Ctx, c *netsim.Conn) {
	if s.stop.Load() {
		c.CloseEvent(ctx)
		s.done.Done()
		return
	}
	if c.SendEvent(ctx, s.ping) != nil {
		c.CloseEvent(ctx)
		s.later(ctx)
		return
	}
	c.RecvEvent(ctx, func(ctx *des.Ctx, _ []byte, err error) {
		if err != nil {
			c.CloseEvent(ctx)
			s.later(ctx)
			return
		}
		s.exchange(ctx, c)
	})
}

// startEventLoad seeds one olSession cascade per offered session on
// the deployment's scheduler and returns the stop function: it flips
// the shared flag and waits for every cascade to notice it at its next
// continuation — a parked session always has either a reply or a
// teardown coming to wake it, so the wait terminates.
func startEventLoad(d *scenario.Deployment, offered, gens int, hotDev ids.DeviceID, ping []byte) (stop func()) {
	retry := d.Env.Scale().ToReal(olRedialDelay)
	port := peerhood.ServicePort(ids.ServiceName(community.ServiceName))
	var flag atomic.Bool
	var done sync.WaitGroup
	for i := 0; i < offered; i++ {
		src := d.MustPeer(ids.MemberID(fmt.Sprintf("peer-%04d", 1+i%gens))).Daemon.Device()
		s := &olSession{
			net: d.Net, src: src, hot: hotDev,
			home: netsim.DeviceHome(src), port: port, ping: ping,
			retry: retry, stop: &flag, done: &done,
		}
		done.Add(1)
		d.Sched.At(0, s.home, s.run)
	}
	return func() {
		flag.Store(true)
		done.Wait()
	}
}

// FormatOverload renders the sweep as a table.
func FormatOverload(points []OverloadPoint) string {
	header := []string{"Devices", "Load", "Engine", "Steady round", "Admitted", "Queued", "Shed", "Depth max", "Slow writers", "Degraded fanouts"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		engine := p.Engine
		if engine == "" {
			engine = "goroutine"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%d×", p.Load),
			engine,
			p.SteadyRound.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", p.Server.Admitted),
			fmt.Sprintf("%d", p.Server.Queued),
			fmt.Sprintf("%d", p.Server.Shed),
			fmt.Sprintf("%d", p.Server.QueueDepthMax),
			fmt.Sprintf("%d", p.Server.SlowWriters),
			fmt.Sprintf("%d", p.ObserverDegraded),
		})
	}
	return FormatTable(header, rows)
}
