package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/community"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// OverloadPoint is one row of the overload experiment: a neighborhood
// of Devices peers whose servers run with an explicit, small admission
// capacity, while a load generator offers Load× that capacity in raw
// sessions against one hot server. The point records how the server
// degraded (admitted / queued / shed, bounded queue depth) and what an
// innocent observer's steady group round cost while the hot peer was
// under fire.
type OverloadPoint struct {
	Devices  int
	Load     int
	Capacity int
	// SteadyRound is the slowest of the observer's measured steady
	// RefreshGroups rounds (real wall time) under offered load.
	SteadyRound time.Duration
	// Server is the hot server's admission accounting.
	Server community.ServerStats
	// ObserverDegraded is how many of the observer's fan-outs ran on
	// partial results.
	ObserverDegraded uint64
}

// OverloadConfig parameterizes the sweep.
type OverloadConfig struct {
	// Scale is the latency scale (default 1e-4).
	Scale vtime.Scale
	// Devices are the neighborhood sizes (default 100, 400, 1000).
	Devices []int
	// Loads are offered-session multiples of Capacity (default 1, 4, 10).
	Loads []int
	// Capacity is the hot server's MaxSessions (default 8 — small and
	// explicit, so overload is reachable without thousands of sessions).
	Capacity int
	// QueueDepth is the hot server's admission queue bound (default 16).
	QueueDepth int
	// Rounds is how many steady observer rounds each point measures
	// (default 3).
	Rounds int
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Scale.Factor() == 1 || c.Scale.Factor() == 0 {
		c.Scale = vtime.NewScale(1e-4)
	}
	if len(c.Devices) == 0 {
		c.Devices = []int{100, 400, 1000}
	}
	if len(c.Loads) == 0 {
		c.Loads = []int{1, 4, 10}
	}
	if c.Capacity <= 0 {
		c.Capacity = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	return c
}

// RunOverload runs the sweep and returns one point per (devices, load)
// pair.
func RunOverload(cfg OverloadConfig) ([]OverloadPoint, error) {
	cfg = cfg.withDefaults()
	out := make([]OverloadPoint, 0, len(cfg.Devices)*len(cfg.Loads))
	for _, n := range cfg.Devices {
		for _, load := range cfg.Loads {
			p, err := runOverloadPoint(cfg, n, load)
			if err != nil {
				return nil, fmt.Errorf("harness: overload point %d×%d: %w", n, load, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// loadSettle is how long (real time) the load generator runs before the
// observer's measured rounds start, so admission reaches steady state.
const loadSettle = 50 * time.Millisecond

func runOverloadPoint(cfg OverloadConfig, peers, load int) (OverloadPoint, error) {
	if peers < 2 {
		return OverloadPoint{}, fmt.Errorf("need at least two peers")
	}
	builder := scenario.NewBuilder().WithScale(cfg.Scale).WithSeed(int64(peers)).
		WithServerOptions(community.ServerOptions{
			MaxSessions: cfg.Capacity,
			QueueDepth:  cfg.QueueDepth,
		})
	side := 1 + peers/4
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%04d", i)),
			Position:  geo.Pt(float64(i%side)*0.01, float64(i/side)*0.01),
			Interests: []string{"football"},
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(0.005, 0.005),
		Interests: []string{"football"},
	})
	d, err := builder.Build()
	if err != nil {
		return OverloadPoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	active := d.MustPeer("active")
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		return OverloadPoint{}, err
	}
	// Warm round: the observer's persistent sessions are admitted while
	// the world is calm — established service survives the overload;
	// it is fresh arrivals that get queued and shed.
	if _, err := active.Client.RefreshGroups(ctx); err != nil {
		return OverloadPoint{}, err
	}

	hot := d.MustPeer("peer-0000")
	hotDev := hot.Daemon.Device()
	point := OverloadPoint{Devices: peers, Load: load, Capacity: cfg.Capacity}

	// Load generator: load×capacity concurrent raw sessions against the
	// hot server, each pinging in a tight loop and re-dialing whenever
	// it is shed. Sourced from a handful of neighbor devices so no
	// single radio serializes the pressure.
	offered := load * cfg.Capacity
	gens := 4
	if peers < gens {
		gens = peers
	}
	loadCtx, stopLoad := context.WithCancel(ctx)
	var wg sync.WaitGroup
	ping := community.MarshalRequest(community.Request{Op: community.OpPing})
	for i := 0; i < offered; i++ {
		src := d.MustPeer(ids.MemberID(fmt.Sprintf("peer-%04d", 1+i%gens))).Lib
		wg.Add(1)
		go func() {
			defer wg.Done()
			for loadCtx.Err() == nil {
				conn, err := src.Connect(loadCtx, hotDev, community.ServiceName)
				if err != nil {
					continue
				}
				for loadCtx.Err() == nil {
					if err := conn.Send(ping); err != nil {
						break
					}
					if _, err := conn.Recv(loadCtx); err != nil {
						break
					}
				}
				conn.Abort()
			}
		}()
	}
	vtime.Real().Sleep(loadSettle)

	// Measured steady rounds while the hot peer is under fire.
	for r := 0; r < cfg.Rounds; r++ {
		sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())
		if _, err := active.Client.RefreshGroups(ctx); err != nil {
			stopLoad()
			wg.Wait()
			return OverloadPoint{}, err
		}
		if wall := sw.Elapsed(); wall > point.SteadyRound {
			point.SteadyRound = wall
		}
	}
	stopLoad()
	wg.Wait()

	point.Server = hot.Server.Stats()
	point.ObserverDegraded = active.Client.Stats().FanoutsDegraded
	return point, nil
}

// FormatOverload renders the sweep as a table.
func FormatOverload(points []OverloadPoint) string {
	header := []string{"Devices", "Load", "Steady round", "Admitted", "Queued", "Shed", "Depth max", "Slow writers", "Degraded fanouts"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			fmt.Sprintf("%d×", p.Load),
			p.SteadyRound.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", p.Server.Admitted),
			fmt.Sprintf("%d", p.Server.Queued),
			fmt.Sprintf("%d", p.Server.Shed),
			fmt.Sprintf("%d", p.Server.QueueDepthMax),
			fmt.Sprintf("%d", p.Server.SlowWriters),
			fmt.Sprintf("%d", p.ObserverDegraded),
		})
	}
	return FormatTable(header, rows)
}
