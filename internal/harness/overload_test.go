package harness

import (
	"testing"
	"time"

	"repro/internal/vtime"
)

// TestOverloadShedsAndStaysBounded runs a small overload point at 10×
// offered load and checks the degradation contract: fresh arrivals are
// shed, the admission queue never exceeds its bound, and the observer's
// steady group round stays bounded while the hot server is under fire.
func TestOverloadShedsAndStaysBounded(t *testing.T) {
	cfg := OverloadConfig{
		Scale:   vtime.NewScale(1e-4),
		Devices: []int{24},
		Loads:   []int{1, 10},
		Rounds:  2,
	}
	points, err := RunOverload(cfg)
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	calm, hot := points[0], points[1]
	if calm.Load != 1 || hot.Load != 10 {
		t.Fatalf("unexpected point order: %+v", points)
	}
	if calm.Server.Shed != 0 {
		t.Errorf("1× load shed %d sessions, want 0", calm.Server.Shed)
	}
	if hot.Server.Shed == 0 {
		t.Error("10× load shed no sessions; admission control is not engaging")
	}
	if max := hot.Server.QueueDepthMax; max > 16 {
		t.Errorf("queue depth reached %d, bound is 16", max)
	}
	// The observer's sessions were admitted before the storm; its steady
	// rounds must not degrade into timeout territory. The budget is
	// loose — a scheduling-noise ceiling, not a performance target.
	const budget = 2 * time.Second
	for _, p := range points {
		if p.SteadyRound > budget {
			t.Errorf("steady round at %d× took %v, budget %v", p.Load, p.SteadyRound, budget)
		}
	}
	out := FormatOverload(points)
	if out == "" {
		t.Error("FormatOverload returned empty table")
	}
}

// TestOverloadDESEventLoad runs the same overload point with the load
// generator as event-native session cascades on the discrete-event
// engine: the offered load must still reach the server (sessions
// admitted, pressure past capacity shed), the queue bound must hold,
// and the observer's steady round must stay bounded — the degradation
// contract is engine-independent.
func TestOverloadDESEventLoad(t *testing.T) {
	cfg := OverloadConfig{
		Scale:   vtime.NewScale(1e-4),
		Devices: []int{24},
		Loads:   []int{10},
		Rounds:  2,
		DES:     true,
	}
	points, err := RunOverload(cfg)
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	p := points[0]
	if p.Engine != "des" {
		t.Errorf("engine = %q, want des", p.Engine)
	}
	if p.Server.Admitted == 0 {
		t.Error("event-native load admitted no sessions; the cascades never reached the server")
	}
	if p.Server.Shed == 0 {
		t.Error("10× event-native load shed no sessions; admission control is not engaging")
	}
	if max := p.Server.QueueDepthMax; max > 16 {
		t.Errorf("queue depth reached %d, bound is 16", max)
	}
	const budget = 2 * time.Second
	if p.SteadyRound > budget {
		t.Errorf("steady round took %v, budget %v", p.SteadyRound, budget)
	}
}
