package harness

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// ScalePoint is one measurement of the discovery-scaling experiment:
// how long the full dynamic-group-discovery cycle takes (one discovery
// round + interest gathering + group formation) as the neighborhood
// grows. The thesis's conclusion names this as future work —
// "performance testing during the dynamic group discovery in the social
// network on mobile environment ... to analyze the efficiency".
type ScalePoint struct {
	Peers int
	// Search is the full cold-start search time (inquiry + SDP +
	// interest gathering + grouping).
	Search time.Duration
	// Gather is the post-inquiry part only (SDP + interests +
	// grouping), the part that actually scales with peers.
	Gather time.Duration
	// Groups formed.
	Groups int
}

// RunDiscoveryScale measures the discovery cycle for each peer count.
// All peers share one interest so a single group forms with everyone.
func RunDiscoveryScale(scale vtime.Scale, peerCounts []int) ([]ScalePoint, error) {
	if scale.Factor() == 1 {
		scale = vtime.NewScale(1e-2)
	}
	out := make([]ScalePoint, 0, len(peerCounts))
	for _, n := range peerCounts {
		point, err := runScalePoint(scale, n)
		if err != nil {
			return nil, fmt.Errorf("harness: scale point %d: %w", n, err)
		}
		out = append(out, point)
	}
	return out, nil
}

func runScalePoint(scale vtime.Scale, peers int) (ScalePoint, error) {
	if peers < 1 {
		return ScalePoint{}, fmt.Errorf("need at least one peer")
	}
	builder := scenario.NewBuilder().WithScale(scale).WithSeed(int64(peers))
	// Peers on a tight grid, all inside one Bluetooth cell.
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%03d", i)),
			Position:  geo.Pt(float64(i%4), float64(i/4)),
			Interests: []string{"football"},
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(1.5, 1.5),
		Interests: []string{"football"},
	})
	d, err := builder.Build()
	if err != nil {
		return ScalePoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	active := d.MustPeer("active")

	sw := vtime.NewStopwatch(d.Env.Clock(), d.Env.Scale())
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		return ScalePoint{}, err
	}
	if _, err := active.Client.RefreshGroups(ctx); err != nil {
		return ScalePoint{}, err
	}
	total := sw.Elapsed()
	groups := active.Client.Groups()
	if len(groups) == 0 {
		return ScalePoint{}, fmt.Errorf("no groups formed with %d peers", peers)
	}
	inquiry := d.Env.PHY(radio.Bluetooth).InquiryDuration
	gather := total - inquiry
	if gather < 0 {
		gather = 0
	}
	return ScalePoint{Peers: peers, Search: total, Gather: gather, Groups: len(groups)}, nil
}

// NeighborScalePoint is one row of the substrate-scaling experiment:
// the cost of one neighborhood query — the paper's scaling primitive,
// what every discovery round performs once per device — on the
// grid-indexed path versus the brute-force per-pair oracle, at a given
// world size.
type NeighborScalePoint struct {
	Devices int
	// GridPerQuery is the wall cost of one grid-indexed Neighbors call,
	// with the per-epoch world snapshot amortized over one query per
	// device (one discovery round).
	GridPerQuery time.Duration
	// BrutePerQuery is the same for the brute-force oracle.
	BrutePerQuery time.Duration
	// Speedup is BrutePerQuery / GridPerQuery.
	Speedup float64
	// AvgNeighbors is the mean neighborhood size, a density sanity
	// check.
	AvgNeighbors float64
}

// neighborScaleEpochs is how many distinct query epochs each point
// averages over; every epoch forces a fresh world snapshot, so the
// grid figure honestly includes the snapshot build cost.
const neighborScaleEpochs = 3

// RunNeighborScale measures neighbor-query cost at each world size. The
// world is a frozen-clock Bluetooth deployment at constant density
// (~50 m² per device, ≈6 devices per 10 m cell), so growing the device
// count grows the world, not the crowding — the regime where an O(n)
// scan per query turns a discovery round quadratic.
func RunNeighborScale(deviceCounts []int) ([]NeighborScalePoint, error) {
	out := make([]NeighborScalePoint, 0, len(deviceCounts))
	for _, n := range deviceCounts {
		if n < 1 {
			return nil, fmt.Errorf("harness: neighbor scale: need at least one device, got %d", n)
		}
		clk := vtime.NewManual(time.Unix(0, 0))
		env := radio.NewEnvironment(radio.WithClock(clk))
		devs, err := placeUniform(env, n, int64(n))
		if err != nil {
			return nil, err
		}

		point := NeighborScalePoint{Devices: n}
		var neighborSum int
		sw := vtime.NewStopwatch(vtime.Real(), vtime.Identity())
		for epoch := 0; epoch < neighborScaleEpochs; epoch++ {
			for _, id := range devs {
				neighborSum += len(env.Neighbors(id, radio.Bluetooth))
			}
			clk.Advance(time.Second)
		}
		point.GridPerQuery = sw.Elapsed() / time.Duration(neighborScaleEpochs*n)
		sw.Restart()
		for epoch := 0; epoch < neighborScaleEpochs; epoch++ {
			for _, id := range devs {
				_ = env.NeighborsBrute(id, radio.Bluetooth)
			}
			clk.Advance(time.Second)
		}
		point.BrutePerQuery = sw.Elapsed() / time.Duration(neighborScaleEpochs*n)
		if point.GridPerQuery > 0 {
			point.Speedup = float64(point.BrutePerQuery) / float64(point.GridPerQuery)
		}
		point.AvgNeighbors = float64(neighborSum) / float64(neighborScaleEpochs*n)
		out = append(out, point)
	}
	return out, nil
}

// placeUniform fills the environment with n static Bluetooth devices
// uniformly over a square sized for ~50 m² per device, seeded for
// reproducibility.
func placeUniform(env *radio.Environment, n int, seed int64) ([]ids.DeviceID, error) {
	rng := rand.New(rand.NewSource(seed))
	side := geoSide(n)
	devs := make([]ids.DeviceID, n)
	for i := range devs {
		devs[i] = ids.DeviceIDf("dev-%04d", i)
		at := geo.Pt(rng.Float64()*side, rng.Float64()*side)
		if err := env.Add(devs[i], mobility.Static{At: at}, radio.Bluetooth); err != nil {
			return nil, err
		}
	}
	return devs, nil
}

// geoSide returns the square side holding n devices at ~50 m² each.
func geoSide(n int) float64 {
	side := 1.0
	for side*side < float64(n)*50 {
		side *= 1.1
	}
	return side
}

// FormatNeighborScale renders the substrate series as a table.
func FormatNeighborScale(points []NeighborScalePoint) string {
	header := []string{"Devices", "Grid/query", "Brute/query", "Speedup", "Avg neighbors"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Devices),
			p.GridPerQuery.String(),
			p.BrutePerQuery.String(),
			fmt.Sprintf("%.1fx", p.Speedup),
			fmt.Sprintf("%.1f", p.AvgNeighbors),
		})
	}
	return FormatTable(header, rows)
}

// FormatDiscoveryScale renders the series as a table.
func FormatDiscoveryScale(points []ScalePoint) string {
	header := []string{"Peers", "Search (cold)", "Post-inquiry gather", "Groups"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Peers),
			fmt.Sprintf("%.1f s", p.Search.Seconds()),
			fmt.Sprintf("%.1f s", p.Gather.Seconds()),
			fmt.Sprintf("%d", p.Groups),
		})
	}
	return FormatTable(header, rows)
}
