package harness

import (
	"context"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/vtime"
)

// ScalePoint is one measurement of the discovery-scaling experiment:
// how long the full dynamic-group-discovery cycle takes (one discovery
// round + interest gathering + group formation) as the neighborhood
// grows. The thesis's conclusion names this as future work —
// "performance testing during the dynamic group discovery in the social
// network on mobile environment ... to analyze the efficiency".
type ScalePoint struct {
	Peers int
	// Search is the full cold-start search time (inquiry + SDP +
	// interest gathering + grouping).
	Search time.Duration
	// Gather is the post-inquiry part only (SDP + interests +
	// grouping), the part that actually scales with peers.
	Gather time.Duration
	// Groups formed.
	Groups int
}

// RunDiscoveryScale measures the discovery cycle for each peer count.
// All peers share one interest so a single group forms with everyone.
func RunDiscoveryScale(scale vtime.Scale, peerCounts []int) ([]ScalePoint, error) {
	if scale.Factor() == 1 {
		scale = vtime.NewScale(1e-2)
	}
	out := make([]ScalePoint, 0, len(peerCounts))
	for _, n := range peerCounts {
		point, err := runScalePoint(scale, n)
		if err != nil {
			return nil, fmt.Errorf("harness: scale point %d: %w", n, err)
		}
		out = append(out, point)
	}
	return out, nil
}

func runScalePoint(scale vtime.Scale, peers int) (ScalePoint, error) {
	if peers < 1 {
		return ScalePoint{}, fmt.Errorf("need at least one peer")
	}
	builder := scenario.NewBuilder().WithScale(scale).WithSeed(int64(peers))
	// Peers on a tight grid, all inside one Bluetooth cell.
	for i := 0; i < peers; i++ {
		builder.AddPeer(scenario.PeerSpec{
			Member:    ids.MemberID(fmt.Sprintf("peer-%03d", i)),
			Position:  geo.Pt(float64(i%4), float64(i/4)),
			Interests: []string{"football"},
		})
	}
	builder.AddPeer(scenario.PeerSpec{
		Member:    "active",
		Device:    "active-dev",
		Position:  geo.Pt(1.5, 1.5),
		Interests: []string{"football"},
	})
	d, err := builder.Build()
	if err != nil {
		return ScalePoint{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	active := d.MustPeer("active")

	sw := vtime.NewStopwatch(d.Env.Clock(), d.Env.Scale())
	if err := active.Daemon.RefreshNow(ctx); err != nil {
		return ScalePoint{}, err
	}
	if _, err := active.Client.RefreshGroups(ctx); err != nil {
		return ScalePoint{}, err
	}
	total := sw.Elapsed()
	groups := active.Client.Groups()
	if len(groups) == 0 {
		return ScalePoint{}, fmt.Errorf("no groups formed with %d peers", peers)
	}
	inquiry := d.Env.PHY(radio.Bluetooth).InquiryDuration
	gather := total - inquiry
	if gather < 0 {
		gather = 0
	}
	return ScalePoint{Peers: peers, Search: total, Gather: gather, Groups: len(groups)}, nil
}

// FormatDiscoveryScale renders the series as a table.
func FormatDiscoveryScale(points []ScalePoint) string {
	header := []string{"Peers", "Search (cold)", "Post-inquiry gather", "Groups"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Peers),
			fmt.Sprintf("%.1f s", p.Search.Seconds()),
			fmt.Sprintf("%.1f s", p.Gather.Seconds()),
			fmt.Sprintf("%d", p.Groups),
		})
	}
	return FormatTable(header, rows)
}
