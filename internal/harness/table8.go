package harness

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/scenario"
	"repro/internal/snsbase"
	"repro/internal/vtime"
)

// Table8Row is one column of the thesis's Table 8, transposed into a
// row: the four timed operations plus the total.
type Table8Row struct {
	// SocialNetwork is e.g. "SNS (Facebook)" or "PeerHood Community".
	SocialNetwork string
	// AccessedThrough is the handset or testbed used.
	AccessedThrough string
	// InterestGroup is the group searched for.
	InterestGroup string

	Search     time.Duration
	Join       time.Duration
	MemberList time.Duration
	Profile    time.Duration
}

// Total sums the four operations, as the thesis's last row does.
func (r Table8Row) Total() time.Duration {
	return r.Search + r.Join + r.MemberList + r.Profile
}

// Table8Options configures the experiment.
type Table8Options struct {
	// Scale is the latency scale; default one modeled second per real
	// millisecond.
	Scale vtime.Scale
	// WarmCache is the ablation of DESIGN.md: when true the PeerHood
	// daemon has already completed discovery before the user starts
	// searching, so the search cost collapses to the group refresh.
	// The paper's 11 s figure corresponds to WarmCache=false (the
	// discovery round runs while the user waits).
	WarmCache bool
	// PeerCount is how many football peers surround the active user in
	// the PeerHood column (default 2, the other two testbed machines).
	PeerCount int
	// Technology carries the PeerHood column's traffic; defaults to
	// Bluetooth, the thesis's tested configuration. GPRS routes through
	// a simulated operator proxy.
	Technology radio.Technology
}

func (o Table8Options) withDefaults() Table8Options {
	if o.Scale.Factor() == 1 {
		// Caller passed the zero value. One modeled second per 10 ms of
		// wall time: at this scale the smallest modeled latency in play
		// (the 30 ms Bluetooth base latency) sleeps for 300 µs, well
		// above Go timer granularity, so timer overhead cannot distort
		// the measured modeled durations.
		o.Scale = vtime.NewScale(1e-2)
	}
	if o.PeerCount <= 0 {
		o.PeerCount = 2
	}
	return o
}

// RunTable8 runs all five columns of Table 8 and returns them in the
// thesis's order: Facebook×N810, Facebook×N95, Hi5×N810, Hi5×N95,
// PeerHood Community.
func RunTable8(opts Table8Options) ([]Table8Row, error) {
	opts = opts.withDefaults()
	type snsColumn struct {
		site    snsbase.SiteProfile
		handset snsbase.HandsetProfile
	}
	columns := []snsColumn{
		{snsbase.Facebook(), snsbase.NokiaN810()},
		{snsbase.Facebook(), snsbase.NokiaN95()},
		{snsbase.Hi5(), snsbase.NokiaN810()},
		{snsbase.Hi5(), snsbase.NokiaN95()},
	}
	rows := make([]Table8Row, 0, len(columns)+1)
	for _, col := range columns {
		row, err := runSNSColumn(opts, col.site, col.handset)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	phc, err := RunPHCColumn(opts)
	if err != nil {
		return nil, err
	}
	rows = append(rows, phc)
	return rows, nil
}

// RunSNSColumn times search → join → member list → profile on the
// centralized baseline for one site×handset pair.
func RunSNSColumn(opts Table8Options, site snsbase.SiteProfile, handset snsbase.HandsetProfile) (Table8Row, error) {
	return runSNSColumn(opts.withDefaults(), site, handset)
}

func runSNSColumn(opts Table8Options, site snsbase.SiteProfile, handset snsbase.HandsetProfile) (Table8Row, error) {
	env := radio.NewEnvironment(radio.WithScale(opts.Scale))
	net := netsim.New(env, 8)
	defer net.Close()
	for _, id := range []ids.DeviceID{"datacenter", "handset"} {
		if err := env.Add(id, mobility.Static{}, radio.GPRS); err != nil {
			return Table8Row{}, err
		}
	}
	server, err := snsbase.NewServer(net, "datacenter", site)
	if err != nil {
		return Table8Row{}, err
	}
	defer server.Stop()
	// Pre-existing group with members, like "England Football".
	server.SeedGroup("England Football", "m1", "m2", "m3", "m4")

	client := snsbase.NewClient(net, "handset", "datacenter", handset, site, "tester")
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	row := Table8Row{
		SocialNetwork:   "SNS (" + site.Name + ")",
		AccessedThrough: handset.Name,
		InterestGroup:   "England Football",
	}
	sw := vtime.NewStopwatch(env.Clock(), env.Scale())

	sw.Restart()
	groups, err := client.SearchGroup(ctx, "football")
	if err != nil {
		return Table8Row{}, fmt.Errorf("harness: SNS search: %w", err)
	}
	if len(groups) == 0 {
		return Table8Row{}, fmt.Errorf("harness: SNS search found nothing")
	}
	row.Search = sw.Elapsed()

	sw.Restart()
	if err := client.JoinGroup(ctx, groups[0]); err != nil {
		return Table8Row{}, fmt.Errorf("harness: SNS join: %w", err)
	}
	row.Join = sw.Elapsed()

	sw.Restart()
	members, err := client.MemberList(ctx, groups[0])
	if err != nil {
		return Table8Row{}, fmt.Errorf("harness: SNS member list: %w", err)
	}
	row.MemberList = sw.Elapsed()

	sw.Restart()
	if _, err := client.ViewProfile(ctx, members[0]); err != nil {
		return Table8Row{}, fmt.Errorf("harness: SNS profile: %w", err)
	}
	row.Profile = sw.Elapsed()
	return row, nil
}

// RunPHCColumn times the same four operations on PeerHood Community in
// the ComLab testbed: the active user on the ThinkPad, football peers
// on the desktop PCs (plus extras if PeerCount > 2).
func RunPHCColumn(opts Table8Options) (Table8Row, error) {
	opts = opts.withDefaults()
	tech := opts.Technology
	if !tech.Valid() {
		tech = radio.Bluetooth
	}
	tb := ComLabTestbed()

	builder := scenario.NewBuilder().WithScale(opts.Scale).WithSeed(8)
	if tech == radio.GPRS {
		builder.WithGPRSProxy("operator")
	}
	// Remote peers on the testbed machines (and synthetic extras).
	peerDevices := []ids.DeviceID{tb.Machines[0].Device, tb.Machines[1].Device}
	peerPositions := []geo.Point{tb.Machines[0].Position, tb.Machines[1].Position}
	for i := 3; i <= opts.PeerCount; i++ {
		peerDevices = append(peerDevices, ids.DeviceIDf("peer-%d", i))
		peerPositions = append(peerPositions, geo.Pt(float64(i), 1))
	}
	if len(peerDevices) > opts.PeerCount {
		peerDevices = peerDevices[:opts.PeerCount]
		peerPositions = peerPositions[:opts.PeerCount]
	}
	peerMembers := make([]ids.MemberID, len(peerDevices))
	for i, dev := range peerDevices {
		peerMembers[i] = ids.MemberID(fmt.Sprintf("member-%d", i+1))
		builder.AddPeer(scenario.PeerSpec{
			Member:       peerMembers[i],
			Device:       dev,
			Position:     peerPositions[i],
			Interests:    []string{"Football"},
			Technologies: []radio.Technology{tech},
		})
	}
	const activeMember = ids.MemberID("bishal")
	builder.AddPeer(scenario.PeerSpec{
		Member:       activeMember,
		Device:       tb.Machines[2].Device, // the ThinkPad
		Position:     tb.Machines[2].Position,
		Interests:    []string{"Football"},
		Technologies: []radio.Technology{tech},
	})

	d, err := builder.Build()
	if err != nil {
		return Table8Row{}, err
	}
	defer d.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Remote peers have discovered their own neighborhoods already; the
	// active user's state depends on the warm-cache option.
	for _, m := range peerMembers {
		if err := d.MustPeer(m).Daemon.RefreshNow(ctx); err != nil {
			return Table8Row{}, err
		}
	}
	active := d.MustPeer(activeMember)
	client := active.Client

	row := Table8Row{
		SocialNetwork:   "PeerHood Community",
		AccessedThrough: "IBM ThinkPad + Desktop PCs",
		InterestGroup:   "Football",
	}
	env := d.Env
	sw := vtime.NewStopwatch(env.Clock(), env.Scale())

	if opts.WarmCache {
		// Ablation: the daemon has been running in the background, so
		// the user's "search" finds the group already discovered.
		if err := active.Daemon.RefreshNow(ctx); err != nil {
			return Table8Row{}, err
		}
	}

	// Search = the time until the interest group exists on the user's
	// screen: (cold) one discovery round + gathering interests + group
	// formation.
	sw.Restart()
	if !opts.WarmCache {
		if err := active.Daemon.RefreshNow(ctx); err != nil {
			return Table8Row{}, err
		}
	}
	events, err := client.RefreshGroups(ctx)
	if err != nil {
		return Table8Row{}, err
	}
	if len(events) == 0 || len(client.Groups()) == 0 {
		return Table8Row{}, fmt.Errorf("harness: PHC discovered no groups")
	}
	row.Search = sw.Elapsed()

	// Join: dynamic group discovery already placed the user in the
	// group ("Already in the Group" — 0 seconds).
	sw.Restart()
	mgr, err := client.Manager()
	if err != nil {
		return Table8Row{}, err
	}
	if got := mgr.MembersOf("football"); len(got) == 0 {
		return Table8Row{}, fmt.Errorf("harness: user not in football group")
	}
	row.Join = sw.Elapsed()

	sw.Restart()
	members, err := client.OnlineMembers(ctx)
	if err != nil {
		return Table8Row{}, err
	}
	if len(members) == 0 {
		return Table8Row{}, fmt.Errorf("harness: no online members")
	}
	row.MemberList = sw.Elapsed()

	sw.Restart()
	if _, err := client.ViewProfile(ctx, members[0].Member); err != nil {
		return Table8Row{}, err
	}
	row.Profile = sw.Elapsed()
	return row, nil
}

// FormatTable8CSV renders rows as CSV (header + one line per column of
// the thesis's table), for plotting.
func FormatTable8CSV(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("social_network,accessed_through,interest_group,search_s,join_s,member_list_s,profile_s,total_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%s,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			csvEscape(r.SocialNetwork), csvEscape(r.AccessedThrough), csvEscape(r.InterestGroup),
			r.Search.Seconds(), r.Join.Seconds(), r.MemberList.Seconds(),
			r.Profile.Seconds(), r.Total().Seconds())
	}
	return b.String()
}

// csvEscape quotes a field if it contains a comma or quote.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// FormatTable8 renders rows like the thesis's Table 8.
func FormatTable8(rows []Table8Row) string {
	header := []string{
		"Social Network", "Accessed Through", "Interest Group",
		"Search", "Join", "Member List", "Profile", "Total",
	}
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			r.SocialNetwork,
			r.AccessedThrough,
			r.InterestGroup,
			FormatDuration(r.Search),
			FormatDuration(r.Join),
			FormatDuration(r.MemberList),
			FormatDuration(r.Profile),
			FormatDuration(r.Total()),
		})
	}
	return FormatTable(header, cells)
}
