// Package ids defines the identifier types shared across the PeerHood
// reproduction: device addresses, member identifiers and service names.
//
// PeerHood identifies a peer by its technology-level device address
// (e.g. a Bluetooth address); the social layer identifies people by a
// MemberID carried in their profile. Keeping the two distinct mirrors
// the thesis, where PS_CHECKMEMBERID exists precisely because a device
// address does not name a person.
package ids

import (
	"fmt"
	"strings"
)

// DeviceID is the technology-independent address of a device in the
// simulated neighborhood. It plays the role of the Bluetooth/WLAN/GPRS
// address PeerHood stores in its neighbor table.
type DeviceID string

// String implements fmt.Stringer.
func (d DeviceID) String() string { return string(d) }

// Valid reports whether the device ID is non-empty and printable.
func (d DeviceID) Valid() bool { return validToken(string(d)) }

// MemberID names a person in the social network. The reference
// implementation derives it from the profile username.
type MemberID string

// String implements fmt.Stringer.
func (m MemberID) String() string { return string(m) }

// Valid reports whether the member ID is non-empty and printable.
func (m MemberID) Valid() bool { return validToken(string(m)) }

// ServiceName names a service registered in the PeerHood daemon, e.g.
// "PeerHoodCommunity".
type ServiceName string

// String implements fmt.Stringer.
func (s ServiceName) String() string { return string(s) }

// Valid reports whether the service name is non-empty and printable.
func (s ServiceName) Valid() bool { return validToken(string(s)) }

// GroupID names a dynamically discovered interest group. Groups are
// keyed by the normalized interest that formed them.
type GroupID string

// String implements fmt.Stringer.
func (g GroupID) String() string { return string(g) }

// DeviceIDf formats a device ID, e.g. DeviceIDf("bt-%02d", 3).
func DeviceIDf(format string, args ...any) DeviceID {
	return DeviceID(fmt.Sprintf(format, args...))
}

// validToken reports whether s is usable as an identifier: non-empty,
// no control characters, no embedded newlines (the wire protocol is
// line-oriented like the original C++ application's buffers).
func validToken(s string) bool {
	if s == "" {
		return false
	}
	if strings.ContainsAny(s, "\x00\n\r\t") {
		return false
	}
	return true
}
