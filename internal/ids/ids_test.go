package ids

import (
	"testing"
	"testing/quick"
)

func TestDeviceIDValid(t *testing.T) {
	tests := []struct {
		id   DeviceID
		want bool
	}{
		{"bt-00", true},
		{"laptop", true},
		{"", false},
		{"has\nnewline", false},
		{"has\ttab", false},
		{"has\x00nul", false},
	}
	for _, tt := range tests {
		if got := tt.id.Valid(); got != tt.want {
			t.Errorf("DeviceID(%q).Valid() = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestMemberIDValid(t *testing.T) {
	if !MemberID("alice").Valid() {
		t.Error("alice should be valid")
	}
	if MemberID("").Valid() {
		t.Error("empty member ID should be invalid")
	}
}

func TestServiceNameValid(t *testing.T) {
	if !ServiceName("PeerHoodCommunity").Valid() {
		t.Error("PeerHoodCommunity should be valid")
	}
	if ServiceName("a\rb").Valid() {
		t.Error("carriage return should be invalid")
	}
}

func TestStringers(t *testing.T) {
	if DeviceID("d").String() != "d" {
		t.Error("DeviceID.String mismatch")
	}
	if MemberID("m").String() != "m" {
		t.Error("MemberID.String mismatch")
	}
	if ServiceName("s").String() != "s" {
		t.Error("ServiceName.String mismatch")
	}
	if GroupID("g").String() != "g" {
		t.Error("GroupID.String mismatch")
	}
}

func TestDeviceIDf(t *testing.T) {
	if got := DeviceIDf("bt-%02d", 3); got != "bt-03" {
		t.Fatalf("DeviceIDf = %q, want bt-03", got)
	}
}

func TestValidTokenPropertyNoControlChars(t *testing.T) {
	// Any valid token stays valid after concatenation with another valid token.
	prop := func(a, b string) bool {
		if !validToken(a) || !validToken(b) {
			return true // vacuous
		}
		return validToken(a + b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
