// Package interest handles the interest terms the social network groups
// people by: normalization (so "Football" and " football " are one
// interest) and the optional semantics layer the thesis names as future
// work — "teaching the semantics to the environment by combining terms
// meaning the same issue" (§5.1), e.g. merging "biking" and "cycling"
// into one group.
package interest

import (
	"sort"
	"strings"
	"sync"
)

// Normalize canonicalizes an interest term: lowercase, trimmed,
// internal whitespace collapsed to single spaces.
func Normalize(term string) string {
	return strings.Join(strings.Fields(strings.ToLower(term)), " ")
}

// NormalizeAll normalizes a list, dropping empties and duplicates,
// preserving first-seen order.
func NormalizeAll(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		n := Normalize(t)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return out
}

// Semantics is the taught-synonym layer: a union-find over normalized
// terms. The zero value is NOT ready to use; call NewSemantics. A nil
// *Semantics is valid and means "no semantics taught" — every term is
// its own class — so callers can pass nil to disable the feature (the
// thesis's baseline behaviour, where biking and cycling form two
// groups).
type Semantics struct {
	mu     sync.Mutex
	parent map[string]string
	// gen counts effective Teach calls — merges that actually joined two
	// classes. Group-discovery caches include it in their snapshot key:
	// a newly taught synonym can change which groups form even when no
	// device's interests moved.
	gen uint64
}

// NewSemantics returns an empty semantics layer.
func NewSemantics() *Semantics {
	return &Semantics{parent: make(map[string]string)}
}

// Teach records that two terms mean the same issue. Terms are
// normalized first. Teaching is transitive: teach(a,b) and teach(b,c)
// put a, b, c in one class.
func (s *Semantics) Teach(a, b string) {
	if s == nil {
		return
	}
	na, nb := Normalize(a), Normalize(b)
	if na == "" || nb == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ra, rb := s.find(na), s.find(nb)
	if ra == rb {
		return
	}
	// Deterministic representative: the lexicographically smaller root.
	if rb < ra {
		ra, rb = rb, ra
	}
	s.parent[rb] = ra
	s.gen++
}

// Generation returns a counter that advances whenever Teach merges two
// previously distinct classes. Nil and never-taught layers report 0.
// No-op teaches (same class, empty terms) leave it unchanged.
func (s *Semantics) Generation() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// find returns the class root of a normalized term, creating the
// singleton class on first sight. Callers hold s.mu. Path compression
// keeps chains short.
func (s *Semantics) find(term string) string {
	root, ok := s.parent[term]
	if !ok {
		s.parent[term] = term
		return term
	}
	if root == term {
		return term
	}
	r := s.find(root)
	s.parent[term] = r
	return r
}

// Canon returns the canonical representative of a term's synonym
// class. Terms never taught map to themselves (normalized).
func (s *Semantics) Canon(term string) string {
	n := Normalize(term)
	if s == nil || n == "" {
		return n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parent[n]; !ok {
		return n
	}
	return s.find(n)
}

// Same reports whether two terms mean the same issue.
func (s *Semantics) Same(a, b string) bool {
	return s.Canon(a) == s.Canon(b) && Normalize(a) != ""
}

// Class returns every taught term in the same class as term, sorted,
// including the term itself if taught.
func (s *Semantics) Class(term string) []string {
	n := Normalize(term)
	if s == nil || n == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.parent[n]; !ok {
		return []string{n}
	}
	root := s.find(n)
	var out []string
	for t := range s.parent {
		if s.find(t) == root {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// CanonAll maps a list of terms to their canonical representatives,
// deduplicating (two synonyms collapse to one entry) and preserving
// first-seen order.
func (s *Semantics) CanonAll(terms []string) []string {
	seen := make(map[string]bool, len(terms))
	out := make([]string, 0, len(terms))
	for _, t := range terms {
		c := s.Canon(t)
		if c == "" || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	return out
}

// Classes exports every taught synonym class with at least two terms,
// each sorted, classes ordered by representative — a form suitable for
// persistence.
func (s *Semantics) Classes() [][]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	byRoot := make(map[string][]string)
	for term := range s.parent {
		root := s.find(term)
		byRoot[root] = append(byRoot[root], term)
	}
	s.mu.Unlock()
	roots := make([]string, 0, len(byRoot))
	for root, terms := range byRoot {
		if len(terms) >= 2 {
			roots = append(roots, root)
		}
	}
	sort.Strings(roots)
	out := make([][]string, 0, len(roots))
	for _, root := range roots {
		sort.Strings(byRoot[root])
		out = append(out, byRoot[root])
	}
	return out
}

// TeachClasses merges previously exported classes back in; it is the
// inverse of Classes.
func (s *Semantics) TeachClasses(classes [][]string) {
	if s == nil {
		return
	}
	for _, class := range classes {
		for i := 1; i < len(class); i++ {
			s.Teach(class[0], class[i])
		}
	}
}
