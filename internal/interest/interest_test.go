package interest

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"Football", "football"},
		{"  England   Football ", "england football"},
		{"BIKING", "biking"},
		{"", ""},
		{"   ", ""},
		{"rock\tmusic", "rock music"},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); got != tt.want {
			t.Errorf("Normalize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	prop := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAll(t *testing.T) {
	in := []string{"Football", "football", "  FOOTBALL ", "Movies", "", "  "}
	got := NormalizeAll(in)
	if len(got) != 2 || got[0] != "football" || got[1] != "movies" {
		t.Fatalf("NormalizeAll = %v", got)
	}
}

func TestSemanticsTeachSame(t *testing.T) {
	s := NewSemantics()
	if s.Same("biking", "cycling") {
		t.Fatal("untaught terms should differ")
	}
	s.Teach("biking", "cycling")
	if !s.Same("biking", "cycling") {
		t.Fatal("taught terms should be the same")
	}
	if !s.Same("Biking", " CYCLING  ") {
		t.Fatal("Same should normalize")
	}
	if s.Same("biking", "football") {
		t.Fatal("biking and football should differ")
	}
}

func TestSemanticsTransitive(t *testing.T) {
	s := NewSemantics()
	s.Teach("biking", "cycling")
	s.Teach("cycling", "bike riding")
	if !s.Same("biking", "bike riding") {
		t.Fatal("teaching should be transitive")
	}
	class := s.Class("biking")
	if len(class) != 3 {
		t.Fatalf("Class = %v, want 3 terms", class)
	}
}

func TestSemanticsCanonDeterministic(t *testing.T) {
	// Regardless of teach order, the representative is the
	// lexicographically smallest term of the class.
	a := NewSemantics()
	a.Teach("zebra", "apple")
	b := NewSemantics()
	b.Teach("apple", "zebra")
	if a.Canon("zebra") != "apple" || b.Canon("zebra") != "apple" {
		t.Fatalf("canon = %q / %q, want apple", a.Canon("zebra"), b.Canon("zebra"))
	}
}

func TestSemanticsNilSafe(t *testing.T) {
	var s *Semantics
	s.Teach("a", "b") // no panic
	if s.Canon("Foo") != "foo" {
		t.Fatalf("nil Canon = %q", s.Canon("Foo"))
	}
	if s.Same("a", "b") {
		t.Fatal("nil semantics should never merge")
	}
	if !s.Same("a", "a") {
		t.Fatal("a term is the same as itself")
	}
	if s.Class("x") != nil {
		t.Fatal("nil Class should be nil")
	}
	got := s.CanonAll([]string{"A", "a", "B"})
	if len(got) != 2 {
		t.Fatalf("nil CanonAll = %v", got)
	}
}

func TestSemanticsEmptyTermsIgnored(t *testing.T) {
	s := NewSemantics()
	s.Teach("", "cycling")
	s.Teach("biking", "  ")
	if s.Canon("") != "" {
		t.Fatal("empty canon should be empty")
	}
	if len(s.Class("cycling")) != 1 {
		t.Fatal("teaching with empty term should be a no-op")
	}
	if s.Same("", "") {
		t.Fatal("empty terms are never the same interest")
	}
}

func TestCanonAllMergesSynonyms(t *testing.T) {
	s := NewSemantics()
	s.Teach("biking", "cycling")
	got := s.CanonAll([]string{"Cycling", "football", "BIKING", "football"})
	if len(got) != 2 || got[0] != "biking" || got[1] != "football" {
		t.Fatalf("CanonAll = %v", got)
	}
}

func TestClassUntaught(t *testing.T) {
	s := NewSemantics()
	got := s.Class("solo")
	if len(got) != 1 || got[0] != "solo" {
		t.Fatalf("Class(solo) = %v", got)
	}
}

func TestSemanticsSameEquivalenceProperty(t *testing.T) {
	s := NewSemantics()
	terms := []string{"a", "b", "c", "d", "e"}
	s.Teach("a", "b")
	s.Teach("c", "d")
	s.Teach("b", "c")
	// Symmetry and transitivity over the taught set.
	for _, x := range terms {
		for _, y := range terms {
			if s.Same(x, y) != s.Same(y, x) {
				t.Fatalf("Same not symmetric for %q, %q", x, y)
			}
			for _, z := range terms {
				if s.Same(x, y) && s.Same(y, z) && !s.Same(x, z) {
					t.Fatalf("Same not transitive for %q, %q, %q", x, y, z)
				}
			}
		}
	}
}

func TestSemanticsManyTermsPathCompression(t *testing.T) {
	s := NewSemantics()
	prev := "t0"
	for i := 1; i < 500; i++ {
		cur := "t" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		s.Teach(prev, cur)
		prev = cur
	}
	root := s.Canon("t0")
	if !s.Same("t0", prev) {
		t.Fatal("long chain should be one class")
	}
	if s.Canon(prev) != root {
		t.Fatal("roots differ across chain")
	}
}

func TestClassesExportImport(t *testing.T) {
	s := NewSemantics()
	s.Teach("biking", "cycling")
	s.Teach("cycling", "bike riding")
	s.Teach("football", "soccer")
	s.Canon("loner") // taught nothing; singleton must not export

	classes := s.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes = %v, want 2", classes)
	}
	if len(classes[0]) != 3 || classes[0][0] != "bike riding" {
		t.Fatalf("first class = %v", classes[0])
	}

	fresh := NewSemantics()
	fresh.TeachClasses(classes)
	if !fresh.Same("biking", "bike riding") || !fresh.Same("football", "soccer") {
		t.Fatal("import lost taught pairs")
	}
	if fresh.Same("biking", "football") {
		t.Fatal("import merged unrelated classes")
	}
}

func TestClassesNilSafe(t *testing.T) {
	var s *Semantics
	if s.Classes() != nil {
		t.Fatal("nil Classes should be nil")
	}
	s.TeachClasses([][]string{{"a", "b"}}) // no panic
}

func TestSemanticsSaveLoadRoundTrip(t *testing.T) {
	s := NewSemantics()
	s.Teach("biking", "cycling")
	path := t.TempDir() + "/sem.json"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded := NewSemantics()
	if err := loaded.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if !loaded.Same("biking", "cycling") {
		t.Fatal("round trip lost the taught pair")
	}
	if err := loaded.LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSemanticsLoadInvalid(t *testing.T) {
	s := NewSemantics()
	if err := s.LoadFrom(strings.NewReader("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSemanticsSaveEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewSemantics().SaveTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Fatalf("empty save = %q", b.String())
	}
}
