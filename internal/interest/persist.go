package interest

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SaveTo writes the taught synonym classes as JSON.
func (s *Semantics) SaveTo(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	classes := s.Classes()
	if classes == nil {
		classes = [][]string{}
	}
	return enc.Encode(classes)
}

// LoadFrom merges previously saved synonym classes into the layer.
func (s *Semantics) LoadFrom(r io.Reader) error {
	var classes [][]string
	if err := json.NewDecoder(r).Decode(&classes); err != nil {
		return fmt.Errorf("interest: loading semantics: %w", err)
	}
	s.TeachClasses(classes)
	return nil
}

// SaveFile writes the taught classes to a file.
func (s *Semantics) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("interest: %w", err)
	}
	defer func() { _ = f.Close() }() // error path only; success path checks below
	if err := s.SaveTo(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile merges taught classes from a file.
func (s *Semantics) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("interest: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return s.LoadFrom(f)
}
