// Package mobility provides the movement models that drive device
// positions in the radio environment. Mobility is what makes the social
// network "mobile": peers appear inside and vanish from each other's
// radio range, which is what triggers PeerHood's active monitoring and
// the dynamic re-forming of interest groups.
//
// A Model is a deterministic function from elapsed simulation time to a
// position, so scenarios are reproducible regardless of how often the
// environment samples them.
package mobility

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/geo"
)

// Model yields a device's position at a given elapsed time since the
// scenario started. Implementations must be safe for concurrent use and
// deterministic: the same elapsed time always yields the same point.
type Model interface {
	Position(elapsed time.Duration) geo.Point
}

// Static is a device that never moves.
type Static struct {
	At geo.Point
}

// Position implements Model.
func (s Static) Position(time.Duration) geo.Point { return s.At }

// Linear moves with constant velocity from a starting point.
type Linear struct {
	Start    geo.Point
	Velocity geo.Vector // meters per second
}

// Position implements Model.
func (l Linear) Position(elapsed time.Duration) geo.Point {
	return l.Start.Add(l.Velocity.Scale(elapsed.Seconds()))
}

// Waypoints follows a fixed polyline at constant speed and stops at the
// final point.
type Waypoints struct {
	Points []geo.Point
	Speed  float64 // meters per second, must be > 0
}

// Position implements Model.
func (w Waypoints) Position(elapsed time.Duration) geo.Point {
	if len(w.Points) == 0 {
		return geo.Point{}
	}
	if len(w.Points) == 1 || w.Speed <= 0 {
		return w.Points[0]
	}
	remaining := w.Speed * elapsed.Seconds()
	for i := 0; i < len(w.Points)-1; i++ {
		seg := w.Points[i+1].Sub(w.Points[i])
		segLen := seg.Length()
		if remaining <= segLen {
			if segLen == 0 {
				continue
			}
			return w.Points[i].Add(seg.Unit().Scale(remaining))
		}
		remaining -= segLen
	}
	return w.Points[len(w.Points)-1]
}

// RandomWaypoint implements the classic random-waypoint model: pick a
// uniformly random destination in a region, walk to it at a uniformly
// random speed, pause, repeat. It is deterministic for a given seed.
type RandomWaypoint struct {
	mu       sync.Mutex
	region   geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    time.Duration
	rng      *rand.Rand

	// legs[i] covers [legs[i].start, legs[i].end) of elapsed time.
	legs []leg
}

type leg struct {
	start, end time.Duration
	from, to   geo.Point
	moving     bool
}

// NewRandomWaypoint returns a random-waypoint model inside region with
// speeds drawn uniformly from [minSpeed, maxSpeed] m/s and the given
// pause at each waypoint. The same seed reproduces the same trajectory.
func NewRandomWaypoint(region geo.Rect, minSpeed, maxSpeed float64, pause time.Duration, seed int64) *RandomWaypoint {
	if minSpeed <= 0 {
		minSpeed = 0.1
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	rng := rand.New(rand.NewSource(seed))
	start := geo.Pt(region.Min.X+rng.Float64()*region.Width(), region.Min.Y+rng.Float64()*region.Height())
	return &RandomWaypoint{
		region:   region,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rng,
		legs:     []leg{{start: 0, end: 0, from: start, to: start}},
	}
}

// NewPedestrian returns a random-waypoint model tuned to walking humans
// (0.5–1.5 m/s with short pauses), the situation the thesis describes:
// people moving around a university, pub, bus or airport.
func NewPedestrian(region geo.Rect, seed int64) *RandomWaypoint {
	return NewRandomWaypoint(region, 0.5, 1.5, 5*time.Second, seed)
}

// Position implements Model. Legs are generated lazily and memoized so
// arbitrary (including repeated or out-of-order) queries are consistent.
func (r *RandomWaypoint) Position(elapsed time.Duration) geo.Point {
	if elapsed < 0 {
		elapsed = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.legs[len(r.legs)-1].end <= elapsed {
		r.appendLeg()
	}
	for i := len(r.legs) - 1; i >= 0; i-- {
		lg := r.legs[i]
		if elapsed >= lg.start && (elapsed < lg.end || lg.end == lg.start) {
			if !lg.moving || lg.end == lg.start {
				return lg.to
			}
			frac := float64(elapsed-lg.start) / float64(lg.end-lg.start)
			return lg.from.Add(lg.to.Sub(lg.from).Scale(frac))
		}
	}
	return r.legs[0].from
}

// appendLeg extends the trajectory with one pause leg and one movement
// leg. Callers must hold r.mu.
func (r *RandomWaypoint) appendLeg() {
	last := r.legs[len(r.legs)-1]
	at := last.to
	if r.pause > 0 {
		r.legs = append(r.legs, leg{start: last.end, end: last.end + r.pause, from: at, to: at})
		last = r.legs[len(r.legs)-1]
	}
	dest := geo.Pt(r.region.Min.X+r.rng.Float64()*r.region.Width(), r.region.Min.Y+r.rng.Float64()*r.region.Height())
	speed := r.minSpeed + r.rng.Float64()*(r.maxSpeed-r.minSpeed)
	dist := at.DistanceTo(dest)
	dur := time.Duration(dist / speed * float64(time.Second))
	if dur <= 0 {
		dur = time.Millisecond
	}
	r.legs = append(r.legs, leg{
		start:  last.end,
		end:    last.end + dur,
		from:   at,
		to:     dest,
		moving: true,
	})
}

// Orbit circles a center point, useful for keeping two devices drifting
// in and out of a third device's range on a fixed period.
type Orbit struct {
	Center geo.Point
	Radius float64
	Period time.Duration // time for one full revolution
	Phase  float64       // starting angle in radians
}

// Position implements Model.
func (o Orbit) Position(elapsed time.Duration) geo.Point {
	if o.Period <= 0 {
		return geo.Pt(o.Center.X+o.Radius, o.Center.Y)
	}
	angle := o.Phase + 2*math.Pi*float64(elapsed)/float64(o.Period)
	return geo.Pt(o.Center.X+o.Radius*math.Cos(angle), o.Center.Y+o.Radius*math.Sin(angle))
}
