package mobility

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
)

func TestStatic(t *testing.T) {
	m := Static{At: geo.Pt(3, 4)}
	for _, d := range []time.Duration{0, time.Second, time.Hour} {
		if got := m.Position(d); got != (geo.Pt(3, 4)) {
			t.Fatalf("Position(%v) = %v", d, got)
		}
	}
}

func TestLinear(t *testing.T) {
	m := Linear{Start: geo.Pt(0, 0), Velocity: geo.Vec(2, 0)}
	if got := m.Position(5 * time.Second); got != (geo.Pt(10, 0)) {
		t.Fatalf("Position(5s) = %v, want (10, 0)", got)
	}
	if got := m.Position(0); got != (geo.Pt(0, 0)) {
		t.Fatalf("Position(0) = %v, want origin", got)
	}
}

func TestWaypointsFollowsPolyline(t *testing.T) {
	m := Waypoints{
		Points: []geo.Point{geo.Pt(0, 0), geo.Pt(10, 0), geo.Pt(10, 10)},
		Speed:  1,
	}
	tests := []struct {
		elapsed time.Duration
		want    geo.Point
	}{
		{0, geo.Pt(0, 0)},
		{5 * time.Second, geo.Pt(5, 0)},
		{10 * time.Second, geo.Pt(10, 0)},
		{15 * time.Second, geo.Pt(10, 5)},
		{time.Hour, geo.Pt(10, 10)}, // stops at the end
	}
	for _, tt := range tests {
		got := m.Position(tt.elapsed)
		if got.DistanceTo(tt.want) > 1e-9 {
			t.Errorf("Position(%v) = %v, want %v", tt.elapsed, got, tt.want)
		}
	}
}

func TestWaypointsDegenerate(t *testing.T) {
	if got := (Waypoints{}).Position(time.Second); got != (geo.Point{}) {
		t.Errorf("empty Waypoints = %v", got)
	}
	one := Waypoints{Points: []geo.Point{geo.Pt(1, 1)}, Speed: 1}
	if got := one.Position(time.Minute); got != (geo.Pt(1, 1)) {
		t.Errorf("single waypoint = %v", got)
	}
	zeroSpeed := Waypoints{Points: []geo.Point{geo.Pt(1, 1), geo.Pt(2, 2)}, Speed: 0}
	if got := zeroSpeed.Position(time.Minute); got != (geo.Pt(1, 1)) {
		t.Errorf("zero speed = %v", got)
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	a := NewRandomWaypoint(region, 1, 2, time.Second, 42)
	b := NewRandomWaypoint(region, 1, 2, time.Second, 42)
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * 3 * time.Second
		pa, pb := a.Position(d), b.Position(d)
		if pa.DistanceTo(pb) > 1e-9 {
			t.Fatalf("seeded models diverged at %v: %v vs %v", d, pa, pb)
		}
	}
}

func TestRandomWaypointStaysInRegion(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(50, 30))
	m := NewRandomWaypoint(region, 1, 3, 2*time.Second, 7)
	prop := func(secs uint16) bool {
		p := m.Position(time.Duration(secs) * time.Second)
		// Allow a hair of float slop at boundaries.
		return p.X >= -1e-6 && p.X <= 50+1e-6 && p.Y >= -1e-6 && p.Y <= 30+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWaypointOutOfOrderQueriesConsistent(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	m := NewRandomWaypoint(region, 1, 2, time.Second, 9)
	late := m.Position(500 * time.Second)
	early := m.Position(10 * time.Second)
	lateAgain := m.Position(500 * time.Second)
	earlyAgain := m.Position(10 * time.Second)
	if late.DistanceTo(lateAgain) > 1e-9 || early.DistanceTo(earlyAgain) > 1e-9 {
		t.Fatal("repeated queries returned different positions")
	}
}

func TestRandomWaypointNegativeElapsed(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(10, 10))
	m := NewRandomWaypoint(region, 1, 1, 0, 1)
	if got, want := m.Position(-time.Second), m.Position(0); got.DistanceTo(want) > 1e-9 {
		t.Fatalf("negative elapsed = %v, want %v", got, want)
	}
}

func TestRandomWaypointMoves(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(1000, 1000))
	m := NewRandomWaypoint(region, 5, 5, 0, 3)
	p0 := m.Position(0)
	p1 := m.Position(60 * time.Second)
	if p0.DistanceTo(p1) == 0 {
		t.Fatal("random waypoint never moved in 60s")
	}
}

func TestPedestrianSpeedRange(t *testing.T) {
	region := geo.NewRect(geo.Pt(0, 0), geo.Pt(100, 100))
	m := NewPedestrian(region, 11)
	// Sample positions 1 s apart; displacement per second must not
	// exceed the 1.5 m/s walking ceiling.
	prev := m.Position(0)
	for i := 1; i <= 300; i++ {
		cur := m.Position(time.Duration(i) * time.Second)
		if d := prev.DistanceTo(cur); d > 1.5+1e-6 {
			t.Fatalf("pedestrian moved %.2f m in 1 s at t=%ds", d, i)
		}
		prev = cur
	}
}

func TestOrbitPeriodicity(t *testing.T) {
	o := Orbit{Center: geo.Pt(10, 10), Radius: 5, Period: 20 * time.Second}
	p0 := o.Position(0)
	pFull := o.Position(20 * time.Second)
	if p0.DistanceTo(pFull) > 1e-6 {
		t.Fatalf("orbit not periodic: %v vs %v", p0, pFull)
	}
	pHalf := o.Position(10 * time.Second)
	if d := p0.DistanceTo(pHalf); d < 9.9 || d > 10.1 {
		t.Fatalf("half period displacement = %v, want ~diameter 10", d)
	}
}

func TestOrbitZeroPeriod(t *testing.T) {
	o := Orbit{Center: geo.Pt(0, 0), Radius: 3, Period: 0}
	if got := o.Position(time.Second); got != (geo.Pt(3, 0)) {
		t.Fatalf("zero period Position = %v", got)
	}
}

func TestOrbitStaysOnCircleProperty(t *testing.T) {
	o := Orbit{Center: geo.Pt(5, 5), Radius: 7, Period: 13 * time.Second}
	prop := func(ms uint16) bool {
		p := o.Position(time.Duration(ms) * time.Millisecond)
		d := p.DistanceTo(o.Center)
		return d > 7-1e-6 && d < 7+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
