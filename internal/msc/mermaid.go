package msc

import (
	"fmt"
	"io"
	"strings"
)

// RenderMermaid writes the chart as a Mermaid sequenceDiagram, ready to
// embed in Markdown documentation:
//
//	sequenceDiagram
//	    participant client
//	    participant server
//	    client->>server: PS_GETPROFILE
//	    server->>client: OK
func (r *Recorder) RenderMermaid(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	title := r.title
	parts := append([]string(nil), r.participants...)
	events := append([]Event(nil), r.events...)
	r.mu.Unlock()

	var b strings.Builder
	b.WriteString("sequenceDiagram\n")
	if title != "" {
		fmt.Fprintf(&b, "    %%%% %s\n", title)
	}
	alias := make(map[string]string, len(parts))
	for i, p := range parts {
		a := fmt.Sprintf("P%d", i)
		alias[p] = a
		fmt.Fprintf(&b, "    participant %s as %s\n", a, sanitizeMermaid(p))
	}
	for _, ev := range events {
		from, okF := alias[ev.From]
		to, okT := alias[ev.To]
		if !okF || !okT {
			continue
		}
		if ev.From == ev.To {
			fmt.Fprintf(&b, "    note over %s: %s\n", from, sanitizeMermaid(ev.Label))
			continue
		}
		fmt.Fprintf(&b, "    %s->>%s: %s\n", from, to, sanitizeMermaid(ev.Label))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MermaidString renders the Mermaid form to a string.
func (r *Recorder) MermaidString() string {
	var b strings.Builder
	_ = r.RenderMermaid(&b)
	return b.String()
}

// sanitizeMermaid strips characters that would break the diagram
// syntax.
func sanitizeMermaid(s string) string {
	s = strings.NewReplacer("\n", " ", ";", ",", ":", "-", "%", "pct").Replace(s)
	if s == "" {
		return "_"
	}
	return s
}
