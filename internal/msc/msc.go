// Package msc records and renders message sequence charts, reproducing
// Figures 11–17 of the thesis: every client/server exchange of the
// reference application can be captured as an ordered set of arrows
// between participants and rendered as ASCII art.
package msc

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one arrow on the chart.
type Event struct {
	From  string
	To    string
	Label string
}

// Recorder collects events. The zero value is ready to use; a nil
// *Recorder ignores all records, so instrumented code can leave
// recording off cheaply.
type Recorder struct {
	mu           sync.Mutex
	title        string
	participants []string
	events       []Event
}

// NewRecorder returns a recorder with a chart title.
func NewRecorder(title string) *Recorder {
	return &Recorder{title: title}
}

// Record appends an arrow. Participants are registered in order of
// first appearance.
func (r *Recorder) Record(from, to, label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addParticipantLocked(from)
	r.addParticipantLocked(to)
	r.events = append(r.events, Event{From: from, To: to, Label: label})
}

// Recordf is Record with a formatted label.
func (r *Recorder) Recordf(from, to, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(from, to, fmt.Sprintf(format, args...))
}

// AddParticipant pre-registers a lifeline so column order is
// deterministic even when the first message order varies.
func (r *Recorder) AddParticipant(name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addParticipantLocked(name)
}

func (r *Recorder) addParticipantLocked(name string) {
	for _, p := range r.participants {
		if p == name {
			return
		}
	}
	r.participants = append(r.participants, name)
}

// Events returns a copy of the recorded arrows.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Participants returns the lifelines in column order.
func (r *Recorder) Participants() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.participants...)
}

// Reset clears events but keeps participants and title.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// columnWidth spaces lifelines apart; labels longer than this spill
// over gracefully.
const columnWidth = 26

// Render writes the chart as ASCII art:
//
//	alice                     bob
//	  |---PS_GETPROFILE bob--->|
//	  |<--PROFILE--------------|
func (r *Recorder) Render(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	title := r.title
	parts := append([]string(nil), r.participants...)
	events := append([]Event(nil), r.events...)
	r.mu.Unlock()

	col := make(map[string]int, len(parts))
	for i, p := range parts {
		col[p] = i
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "MSC: %s\n\n", title)
	}
	// Header: participant names centered over their lifelines.
	for i, p := range parts {
		b.WriteString(center(p, columnWidth))
		if i < len(parts)-1 {
			b.WriteString(" ")
		}
	}
	b.WriteString("\n")

	lifelineRow := func() string {
		var row strings.Builder
		for i := range parts {
			row.WriteString(center("|", columnWidth))
			if i < len(parts)-1 {
				row.WriteString(" ")
			}
		}
		return row.String()
	}

	for _, ev := range events {
		b.WriteString(lifelineRow())
		b.WriteString("\n")
		b.WriteString(arrowRow(col[ev.From], col[ev.To], ev.Label, len(parts)))
		b.WriteString("\n")
	}
	b.WriteString(lifelineRow())
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string.
func (r *Recorder) String() string {
	var b strings.Builder
	_ = r.Render(&b)
	return b.String()
}

// center pads s to width, centered.
func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	left := (width - len(s)) / 2
	right := width - len(s) - left
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", right)
}

// arrowRow draws one arrow between two lifeline columns, or a self-loop
// marker when from == to.
func arrowRow(from, to int, label string, nParts int) string {
	// Matches center("|", columnWidth): the bar sits at the left-biased
	// middle of its column block.
	pos := func(i int) int { return i*(columnWidth+1) + (columnWidth-1)/2 }
	row := []byte(strings.Repeat(" ", nParts*(columnWidth+1)))
	put := func(i int, c byte) {
		if i >= 0 && i < len(row) {
			row[i] = c
		}
	}
	for i := 0; i < nParts; i++ {
		put(pos(i), '|')
	}
	if from == to {
		// Self event: annotate beside the lifeline.
		text := " (" + label + ")"
		for i, c := range []byte(text) {
			put(pos(from)+1+i, c)
		}
		return strings.TrimRight(string(row), " ")
	}
	lo, hi := pos(from), pos(to)
	rightward := lo < hi
	if !rightward {
		lo, hi = hi, lo
	}
	for i := lo + 1; i < hi; i++ {
		put(i, '-')
	}
	if rightward {
		put(hi-1, '>')
	} else {
		put(lo+1, '<')
	}
	// Label in the middle of the arrow.
	if label != "" {
		span := hi - lo - 3
		text := label
		if len(text) > span && span > 0 {
			text = text[:span]
		}
		start := lo + 1 + (hi-lo-1-len(text))/2
		for i, c := range []byte(text) {
			put(start+i, c)
		}
	}
	return strings.TrimRight(string(row), " ")
}
