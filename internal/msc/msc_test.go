package msc

import (
	"strings"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder("Get Member List")
	r.Record("client", "server1", "PS_GETONLINEMEMBERLIST")
	r.Record("server1", "client", "bob")
	events := r.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].From != "client" || events[0].To != "server1" || events[0].Label != "PS_GETONLINEMEMBERLIST" {
		t.Fatalf("first event = %+v", events[0])
	}
	parts := r.Participants()
	if len(parts) != 2 || parts[0] != "client" || parts[1] != "server1" {
		t.Fatalf("participants = %v", parts)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record("a", "b", "x")
	r.Recordf("a", "b", "x %d", 1)
	r.AddParticipant("a")
	r.Reset()
	if r.Events() != nil || r.Participants() != nil {
		t.Fatal("nil recorder should return nil slices")
	}
	if err := r.Render(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.String() != "" {
		t.Fatal("nil recorder String should be empty")
	}
}

func TestRenderContainsArrowsAndTitle(t *testing.T) {
	r := NewRecorder("View Member Profile")
	r.Record("client", "server", "PS_GETPROFILE")
	r.Record("server", "client", "PROFILE")
	out := r.String()
	if !strings.Contains(out, "MSC: View Member Profile") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "client") || !strings.Contains(out, "server") {
		t.Error("missing participants")
	}
	if !strings.Contains(out, "PS_GETPROFILE") {
		t.Error("missing request label")
	}
	if !strings.Contains(out, ">") {
		t.Error("missing rightward arrowhead")
	}
	if !strings.Contains(out, "<") {
		t.Error("missing leftward arrowhead")
	}
}

func TestRenderThreeParticipants(t *testing.T) {
	r := NewRecorder("fanout")
	r.AddParticipant("client")
	r.AddParticipant("server1")
	r.AddParticipant("server2")
	r.Record("client", "server2", "REQ")
	out := r.String()
	lines := strings.Split(out, "\n")
	var arrowLine string
	for _, l := range lines {
		if strings.Contains(l, ">") {
			arrowLine = l
		}
	}
	if arrowLine == "" {
		t.Fatal("no arrow line")
	}
	// The arrow from column 0 to column 2 must pass through column 1's
	// position (overwriting its lifeline with the arrow body or label).
	if !strings.Contains(arrowLine, "REQ") {
		t.Fatalf("label missing on %q", arrowLine)
	}
}

func TestSelfEvent(t *testing.T) {
	r := NewRecorder("self")
	r.Record("client", "client", "store list")
	out := r.String()
	if !strings.Contains(out, "(store list)") {
		t.Fatalf("self event not rendered: %q", out)
	}
}

func TestRecordf(t *testing.T) {
	r := NewRecorder("")
	r.Recordf("a", "b", "PS_MSG %s", "bob")
	if got := r.Events()[0].Label; got != "PS_MSG bob" {
		t.Fatalf("label = %q", got)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder("t")
	r.Record("a", "b", "x")
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatal("Reset did not clear events")
	}
	if len(r.Participants()) != 2 {
		t.Fatal("Reset should keep participants")
	}
}

func TestAddParticipantIdempotent(t *testing.T) {
	r := NewRecorder("t")
	r.AddParticipant("a")
	r.AddParticipant("a")
	if len(r.Participants()) != 1 {
		t.Fatal("duplicate participant registered")
	}
}

func TestLongLabelTruncatedNotPanic(t *testing.T) {
	r := NewRecorder("t")
	r.Record("a", "b", strings.Repeat("x", 500))
	_ = r.String() // must not panic
}

func TestRenderMermaid(t *testing.T) {
	r := NewRecorder("View Member Profile")
	r.Record("client", "server", "PS_GETPROFILE")
	r.Record("server", "client", "OK")
	r.Record("client", "client", "render profile")
	out := r.MermaidString()
	for _, want := range []string{
		"sequenceDiagram",
		"%% View Member Profile",
		"participant P0 as client",
		"participant P1 as server",
		"P0->>P1: PS_GETPROFILE",
		"P1->>P0: OK",
		"note over P0: render profile",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("mermaid missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMermaidNilAndSanitize(t *testing.T) {
	var nilRec *Recorder
	if nilRec.MermaidString() != "" {
		t.Error("nil recorder mermaid should be empty")
	}
	r := NewRecorder("")
	r.Record("a", "b", "label:with;bad\nchars")
	out := r.MermaidString()
	if strings.Contains(out, "label:with;bad\nchars") {
		t.Errorf("unsanitized label in %q", out)
	}
	if !strings.Contains(out, "label-with,bad chars") {
		t.Errorf("sanitized label missing in %q", out)
	}
}
