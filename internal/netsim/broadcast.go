package netsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/radio"
)

// Broadcast is one received broadcast datagram.
type Broadcast struct {
	From    ids.DeviceID
	Tech    radio.Technology
	Port    string
	Payload []byte
}

// BroadcastSub receives broadcasts addressed to a device port. The
// thesis's WLANPlugin uses broadcast-based service discovery (§4.2.3);
// daemons subscribe here to hear discovery probes.
type BroadcastSub struct {
	net  *Network
	key  portKey
	ch   chan Broadcast
	done chan struct{}
	once sync.Once
}

// SubscribeBroadcast registers a device to receive broadcasts sent to
// the given port over any technology it carries.
func (n *Network) SubscribeBroadcast(dev ids.DeviceID, port string) (*BroadcastSub, error) {
	if !n.env.Has(dev) {
		return nil, fmt.Errorf("netsim: subscribe: %w: %q", radio.ErrUnknownDevice, dev)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrNetworkClosed
	}
	key := portKey{dev: dev, port: port}
	sub := &BroadcastSub{
		net:  n,
		key:  key,
		ch:   make(chan Broadcast, 64),
		done: make(chan struct{}),
	}
	n.subscribers[key] = append(n.subscribers[key], sub)
	return sub, nil
}

// Recv blocks for the next broadcast.
func (s *BroadcastSub) Recv(ctx context.Context) (Broadcast, error) {
	select {
	case b := <-s.ch:
		return b, nil
	case <-s.done:
		return Broadcast{}, ErrConnClosed
	case <-ctx.Done():
		return Broadcast{}, ctx.Err()
	}
}

// Close unsubscribes.
func (s *BroadcastSub) Close() {
	s.net.mu.Lock()
	subs := s.net.subscribers[s.key]
	for i, other := range subs {
		if other == s {
			s.net.subscribers[s.key] = append(subs[:i:i], subs[i+1:]...)
			break
		}
	}
	s.net.mu.Unlock()
	s.once.Do(func() { close(s.done) })
}

// SendBroadcast delivers a datagram to every reachable subscriber on
// the port after the PHY transfer time. Delivery is best-effort: each
// copy is independently subject to the configured loss rate, and
// subscribers with full buffers miss it. It returns the number of
// copies delivered.
//
// Reachability of the whole target set is resolved with one
// grid-indexed neighbor query at a single epoch instead of a per-pair
// radio check per subscriber, so a discovery probe into a
// thousand-subscriber world costs one O(occupancy) scan, not n
// environment round trips.
func (n *Network) SendBroadcast(from ids.DeviceID, tech radio.Technology, port string, payload []byte) (int, error) {
	if !tech.Valid() {
		return 0, fmt.Errorf("netsim: broadcast: invalid technology %v", tech)
	}
	if !n.env.Has(from) {
		return 0, fmt.Errorf("netsim: broadcast: %w: %q", radio.ErrUnknownDevice, from)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return 0, ErrNetworkClosed
	}
	loss := n.lossRate
	// Snapshot matching subscribers under the lock.
	type target struct {
		dev ids.DeviceID
		sub *BroadcastSub
	}
	var targets []target
	for key, subs := range n.subscribers {
		if key.port != port {
			continue
		}
		for _, sub := range subs {
			targets = append(targets, target{dev: key.dev, sub: sub})
		}
	}
	// Draw loss decisions in a deterministic order: consuming the seeded
	// rng in map-iteration order would assign different drop fates to
	// the same subscribers run to run, breaking seed replay. One
	// subscriber key matches per device at this port, so sorting by
	// device keeps each key's registration order intact.
	sort.SliceStable(targets, func(i, j int) bool { return targets[i].dev < targets[j].dev })
	// Pre-draw loss decisions under the lock so rng access is serialized.
	drops := make([]bool, len(targets))
	for i := range drops {
		drops[i] = loss > 0 && n.rng.Float64() < loss
	}
	n.mu.Unlock()

	n.counters.broadcastsSent.Add(1)
	phy := n.env.PHY(tech)
	n.sleepModeled(phy.TransferTime(len(payload)))

	// Resolve every target's reachability at one post-transfer epoch:
	// one neighbor-set query plus one partition snapshot replaces a
	// linkUp round trip per subscriber.
	reach := make(map[ids.DeviceID]bool)
	for _, dev := range n.env.Neighbors(from, tech) {
		reach[dev] = true
	}
	n.mu.Lock()
	closed := n.closed
	parted := make(map[devPair]bool, len(n.partitioned))
	for p := range n.partitioned {
		parted[p] = true
	}
	n.mu.Unlock()
	if closed {
		return 0, ErrNetworkClosed
	}

	plan := n.faultPlan()
	if !plan.SeversLinks() {
		plan = nil // the plan can never drop a target: skip per-pair checks
	}
	var elapsedNow time.Duration
	if plan != nil {
		elapsedNow = n.env.Elapsed()
	}

	delivered := 0
	for i, tgt := range targets {
		if drops[i] {
			continue
		}
		if !reach[tgt.dev] || parted[normPair(from, tgt.dev)] {
			continue
		}
		if plan != nil && plan.LinkDown(from, tgt.dev, elapsedNow) {
			continue
		}
		msg := Broadcast{From: from, Tech: tech, Port: port, Payload: append([]byte(nil), payload...)}
		select {
		case tgt.sub.ch <- msg:
			delivered++
		default:
			// Subscriber buffer full: datagram lost, like real UDP.
		}
	}
	return delivered, nil
}
