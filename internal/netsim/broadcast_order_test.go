package netsim

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/radio"
)

// TestBroadcastLossDrawOrderDeterministic is a regression test for a
// seed-replay bug: loss fates were drawn from the seeded rng while
// iterating the subscriber table in map order, so the same seed dropped
// a different subset of subscribers each run. Fates now attach to
// subscribers in sorted device order, making the received set a pure
// function of the seed. Fresh identical worlds must therefore agree on
// exactly who heard the probe, every time.
func TestBroadcastLossDrawOrderDeterministic(t *testing.T) {
	receivers := func() string {
		env := radio.NewEnvironment(WithTestScale())
		net := New(env, 7)
		defer net.Close()
		addStatic(t, env, "src", geo.Pt(0, 0), radio.WLAN)
		subs := make(map[ids.DeviceID]*BroadcastSub, 8)
		for i := 0; i < 8; i++ {
			id := ids.DeviceID(fmt.Sprintf("dst%d", i))
			addStatic(t, env, id, geo.Pt(float64(i+1), 0), radio.WLAN)
			sub, err := net.SubscribeBroadcast(id, "disc")
			if err != nil {
				t.Fatal(err)
			}
			subs[id] = sub
		}
		net.SetBroadcastLoss(0.5)
		if _, err := net.SendBroadcast("src", radio.WLAN, "disc", []byte("probe")); err != nil {
			t.Fatal(err)
		}
		// Delivery is synchronous into the subscriber buffers, so a
		// non-blocking receive tells us who heard it.
		var got []string
		for id, sub := range subs {
			select {
			case <-sub.ch:
				got = append(got, string(id))
			default:
			}
		}
		sort.Strings(got)
		return strings.Join(got, ",")
	}

	want := receivers()
	for trial := 1; trial < 6; trial++ {
		if have := receivers(); have != want {
			t.Fatalf("trial %d: received set %q != first run %q — loss draws are not replay-stable", trial, have, want)
		}
	}
}
