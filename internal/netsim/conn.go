package netsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/radio"
)

// Conn is one end of a reliable, ordered, message-oriented connection.
// Messages are delivered in order after the PHY transfer time; when the
// radio link breaks (range exit, power off, partition) both ends fail
// with ErrLinkLost.
//
// Lifecycle contract: an end belongs to its holder until the holder's
// first Close or Abort; operations racing with (or following) that
// end's own Close/Abort are a misuse. The connection tolerates it —
// the ops valve below keeps a straggler from ever touching a recycled
// pair — but such a pair is leaked to the garbage collector instead of
// reused.
type Conn struct {
	net    *Network
	local  ids.DeviceID
	remote ids.DeviceID
	tech   radio.Technology
	port   string

	// connSeq numbers this connection on its directed dialer pair; with
	// the pump's per-message index it keys the deterministic fault
	// draws. Both ends share the value.
	connSeq uint64

	peer *Conn     // other end
	pair *connPair // shared allocation unit both ends live in

	sendQ chan []byte
	recvQ chan []byte

	mu      sync.Mutex
	err     error
	closing bool
	pending sync.WaitGroup // accepted sends not yet delivered or dropped
	closed  chan struct{}
	failed  atomic.Bool // fail() has run (first caller wins)

	// released latches this end's user hold being dropped: the first
	// Close or Abort wins, later ones are no-ops.
	released atomic.Bool

	// ops counts user operations (Send/Recv variants) currently inside
	// this end. A nonzero count when the last pair reference drops means
	// a straggler raced its own end's close; the pair is then orphaned
	// to the GC rather than recycled under the straggler.
	ops atomic.Int32

	// des holds this end's event-engine state (engine_des.go); nil on
	// the goroutine engine.
	des *desConnState
}

// connPair owns both connection ends and their event-engine state in
// one allocation, recycled through the network's pair pool when every
// holder lets go. refs counts the holders: the two user ends (dropped
// at each end's first Close/Abort), the pump goroutines on the
// goroutine engine, every scheduled delivery/teardown/flush event on
// the event engine, Close's flush waiter, and transient holds the link
// sweeps take while failing dead conns outside the network lock.
type connPair struct {
	ends [2]Conn
	des  [2]desConnState
	refs atomic.Int32
}

func (p *connPair) ref() { p.refs.Add(1) }

// unref drops one hold on this end's pair; the last drop recycles it.
func (c *Conn) unref() {
	if c.pair.refs.Add(-1) == 0 {
		c.net.recyclePair(c.pair)
	}
}

// releaseUser drops this end's user hold exactly once.
func (c *Conn) releaseUser() {
	if c.released.CompareAndSwap(false, true) {
		c.unref()
	}
}

// recyclePair returns a fully-released pair to the pool. If a
// straggler operation is still inside either end — a caller racing its
// own end's Close/Abort, which the contract forbids but the valve
// tolerates — the pair is orphaned to the garbage collector instead:
// correctness over reuse.
func (n *Network) recyclePair(p *connPair) {
	if p.ends[0].ops.Load() != 0 || p.ends[1].ops.Load() != 0 {
		return
	}
	for i := range p.ends {
		c := &p.ends[i]
		drainQ(c.recvQ)
		if c.sendQ != nil {
			drainQ(c.sendQ)
		}
		if c.des != nil {
			c.des.drain()
		}
	}
	n.pairPool.Put(p)
}

func drainQ(q chan []byte) {
	for {
		select {
		case <-q:
		default:
			return
		}
	}
}

// newConnPair wires up both ends and starts their pumps; registering
// the dialer end with the network enrolls the pair in the shared link
// sweep (Network.sweepLinks). It returns (dialer end, listener end).
// Pairs come from the network's pool: connection churn dominated the
// allocation profile at scale, and the big pieces — the transmit and
// receive queues, the admission semaphores, the reorder maps — are
// engine-invariant and survive from one incarnation to the next.
func newConnPair(n *Network, from, to ids.DeviceID, tech radio.Technology, port string) (*Conn, *Conn) {
	seq := n.nextConnSeq(from, to)
	p, _ := n.pairPool.Get().(*connPair)
	fresh := p == nil
	if fresh {
		p = &connPair{}
	}
	a, b := &p.ends[0], &p.ends[1]
	a.reset(n, p, from, to, tech, port, seq)
	b.reset(n, p, to, from, tech, port, seq)
	a.peer, b.peer = b, a
	p.refs.Store(2) // one user hold per end
	if n.sched != nil {
		// Event engine: no pumps; Send schedules delivery events, and
		// the admission semaphore replaces the transmit queue.
		a.des, b.des = &p.des[0], &p.des[1]
		a.des.reset(fresh)
		b.des.reset(fresh)
		n.trackConn(a)
		return a, b
	}
	if fresh {
		a.sendQ = make(chan []byte, sendQueueLen)
		b.sendQ = make(chan []byte, sendQueueLen)
	}
	p.refs.Add(2) // one hold per pump
	n.trackConn(a)
	go a.pump()
	go b.pump()
	return a, b
}

// reset prepares one end for a new incarnation. The queues persist
// across incarnations (drained at recycle) — they are the bulk of a
// pair's allocation cost; the closed channel must be fresh, since the
// previous incarnation's has fired.
func (c *Conn) reset(n *Network, p *connPair, local, remote ids.DeviceID, tech radio.Technology, port string, seq uint64) {
	c.net, c.pair = n, p
	c.local, c.remote, c.tech, c.port, c.connSeq = local, remote, tech, port, seq
	c.err = nil
	c.closing = false
	c.closed = make(chan struct{})
	c.failed.Store(false)
	c.released.Store(false)
	if c.recvQ == nil {
		c.recvQ = make(chan []byte, sendQueueLen)
	}
}

// Local returns the device this end belongs to.
func (c *Conn) Local() ids.DeviceID { return c.local }

// Remote returns the device at the other end.
func (c *Conn) Remote() ids.DeviceID { return c.remote }

// Technology returns the radio technology carrying the connection.
func (c *Conn) Technology() radio.Technology { return c.tech }

// Port returns the service port this connection was dialed to.
func (c *Conn) Port() string { return c.port }

// Send enqueues a message for in-order delivery to the peer. It blocks
// only if the transmit queue is full.
func (c *Conn) Send(payload []byte) error {
	return c.send(payload, nil, nil)
}

// SendDeadline is Send with a deadline on queue admission: when the
// transmit queue is still full as the deadline channel fires — the
// signature of a peer that has stopped reading — it gives up with
// ErrSendTimeout instead of blocking the caller forever. Servers pass a
// modeled-clock timer here so one stalled reader cannot wedge a
// serving goroutine.
func (c *Conn) SendDeadline(payload []byte, deadline <-chan time.Time) error {
	return c.send(payload, deadline, nil)
}

// SendCancel is Send with a cancellation channel on queue admission:
// when cancel fires first the send gives up with ErrSendTimeout.
// Pipelines use it so a peer that stops reading cannot park a relay
// goroutine past its bridge's lifetime.
func (c *Conn) SendCancel(payload []byte, cancel <-chan struct{}) error {
	return c.send(payload, nil, cancel)
}

func (c *Conn) send(payload []byte, deadline <-chan time.Time, cancel <-chan struct{}) error {
	c.ops.Add(1)
	defer c.ops.Add(-1)
	if c.des != nil {
		return c.desSend(payload, deadline, cancel)
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return c.errOrClosed()
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return c.errOrClosed()
	default:
	}
	c.pending.Add(1)
	c.mu.Unlock()
	select {
	case c.sendQ <- msg:
		return nil
	case <-c.closed:
		c.pending.Done()
		return c.errOrClosed()
	case <-deadline:
		c.pending.Done()
		return ErrSendTimeout
	case <-cancel:
		c.pending.Done()
		return ErrSendTimeout
	}
}

// Recv returns the next message in order, blocking until one arrives,
// the connection dies, or the context is done. Messages already
// delivered before a link loss remain readable.
func (c *Conn) Recv(ctx context.Context) ([]byte, error) {
	c.ops.Add(1)
	defer c.ops.Add(-1)
	select {
	case msg := <-c.recvQ:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.recvQ:
		return msg, nil
	case <-c.closed:
		// Drain anything that raced in before closure.
		select {
		case msg := <-c.recvQ:
			return msg, nil
		default:
		}
		return nil, c.errOrClosed()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Err returns the terminal error after the connection has died, or nil
// while it is healthy.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Alive reports whether the connection is still usable.
func (c *Conn) Alive() bool {
	select {
	case <-c.closed:
		return false
	default:
		return true
	}
}

// closeFlushTimeout bounds how long Close waits for in-flight messages
// to drain when the peer is not reading.
const closeFlushTimeout = 5 * time.Second

// Close flushes messages already accepted by Send (so a server may
// respond and close immediately, like shutdown(2) on TCP), then shuts
// down both ends. Messages the peer has not yet read remain readable on
// its side. Close also drops this end's user hold on the pair; using
// the end afterwards is a contract violation. Close and Abort win the
// release latch before touching the pair: a duplicate release from a
// racing goroutine returns without reading state a recycled
// incarnation may be rewriting.
func (c *Conn) Close() error {
	if !c.released.CompareAndSwap(false, true) {
		return nil
	}
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	c.waitFlush(closeFlushTimeout)
	c.fail(ErrConnClosed)
	c.peer.fail(ErrConnClosed)
	c.unref()
	return nil
}

// Abort tears both ends down immediately, discarding in-flight
// messages, and drops this end's user hold on the pair. Duplicate
// releases are no-ops (see Close).
func (c *Conn) Abort() {
	if !c.released.CompareAndSwap(false, true) {
		return
	}
	c.failBoth(ErrConnClosed)
	c.unref()
}

// waitFlush waits for accepted sends to drain, bounded by d. The
// waiting goroutine keeps a pair hold even past the timeout: it stays
// parked on this incarnation's WaitGroup, which must not be recycled
// under it.
func (c *Conn) waitFlush(d time.Duration) {
	c.pair.ref()
	done := make(chan struct{})
	go func() {
		c.pending.Wait()
		close(done)
		c.unref()
	}()
	select {
	case <-done:
	//phvet:ignore walltime Close's flush bound is a real-time safety valve: it must fire even when a manual vtime clock is paused, or a peer that stops reading would hang Close forever.
	case <-time.After(d):
	}
}

func (c *Conn) errOrClosed() error {
	if err := c.Err(); err != nil {
		return err
	}
	return ErrConnClosed
}

// fail terminates this end with the given error (first caller wins;
// later calls are no-ops).
func (c *Conn) fail(err error) {
	if !c.failed.CompareAndSwap(false, true) {
		return
	}
	c.mu.Lock()
	c.err = err
	c.mu.Unlock()
	close(c.closed)
	c.net.dropConn(c)
	if c.des != nil {
		c.desNotifyWaiter()
	}
}

// failBoth terminates both ends.
func (c *Conn) failBoth(err error) {
	c.fail(err)
	c.peer.fail(err)
}

// pump moves messages from this end's transmit queue to the peer's
// receive queue, one at a time, charging the PHY transfer time; the
// serial processing is what models the link's limited bandwidth. The
// goroutine holds one pair reference for its lifetime.
func (c *Conn) pump() {
	defer c.unref()
	defer c.drainSendQ()
	phy := c.net.env.PHY(c.tech)
	var msgSeq uint64
	for {
		select {
		case <-c.closed:
			return
		case msg := <-c.sendQ:
			msgSeq++
			// Consult the fault plan once per message. With no plan (or
			// a zero-rate one) the fate is the zero value and the path
			// below is byte-identical to the fault-free one: a single
			// transfer charge, no extra sleeps, no mutation.
			plan := c.net.faultPlan()
			transfer := phy.TransferTime(len(msg))
			var fate faults.Fate
			if plan != nil {
				elapsed := c.net.env.Elapsed()
				transfer = plan.ScaleTransfer(transfer, elapsed)
				fate = plan.MessageFate(c.local, c.remote, c.connSeq, msgSeq, elapsed)
				if plan.AffectsEndpoints() {
					// Endpoint fates: a slow device charges a multiple of the
					// PHY time for everything it sends; a stalled session
					// withholds this end's messages — the link stays up and
					// the other direction keeps flowing, which is the gray
					// failure shape (connection accepted, replies withheld).
					transfer = time.Duration(float64(transfer) * plan.ServeScale(c.local, elapsed))
					if d := plan.StallDelay(c.local, c.remote, c.connSeq, msgSeq, elapsed); d > 0 {
						select {
						case <-c.net.env.Clock().After(c.net.env.Scale().ToReal(d)):
						case <-c.closed:
							c.pending.Done()
							return
						}
					}
				}
			}
			// Hold the sender's radio for the transfer (and for every
			// retransmission): connections sharing one device radio
			// contend for airtime.
			tx := c.net.txLock(c.local, c.tech)
			for charge := 0; charge <= fate.Retransmits; charge++ {
				tx.Lock()
				c.net.sleepModeled(transfer)
				tx.Unlock()
			}
			if fate.Retransmits > 0 {
				c.net.counters.messagesRetransmitted.Add(uint64(fate.Retransmits))
			}
			if fate.Reset {
				c.pending.Done()
				c.net.counters.linkFailures.Add(1)
				c.failBoth(fmt.Errorf("%w: %s -> %s over %v (retransmission budget exhausted)", ErrLinkLost, c.local, c.remote, c.tech))
				return
			}
			if fate.Delay > 0 {
				c.net.sleepModeled(fate.Delay)
			}
			if fate.Corrupt {
				msg = plan.Corrupt(msg, c.local, c.remote, c.connSeq, msgSeq)
				c.net.counters.messagesCorrupted.Add(1)
			}
			if !c.net.linkUp(c.local, c.remote, c.tech) {
				c.pending.Done()
				c.net.counters.linkFailures.Add(1)
				c.failBoth(fmt.Errorf("%w: %s -> %s over %v", ErrLinkLost, c.local, c.remote, c.tech))
				return
			}
			select {
			case c.peer.recvQ <- msg:
				c.net.counters.messagesDelivered.Add(1)
				c.net.counters.bytesDelivered.Add(uint64(len(msg)))
				c.pending.Done()
			case <-c.closed:
				c.pending.Done()
				return
			}
		}
	}
}

// drainSendQ releases accounting for messages abandoned when the pump
// exits, so Close never waits on undeliverable traffic.
func (c *Conn) drainSendQ() {
	for {
		select {
		case <-c.sendQ:
			c.pending.Done()
		default:
			return
		}
	}
}
