package netsim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/radio"
)

// Conn is one end of a reliable, ordered, message-oriented connection.
// Messages are delivered in order after the PHY transfer time; when the
// radio link breaks (range exit, power off, partition) both ends fail
// with ErrLinkLost.
type Conn struct {
	net    *Network
	local  ids.DeviceID
	remote ids.DeviceID
	tech   radio.Technology
	port   string

	// connSeq numbers this connection on its directed dialer pair; with
	// the pump's per-message index it keys the deterministic fault
	// draws. Both ends share the value.
	connSeq uint64

	peer *Conn // other end

	sendQ chan []byte
	recvQ chan []byte

	mu      sync.Mutex
	err     error
	closing bool
	pending sync.WaitGroup // accepted sends not yet delivered or dropped
	closed  chan struct{}
	once    sync.Once

	// des holds this end's event-engine state (engine_des.go); nil on
	// the goroutine engine.
	des *desConnState
}

// newConnPair wires up both ends and starts their pumps; registering
// the dialer end with the network enrolls the pair in the shared link
// sweep (Network.sweepLinks). It returns (dialer end, listener end).
func newConnPair(n *Network, from, to ids.DeviceID, tech radio.Technology, port string) (*Conn, *Conn) {
	seq := n.nextConnSeq(from, to)
	a := &Conn{
		net: n, local: from, remote: to, tech: tech, port: port, connSeq: seq,
		recvQ:  make(chan []byte, sendQueueLen),
		closed: make(chan struct{}),
	}
	b := &Conn{
		net: n, local: to, remote: from, tech: tech, port: port, connSeq: seq,
		recvQ:  make(chan []byte, sendQueueLen),
		closed: make(chan struct{}),
	}
	a.peer, b.peer = b, a
	if n.sched != nil {
		// Event engine: no pumps; Send schedules delivery events, and
		// the admission semaphore replaces the transmit queue.
		a.des, b.des = newDESConnState(), newDESConnState()
		n.trackConn(a)
		return a, b
	}
	a.sendQ = make(chan []byte, sendQueueLen)
	b.sendQ = make(chan []byte, sendQueueLen)
	n.trackConn(a)
	go a.pump()
	go b.pump()
	return a, b
}

// Local returns the device this end belongs to.
func (c *Conn) Local() ids.DeviceID { return c.local }

// Remote returns the device at the other end.
func (c *Conn) Remote() ids.DeviceID { return c.remote }

// Technology returns the radio technology carrying the connection.
func (c *Conn) Technology() radio.Technology { return c.tech }

// Port returns the service port this connection was dialed to.
func (c *Conn) Port() string { return c.port }

// Send enqueues a message for in-order delivery to the peer. It blocks
// only if the transmit queue is full.
func (c *Conn) Send(payload []byte) error {
	if c.des != nil {
		return c.desSend(payload, nil)
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return c.errOrClosed()
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return c.errOrClosed()
	default:
	}
	c.pending.Add(1)
	c.mu.Unlock()
	select {
	case c.sendQ <- msg:
		return nil
	case <-c.closed:
		c.pending.Done()
		return c.errOrClosed()
	}
}

// SendDeadline is Send with a deadline on queue admission: when the
// transmit queue is still full as the deadline channel fires — the
// signature of a peer that has stopped reading — it gives up with
// ErrSendTimeout instead of blocking the caller forever. Servers pass a
// modeled-clock timer here so one stalled reader cannot wedge a
// serving goroutine.
func (c *Conn) SendDeadline(payload []byte, deadline <-chan time.Time) error {
	if c.des != nil {
		return c.desSend(payload, deadline)
	}
	msg := make([]byte, len(payload))
	copy(msg, payload)
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		return c.errOrClosed()
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return c.errOrClosed()
	default:
	}
	c.pending.Add(1)
	c.mu.Unlock()
	select {
	case c.sendQ <- msg:
		return nil
	case <-c.closed:
		c.pending.Done()
		return c.errOrClosed()
	case <-deadline:
		c.pending.Done()
		return ErrSendTimeout
	}
}

// Recv returns the next message in order, blocking until one arrives,
// the connection dies, or the context is done. Messages already
// delivered before a link loss remain readable.
func (c *Conn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case msg := <-c.recvQ:
		return msg, nil
	default:
	}
	select {
	case msg := <-c.recvQ:
		return msg, nil
	case <-c.closed:
		// Drain anything that raced in before closure.
		select {
		case msg := <-c.recvQ:
			return msg, nil
		default:
		}
		return nil, c.errOrClosed()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Err returns the terminal error after the connection has died, or nil
// while it is healthy.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Alive reports whether the connection is still usable.
func (c *Conn) Alive() bool {
	select {
	case <-c.closed:
		return false
	default:
		return true
	}
}

// closeFlushTimeout bounds how long Close waits for in-flight messages
// to drain when the peer is not reading.
const closeFlushTimeout = 5 * time.Second

// Close flushes messages already accepted by Send (so a server may
// respond and close immediately, like shutdown(2) on TCP), then shuts
// down both ends. Messages the peer has not yet read remain readable on
// its side.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	waitWithTimeout(&c.pending, closeFlushTimeout)
	c.fail(ErrConnClosed)
	c.peer.fail(ErrConnClosed)
	return nil
}

// Abort tears both ends down immediately, discarding in-flight
// messages.
func (c *Conn) Abort() {
	c.failBoth(ErrConnClosed)
}

func waitWithTimeout(wg *sync.WaitGroup, d time.Duration) {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	//phvet:ignore walltime Close's flush bound is a real-time safety valve: it must fire even when a manual vtime clock is paused, or a peer that stops reading would hang Close forever.
	case <-time.After(d):
	}
}

func (c *Conn) errOrClosed() error {
	if err := c.Err(); err != nil {
		return err
	}
	return ErrConnClosed
}

// fail terminates this end with the given error (first error wins).
func (c *Conn) fail(err error) {
	c.once.Do(func() {
		c.mu.Lock()
		c.err = err
		c.mu.Unlock()
		close(c.closed)
		c.net.dropConn(c)
		if c.des != nil {
			c.desNotifyWaiter()
		}
	})
}

// failBoth terminates both ends.
func (c *Conn) failBoth(err error) {
	c.fail(err)
	c.peer.fail(err)
}

// pump moves messages from this end's transmit queue to the peer's
// receive queue, one at a time, charging the PHY transfer time; the
// serial processing is what models the link's limited bandwidth.
func (c *Conn) pump() {
	defer c.drainSendQ()
	phy := c.net.env.PHY(c.tech)
	var msgSeq uint64
	for {
		select {
		case <-c.closed:
			return
		case msg := <-c.sendQ:
			msgSeq++
			// Consult the fault plan once per message. With no plan (or
			// a zero-rate one) the fate is the zero value and the path
			// below is byte-identical to the fault-free one: a single
			// transfer charge, no extra sleeps, no mutation.
			plan := c.net.faultPlan()
			transfer := phy.TransferTime(len(msg))
			var fate faults.Fate
			if plan != nil {
				elapsed := c.net.env.Elapsed()
				transfer = plan.ScaleTransfer(transfer, elapsed)
				fate = plan.MessageFate(c.local, c.remote, c.connSeq, msgSeq, elapsed)
				if plan.AffectsEndpoints() {
					// Endpoint fates: a slow device charges a multiple of the
					// PHY time for everything it sends; a stalled session
					// withholds this end's messages — the link stays up and
					// the other direction keeps flowing, which is the gray
					// failure shape (connection accepted, replies withheld).
					transfer = time.Duration(float64(transfer) * plan.ServeScale(c.local, elapsed))
					if d := plan.StallDelay(c.local, c.remote, c.connSeq, msgSeq, elapsed); d > 0 {
						select {
						case <-c.net.env.Clock().After(c.net.env.Scale().ToReal(d)):
						case <-c.closed:
							c.pending.Done()
							return
						}
					}
				}
			}
			// Hold the sender's radio for the transfer (and for every
			// retransmission): connections sharing one device radio
			// contend for airtime.
			tx := c.net.txLock(c.local, c.tech)
			for charge := 0; charge <= fate.Retransmits; charge++ {
				tx.Lock()
				c.net.sleepModeled(transfer)
				tx.Unlock()
			}
			if fate.Retransmits > 0 {
				c.net.counters.messagesRetransmitted.Add(uint64(fate.Retransmits))
			}
			if fate.Reset {
				c.pending.Done()
				c.net.counters.linkFailures.Add(1)
				c.failBoth(fmt.Errorf("%w: %s -> %s over %v (retransmission budget exhausted)", ErrLinkLost, c.local, c.remote, c.tech))
				return
			}
			if fate.Delay > 0 {
				c.net.sleepModeled(fate.Delay)
			}
			if fate.Corrupt {
				msg = plan.Corrupt(msg, c.local, c.remote, c.connSeq, msgSeq)
				c.net.counters.messagesCorrupted.Add(1)
			}
			if !c.net.linkUp(c.local, c.remote, c.tech) {
				c.pending.Done()
				c.net.counters.linkFailures.Add(1)
				c.failBoth(fmt.Errorf("%w: %s -> %s over %v", ErrLinkLost, c.local, c.remote, c.tech))
				return
			}
			select {
			case c.peer.recvQ <- msg:
				c.net.counters.messagesDelivered.Add(1)
				c.net.counters.bytesDelivered.Add(uint64(len(msg)))
				c.pending.Done()
			case <-c.closed:
				c.pending.Done()
				return
			}
		}
	}
}

// drainSendQ releases accounting for messages abandoned when the pump
// exits, so Close never waits on undeliverable traffic.
func (c *Conn) drainSendQ() {
	for {
		select {
		case <-c.sendQ:
			c.pending.Done()
		default:
			return
		}
	}
}
