package netsim

import "sync/atomic"

// Counters are monotonic totals of the network's activity, for
// experiment reporting and tooling.
type Counters struct {
	// DialsAttempted counts Dial calls, successful or not.
	DialsAttempted uint64
	// ConnsEstablished counts successful dials.
	ConnsEstablished uint64
	// MessagesDelivered counts messages that reached a receive queue.
	MessagesDelivered uint64
	// BytesDelivered totals the payload bytes of delivered messages.
	BytesDelivered uint64
	// BroadcastsSent counts SendBroadcast calls.
	BroadcastsSent uint64
	// LinkFailures counts connections severed by ErrLinkLost.
	LinkFailures uint64
}

type netCounters struct {
	dialsAttempted    atomic.Uint64
	connsEstablished  atomic.Uint64
	messagesDelivered atomic.Uint64
	bytesDelivered    atomic.Uint64
	broadcastsSent    atomic.Uint64
	linkFailures      atomic.Uint64
}

func (c *netCounters) snapshot() Counters {
	return Counters{
		DialsAttempted:    c.dialsAttempted.Load(),
		ConnsEstablished:  c.connsEstablished.Load(),
		MessagesDelivered: c.messagesDelivered.Load(),
		BytesDelivered:    c.bytesDelivered.Load(),
		BroadcastsSent:    c.broadcastsSent.Load(),
		LinkFailures:      c.linkFailures.Load(),
	}
}

// Counters returns a snapshot of the network's activity totals.
func (n *Network) Counters() Counters { return n.counters.snapshot() }
