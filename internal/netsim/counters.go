package netsim

import "sync/atomic"

// Counters are monotonic totals of the network's activity, for
// experiment reporting and tooling.
type Counters struct {
	// DialsAttempted counts Dial calls, successful or not.
	DialsAttempted uint64
	// ConnsEstablished counts successful dials.
	ConnsEstablished uint64
	// MessagesDelivered counts messages that reached a receive queue.
	MessagesDelivered uint64
	// BytesDelivered totals the payload bytes of delivered messages.
	BytesDelivered uint64
	// BroadcastsSent counts SendBroadcast calls.
	BroadcastsSent uint64
	// LinkFailures counts connections severed by ErrLinkLost.
	LinkFailures uint64
	// MessagesRetransmitted counts extra PHY transfer charges paid to
	// injected loss (faults.Plan) before a message got through.
	MessagesRetransmitted uint64
	// MessagesCorrupted counts messages delivered with an injected
	// payload mangle (faults.Plan).
	MessagesCorrupted uint64
}

type netCounters struct {
	dialsAttempted    atomic.Uint64
	connsEstablished  atomic.Uint64
	messagesDelivered atomic.Uint64
	bytesDelivered    atomic.Uint64
	broadcastsSent    atomic.Uint64
	linkFailures      atomic.Uint64

	messagesRetransmitted atomic.Uint64
	messagesCorrupted     atomic.Uint64
}

func (c *netCounters) snapshot() Counters {
	return Counters{
		DialsAttempted:    c.dialsAttempted.Load(),
		ConnsEstablished:  c.connsEstablished.Load(),
		MessagesDelivered: c.messagesDelivered.Load(),
		BytesDelivered:    c.bytesDelivered.Load(),
		BroadcastsSent:    c.broadcastsSent.Load(),
		LinkFailures:      c.linkFailures.Load(),

		MessagesRetransmitted: c.messagesRetransmitted.Load(),
		MessagesCorrupted:     c.messagesCorrupted.Load(),
	}
}

// Counters returns a snapshot of the network's activity totals.
func (n *Network) Counters() Counters { return n.counters.snapshot() }
