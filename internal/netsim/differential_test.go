package netsim_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/ids"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/radio"
	"repro/internal/vtime"
)

// This file is the differential property suite of the engine seam: the
// goroutine engine (New) and the discrete-event engine (NewDES) are two
// implementations of one transport contract, and on workloads whose
// observables are time-independent they must agree exactly — same
// delivered message and byte counts, same fault-plan accounting, same
// learned group membership — across 500+ seeded scenario×epoch cases at
// n ≤ 200 devices.
//
// Why these workloads are engine-invariant: every fault fate is a pure
// hash of (pair, connSeq, msgSeq) — elapsed time only gates the active
// window, which the suite opens wider than any run can last — and each
// connection drives a lockstep request/reply exchange, so the per-
// direction message sequence (and therefore every draw) is a pure
// function of the seed no matter how the engines interleave pairs.
// Loss, corruption, retransmit budgets, extra latency and jitter are
// all in play; faults whose draws are keyed by elapsed time (flap and
// partition windows, bandwidth throttles) are exercised on both engines
// by the chaos matrices instead, where the oracle is post-heal
// reconvergence rather than exact counter equality.

const (
	// diffScale keeps the goroutine engine's modeled sleeps in the
	// nanosecond range so hundreds of scenarios stay fast.
	diffScale = 1e-6
	// diffWindow is the fault plan's active window: wide enough
	// (modeled) that no run — on either engine — can outlast it.
	diffWindow = 1_000_000 * time.Hour
	// diffCaseFloor is the satellite's contract: at least this many
	// scenario×epoch cases.
	diffCaseFloor = 500
)

// diffScenario is one seeded world: n devices in Bluetooth range,
// paired off, each pair running msgs lockstep exchanges per epoch over
// a fresh connection per epoch.
type diffScenario struct {
	name          string
	seed          int64
	n             int // devices; even
	msgs          int // lockstep request/reply exchanges per pair per epoch
	epochs        int
	loss, corrupt float64
	retr          int // MaxRetransmits
	latency       time.Duration
	jitter        time.Duration
}

// diffMatrix sweeps the window-independent fault axes; the scenario ×
// epoch case count must clear diffCaseFloor.
func diffMatrix() []diffScenario {
	sizes := []int{2, 4, 6, 8, 12, 16, 24, 40}
	losses := []float64{0, 0.05, 0.15, 0.3}
	corrupts := []float64{0, 0.1, 0.25}
	retrs := []int{1, 3}
	out := make([]diffScenario, 0, 128)
	for i := 0; len(out) < 126; i++ {
		sc := diffScenario{
			seed:    9000 + int64(i)*6151,
			n:       sizes[i%len(sizes)],
			msgs:    2 + i%3,
			epochs:  3 + i%3,
			loss:    losses[i%len(losses)],
			corrupt: corrupts[(i/4)%len(corrupts)],
			retr:    retrs[(i/12)%len(retrs)],
		}
		if i%5 == 4 {
			sc.latency = 5 * time.Millisecond
			sc.jitter = 10 * time.Millisecond
		}
		sc.name = fmt.Sprintf("diff-%03d-n%d-l%02.0f-c%02.0f-r%d-m%d-e%d",
			i, sc.n, sc.loss*100, sc.corrupt*100, sc.retr, sc.msgs, sc.epochs)
		out = append(out, sc)
	}
	// The n ≤ 200 ceiling: two wide worlds, faulty enough that resets
	// and corruption hit many pairs.
	out = append(out,
		diffScenario{name: "diff-big-n100", seed: 424243, n: 100, msgs: 2, epochs: 3, loss: 0.1, corrupt: 0.1, retr: 3},
		diffScenario{name: "diff-big-n200", seed: 424244, n: 200, msgs: 2, epochs: 3, loss: 0.05, corrupt: 0.05, retr: 3},
	)
	return out
}

func diffDev(i int) ids.DeviceID { return ids.DeviceID(fmt.Sprintf("d%03d", i)) }

// diffInterests assigns device i a deterministic interest set drawn
// from a small pool, so pairs overlap and group discovery has work.
func diffInterests(i int) []string {
	pool := []string{"football", "biking", "music", "chess"}
	out := []string{pool[i%len(pool)]}
	if i%3 == 0 {
		second := pool[(i/3)%len(pool)]
		if second != out[0] {
			out = append(out, second)
		}
	}
	return out
}

// diffPayload encodes a device's interest advertisement; diffParse
// inverts it, rejecting frames whose framing was corrupted. The
// corruption mutation is itself a deterministic function of the message
// keys, so both engines reject (or mis-learn) identically.
func diffPayload(dev ids.DeviceID, interests []string) []byte {
	return []byte("ints|" + string(dev) + "|" + strings.Join(interests, ","))
}

func diffParse(payload []byte) ([]string, bool) {
	parts := strings.Split(string(payload), "|")
	if len(parts) != 3 || parts[0] != "ints" {
		return nil, false
	}
	return strings.Split(parts[2], ","), true
}

// diffLearned accumulates what each device learned about its peers'
// interests from successfully parsed exchanges.
type diffLearned struct {
	mu sync.Mutex
	m  map[ids.DeviceID]map[ids.DeviceID][]string
}

func (l *diffLearned) learn(local, remote ids.DeviceID, payload []byte) {
	ints, ok := diffParse(payload)
	if !ok {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m[local] == nil {
		l.m[local] = make(map[ids.DeviceID][]string)
	}
	l.m[local][remote] = ints
}

// views folds the learned state into each device's canonical group
// view via the same core.DiscoverGroups the product stack uses:
// device → interest → sorted members.
func (l *diffLearned) views(n int) map[string]map[string][]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]map[string][]string, n)
	for i := 0; i < n; i++ {
		dev := diffDev(i)
		self := core.Member{Device: dev, ID: ids.MemberID(dev), Interests: diffInterests(i)}
		var nearby []core.Member
		peers := make([]ids.DeviceID, 0, len(l.m[dev]))
		for p := range l.m[dev] {
			peers = append(peers, p)
		}
		sort.Slice(peers, func(a, b int) bool { return peers[a] < peers[b] })
		for _, p := range peers {
			nearby = append(nearby, core.Member{Device: p, ID: ids.MemberID(p), Interests: l.m[dev][p]})
		}
		view := make(map[string][]string)
		for _, g := range core.DiscoverGroups(self, nearby, nil) {
			ms := make([]string, 0, len(g.Members))
			for _, m := range g.Members {
				ms = append(ms, string(m.ID))
			}
			sort.Strings(ms)
			view[g.Interest] = ms
		}
		out[string(dev)] = view
	}
	return out
}

// runDiffWorld executes one scenario on one engine and returns its
// observables.
func runDiffWorld(t *testing.T, sc diffScenario, useDES bool) (netsim.Counters, faults.Counters, map[string]map[string][]string) {
	t.Helper()
	ctx := context.Background()
	opts := []radio.Option{radio.WithScale(vtime.NewScale(diffScale))}
	var sched *des.Scheduler
	if useDES {
		sched = des.NewScheduler(sc.seed, 8)
		opts = append(opts, radio.WithClock(sched.Clock()))
	}
	env := radio.NewEnvironment(opts...)
	for i := 0; i < sc.n; i++ {
		pos := geo.Pt(20+4*float64(i%16)/16, 20+4*float64(i/16)/16)
		if err := env.Add(diffDev(i), mobility.Static{At: pos}, radio.Bluetooth); err != nil {
			t.Fatalf("placing %s: %v", diffDev(i), err)
		}
	}
	var net *netsim.Network
	if useDES {
		net = netsim.NewDES(env, sc.seed, sched)
		sched.Start()
		defer sched.Stop()
	} else {
		net = netsim.New(env, sc.seed)
	}
	defer net.Close()

	plan := faults.New(sc.seed).
		SetLink(faults.LinkProfile{
			Loss:           sc.loss,
			MaxRetransmits: sc.retr,
			Corrupt:        sc.corrupt,
			ExtraLatency:   sc.latency,
			Jitter:         sc.jitter,
		}).
		SetActiveWindow(diffWindow)
	net.SetFaults(plan)

	learned := &diffLearned{m: make(map[ids.DeviceID]map[ids.DeviceID][]string)}

	// Odd devices listen; a handler answers every request with its own
	// advertisement until the connection dies.
	var handlers sync.WaitGroup
	for i := 1; i < sc.n; i += 2 {
		dev := diffDev(i)
		l, err := net.Listen(dev, "diff")
		if err != nil {
			t.Fatalf("listen %s: %v", dev, err)
		}
		hello := diffPayload(dev, diffInterests(i))
		handlers.Add(1)
		go func() {
			defer handlers.Done()
			for {
				c, err := l.Accept(ctx)
				if err != nil {
					return
				}
				handlers.Add(1)
				go func(c *netsim.Conn) {
					defer handlers.Done()
					defer c.Close()
					for {
						msg, err := c.Recv(ctx)
						if err != nil {
							return
						}
						learned.learn(c.Local(), c.Remote(), msg)
						if c.Send(hello) != nil {
							return
						}
					}
				}(c)
			}
		}()
	}

	// Even devices dial their partner once per epoch and run the
	// lockstep exchange; any link fate ends the pair's epoch early.
	for e := 0; e < sc.epochs; e++ {
		var wg sync.WaitGroup
		for p := 0; p < sc.n/2; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				a, b := diffDev(2*p), diffDev(2*p+1)
				hello := diffPayload(a, diffInterests(2*p))
				conn, err := net.Dial(ctx, a, b, radio.Bluetooth, "diff")
				if err != nil {
					return
				}
				defer conn.Close()
				for k := 0; k < sc.msgs; k++ {
					if conn.Send(hello) != nil {
						return
					}
					msg, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					learned.learn(conn.Local(), conn.Remote(), msg)
				}
			}(p)
		}
		wg.Wait()
	}

	counters := net.Counters()
	views := learned.views(sc.n)
	net.Close() // explicit, so the accept loops retire before we return
	handlers.Wait()
	return counters, plan.Counters(), views
}

// TestDifferentialEngines is the engine-equivalence property suite:
// every seeded scenario runs on both engines and must produce identical
// transport counters, identical fault-plan counters, and identical
// learned group views.
func TestDifferentialEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is long; skipped in -short mode")
	}
	matrix := diffMatrix()
	cases := 0
	for _, sc := range matrix {
		cases += sc.epochs
	}
	if cases < diffCaseFloor {
		t.Fatalf("differential matrix covers %d scenario×epoch cases, want >= %d", cases, diffCaseFloor)
	}
	for _, sc := range matrix {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			gNet, gFaults, gViews := runDiffWorld(t, sc, false)
			dNet, dFaults, dViews := runDiffWorld(t, sc, true)
			if gNet != dNet {
				t.Errorf("transport counters diverged:\n  goroutine: %+v\n  DES:       %+v", gNet, dNet)
			}
			if !reflect.DeepEqual(gFaults, dFaults) {
				t.Errorf("fault counters diverged:\n  goroutine: %+v\n  DES:       %+v", gFaults, dFaults)
			}
			if !reflect.DeepEqual(gViews, dViews) {
				t.Errorf("group views diverged:\n  goroutine: %v\n  DES:       %v", gViews, dViews)
			}
		})
	}
}
