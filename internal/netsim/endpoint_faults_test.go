package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/geo"
	"repro/internal/radio"
)

// A stalled serving session is a gray failure: the link stays up, the
// client's requests keep arriving, but the server's replies are
// withheld. Nothing resets; the caller just waits.
func TestStalledSessionWithholdsReplies(t *testing.T) {
	env, net := fastWorld(t)
	plan := faults.New(7).
		SetEndpoints(faults.EndpointProfile{StallFor: time.Hour}).
		AddStall(faults.StallWindow{Device: "sb", End: time.Hour})
	net.SetFaults(plan)
	addStatic(t, env, "sa", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "sb", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "sa", "sb", radio.Bluetooth, "svc")
	defer client.Abort()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Client -> server flows: the sick device still accepts input.
	if err := client.Send([]byte("request")); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Recv(ctx); err != nil {
		t.Fatalf("request did not reach the stalled server: %v", err)
	}
	// Server -> client is withheld: the reply must not arrive within a
	// generous real-time budget (the stall is one modeled hour).
	if err := server.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	short, cancelShort := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancelShort()
	if msg, err := client.Recv(short); err == nil {
		t.Fatalf("stalled reply was delivered: %q", msg)
	} else if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline waiting on stalled reply, got %v", err)
	}
	if client.Err() != nil || server.Err() != nil {
		t.Fatalf("stall must not reset the link: %v / %v", client.Err(), server.Err())
	}
	if plan.Counters().MessagesStalled == 0 {
		t.Fatal("withheld reply not counted")
	}
}

// A slow peer still delivers everything — the fate only inflates its
// service time.
func TestSlowPeerStillDelivers(t *testing.T) {
	env, net := fastWorld(t)
	plan := faults.New(11).SetEndpoints(faults.EndpointProfile{SlowRate: 1, SlowFactor: 4})
	net.SetFaults(plan)
	addStatic(t, env, "la", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "lb", geo.Pt(5, 0), radio.Bluetooth)
	client, server := dialPair(t, net, "la", "lb", radio.Bluetooth, "svc")
	defer client.Abort()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if err := client.Send([]byte("tick")); err != nil {
			t.Fatal(err)
		}
		if _, err := server.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if plan.Counters().SlowTransfers == 0 {
		t.Fatal("slow transfers not counted")
	}
}

// A crash window severs the device's links and refuses new dials; the
// restart (window end, or plan removal) lets dials succeed again.
func TestCrashWindowKillsLinksAndDials(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "ca", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "cb", geo.Pt(5, 0), radio.Bluetooth)
	client, _ := dialPair(t, net, "ca", "cb", radio.Bluetooth, "svc")

	plan := faults.New(13).AddCrash(faults.CrashWindow{Device: "cb", End: time.Hour})
	net.SetFaults(plan)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// The shared sweeper must kill the established connection.
	if _, err := client.Recv(ctx); !errors.Is(err, ErrLinkLost) {
		t.Fatalf("conn to crashed device: want ErrLinkLost, got %v", err)
	}
	// New dials are refused while the device is down.
	if _, err := net.Dial(ctx, "ca", "cb", radio.Bluetooth, "svc"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("dial to crashed device: want ErrUnreachable, got %v", err)
	}
	if plan.Counters().CrashDenials == 0 {
		t.Fatal("crash denials not counted")
	}
	// Restart: lifting the plan brings the device back.
	net.SetFaults(nil)
	c2, err := net.Dial(ctx, "ca", "cb", radio.Bluetooth, "svc")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	c2.Abort()
}

// SendDeadline frees a writer whose peer has stopped reading: once both
// directions' buffers are full, the deadline fires instead of blocking
// forever, and the connection stays usable for the reader side.
func TestSendDeadlineOnNeverReadingPeer(t *testing.T) {
	env, net := fastWorld(t)
	addStatic(t, env, "wa", geo.Pt(0, 0), radio.Bluetooth)
	addStatic(t, env, "wb", geo.Pt(5, 0), radio.Bluetooth)
	writer, _ := dialPair(t, net, "wa", "wb", radio.Bluetooth, "svc")
	defer writer.Abort()

	// Fill the writer's transmit queue and the peer's receive queue. The
	// peer never reads, so at most 2*sendQueueLen+1 messages fit.
	timedOut := false
	for i := 0; i < 3*sendQueueLen; i++ {
		err := writer.SendDeadline([]byte("x"), env.Clock().After(env.Scale().ToReal(time.Minute)))
		if err != nil {
			if !errors.Is(err, ErrSendTimeout) {
				t.Fatalf("send %d: want ErrSendTimeout, got %v", i, err)
			}
			timedOut = true
			break
		}
	}
	if !timedOut {
		t.Fatal("SendDeadline never fired against a never-reading peer")
	}
	// The connection is not dead — the deadline sheds the write without
	// resetting the link.
	if !writer.Alive() {
		t.Fatal("send deadline must not kill the connection")
	}
}
